//! Cross-cutting invariants: the decision-trace semantics of the engine,
//! store accounting, and simulator guarantees — the contracts downstream
//! code relies on but no single crate owns.

use bqs::core::engine::{DecisionKind, Outcome};
use bqs::core::stream::StreamCompressor;
use bqs::core::{BqsCompressor, BqsConfig, FastBqsCompressor};
use bqs::geo::{Point2, Rect, TimedPoint};
use bqs::store::{StoreConfig, TrajectoryStore};
use proptest::prelude::*;

fn trajectory() -> impl Strategy<Value = Vec<TimedPoint>> {
    (
        2usize..200,
        0u64..1_000_000,
        1.0f64..60.0, // step scale
    )
        .prop_map(|(n, seed, scale)| {
            let mut s = seed;
            let mut rnd = move || {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 33) as f64) / ((1u64 << 31) as f64) - 1.0
            };
            let mut x = 0.0;
            let mut y = 0.0;
            (0..n)
                .map(|i| {
                    x += rnd() * scale;
                    y += rnd() * scale;
                    TimedPoint::new(x, y, i as f64)
                })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Trace semantics: the decision kind, the bounds and the outcome must
    /// tell one consistent story for every push.
    #[test]
    fn step_traces_are_internally_consistent(
        points in trajectory(),
        tol in 1.0f64..40.0,
    ) {
        let config = BqsConfig::new(tol).unwrap();
        let mut bqs = BqsCompressor::new(config);
        let mut out = Vec::new();
        for (i, p) in points.iter().enumerate() {
            let tr = bqs.push_traced(*p, &mut out);
            match tr.decided_by {
                DecisionKind::StreamStart => {
                    prop_assert_eq!(i, 0);
                    prop_assert_eq!(tr.outcome, Outcome::Included);
                }
                DecisionKind::Trivial | DecisionKind::WarmupScan => {
                    prop_assert!(tr.bounds.is_none());
                }
                DecisionKind::Bounds => {
                    let b = tr.bounds.expect("bounds decision carries bounds");
                    prop_assert!(b.is_conclusive(tol));
                    prop_assert!(tr.actual.is_none(), "bounds decision computes nothing");
                    // The outcome must match which side was conclusive.
                    if b.upper <= tol {
                        prop_assert_eq!(tr.outcome, Outcome::Included);
                    } else {
                        prop_assert_eq!(tr.outcome, Outcome::SegmentCut);
                    }
                }
                DecisionKind::FullScan => {
                    let b = tr.bounds.expect("scan only after inconclusive bounds");
                    prop_assert!(!b.is_conclusive(tol));
                    let actual = tr.actual.expect("scan computes the deviation");
                    if actual <= tol {
                        prop_assert_eq!(tr.outcome, Outcome::Included);
                    } else {
                        prop_assert_eq!(tr.outcome, Outcome::SegmentCut);
                    }
                }
                DecisionKind::AggressiveCut => {
                    prop_assert!(false, "buffered BQS never cuts aggressively");
                }
            }
        }
    }

    /// The fast engine never scans and never reports a FullScan trace.
    #[test]
    fn fast_engine_never_scans(points in trajectory(), tol in 1.0f64..40.0) {
        let config = BqsConfig::new(tol).unwrap();
        let mut fbqs = FastBqsCompressor::new(config);
        let mut out = Vec::new();
        for p in &points {
            let tr = fbqs.push_traced(*p, &mut out);
            prop_assert!(tr.decided_by != DecisionKind::FullScan);
            if tr.decided_by == DecisionKind::AggressiveCut {
                prop_assert_eq!(tr.outcome, Outcome::SegmentCut);
            }
        }
    }

    /// Store accounting: weight equals chords inserted; spatial queries are
    /// exact supersets of brute-force rectangle filtering.
    #[test]
    fn store_accounting_and_query_exactness(
        trajectories in proptest::collection::vec(trajectory(), 1..6),
        probe in (-500.0f64..500.0, -500.0f64..500.0, 10.0f64..800.0),
    ) {
        let store = TrajectoryStore::new(StoreConfig {
            merge_tolerance: 0.0, // disable merging: pure accounting test
            ..StoreConfig::default()
        });
        let mut chords = 0u64;
        let mut all_segments: Vec<(Point2, Point2)> = Vec::new();
        for t in &trajectories {
            store.insert_compressed(t, 5.0);
            if t.len() >= 2 {
                chords += (t.len() - 1) as u64;
                for w in t.windows(2) {
                    all_segments.push((w[0].pos, w[1].pos));
                }
            }
        }
        prop_assert_eq!(store.total_weight(), chords);

        let rect = Rect::from_corners(
            Point2::new(probe.0, probe.1),
            Point2::new(probe.0 + probe.2, probe.1 + probe.2),
        );
        let hits = store.query_rect(&rect);
        let expected = all_segments
            .iter()
            .filter(|(a, b)| Rect::from_corners(*a, *b).intersects(&rect))
            .count();
        prop_assert_eq!(hits.len(), expected);
    }

    /// Compressor reuse: after `finish`, a compressor must behave exactly
    /// like a fresh one.
    #[test]
    fn finish_makes_compressors_reusable(points in trajectory(), tol in 1.0f64..40.0) {
        let config = BqsConfig::new(tol).unwrap();
        let mut reused = FastBqsCompressor::new(config);
        let mut first = Vec::new();
        for p in &points {
            reused.push(*p, &mut first);
        }
        reused.finish(&mut first);

        let mut second = Vec::new();
        for p in &points {
            reused.push(*p, &mut second);
        }
        reused.finish(&mut second);

        let mut fresh_out = Vec::new();
        let mut fresh = FastBqsCompressor::new(config);
        for p in &points {
            fresh.push(*p, &mut fresh_out);
        }
        fresh.finish(&mut fresh_out);

        prop_assert_eq!(&second, &first, "reuse must not change output");
        prop_assert_eq!(&second, &fresh_out, "reused == fresh");
    }
}
