//! Fleet-engine guarantees, property-tested end to end:
//!
//! 1. **Interleaving equivalence** — pushing N tracks through one
//!    [`FleetEngine`] in an arbitrary interleaving yields output
//!    byte-identical to compressing each track alone with a fresh
//!    compressor. Session state must never leak across tracks, even with
//!    evictions and compressor recycling in the mix.
//! 2. **Per-session error bound** — every session's output independently
//!    satisfies the configured deviation tolerance.
//! 3. **Zero-allocation counting path** — a whole trace compresses through
//!    [`CountingSink`] without materialising any output storage.

use bqs::core::fleet::{CountingFleetSink, FleetConfig, FleetEngine, TrackId};
use bqs::core::metrics::DeviationMetric;
use bqs::core::stream::{compress_all, compress_into, CountingSink};
use bqs::core::{BqsCompressor, BqsConfig, FastBqsCompressor};
use bqs::eval::verify_deviation_bound;
use bqs::geo::TimedPoint;
use proptest::prelude::*;
use std::collections::HashMap;

/// A deterministic per-track trajectory: piecewise walk whose shape is a
/// pure function of `(track, seed)`, so the solo reference recomputes it.
fn track_trace(track: u64, seed: u64, n: usize) -> Vec<TimedPoint> {
    let mut s = seed ^ track.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut rnd = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 33) as f64) / ((1u64 << 31) as f64) - 1.0
    };
    let mut x = rnd() * 1_000.0;
    let mut y = rnd() * 1_000.0;
    (0..n)
        .map(|i| {
            x += rnd() * 25.0;
            y += rnd() * 25.0;
            TimedPoint::new(x, y, i as f64 * 10.0)
        })
        .collect()
}

/// Interleaves `traces` into one record stream using a deterministic
/// shuffle of per-track cursors.
fn interleave(traces: &[Vec<TimedPoint>], seed: u64) -> Vec<(TrackId, TimedPoint)> {
    let mut cursors: Vec<usize> = vec![0; traces.len()];
    let mut remaining: usize = traces.iter().map(Vec::len).sum();
    let mut records = Vec::with_capacity(remaining);
    let mut s = seed | 1;
    while remaining > 0 {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let pick = (s >> 33) as usize % traces.len();
        // Advance to a track that still has points (wrapping scan keeps
        // the shuffle cheap and deterministic).
        for off in 0..traces.len() {
            let t = (pick + off) % traces.len();
            if cursors[t] < traces[t].len() {
                records.push((t as TrackId, traces[t][cursors[t]]));
                cursors[t] += 1;
                remaining -= 1;
                break;
            }
        }
    }
    records
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// ≥ 100 concurrent sessions, arbitrary interleaving, arbitrary
    /// tolerance: fleet output ≡ solo output, per track, byte for byte.
    #[test]
    fn interleaving_is_equivalent_to_solo_compression(
        seed in 0u64..1_000_000,
        tol in 2.0f64..40.0,
        sessions in 100usize..140,
        per_track in 30usize..80,
    ) {
        let traces: Vec<Vec<TimedPoint>> =
            (0..sessions).map(|t| track_trace(t as u64, seed, per_track)).collect();
        let records = interleave(&traces, seed);

        let config = BqsConfig::new(tol).unwrap();
        let mut fleet =
            FleetEngine::with_default_config(move || FastBqsCompressor::new(config));
        let mut tagged: HashMap<TrackId, Vec<TimedPoint>> = HashMap::new();
        fleet.ingest(records, &mut tagged);
        fleet.finish_all(&mut tagged);

        for (t, trace) in traces.iter().enumerate() {
            let mut solo = FastBqsCompressor::new(config);
            let solo_out = compress_all(&mut solo, trace.iter().copied());
            prop_assert_eq!(
                &tagged[&(t as u64)],
                &solo_out,
                "track {} diverged under interleaving",
                t
            );
        }
    }

    /// Same property for the buffered BQS variant (exact-scan buffer is
    /// the hardest state to keep per-session).
    #[test]
    fn interleaving_equivalence_holds_for_buffered_bqs(
        seed in 0u64..1_000_000,
        tol in 2.0f64..40.0,
    ) {
        let sessions = 100usize;
        let traces: Vec<Vec<TimedPoint>> =
            (0..sessions).map(|t| track_trace(t as u64, seed, 40)).collect();
        let records = interleave(&traces, seed.wrapping_add(1));

        let config = BqsConfig::new(tol).unwrap();
        let mut fleet = FleetEngine::with_default_config(move || BqsCompressor::new(config));
        let mut tagged: HashMap<TrackId, Vec<TimedPoint>> = HashMap::new();
        fleet.ingest(records, &mut tagged);
        fleet.finish_all(&mut tagged);

        for (t, trace) in traces.iter().enumerate() {
            let mut solo = BqsCompressor::new(config);
            let solo_out = compress_all(&mut solo, trace.iter().copied());
            prop_assert_eq!(&tagged[&(t as u64)], &solo_out, "track {} diverged", t);
        }
    }

    /// Every session's output independently satisfies the error bound.
    #[test]
    fn error_bound_holds_per_session(
        seed in 0u64..1_000_000,
        tol in 2.0f64..40.0,
    ) {
        let sessions = 100usize;
        let traces: Vec<Vec<TimedPoint>> =
            (0..sessions).map(|t| track_trace(t as u64, seed, 50)).collect();
        let records = interleave(&traces, seed.wrapping_add(2));

        let config = BqsConfig::new(tol).unwrap();
        let mut fleet =
            FleetEngine::with_default_config(move || FastBqsCompressor::new(config));
        let mut tagged: HashMap<TrackId, Vec<TimedPoint>> = HashMap::new();
        fleet.ingest(records, &mut tagged);
        fleet.finish_all(&mut tagged);

        for (t, trace) in traces.iter().enumerate() {
            let kept = &tagged[&(t as u64)];
            let worst = verify_deviation_bound(trace, kept, DeviationMetric::PointToLine)
                .expect("fleet output must be an anchored subsequence");
            prop_assert!(
                worst <= tol + 1e-9,
                "track {}: worst deviation {} > tolerance {}",
                t, worst, tol
            );
        }
    }

    /// Evictions mid-stream must not corrupt surviving sessions: evict the
    /// idle half, keep pushing the rest, and the survivors still match
    /// solo compression.
    #[test]
    fn eviction_does_not_disturb_live_sessions(
        seed in 0u64..1_000_000,
        tol in 2.0f64..40.0,
    ) {
        let sessions = 100usize;
        let traces: Vec<Vec<TimedPoint>> =
            (0..sessions).map(|t| track_trace(t as u64, seed, 60)).collect();

        let config = BqsConfig::new(tol).unwrap();
        let mut fleet = FleetEngine::new(
            FleetConfig { idle_timeout: 100.0, ..FleetConfig::default() },
            move || FastBqsCompressor::new(config),
        );
        let mut tagged: HashMap<TrackId, Vec<TimedPoint>> = HashMap::new();

        // Phase 1: everyone pushes their first 20 points (t ≤ 190).
        for i in 0..20 {
            for (t, trace) in traces.iter().enumerate() {
                fleet.push_tagged(t as u64, trace[i], &mut tagged);
            }
        }
        // Phase 2: only even tracks continue (t up to 590); odd tracks go
        // idle and get evicted on the way.
        for i in 20..60 {
            for (t, trace) in traces.iter().enumerate() {
                if t % 2 == 0 {
                    fleet.push_tagged(t as u64, trace[i], &mut tagged);
                }
            }
            fleet.evict_idle_now(&mut tagged);
        }
        fleet.finish_all(&mut tagged);

        // Surviving (even) tracks saw their full trace: must equal solo.
        for (t, trace) in traces.iter().enumerate().filter(|(t, _)| t % 2 == 0) {
            let mut solo = FastBqsCompressor::new(config);
            let solo_out = compress_all(&mut solo, trace.iter().copied());
            prop_assert_eq!(&tagged[&(t as u64)], &solo_out, "surviving track {}", t);
        }
        // Evicted (odd) tracks saw a 20-point prefix: must equal solo over
        // that prefix.
        for (t, trace) in traces.iter().enumerate().filter(|(t, _)| t % 2 == 1) {
            let mut solo = FastBqsCompressor::new(config);
            let solo_out = compress_all(&mut solo, trace[..20].iter().copied());
            prop_assert_eq!(&tagged[&(t as u64)], &solo_out, "evicted track {}", t);
        }
    }
}

/// The counting path stores nothing: the sink is a bare counter (one
/// machine word of state, no heap), and compressing through it produces
/// the same count as the materialising path.
#[test]
fn counting_sink_path_allocates_no_output_vector() {
    assert_eq!(
        std::mem::size_of::<CountingSink>(),
        std::mem::size_of::<usize>()
    );

    let trace = track_trace(0, 7, 5_000);
    let config = BqsConfig::new(10.0).unwrap();

    let mut counting = FastBqsCompressor::new(config);
    let mut sink = CountingSink::new();
    compress_into(&mut counting, trace.iter().copied(), &mut sink);

    let mut materialising = FastBqsCompressor::new(config);
    let kept = compress_all(&mut materialising, trace.iter().copied());

    assert_eq!(sink.count, kept.len());
    assert!(sink.count >= 2);
}

/// Same guarantee at fleet level: a whole fleet compresses through a
/// word-sized counter.
#[test]
fn fleet_counting_path_allocates_no_output_vector() {
    assert_eq!(
        std::mem::size_of::<CountingFleetSink>(),
        std::mem::size_of::<usize>()
    );
    let config = BqsConfig::new(10.0).unwrap();
    let mut fleet = FleetEngine::with_default_config(move || FastBqsCompressor::new(config));
    let mut sink = CountingFleetSink::default();
    for t in 0..128u64 {
        for p in track_trace(t, 3, 50) {
            fleet.push_tagged(t, p, &mut sink);
        }
    }
    fleet.finish_all(&mut sink);
    assert!(sink.count >= 2 * 128);
}
