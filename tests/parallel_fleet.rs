//! Parallel fleet runtime guarantees, property-tested end to end:
//!
//! 1. **Worker-count equivalence** — pushing 100+ tracks through a
//!    [`ParallelFleet`] in an arbitrary interleaving yields, for *every*
//!    worker count, per-track output byte-identical to compressing each
//!    track alone. Thread scheduling must never be observable in the
//!    data.
//! 2. **Per-session error bound** — every session's parallel output
//!    independently satisfies the configured deviation tolerance.
//! 3. **Durable equivalence** — with one spill log per worker shard,
//!    the `shard-<k>/` tree reopened from disk returns byte-identical
//!    per-track queries, and tree-wide verification passes.
//! 4. **Panic isolation** — a worker panic poisons only the sessions
//!    routed to that shard, and they are *reported*, never silently
//!    dropped.

use bqs::core::fleet::{worker_of, FleetConfig, ParallelConfig, ParallelFleet, TrackId};
use bqs::core::metrics::DeviationMetric;
use bqs::core::stream::{compress_all, DecisionStats, HasDecisionStats, Sink, StreamCompressor};
use bqs::core::{BqsConfig, FastBqsCompressor};
use bqs::eval::verify_deviation_bound;
use bqs::geo::TimedPoint;
use bqs::tlog::{verify_sharded, LogConfig, SpillSink, TimeRange, TrajectoryLog};
use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap};
use std::path::PathBuf;

/// A deterministic per-track trajectory: piecewise walk whose shape is a
/// pure function of `(track, seed)`, so the solo reference recomputes it.
fn track_trace(track: u64, seed: u64, n: usize) -> Vec<TimedPoint> {
    let mut s = seed ^ track.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut rnd = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 33) as f64) / ((1u64 << 31) as f64) - 1.0
    };
    let mut x = rnd() * 1_000.0;
    let mut y = rnd() * 1_000.0;
    (0..n)
        .map(|i| {
            x += rnd() * 25.0;
            y += rnd() * 25.0;
            TimedPoint::new(x, y, i as f64 * 10.0)
        })
        .collect()
}

/// Interleaves `traces` into one record stream using a deterministic
/// shuffle of per-track cursors.
fn interleave(traces: &[Vec<TimedPoint>], seed: u64) -> Vec<(TrackId, TimedPoint)> {
    let mut cursors: Vec<usize> = vec![0; traces.len()];
    let mut remaining: usize = traces.iter().map(Vec::len).sum();
    let mut records = Vec::with_capacity(remaining);
    let mut s = seed | 1;
    while remaining > 0 {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let pick = (s >> 33) as usize % traces.len();
        for off in 0..traces.len() {
            let t = (pick + off) % traces.len();
            if cursors[t] < traces[t].len() {
                records.push((t as TrackId, traces[t][cursors[t]]));
                cursors[t] += 1;
                remaining -= 1;
                break;
            }
        }
    }
    records
}

fn parallel(
    workers: usize,
    tolerance: f64,
    batch_points: usize,
) -> ParallelFleet<HashMap<TrackId, Vec<TimedPoint>>> {
    let config = BqsConfig::new(tolerance).unwrap();
    ParallelFleet::new(
        ParallelConfig {
            workers,
            batch_points,
            channel_batches: 2,
            fleet: FleetConfig::default(),
        },
        move || FastBqsCompressor::new(config),
        |_| HashMap::new(),
    )
}

fn merged(
    join: bqs::core::fleet::FleetJoin<HashMap<TrackId, Vec<TimedPoint>>>,
) -> HashMap<TrackId, Vec<TimedPoint>> {
    let mut all = HashMap::new();
    for shard in join.shards {
        for (track, points) in shard.sink {
            assert!(all.insert(track, points).is_none(), "track in two shards");
        }
    }
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// ≥ 100 concurrent sessions, arbitrary interleaving, arbitrary
    /// tolerance and batch size, 1/2/8 workers: parallel output ≡ solo
    /// output, per track, byte for byte — and the merged statistics
    /// account for every point exactly once.
    #[test]
    fn parallel_interleaving_is_equivalent_to_solo_for_any_worker_count(
        seed in 0u64..1_000_000,
        tol in 2.0f64..40.0,
        sessions in 100usize..124,
        per_track in 30usize..60,
        batch in 1usize..64,
    ) {
        let traces: Vec<Vec<TimedPoint>> =
            (0..sessions).map(|t| track_trace(t as u64, seed, per_track)).collect();
        let records = interleave(&traces, seed);

        for workers in [1usize, 2, 8] {
            let mut fleet = parallel(workers, tol, batch);
            fleet.ingest(records.iter().copied());
            let join = fleet.join();
            prop_assert!(join.is_ok());
            prop_assert_eq!(join.stats.points, (sessions * per_track) as u64);
            prop_assert_eq!(join.session_reports().len(), sessions);
            let all = merged(join);

            let config = BqsConfig::new(tol).unwrap();
            for (t, trace) in traces.iter().enumerate() {
                let mut solo = FastBqsCompressor::new(config);
                let solo_out = compress_all(&mut solo, trace.iter().copied());
                prop_assert_eq!(
                    &all[&(t as u64)],
                    &solo_out,
                    "track {} diverged at {} workers",
                    t,
                    workers
                );
            }
        }
    }

    /// Every session's parallel output independently satisfies the error
    /// bound.
    #[test]
    fn error_bound_holds_per_session_under_parallel_ingest(
        seed in 0u64..1_000_000,
        tol in 2.0f64..40.0,
    ) {
        let sessions = 100usize;
        let traces: Vec<Vec<TimedPoint>> =
            (0..sessions).map(|t| track_trace(t as u64, seed, 40)).collect();
        let records = interleave(&traces, seed.wrapping_add(3));

        let mut fleet = parallel(4, tol, 16);
        fleet.ingest(records);
        let all = merged(fleet.join());

        for (t, trace) in traces.iter().enumerate() {
            let kept = &all[&(t as u64)];
            let worst = verify_deviation_bound(trace, kept, DeviationMetric::PointToLine)
                .expect("parallel output must be an anchored subsequence");
            prop_assert!(
                worst <= tol + 1e-9,
                "track {}: worst deviation {} > tolerance {}",
                t, worst, tol
            );
        }
    }
}

fn temp_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("bqs-parallel-tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Spill → reopen → byte-identical query, across the whole shard tree:
/// each worker spills its sessions into a private `shard-<k>/` log; after
/// the join, every track reads back from its shard exactly as solo
/// compression produces it, both via `read_track` and via a time-range
/// query, and tree-wide verification passes.
#[test]
fn parallel_spill_reopens_byte_identical_across_the_shard_tree() {
    let root = temp_root("spill-tree");
    let workers = 4usize;
    let sessions = 40u64;
    let tol = 12.0;
    let traces: Vec<Vec<TimedPoint>> = (0..sessions).map(|t| track_trace(t, 77, 80)).collect();

    {
        let config = BqsConfig::new(tol).unwrap();
        let logs = bqs::tlog::open_shard_logs(&root, workers, LogConfig::default()).unwrap();
        let mut logs: Vec<Option<TrajectoryLog>> =
            logs.into_iter().map(|(log, _)| Some(log)).collect();
        let mut fleet = ParallelFleet::new(
            ParallelConfig {
                workers,
                batch_points: 32,
                channel_batches: 2,
                fleet: FleetConfig::default(),
            },
            move || FastBqsCompressor::new(config),
            |k| SpillSink::new(logs[k].take().expect("one log per shard")),
        );
        let records = interleave(&traces, 5);
        fleet.ingest(records);
        let join = fleet.join();
        assert!(join.is_ok());
        for shard in join.shards {
            shard.sink.finish().unwrap();
        }
    }

    // The tree verifies as a whole…
    let report = verify_sharded(&root).unwrap();
    assert_eq!(report.shards.len(), workers);
    assert_eq!(report.total.records as u64, sessions);

    // …and every track reads back byte-identical from its shard.
    let config = BqsConfig::new(tol).unwrap();
    let mut shard_logs: HashMap<usize, TrajectoryLog> = HashMap::new();
    for (t, trace) in traces.iter().enumerate() {
        let track = t as u64;
        let shard = worker_of(track, workers);
        let log = shard_logs.entry(shard).or_insert_with(|| {
            TrajectoryLog::open(bqs::tlog::shard_dir(&root, shard), LogConfig::default())
                .unwrap()
                .0
        });
        let mut solo = FastBqsCompressor::new(config);
        let expected = compress_all(&mut solo, trace.iter().copied());
        assert_eq!(log.read_track(track).unwrap(), expected, "track {track}");
        let queried = log.query_time_range(Some(track), TimeRange::all()).unwrap();
        assert_eq!(queried.slices.len(), 1);
        assert_eq!(queried.slices[0].points, expected, "query track {track}");
    }
}

/// A compressor that panics when it meets a poison coordinate.
#[derive(Clone)]
struct Poisonable(FastBqsCompressor);

impl StreamCompressor for Poisonable {
    fn push(&mut self, p: TimedPoint, out: &mut dyn Sink) {
        assert!(p.pos.x.is_finite(), "poison point");
        self.0.push(p, out);
    }
    fn finish(&mut self, out: &mut dyn Sink) {
        self.0.finish(out);
    }
    fn name(&self) -> &'static str {
        "poisonable-fbqs"
    }
}

impl HasDecisionStats for Poisonable {
    fn decision_stats(&self) -> DecisionStats {
        self.0.decision_stats()
    }
}

/// 100+ tracks across 1/2/8 workers with a poison injected into one
/// track: the panic takes down exactly the shards that saw poison, their
/// sessions are reported (not silently dropped), and every other track
/// still equals solo compression.
#[test]
fn worker_panic_poisons_only_its_shard_and_is_reported() {
    let sessions = 110u64;
    let tol = 10.0;
    let poisoned_track = 13u64;
    let traces: Vec<Vec<TimedPoint>> = (0..sessions).map(|t| track_trace(t, 21, 50)).collect();

    for workers in [1usize, 2, 8] {
        let config = BqsConfig::new(tol).unwrap();
        let mut fleet = ParallelFleet::new(
            ParallelConfig {
                workers,
                batch_points: 8,
                channel_batches: 2,
                fleet: FleetConfig::default(),
            },
            move || Poisonable(FastBqsCompressor::new(config)),
            |_| HashMap::<TrackId, Vec<TimedPoint>>::new(),
        );
        for i in 0..50 {
            for (t, trace) in traces.iter().enumerate() {
                fleet.push(t as u64, trace[i]);
            }
            if i == 25 {
                fleet.push(poisoned_track, TimedPoint::new(f64::NAN, 0.0, 1e9));
                fleet.flush();
            }
        }
        let expected_shard = fleet.shard_of(poisoned_track);
        let join = fleet.join();

        assert_eq!(join.failures.len(), 1, "{workers} workers");
        let failure = &join.failures[0];
        assert_eq!(failure.shard, expected_shard);
        assert!(failure.panic.contains("poison"), "{}", failure.panic);
        assert!(failure.tracks.contains(&poisoned_track));

        let lost: BTreeSet<TrackId> = failure.tracks.iter().copied().collect();
        let all = merged(join);
        // Lost + surviving sessions cover the whole fleet: nothing is
        // silently dropped.
        assert_eq!(lost.len() + all.len(), sessions as usize);
        let config = BqsConfig::new(tol).unwrap();
        for (t, trace) in traces.iter().enumerate() {
            let track = t as u64;
            if lost.contains(&track) {
                assert!(!all.contains_key(&track));
                continue;
            }
            let mut solo = FastBqsCompressor::new(config);
            let expected = compress_all(&mut solo, trace.iter().copied());
            assert_eq!(
                all[&track], expected,
                "surviving track {track} / {workers} workers"
            );
        }
    }
}
