//! The serving subsystem's end-to-end acceptance property, tested over
//! arbitrary seeds, fan-in and batch sizes:
//!
//! 1. **Network ≡ in-process** — a seeded `loadgen` run against a
//!    loopback server at 1/2/4 connections produces a spill tree whose
//!    per-track bytes ([`TrajectoryLog::read_track`]) are identical to
//!    the same seeded workload driven through an in-process
//!    [`ParallelFleet`], and `bqs query` prints an identical CSV over
//!    both trees after shutdown.
//! 2. **Mid-run queries are consistent** — a `Query` served mid-run
//!    over (live snapshot + partial spill) answers, for every track
//!    whose load has fully arrived, exactly what the finished durable
//!    tree answers after shutdown.
//! 3. **Disordered ≡ sorted** — a seeded `loadgen --disorder W` run
//!    against a server started with `--lateness W` produces, on both
//!    runtimes and at 1/2/8 workers, a spill tree byte-identical to the
//!    in-process *sorted* run, and the server's late/backfill/too-late
//!    counters match the load generator's ground truth with zero slack.
//! 4. **Subscribe streams the kept points** — a client subscribed to a
//!    track before ingest receives exactly the track's durable kept
//!    sequence, in order, terminated by a clean end-of-stream.
//! 5. **Backfill merges durably** — `loadgen --backfill` history lands
//!    as flagged records that verify, count exactly, and merge in front
//!    of the live remainder at read time.

use bqs::core::fleet::{worker_of, ParallelConfig, ParallelFleet, TrackId};
use bqs::core::{BqsConfig, FastBqsCompressor};
use bqs::net::{loadgen, BqsClient, LoadgenConfig, Server, ServerConfig};
use bqs::obs::MetricsRegistry;
use bqs::tlog::{prepare_spill_logs, LogConfig, SpillSink, TrajectoryLog};
use bqs_cli::Command;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn temp_root(tag: &str) -> PathBuf {
    // ordering: relaxed unique-id ticket — only atomicity matters for distinct temp dirs
    let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join("bqs-net-equivalence")
        .join(format!("{tag}-{}-{seq}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The reference: the same seeded workload driven through an in-process
/// parallel fleet with per-shard spill logs — what `bqs fleet --spill`
/// does, minus the CLI. Uses the server's own layout rule: a flat log
/// at the root for one worker, `shard-<k>/` directories otherwise.
fn in_process_tree(root: &PathBuf, workers: usize, sessions: usize, points: usize, seed: u64) {
    let traces: Vec<Vec<bqs::geo::TimedPoint>> = (0..sessions)
        .map(|t| loadgen::session_trace(seed, t as u64, points))
        .collect();
    in_process_tree_traces(root, workers, &traces);
}

/// Same as [`in_process_tree`] but over caller-supplied per-track
/// traces (track IDs are the indices), so tests can compress just a
/// suffix of each session.
fn in_process_tree_traces(root: &PathBuf, workers: usize, traces: &[Vec<bqs::geo::TimedPoint>]) {
    let mut logs: Vec<Option<TrajectoryLog>> =
        prepare_spill_logs(root, workers, LogConfig::default())
            .expect("open tree")
            .into_iter()
            .map(Some)
            .collect();
    let config = BqsConfig::new(10.0).unwrap();
    let mut fleet = ParallelFleet::new(
        ParallelConfig {
            workers,
            ..ParallelConfig::default()
        },
        move || FastBqsCompressor::new(config),
        |shard| SpillSink::new(logs[shard].take().expect("one log per shard")),
    );
    let points = traces.iter().map(Vec::len).max().unwrap_or(0);
    for i in 0..points {
        for (t, trace) in traces.iter().enumerate() {
            if let Some(p) = trace.get(i) {
                fleet.push(t as TrackId, *p);
            }
        }
    }
    let join = fleet.join();
    assert!(join.is_ok());
    for shard in join.shards {
        shard.sink.finish().expect("spill clean");
    }
    if workers > 1 {
        bqs::tlog::Manifest::rebuild(root).expect("manifest");
    }
}

/// `bqs query` CSV + summary over a tree, with the layout-dependent
/// lines (per-shard breakdown, pruning counts) stripped — the data a
/// user actually reads.
fn query_csv(root: &std::path::Path) -> String {
    let text = bqs_cli::run(&Command::Query {
        dir: root.display().to_string(),
        track: None,
        from: None,
        to: None,
        bbox: None,
        out: None,
    })
    .expect("bqs query");
    text.lines()
        .filter(|l| !l.contains("shard") && !l.contains("pruned"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn read_tracks(
    root: &PathBuf,
    workers: usize,
    sessions: usize,
) -> BTreeMap<u64, Vec<bqs::geo::TimedPoint>> {
    (0..sessions as u64)
        .map(|t| {
            let dir = if workers == 1 {
                root.clone()
            } else {
                bqs::tlog::shard_dir(root, worker_of(t, workers))
            };
            let (log, _) = TrajectoryLog::open(dir, LogConfig::default()).expect("open shard");
            (t, log.read_track(t).expect("read track"))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Acceptance: seeded loadgen over TCP ≡ in-process fleet, across
    /// every serving runtime — legacy thread-per-connection
    /// (`io_threads = 0`), the multiplexed pool on the OS poller, and
    /// the pool on the portable fallback backend — at varying fan-in.
    /// Per-track byte-identical spill and identical `bqs query` CSV
    /// after shutdown.
    #[test]
    fn network_ingest_equals_in_process_fleet(
        seed in 0u64..1_000_000,
        sessions in 6usize..10,
        points in 40usize..80,
        batch in 8usize..64,
    ) {
        let workers = 4usize;

        // Reference tree, in process.
        let reference = temp_root("ref");
        in_process_tree(&reference, workers, sessions, points, seed);
        let expected_tracks = read_tracks(&reference, workers, sessions);
        let expected_csv = query_csv(&reference);

        for (connections, io_threads, fallback) in
            [(1usize, 0usize, false), (2, 4, false), (4, 2, true)]
        {
            let root = temp_root("net");
            let mut config = ServerConfig::new("127.0.0.1:0", workers, &root);
            config.io_threads = io_threads;
            config.fallback_poller = fallback;
            let server = Server::bind(config).expect("bind");
            let addr = server.local_addr();
            let handle = std::thread::spawn(move || server.run().expect("serve"));

            let report = loadgen::run(&LoadgenConfig {
                addr: addr.to_string(),
                sessions,
                points,
                seed,
                connections,
                batch,
                shutdown: true,
                disorder: 0.0,
                backfill: false,
            })
            .expect("loadgen");
            prop_assert_eq!(report.points_sent, (sessions * points) as u64);
            let serve_report = handle.join().expect("server thread");
            prop_assert_eq!(serve_report.appended_points, (sessions * points) as u64);
            prop_assert_eq!(serve_report.spilled_sessions, sessions);

            // The tree verifies…
            bqs::tlog::verify_sharded(&root).expect("tree verifies");
            // …every track's durable bytes equal the in-process run's…
            let got_tracks = read_tracks(&root, workers, sessions);
            prop_assert_eq!(
                &got_tracks, &expected_tracks,
                "spill diverged at {} connections / {} io-threads (fallback {})",
                connections, io_threads, fallback
            );
            // …and `bqs query` prints the identical CSV.
            prop_assert_eq!(
                query_csv(&root),
                expected_csv.clone(),
                "query CSV diverged at {} connections / {} io-threads (fallback {})",
                connections, io_threads, fallback
            );

            let _ = std::fs::remove_dir_all(&root);
        }
        let _ = std::fs::remove_dir_all(&reference);
    }

    /// A query served mid-run — half the load in, sessions still open,
    /// some possibly spilled — answers for every fully loaded track
    /// exactly what the finished durable tree answers after shutdown.
    #[test]
    fn mid_run_queries_match_the_final_durable_answer(
        seed in 0u64..1_000_000,
        sessions in 5usize..9,
        points in 40usize..70,
    ) {
        let workers = 2usize;
        let root = temp_root("midrun");
        let server = Server::bind(ServerConfig::new("127.0.0.1:0", workers, &root))
            .expect("bind");
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run().expect("serve"));

        let traces: Vec<Vec<bqs::geo::TimedPoint>> = (0..sessions)
            .map(|t| loadgen::session_trace(seed, t as u64, points))
            .collect();

        let mut client = BqsClient::connect(addr).expect("connect");
        // The closed set: tracks whose whole load is in before the
        // mid-run query.
        let closed = sessions / 2 + 1;
        for (t, trace) in traces.iter().enumerate().take(closed) {
            client.append(t as u64, trace).expect("append full");
        }
        // The rest are half-loaded — open sessions with pending tails.
        for (t, trace) in traces.iter().enumerate().skip(closed) {
            client.append(t as u64, &trace[..points / 2]).expect("append half");
        }

        let mid = client
            .query_time_range(None, f64::NEG_INFINITY, f64::INFINITY)
            .expect("mid-run query");
        prop_assert_eq!(mid.slices.len(), sessions);
        let mid_by_track: BTreeMap<u64, _> = mid
            .slices
            .iter()
            .map(|s| (s.track, s.points.clone()))
            .collect();

        // Finish the load and shut down.
        for (t, trace) in traces.iter().enumerate().skip(closed) {
            client.append(t as u64, &trace[points / 2..]).expect("append rest");
        }
        client.shutdown().expect("shutdown");
        handle.join().expect("server thread");

        // The finished durable answer, straight from the tree.
        let final_tracks = read_tracks(&root, workers, sessions);
        for t in 0..closed as u64 {
            prop_assert_eq!(
                &mid_by_track[&t], &final_tracks[&t],
                "closed track {} answered differently mid-run", t
            );
        }
        // Half-loaded tracks: the mid-run answer is a prefix of the
        // final one (compression is online — the kept prefix never
        // changes as more points arrive).
        for t in closed as u64..sessions as u64 {
            let mid_points = &mid_by_track[&t];
            let final_points = &final_tracks[&t];
            prop_assert!(mid_points.len() <= final_points.len());
            // The mid-run view may end with the open session's
            // would-be-final tail point, which a longer stream replaces;
            // every point before it is final.
            let stable = mid_points.len().saturating_sub(1);
            prop_assert_eq!(
                &mid_points[..stable], &final_points[..stable],
                "open track {} rewrote history", t
            );
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}

/// The pool at serving scale: 256 concurrent connections multiplexed
/// over 4 I/O threads still spill byte-for-byte what the in-process
/// fleet spills — the acceptance fan-in of the ingest fast path.
#[test]
fn pool_ingest_at_256_connections_is_byte_identical() {
    let (workers, sessions, points, seed) = (4usize, 256usize, 60usize, 77u64);

    let reference = temp_root("ref-256");
    in_process_tree(&reference, workers, sessions, points, seed);
    let expected_tracks = read_tracks(&reference, workers, sessions);

    let root = temp_root("net-256");
    let mut config = ServerConfig::new("127.0.0.1:0", workers, &root);
    config.io_threads = 4;
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("serve"));

    let report = loadgen::run(&LoadgenConfig {
        addr: addr.to_string(),
        sessions,
        points,
        seed,
        connections: 256,
        batch: 32,
        shutdown: true,
        disorder: 0.0,
        backfill: false,
    })
    .expect("loadgen");
    assert_eq!(report.points_sent, (sessions * points) as u64);
    assert_eq!(report.connections, 256);
    let serve_report = handle.join().expect("server thread");
    assert_eq!(serve_report.appended_points, (sessions * points) as u64);
    assert_eq!(serve_report.spilled_sessions, sessions);
    assert_eq!(serve_report.rejected_connections, 0);

    bqs::tlog::verify_sharded(&root).expect("tree verifies");
    assert_eq!(
        read_tracks(&root, workers, sessions),
        expected_tracks,
        "spill diverged at 256 connections"
    );
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&reference);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Acceptance for bounded-lateness ingest: a seeded
    /// `loadgen --disorder W` run against a server started with
    /// `--lateness W` spills, on both runtimes and at 1/2/8 workers,
    /// byte-for-byte what the in-process fleet spills for the *sorted*
    /// workload — the reorder buffer restores timestamp order exactly.
    /// The server's late-data counters (wire `Metrics` text and the
    /// final `ServeReport`) must equal the load generator's ground
    /// truth with zero slack, including one refused too-late probe per
    /// track.
    #[test]
    fn disordered_ingest_equals_sorted_ingest(
        seed in 0u64..1_000_000,
        sessions in 4usize..7,
        points in 40usize..70,
        batch in 8usize..32,
    ) {
        // Five sample intervals of admissible disorder (random-walk
        // traces tick every 10 s).
        const WINDOW: f64 = 50.0;

        for workers in [1usize, 2, 8] {
            // Reference tree: the same sessions, in timestamp order.
            let reference = temp_root("ref-late");
            in_process_tree(&reference, workers, sessions, points, seed);
            let expected_tracks = read_tracks(&reference, workers, sessions);
            let expected_csv = query_csv(&reference);

            for io_threads in [0usize, 2] {
                let root = temp_root("net-late");
                let registry = MetricsRegistry::new();
                let mut config = ServerConfig::new("127.0.0.1:0", workers, &root);
                config.io_threads = io_threads;
                config.lateness = WINDOW;
                config.metrics = Some(registry.clone());
                let server = Server::bind(config).expect("bind");
                let addr = server.local_addr();
                let handle = std::thread::spawn(move || server.run().expect("serve"));

                let report = loadgen::run(&LoadgenConfig {
                    addr: addr.to_string(),
                    sessions,
                    points,
                    seed,
                    connections: 2,
                    batch,
                    shutdown: false,
                    disorder: WINDOW,
                    backfill: false,
                })
                .expect("loadgen");
                prop_assert_eq!(report.points_sent, (sessions * points) as u64);
                prop_assert!(report.late_points > 0, "disorder produced no late arrivals");
                prop_assert_eq!(report.backfill_points, 0);
                prop_assert_eq!(report.too_late_points, sessions as u64);

                // Zero slack: the server's wire-visible counters are
                // exactly the generator's ground truth.
                let mut client = BqsClient::connect(addr).expect("connect");
                let text = client.metrics().expect("metrics");
                for (name, want) in [
                    ("net_late_accepted_points_total", report.late_points),
                    ("net_backfilled_points_total", report.backfill_points),
                    ("net_too_late_points_total", report.too_late_points),
                ] {
                    let line = format!("{name} {want}");
                    prop_assert!(
                        text.lines().any(|l| l == line),
                        "metrics missing exact line {:?} at {} workers / {} io-threads:\n{}",
                        line, workers, io_threads, text
                    );
                }
                client.shutdown().expect("shutdown");
                let serve_report = handle.join().expect("server thread");
                prop_assert_eq!(serve_report.appended_points, (sessions * points) as u64);
                prop_assert_eq!(serve_report.late_points, report.late_points);
                prop_assert_eq!(serve_report.backfill_points, 0);
                prop_assert_eq!(serve_report.too_late_points, report.too_late_points);
                prop_assert_eq!(serve_report.spilled_sessions, sessions);

                // The tree verifies under the layout the worker count
                // implies…
                if workers == 1 {
                    bqs::tlog::verify_dir(&root).expect("flat tree verifies");
                } else {
                    bqs::tlog::verify_sharded(&root).expect("tree verifies");
                }
                // …and is byte-identical to the sorted in-process run.
                let got_tracks = read_tracks(&root, workers, sessions);
                prop_assert_eq!(
                    &got_tracks, &expected_tracks,
                    "disordered spill diverged at {} workers / {} io-threads",
                    workers, io_threads
                );
                prop_assert_eq!(
                    query_csv(&root),
                    expected_csv.clone(),
                    "query CSV diverged at {} workers / {} io-threads",
                    workers, io_threads
                );

                let _ = std::fs::remove_dir_all(&root);
            }
            let _ = std::fs::remove_dir_all(&reference);
        }
    }
}

/// A client subscribed to one track before any ingest receives exactly
/// that track's durable kept sequence — every batch tagged with the
/// subscribed track, points in timestamp order, stream closed by a
/// clean end-of-stream at server shutdown — even when the load arrives
/// disordered through the reorder buffer.
#[test]
fn subscribe_streams_exactly_the_kept_points() {
    let (workers, sessions, points, seed) = (2usize, 4usize, 120usize, 11u64);
    let root = temp_root("subscribe");
    let mut config = ServerConfig::new("127.0.0.1:0", workers, &root);
    config.lateness = 50.0;
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("serve"));

    let mut sub = BqsClient::connect(addr)
        .expect("connect subscriber")
        .subscribe(Some(1), None)
        .expect("subscribe");

    loadgen::run(&LoadgenConfig {
        addr: addr.to_string(),
        sessions,
        points,
        seed,
        connections: 2,
        batch: 16,
        shutdown: true,
        disorder: 50.0,
        backfill: false,
    })
    .expect("loadgen");

    let mut streamed = Vec::new();
    let mut batches = 0usize;
    while let Some((track, pts)) = sub.next_batch().expect("subscription batch") {
        assert_eq!(track, 1, "subscription leaked another track's points");
        streamed.extend(pts);
        batches += 1;
    }
    let serve_report = handle.join().expect("server thread");
    assert_eq!(serve_report.appended_points, (sessions * points) as u64);
    assert!(batches > 0, "subscriber saw no batches");

    let durable = read_tracks(&root, workers, sessions)
        .remove(&1)
        .expect("track 1 spilled");
    assert_eq!(
        streamed, durable,
        "live stream diverged from the durable kept sequence"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// `loadgen --backfill` ships each session's oldest third through the
/// durable backfill path after its live remainder: the counts match
/// exactly on both sides of the wire, the tree verifies with flagged
/// backfill records, and read-time merge answers the *whole* history —
/// the raw backfilled prefix followed by the compressed live remainder.
#[test]
fn backfill_history_counts_and_merges_durably() {
    let (workers, sessions, points, seed) = (2usize, 5usize, 90usize, 23u64);
    let traces: Vec<Vec<bqs::geo::TimedPoint>> = (0..sessions)
        .map(|t| loadgen::session_trace(seed, t as u64, points))
        .collect();
    let cut = points / 3;

    // Reference: just the live remainders through an in-process fleet —
    // what the server's compressor sees when the oldest third bypasses
    // it via backfill.
    let reference = temp_root("ref-backfill");
    let live: Vec<Vec<bqs::geo::TimedPoint>> = traces.iter().map(|t| t[cut..].to_vec()).collect();
    in_process_tree_traces(&reference, workers, &live);
    let live_kept = read_tracks(&reference, workers, sessions);

    let root = temp_root("net-backfill");
    let server = Server::bind(ServerConfig::new("127.0.0.1:0", workers, &root)).expect("bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("serve"));

    let report = loadgen::run(&LoadgenConfig {
        addr: addr.to_string(),
        sessions,
        points,
        seed,
        connections: 2,
        batch: 16,
        shutdown: true,
        disorder: 0.0,
        backfill: true,
    })
    .expect("loadgen");
    assert_eq!(report.points_sent, (sessions * (points - cut)) as u64);
    assert_eq!(report.backfill_points, (sessions * cut) as u64);
    assert_eq!(report.too_late_points, 0);
    let serve_report = handle.join().expect("server thread");
    assert_eq!(serve_report.appended_points, report.points_sent);
    assert_eq!(serve_report.backfill_points, report.backfill_points);

    let verify = bqs::tlog::verify_sharded(&root).expect("tree verifies");
    assert!(
        verify.total.backfill_records > 0,
        "no backfill records in the tree"
    );

    // Read-time merge: backfilled history (raw, durable-wins) in front
    // of the live kept sequence.
    let got = read_tracks(&root, workers, sessions);
    for (t, trace) in traces.iter().enumerate() {
        let mut expected = trace[..cut].to_vec();
        expected.extend_from_slice(&live_kept[&(t as u64)]);
        assert_eq!(
            got[&(t as u64)],
            expected,
            "track {t}: merged history diverged"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&reference);
}
