//! The unified query layer's end-to-end guarantees, property-tested over
//! arbitrary interleavings and worker counts:
//!
//! 1. **Hot/cold equivalence** — for 1/2/8 workers, a [`QueryEngine`]
//!    over (live fleet snapshot + partially spilled shard tree) returns,
//!    per track, exactly the point sets that `finish_all` → spill →
//!    query of the finished tree returns. Being observed mid-run must
//!    change nothing, and nothing may be seen twice or missed.
//! 2. **Worker-count invariance** — the unified answer is identical for
//!    any worker count.
//! 3. **Manifest-pruning soundness** — track-selective queries skip
//!    every shard but the track's own (skipped > 0 observable in the
//!    stats) and the pruned answer equals the unpruned one.

use bqs::core::fleet::{FleetConfig, ParallelConfig, ParallelFleet, TrackId};
use bqs::core::{BqsConfig, FastBqsCompressor};
use bqs::geo::TimedPoint;
use bqs::tlog::{
    open_shard_logs, LogConfig, Manifest, QueryEngine, SpillSink, TimeRange, TrajectoryLog,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn temp_root(tag: &str) -> PathBuf {
    // ordering: relaxed unique-id ticket — only atomicity matters for distinct temp dirs
    let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join("bqs-query-unified")
        .join(format!("{tag}-{}-{seq}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic per-track trajectory with strictly increasing
/// timestamps (t = 10·i).
fn track_trace(track: u64, seed: u64, n: usize) -> Vec<TimedPoint> {
    let mut s = seed ^ track.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut rnd = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 33) as f64) / ((1u64 << 31) as f64) - 1.0
    };
    let mut x = rnd() * 1_000.0;
    let mut y = rnd() * 1_000.0;
    (0..n)
        .map(|i| {
            x += rnd() * 25.0;
            y += rnd() * 25.0;
            TimedPoint::new(x, y, i as f64 * 10.0)
        })
        .collect()
}

/// Interleaves `traces` into one record stream with a deterministic
/// shuffle.
fn interleave(traces: &[Vec<TimedPoint>], seed: u64) -> Vec<(TrackId, TimedPoint)> {
    let mut cursors: Vec<usize> = vec![0; traces.len()];
    let mut remaining: usize = traces.iter().map(Vec::len).sum();
    let mut records = Vec::with_capacity(remaining);
    let mut s = seed | 1;
    while remaining > 0 {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let pick = (s >> 33) as usize % traces.len();
        for off in 0..traces.len() {
            let t = (pick + off) % traces.len();
            if cursors[t] < traces[t].len() {
                records.push((t as TrackId, traces[t][cursors[t]]));
                cursors[t] += 1;
                remaining -= 1;
                break;
            }
        }
    }
    records
}

/// A spilling parallel fleet: one owned shard log per worker.
fn spilling_fleet(
    root: &PathBuf,
    workers: usize,
    tolerance: f64,
    batch: usize,
) -> ParallelFleet<SpillSink<TrajectoryLog>> {
    let mut logs: Vec<Option<TrajectoryLog>> = open_shard_logs(root, workers, LogConfig::default())
        .expect("open tree")
        .into_iter()
        .map(|(log, _)| Some(log))
        .collect();
    let config = BqsConfig::new(tolerance).unwrap();
    ParallelFleet::new(
        ParallelConfig {
            workers,
            batch_points: batch,
            channel_batches: 2,
            fleet: FleetConfig {
                // Tight timeout so a mid-run evict_idle really evicts.
                idle_timeout: 50.0,
                ..FleetConfig::default()
            },
        },
        move || FastBqsCompressor::new(config),
        |shard| SpillSink::new(logs[shard].take().expect("one log per shard")),
    )
}

fn slices_to_map(out: &bqs::tlog::UnifiedOutput) -> BTreeMap<TrackId, Vec<TimedPoint>> {
    out.slices
        .iter()
        .map(|s| (s.track, s.points.clone()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The acceptance property: live fleet + partial spill, queried
    /// unified, equals finish_all → spill → query of the finished tree
    /// — per track, point for point, for 1/2/8 workers; and pruned
    /// track-selective queries skip shards while answering identically.
    #[test]
    fn unified_live_query_equals_finished_tree_query(
        seed in 0u64..1_000_000,
        tol in 2.0f64..40.0,
        sessions in 6usize..12,
        per_track in 30usize..60,
        batch in 1usize..32,
        split_pct in 25usize..75,
    ) {
        let traces: Vec<Vec<TimedPoint>> =
            (0..sessions).map(|t| track_trace(t as u64, seed, per_track)).collect();
        let records = interleave(&traces, seed.wrapping_add(1));
        let split = records.len() * split_pct / 100;

        let mut answers: Vec<BTreeMap<TrackId, Vec<TimedPoint>>> = Vec::new();
        for workers in [1usize, 2, 8] {
            let root = temp_root("equiv");
            let mut fleet = spilling_fleet(&root, workers, tol, batch);

            // Phase 1: a prefix, then evict everything idle — those
            // sessions spill to the shard logs (cold) and restart on
            // their next point.
            for &(track, p) in &records[..split] {
                fleet.push(track, p);
            }
            fleet.evict_idle(1e12);

            // Phase 2: the rest stays hot (open sessions + buffers).
            for &(track, p) in &records[split..] {
                fleet.push(track, p);
            }

            // Snapshot first, then open cold: anything spilled in
            // between would be seen cold instead of hot (durable wins).
            let snapshot = fleet.snapshot();
            let mut engine = QueryEngine::open(&root)
                .expect("open tree beside live writers")
                .with_snapshot(snapshot);
            let unified = engine
                .query_time_range(None, TimeRange::all())
                .expect("unified query");
            let unified_map = slices_to_map(&unified);
            drop(engine);

            // Now close everything and read the finished tree: the
            // specification the live view must have matched.
            let join = fleet.join();
            prop_assert!(join.is_ok());
            for shard in join.shards {
                shard.sink.finish().expect("spill clean");
            }
            let mut finished = QueryEngine::open(&root).expect("reopen finished tree");
            let expected = finished
                .query_time_range(None, TimeRange::all())
                .expect("tree query");
            let expected_map = slices_to_map(&expected);

            prop_assert_eq!(
                &unified_map, &expected_map,
                "live view diverged from finished tree at {} workers", workers
            );
            prop_assert_eq!(unified_map.len(), sessions);

            // Manifest pruning: write the manifest, query one track with
            // and without pruning — identical slices, shards skipped.
            Manifest::rebuild(&root).expect("manifest");
            let probe = (seed % sessions as u64) as TrackId;
            let mut engine = QueryEngine::open(&root).expect("open with manifest");
            let pruned = engine
                .query_time_range(Some(probe), TimeRange::all())
                .expect("pruned query");
            engine.set_pruning(false);
            let unpruned = engine
                .query_time_range(Some(probe), TimeRange::all())
                .expect("unpruned query");
            prop_assert_eq!(&pruned.slices, &unpruned.slices);
            prop_assert_eq!(pruned.slices.len(), 1);
            if workers > 1 {
                prop_assert_eq!(
                    pruned.shards_pruned, workers - 1,
                    "expected all shards but the probe's own to be skipped"
                );
            }
            prop_assert_eq!(unpruned.shards_pruned, 0);

            answers.push(expected_map);
            let _ = std::fs::remove_dir_all(&root);
        }

        // Worker-count invariance of the durable answer itself.
        prop_assert_eq!(&answers[0], &answers[1]);
        prop_assert_eq!(&answers[0], &answers[2]);
    }

    /// Narrow time-window and bbox queries through the unified engine
    /// agree with brute-force filtering of the full per-track answer.
    #[test]
    fn filtered_unified_queries_agree_with_brute_force(
        seed in 0u64..1_000_000,
        sessions in 4usize..8,
        per_track in 30usize..50,
    ) {
        let traces: Vec<Vec<TimedPoint>> =
            (0..sessions).map(|t| track_trace(t as u64, seed, per_track)).collect();
        let records = interleave(&traces, seed.wrapping_add(7));
        let split = records.len() / 2;

        let root = temp_root("filters");
        let mut fleet = spilling_fleet(&root, 2, 10.0, 8);
        for &(track, p) in &records[..split] {
            fleet.push(track, p);
        }
        fleet.evict_idle(1e12);
        for &(track, p) in &records[split..] {
            fleet.push(track, p);
        }
        let snapshot = fleet.snapshot();
        let mut engine = QueryEngine::open(&root)
            .expect("open")
            .with_snapshot(snapshot.clone());
        let everything = engine
            .query_time_range(None, TimeRange::all())
            .expect("full");
        let full = slices_to_map(&everything);

        let range = TimeRange::new(per_track as f64 * 2.0, per_track as f64 * 7.0);
        let windowed = engine
            .query_time_range(None, range)
            .expect("window");
        for slice in &windowed.slices {
            let expected: Vec<TimedPoint> = full[&slice.track]
                .iter()
                .copied()
                .filter(|p| range.contains(p.t))
                .collect();
            prop_assert_eq!(&slice.points, &expected, "track {}", slice.track);
        }

        let area = bqs::geo::Rect::from_corners(
            bqs::geo::Point2::new(-500.0, -500.0),
            bqs::geo::Point2::new(500.0, 500.0),
        );
        let boxed = engine.query_bbox(None, area, None).expect("bbox");
        let mut expected_tracks = Vec::new();
        for (track, points) in &full {
            let expected: Vec<TimedPoint> = points
                .iter()
                .copied()
                .filter(|p| area.contains(p.pos))
                .collect();
            if !expected.is_empty() {
                expected_tracks.push(*track);
                let slice = boxed
                    .slices
                    .iter()
                    .find(|s| s.track == *track)
                    .expect("track present");
                prop_assert_eq!(&slice.points, &expected, "track {}", track);
            }
        }
        prop_assert_eq!(
            boxed.slices.iter().map(|s| s.track).collect::<Vec<_>>(),
            expected_tracks
        );

        drop(fleet);
        let _ = std::fs::remove_dir_all(&root);
    }
}
