//! Property tests for the theorem machinery itself: the quadrant and octant
//! structures must produce sound deviation bounds for arbitrary point sets
//! and chords — soundness of the upper bound is what carries the error
//! guarantee when a point is admitted without an exact scan.

use bqs::core::bqs3d::{Octant, OctantBounds};
use bqs::core::metrics::DeviationMetric;
use bqs::core::quadrant::QuadrantBounds;
use bqs::core::BoundsMode;
use bqs::geo::{
    convex_hull, hull::point_in_convex_hull, point_to_line_distance, Line3, Point2, Point3,
    Quadrant,
};
use proptest::prelude::*;

fn arbitrary_quadrant() -> impl Strategy<Value = Quadrant> {
    (0usize..4).prop_map(Quadrant::from_index)
}

fn chord_end() -> impl Strategy<Value = Point2> {
    (-3_000.0f64..3_000.0, -3_000.0f64..3_000.0)
        .prop_filter("non-degenerate chord", |(x, y)| x.abs() + y.abs() > 1e-6)
        .prop_map(|(x, y)| Point2::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The sound upper bound dominates the brute-force maximum deviation
    /// for every geometry, both metrics.
    #[test]
    fn quadrant_upper_bound_is_sound(
        quadrant in arbitrary_quadrant(),
        end in chord_end(),
        seed_pts in proptest::collection::vec((0.1f64..2_000.0, 0.1f64..2_000.0), 1..40),
    ) {
        let (sx, sy) = quadrant.signs();
        let pts: Vec<Point2> =
            seed_pts.iter().map(|(x, y)| Point2::new(sx * x, sy * y)).collect();
        let mut q = QuadrantBounds::new(quadrant, pts[0]);
        for p in &pts[1..] {
            q.insert(*p);
        }
        for metric in [DeviationMetric::PointToLine, DeviationMetric::PointToSegment] {
            let bounds = q.deviation_bounds(end, metric, BoundsMode::Sound);
            let actual = pts
                .iter()
                .map(|p| metric.distance(*p, Point2::ORIGIN, end))
                .fold(0.0f64, f64::max);
            prop_assert!(
                bounds.upper >= actual - 1e-6,
                "{metric:?}: ub {} < actual {actual}",
                bounds.upper
            );
            prop_assert!(bounds.lower <= bounds.upper + 1e-9);
        }
    }

    /// Coarse (Theorem 5.2) bounds are sound too, and never tighter than
    /// the wedge-clipped upper bound.
    #[test]
    fn coarse_bounds_sound_and_dominated(
        quadrant in arbitrary_quadrant(),
        end in chord_end(),
        seed_pts in proptest::collection::vec((0.1f64..2_000.0, 0.1f64..2_000.0), 1..40),
    ) {
        let (sx, sy) = quadrant.signs();
        let pts: Vec<Point2> =
            seed_pts.iter().map(|(x, y)| Point2::new(sx * x, sy * y)).collect();
        let mut q = QuadrantBounds::new(quadrant, pts[0]);
        for p in &pts[1..] {
            q.insert(*p);
        }
        let metric = DeviationMetric::PointToLine;
        let sound = q.deviation_bounds(end, metric, BoundsMode::Sound);
        let coarse = q.deviation_bounds(end, metric, BoundsMode::CoarseCorners);
        let actual = pts
            .iter()
            .map(|p| point_to_line_distance(*p, Point2::ORIGIN, end))
            .fold(0.0f64, f64::max);
        prop_assert!(coarse.upper >= actual - 1e-6);
        prop_assert!(sound.upper <= coarse.upper + 1e-6,
            "wedge-clipped ub {} looser than box ub {}", sound.upper, coarse.upper);
    }

    /// The ≤9 hull vertices of a quadrant structure really do enclose
    /// every inserted point (the invariant the re-rotation rebuild needs).
    #[test]
    fn hull_vertices_contain_all_points(
        quadrant in arbitrary_quadrant(),
        seed_pts in proptest::collection::vec((0.1f64..2_000.0, 0.1f64..2_000.0), 1..40),
    ) {
        let (sx, sy) = quadrant.signs();
        let pts: Vec<Point2> =
            seed_pts.iter().map(|(x, y)| Point2::new(sx * x, sy * y)).collect();
        let mut q = QuadrantBounds::new(quadrant, pts[0]);
        for p in &pts[1..] {
            q.insert(*p);
        }
        let vertices = q.hull_vertices();
        prop_assert!(vertices.len() <= 9, "{} vertices", vertices.len());
        let hull = convex_hull(&vertices);
        for p in &pts {
            prop_assert!(
                point_in_convex_hull(*p, &hull, 1e-6),
                "point {p:?} escapes the hull {hull:?}"
            );
        }
    }

    /// 3-D: the octant upper bound dominates the brute-force 3-D deviation.
    #[test]
    fn octant_upper_bound_is_sound(
        signs in (0u8..8),
        end in (
            -3_000.0f64..3_000.0,
            -3_000.0f64..3_000.0,
            -3_000.0f64..3_000.0,
        ),
        seed_pts in proptest::collection::vec(
            (0.1f64..1_500.0, 0.1f64..1_500.0, 0.1f64..1_500.0),
            1..25,
        ),
    ) {
        let sx = if signs & 1 == 0 { 1.0 } else { -1.0 };
        let sy = if signs & 2 == 0 { 1.0 } else { -1.0 };
        let sz = if signs & 4 == 0 { 1.0 } else { -1.0 };
        let pts: Vec<Point3> = seed_pts
            .iter()
            .map(|(x, y, z)| Point3::new(sx * x, sy * y, sz * z))
            .collect();
        let end = Point3::new(end.0, end.1, end.2);
        prop_assume!(end.norm() > 1e-6);

        let mut o = OctantBounds::new(Octant::of(pts[0]), pts[0]);
        for p in &pts[1..] {
            o.insert(*p);
        }
        let bounds = o.deviation_bounds(end, BoundsMode::Sound);
        let line = Line3::new(Point3::ORIGIN, end);
        let actual = pts.iter().map(|p| line.distance_to(*p)).fold(0.0f64, f64::max);
        prop_assert!(
            bounds.upper >= actual - 1e-6,
            "3-D ub {} < actual {actual}",
            bounds.upper
        );
        prop_assert!(bounds.lower <= bounds.upper + 1e-9);
    }

    /// Paper-exact Theorem 5.5 upper bound (line outside the quadrant) is
    /// sound — that case reduces to the corner bound, which is provable.
    #[test]
    fn paper_exact_out_of_quadrant_upper_is_sound(
        end_scale in 10.0f64..3_000.0,
        seed_pts in proptest::collection::vec((0.1f64..2_000.0, 0.1f64..2_000.0), 1..40),
    ) {
        // Points in Q1; chord pointing into Q2/Q4 (not in Q1/Q3).
        let pts: Vec<Point2> =
            seed_pts.iter().map(|(x, y)| Point2::new(*x, *y)).collect();
        let end = Point2::new(-end_scale, end_scale * 0.2); // Q2 direction
        let mut q = QuadrantBounds::new(Quadrant::Q1, pts[0]);
        for p in &pts[1..] {
            q.insert(*p);
        }
        let bounds = q.deviation_bounds(end, DeviationMetric::PointToLine, BoundsMode::PaperExact);
        let actual = pts
            .iter()
            .map(|p| point_to_line_distance(*p, Point2::ORIGIN, end))
            .fold(0.0f64, f64::max);
        prop_assert!(bounds.upper >= actual - 1e-6);
    }
}
