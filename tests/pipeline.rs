//! End-to-end integration across the workspace: simulate → project →
//! compress on the device model → store → age → reconstruct, with the
//! paper's constraints checked at every joint.

use bqs::core::stream::{compress_all, compress_all_with_stats};
use bqs::core::{BqsCompressor, BqsConfig, FastBqsCompressor};
use bqs::device::{probe_working_set, CamazotzSpec, FlashStorage, GPS_RECORD_BYTES};
use bqs::eval::verify_deviation_bound;
use bqs::geo::proj::TraceProjector;
use bqs::geo::{LocationPoint, TimedPoint};
use bqs::sim::dataset;
use bqs::store::{StoreConfig, TrajectoryStore};

const SEED: u64 = 424242;

#[test]
fn fbqs_constant_memory_on_every_dataset() {
    let spec = CamazotzSpec::paper();
    for trace in [
        dataset::bat_dataset_sized(SEED, 3, 2),
        dataset::vehicle_dataset_sized(SEED, 10),
        dataset::synthetic_dataset_sized(SEED, 8_000),
    ] {
        let report = probe_working_set(BqsConfig::new(10.0).unwrap(), trace.points.clone());
        assert!(
            report.peak_significant_points <= 32,
            "{}: peak {}",
            trace.name,
            report.peak_significant_points
        );
        assert_eq!(report.peak_buffered_points, 0, "{}", trace.name);
        assert!(
            report.fits(&spec),
            "{}: {} B",
            trace.name,
            report.peak_bytes()
        );
    }
}

#[test]
fn error_bound_verified_on_every_dataset_and_algorithm_pair() {
    for trace in [
        dataset::bat_dataset_sized(SEED, 2, 1),
        dataset::vehicle_dataset_sized(SEED, 5),
        dataset::synthetic_dataset_sized(SEED, 5_000),
    ] {
        for tolerance in [5.0, 15.0] {
            let config = BqsConfig::new(tolerance).unwrap();
            for (name, kept) in [
                ("BQS", {
                    let mut c = BqsCompressor::new(config);
                    compress_all(&mut c, trace.points.iter().copied())
                }),
                ("FBQS", {
                    let mut c = FastBqsCompressor::new(config);
                    compress_all(&mut c, trace.points.iter().copied())
                }),
            ] {
                let worst = verify_deviation_bound(
                    &trace.points,
                    &kept,
                    bqs::core::metrics::DeviationMetric::PointToLine,
                )
                .unwrap_or_else(|| panic!("{name} on {}: invalid subsequence", trace.name));
                assert!(
                    worst <= tolerance + 1e-9,
                    "{name} on {} at {tolerance} m: worst {worst}",
                    trace.name
                );
            }
        }
    }
}

#[test]
fn wgs84_codec_projection_round_trip_through_flash() {
    // Simulated fixes around the Brisbane field site, through the 12-byte
    // codec and back, then projected and compressed: the whole device path.
    let fixes: Vec<LocationPoint> = (0..2_000)
        .map(|i| {
            let t = i as f64 * 60.0;
            LocationPoint::new(
                -27.4698 + (i as f64 * 0.00001),
                153.0251 + ((i as f64) * 0.07).sin() * 0.0005,
                t,
            )
        })
        .collect();

    let mut flash = FlashStorage::new(fixes.len() * GPS_RECORD_BYTES + 64);
    for fix in &fixes {
        flash.append(*fix).expect("within budget");
    }
    let recovered = flash.read_all().expect("clean image");
    assert_eq!(recovered.len(), fixes.len());

    let mut projector = TraceProjector::new();
    let points: Vec<TimedPoint> = recovered
        .iter()
        .map(|f| projector.project(*f).expect("valid"))
        .collect();

    // Codec quantisation is ~1 cm; far below any tolerance in play.
    let mut check = TraceProjector::with_zone(projector.zone().unwrap());
    for (orig, rec) in fixes.iter().zip(points.iter()) {
        let orig_pt = check.project(*orig).unwrap();
        assert!(orig_pt.pos.distance(rec.pos) < 0.05);
    }

    let tolerance = 10.0;
    let mut fbqs = FastBqsCompressor::new(BqsConfig::new(tolerance).unwrap());
    let kept = compress_all(&mut fbqs, points.iter().copied());
    assert!(kept.len() < points.len() / 4, "kept {}", kept.len());
    let worst = verify_deviation_bound(
        &points,
        &kept,
        bqs::core::metrics::DeviationMetric::PointToLine,
    )
    .expect("valid subsequence");
    assert!(worst <= tolerance + 1e-9);
}

#[test]
fn store_ageing_preserves_composite_error_bound() {
    // Compress a raw trace at d1, age the store at d2: the aged trajectory
    // must stay within d1 + d2 of the ORIGINAL raw points.
    let trace = dataset::synthetic_dataset_sized(SEED, 4_000);
    let d1 = 8.0;
    let d2 = 24.0;

    let mut bqs = BqsCompressor::new(BqsConfig::new(d1).unwrap());
    let kept = compress_all(&mut bqs, trace.points.iter().copied());

    let store = TrajectoryStore::new(StoreConfig::default());
    store.insert_compressed(&kept, d1);
    store.age(d2);

    // Pull the aged key points back out via a full-extent query and check
    // the composite bound against the raw trace.
    let bb = trace.bounding_box().unwrap();
    let segments = store.query_rect(&bb);
    assert!(!segments.is_empty());

    // Reconstruct the aged key sequence from the segment chain.
    let mut aged_keys: Vec<TimedPoint> = segments.iter().map(|s| s.start).collect();
    aged_keys.push(segments.last().unwrap().end);
    aged_keys.sort_by(|a, b| a.t.partial_cmp(&b.t).unwrap());
    aged_keys.dedup_by(|a, b| a.t == b.t);

    let worst = verify_deviation_bound(
        &trace.points,
        &aged_keys,
        bqs::core::metrics::DeviationMetric::PointToLine,
    )
    .expect("aged keys remain an anchored subsequence of the raw trace");
    assert!(
        worst <= d1 + d2 + 1e-9,
        "composite deviation {worst} > {d1} + {d2}"
    );
}

#[test]
fn reconstruction_error_is_bounded_at_key_timestamps() {
    let trace = dataset::vehicle_dataset_sized(SEED, 4);
    let tolerance = 12.0;
    let mut bqs = BqsCompressor::new(BqsConfig::new(tolerance).unwrap());
    let kept = compress_all(&mut bqs, trace.points.iter().copied());

    let r = bqs::core::reconstruct::Reconstructor::uniform(kept.clone()).unwrap();
    // At every key timestamp the reconstruction is exact.
    for k in &kept {
        assert!(r.at(k.t).pos.distance(k.pos) < 1e-9);
    }
    // Between keys it lies on the chord, i.e. within the spatial tolerance
    // of the original *path shape* (not of the original point at that time
    // — the uniform progress model is a temporal approximation, as §IV
    // discusses).
    for w in kept.windows(2) {
        let mid_t = (w[0].t + w[1].t) / 2.0;
        let p = r.at(mid_t).pos;
        let on_chord = bqs::geo::point_to_segment_distance(p, w[0].pos, w[1].pos);
        assert!(on_chord < 1e-9);
    }
}

#[test]
fn fbqs_dominates_bqs_point_count_in_aggregate() {
    // The paper's "slightly more points" claim, checked across the three
    // datasets and two tolerances (sum, not per instance).
    let mut bqs_total = 0usize;
    let mut fbqs_total = 0usize;
    for trace in [
        dataset::bat_dataset_sized(SEED, 2, 1),
        dataset::vehicle_dataset_sized(SEED, 5),
        dataset::synthetic_dataset_sized(SEED, 5_000),
    ] {
        for tolerance in [5.0, 15.0] {
            let config = BqsConfig::new(tolerance).unwrap();
            let mut b = BqsCompressor::new(config);
            bqs_total += compress_all(&mut b, trace.points.iter().copied()).len();
            let mut f = FastBqsCompressor::new(config);
            fbqs_total += compress_all(&mut f, trace.points.iter().copied()).len();
        }
    }
    assert!(
        fbqs_total >= bqs_total,
        "aggregate FBQS {fbqs_total} < BQS {bqs_total}"
    );
    assert!(
        (fbqs_total as f64) < (bqs_total as f64) * 1.6,
        "FBQS overhead {fbqs_total}/{bqs_total} far above the paper's ~10%"
    );
}

#[test]
fn decision_stats_are_internally_consistent() {
    let trace = dataset::bat_dataset_sized(SEED, 2, 1);
    let mut bqs = BqsCompressor::new(BqsConfig::new(8.0).unwrap());
    let (kept, stats) = compress_all_with_stats(&mut bqs, trace.points.iter().copied());

    assert_eq!(stats.points as usize, trace.len());
    // Every push lands in exactly one decision bucket.
    assert_eq!(
        stats.trivial + stats.by_bounds + stats.full_scans + stats.warmup_scans,
        stats.points
    );
    assert_eq!(
        stats.aggressive_cuts, 0,
        "buffered BQS never cuts aggressively"
    );
    // Segments and kept points line up: first point + one per cut + final.
    assert_eq!(kept.len() as u64, stats.segments + 1);
    assert!(stats.pruning_power() <= 1.0 && stats.pruning_power() >= 0.0);
}
