//! The library's headline guarantee, property-tested end to end: every
//! error-bounded compressor's output is a subsequence of the input whose
//! per-segment deviation never exceeds the tolerance — for arbitrary
//! trajectories, tolerances, metrics and configurations.

use bqs::baselines::{BufferedDpCompressor, BufferedGreedyCompressor, DpCompressor};
use bqs::core::metrics::DeviationMetric;
use bqs::core::stream::{compress_all, StreamCompressor};
use bqs::core::{BoundsMode, BqsCompressor, BqsConfig, FastBqsCompressor, RotationMode};
use bqs::eval::verify_deviation_bound;
use bqs::geo::TimedPoint;
use proptest::prelude::*;

/// An arbitrary-ish trajectory: piecewise motion with jumps, stalls,
/// clusters and smooth runs, driven entirely by proptest-chosen parameters.
fn trajectory_strategy() -> impl Strategy<Value = Vec<TimedPoint>> {
    (
        2usize..250,
        proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0, 0.1f64..3.0), 1..8),
        0u64..1_000_000,
    )
        .prop_map(|(n, modes, seed)| {
            // Deterministic pseudo-random walk mixing the modes.
            let mut pts = Vec::with_capacity(n);
            let mut x = 0.0f64;
            let mut y = 0.0f64;
            let mut s = seed;
            let mut rnd = move || {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 33) as f64) / ((1u64 << 31) as f64) - 1.0
            };
            for i in 0..n {
                let mode = &modes[i % modes.len()];
                x += mode.0 * 40.0 + rnd() * mode.2 * 10.0;
                y += mode.1 * 40.0 + rnd() * mode.2 * 10.0;
                pts.push(TimedPoint::new(x, y, i as f64));
            }
            pts
        })
}

fn check<C: StreamCompressor>(
    mut compressor: C,
    points: &[TimedPoint],
    tolerance: f64,
    metric: DeviationMetric,
) {
    let kept = compress_all(&mut compressor, points.iter().copied());
    if points.is_empty() {
        assert!(kept.is_empty());
        return;
    }
    let worst = verify_deviation_bound(points, &kept, metric).unwrap_or_else(|| {
        panic!(
            "{}: output is not a valid anchored subsequence ({} of {} points)",
            compressor.name(),
            kept.len(),
            points.len()
        )
    });
    assert!(
        worst <= tolerance + 1e-9,
        "{}: worst deviation {} > tolerance {}",
        compressor.name(),
        worst,
        tolerance
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bqs_respects_error_bound(points in trajectory_strategy(), tol in 0.5f64..60.0) {
        let config = BqsConfig::new(tol).unwrap();
        check(BqsCompressor::new(config), &points, tol, DeviationMetric::PointToLine);
    }

    #[test]
    fn fbqs_respects_error_bound(points in trajectory_strategy(), tol in 0.5f64..60.0) {
        let config = BqsConfig::new(tol).unwrap();
        check(FastBqsCompressor::new(config), &points, tol, DeviationMetric::PointToLine);
    }

    #[test]
    fn bqs_without_rotation_respects_error_bound(
        points in trajectory_strategy(),
        tol in 0.5f64..60.0,
    ) {
        let config = BqsConfig::new(tol).unwrap().with_rotation(RotationMode::Disabled);
        check(BqsCompressor::new(config), &points, tol, DeviationMetric::PointToLine);
    }

    #[test]
    fn fbqs_with_segment_metric_respects_error_bound(
        points in trajectory_strategy(),
        tol in 0.5f64..60.0,
    ) {
        let config = BqsConfig::new(tol)
            .unwrap()
            .with_metric(DeviationMetric::PointToSegment);
        check(FastBqsCompressor::new(config), &points, tol, DeviationMetric::PointToSegment);
    }

    #[test]
    fn fbqs_with_coarse_bounds_respects_error_bound(
        points in trajectory_strategy(),
        tol in 0.5f64..60.0,
    ) {
        let config = BqsConfig::new(tol)
            .unwrap()
            .with_bounds_mode(BoundsMode::CoarseCorners);
        check(FastBqsCompressor::new(config), &points, tol, DeviationMetric::PointToLine);
    }

    #[test]
    fn baselines_respect_error_bound(
        points in trajectory_strategy(),
        tol in 0.5f64..60.0,
        buffer in 2usize..64,
    ) {
        check(DpCompressor::new(tol), &points, tol, DeviationMetric::PointToLine);
        check(
            BufferedDpCompressor::new(tol, buffer.max(2)),
            &points,
            tol,
            DeviationMetric::PointToLine,
        );
        check(
            BufferedGreedyCompressor::new(tol, buffer.max(1)),
            &points,
            tol,
            DeviationMetric::PointToLine,
        );
    }

    /// FBQS pays for its O(1) guarantee with extra points — *statistically*.
    /// Per instance the two segmentations diverge after the first
    /// inconclusive decision and either can come out ahead, so the sound
    /// per-case property is a sanity envelope, not strict dominance (the
    /// aggregate dominance is asserted on the paper datasets in
    /// tests/pipeline.rs and unit tests).
    #[test]
    fn fbqs_point_count_stays_in_the_same_league_as_bqs(
        points in trajectory_strategy(),
        tol in 0.5f64..60.0,
    ) {
        let config = BqsConfig::new(tol).unwrap();
        let kept_bqs = {
            let mut c = BqsCompressor::new(config);
            compress_all(&mut c, points.iter().copied()).len()
        };
        let kept_fbqs = {
            let mut c = FastBqsCompressor::new(config);
            compress_all(&mut c, points.iter().copied()).len()
        };
        prop_assert!(
            kept_fbqs + 4 >= kept_bqs && kept_fbqs <= kept_bqs * 4 + 8,
            "FBQS {kept_fbqs} vs BQS {kept_bqs} out of envelope"
        );
    }

    /// Idempotence: compressing an already-compressed trajectory at the
    /// same tolerance must not lose its anchors.
    #[test]
    fn compression_output_remains_valid_input(
        points in trajectory_strategy(),
        tol in 1.0f64..40.0,
    ) {
        let config = BqsConfig::new(tol).unwrap();
        let kept = {
            let mut c = BqsCompressor::new(config);
            compress_all(&mut c, points.iter().copied())
        };
        let rekept = {
            let mut c = BqsCompressor::new(config);
            compress_all(&mut c, kept.iter().copied())
        };
        if !kept.is_empty() {
            prop_assert_eq!(rekept.first(), kept.first());
            prop_assert_eq!(rekept.last(), kept.last());
            prop_assert!(rekept.len() <= kept.len());
        }
    }
}

/// Degenerate streams that historically break streaming compressors.
#[test]
fn degenerate_streams() {
    let configs = [
        BqsConfig::new(5.0).unwrap(),
        BqsConfig::new(5.0)
            .unwrap()
            .with_rotation(RotationMode::Disabled),
    ];
    for config in configs {
        for points in [
            vec![],
            vec![TimedPoint::new(1.0, 2.0, 0.0)],
            (0..50)
                .map(|i| TimedPoint::new(1.0, 2.0, i as f64))
                .collect::<Vec<_>>(), // frozen in place
            (0..50)
                .map(|i| TimedPoint::new(0.0, 0.0, i as f64))
                .collect::<Vec<_>>(),
            // Alternating between two far points (worst-case zigzag).
            (0..60)
                .map(|i| TimedPoint::new(if i % 2 == 0 { 0.0 } else { 100.0 }, 0.0, i as f64))
                .collect(),
            // A single giant jump.
            vec![
                TimedPoint::new(0.0, 0.0, 0.0),
                TimedPoint::new(1e7, -1e7, 1.0),
            ],
        ] {
            check(
                BqsCompressor::new(config),
                &points,
                5.0,
                DeviationMetric::PointToLine,
            );
            check(
                FastBqsCompressor::new(config),
                &points,
                5.0,
                DeviationMetric::PointToLine,
            );
        }
    }
}
