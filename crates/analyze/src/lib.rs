//! `bqs-analyze` — project-native static analysis for the workspace.
//!
//! Two halves, one gate (`bqs analyze --deny` in CI):
//!
//! 1. **Source lints** ([`lints`]) over a hand-rolled lexer
//!    ([`lexer`]): concurrency-contract and house-style rules that
//!    `clippy` cannot express because they encode *this* project's
//!    written invariants (ordering justifications, SAFETY comments,
//!    typed-error discipline, the obs timing helpers).
//! 2. **Consistency checks** ([`consistency`]): the normative
//!    documents — `docs/protocol.md`, `docs/observability.md`, the
//!    README command surface, the pinned bench baseline — must agree
//!    with the code they describe, exactly.
//!
//! The crate is std-only and dependency-free: it runs in the offline
//! CI image and anywhere `bqs` runs. See `docs/static-analysis.md`
//! for the lint catalog and the suppression grammar.

pub mod consistency;
pub mod lexer;
pub mod lints;

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// One analysis finding, displayed as `file:line lint-id message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line, or 0 when the finding is about a file as a whole.
    pub line: usize,
    /// The lint / check id this finding belongs to.
    pub lint: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    pub(crate) fn new(
        file: &str,
        line: usize,
        lint: &'static str,
        message: impl Into<String>,
    ) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            lint,
            message: message.into(),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} {} {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Every known lint/check id, for `--lint` validation and `--help`.
pub fn all_ids() -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = lints::SOURCE_LINT_IDS.to_vec();
    ids.extend_from_slice(consistency::CONSISTENCY_IDS);
    ids
}

/// An analysis run: the workspace root plus an optional id filter.
pub struct Config {
    /// Workspace root (the directory holding `Cargo.toml`, `crates/`,
    /// `docs/`, `README.md`).
    pub root: PathBuf,
    /// When non-empty, only these lint/check ids run.
    pub only: Vec<String>,
}

/// The outcome of [`run`].
pub struct Report {
    /// All findings, sorted by (file, line, id).
    pub findings: Vec<Finding>,
    /// How many `.rs` files were scanned.
    pub files_scanned: usize,
}

/// Validates `config.only` against the known ids.
pub fn validate_filter(only: &[String]) -> Result<(), String> {
    let known = all_ids();
    for id in only {
        if !known.contains(&id.as_str()) {
            return Err(format!(
                "unknown lint id {:?}; known ids: {}",
                id,
                known.join(", ")
            ));
        }
    }
    Ok(())
}

/// Runs the full pass over the workspace at `config.root`.
pub fn run(config: &Config) -> io::Result<Report> {
    let enabled =
        |id: &str| -> bool { config.only.is_empty() || config.only.iter().any(|o| o == id) };

    let mut files = Vec::new();
    for top in ["crates", "shims", "src", "tests", "examples"] {
        let dir = config.root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();

    let mut findings = Vec::new();
    let mut metrics = consistency::MetricNames::default();
    let files_scanned = files.len();
    for path in &files {
        let rel = rel_path(&config.root, path);
        let bytes = std::fs::read(path)?;
        let text = String::from_utf8_lossy(&bytes);
        let scan = lexer::scan(&text);
        lints::lint_file(&rel, &scan, &enabled, &mut findings);
        // Metric registrations live in library code; `crates/obs` is
        // the registry itself (its docs and tests use dummy names).
        if enabled("metrics-doc")
            && rel.starts_with("crates/")
            && rel.contains("/src/")
            && !rel.starts_with("crates/obs/")
            && !rel.starts_with("crates/analyze/")
        {
            metrics.collect(&scan);
        }
    }

    if enabled("wire-protocol-doc") {
        consistency::check_wire_protocol(&config.root, &mut findings);
    }
    if enabled("metrics-doc") {
        consistency::check_metrics_doc(&config.root, &metrics, &mut findings);
    }
    if enabled("cli-usage-doc") {
        consistency::check_cli_usage(&config.root, &mut findings);
    }
    if enabled("bench-baseline") {
        consistency::check_bench_baseline(&config.root, &mut findings);
    }

    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.lint).cmp(&(b.file.as_str(), b.line, b.lint)));
    Ok(Report {
        findings,
        files_scanned,
    })
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    parts.join("/")
}
