//! Cross-artifact consistency: the normative documents must agree with
//! the code they describe, mechanically.
//!
//! | id | code side | doc side |
//! |---|---|---|
//! | `wire-protocol-doc` | `TAG_*` consts + `ErrorCode` arms in `crates/net/src/wire.rs` | opcode + error-code tables in `docs/protocol.md` |
//! | `metrics-doc` | names passed to `.counter/.gauge/.histogram(` | the catalog tables in `docs/observability.md` |
//! | `cli-usage-doc` | `--flag` literals + the `USAGE` const in `crates/cli/src/args.rs` | every `bqs …` mention in `README.md` |
//! | `bench-baseline` | workload `name:` literals in `crates/cli/src/bench.rs` | the highest-numbered `BENCH_<N>.json` at the root |
//!
//! Every comparison is set equality with a named direction, so a rename
//! on either side — code or spec — trips the gate.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::lexer::{scan, FileScan};
use crate::lints::test_region_lines;
use crate::Finding;

/// The consistency-check ids, as accepted by `--lint`.
pub const CONSISTENCY_IDS: &[&str] = &[
    "wire-protocol-doc",
    "metrics-doc",
    "cli-usage-doc",
    "bench-baseline",
];

/// Registered metric names harvested from the source walk, with the
/// `format!("…{k}…")` hole normalised to the catalog's `<k>`.
#[derive(Default)]
pub struct MetricNames {
    names: BTreeSet<String>,
}

impl MetricNames {
    /// Collects registrations from one scanned file. Only library code
    /// registers real metrics: `crates/obs` (its own API examples) and
    /// test regions are the caller's job to exclude.
    ///
    /// Two registration shapes are recognised: direct
    /// `….counter("x")` / `.gauge(` / `.histogram(` calls, and the
    /// local-closure idiom `let c = |name: &str| registry.counter(name);`
    /// followed by `c("x")` at the use sites.
    pub fn collect(&mut self, scan: &FileScan) {
        let in_test = test_region_lines(scan);
        // First pass: closure names bound to a registry method.
        let mut closures: BTreeSet<String> = BTreeSet::new();
        for (idx, line) in scan.lines.iter().enumerate() {
            if in_test[idx] {
                continue;
            }
            let code = line.code.trim_start();
            if !(registers(code) && code.starts_with("let ") && code.contains('|')) {
                continue;
            }
            let ident: String = code["let ".len()..]
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !ident.is_empty() {
                closures.insert(ident);
            }
        }
        for (idx, line) in scan.lines.iter().enumerate() {
            if in_test[idx] {
                continue;
            }
            let direct = registers(&line.code);
            let via_closure = closures.iter().any(|c| calls_closure(&line.code, c));
            if direct || via_closure {
                for name in &line.strings {
                    if looks_like_metric(name) {
                        self.names.insert(normalize_holes(name));
                    }
                }
            }
        }
    }
}

fn registers(code: &str) -> bool {
    code.contains(".counter(") || code.contains(".gauge(") || code.contains(".histogram(")
}

/// Does `code` call closure `name` with a string literal (which the
/// lexer leaves as `("")`), at a word boundary?
fn calls_closure(code: &str, name: &str) -> bool {
    let pat = format!("{name}(\"\"");
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(at) = code[from..].find(&pat) {
        let pos = from + at;
        from = pos + 1;
        let boundary = pos == 0 || {
            let b = bytes[pos - 1];
            !(b.is_ascii_alphanumeric() || b == b'_' || b == b'.')
        };
        if boundary {
            return true;
        }
    }
    false
}

fn looks_like_metric(name: &str) -> bool {
    !name.is_empty()
        && name.chars().all(|c| {
            c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '{' || c == '}'
        })
        && name.contains('_')
}

fn normalize_holes(name: &str) -> String {
    let mut out = String::new();
    let mut in_hole = false;
    for c in name.chars() {
        match c {
            '{' => {
                in_hole = true;
                out.push_str("<k>");
            }
            '}' => in_hole = false,
            _ if !in_hole => out.push(c),
            _ => {}
        }
    }
    out
}

/// One parsed markdown table row: 1-based line, trimmed cells.
struct Row {
    line: usize,
    cells: Vec<String>,
}

/// Parses every table in a markdown file as (header, rows).
fn md_tables(text: &str) -> Vec<(Vec<String>, Vec<Row>)> {
    let mut tables = Vec::new();
    let mut current: Option<(Vec<String>, Vec<Row>)> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('|') {
            let cells = split_cells(line);
            match current.as_mut() {
                None => current = Some((cells, Vec::new())),
                Some((_, rows)) => {
                    // Skip the |---|---| separator row.
                    if !cells
                        .iter()
                        .all(|c| c.chars().all(|ch| ch == '-' || ch == ':'))
                    {
                        rows.push(Row {
                            line: idx + 1,
                            cells,
                        });
                    }
                }
            }
        } else if let Some(t) = current.take() {
            tables.push(t);
        }
    }
    if let Some(t) = current.take() {
        tables.push(t);
    }
    tables
}

fn split_cells(line: &str) -> Vec<String> {
    // `\|` escapes a pipe inside a cell.
    let sentinel = '\u{1}';
    let unescaped: String = line.replace("\\|", &sentinel.to_string());
    let mut cells: Vec<String> = unescaped
        .split('|')
        .map(|c| c.replace(sentinel, "|").trim().to_string())
        .collect();
    // Leading/trailing empties from the outer pipes.
    if cells.first().is_some_and(String::is_empty) {
        cells.remove(0);
    }
    if cells.last().is_some_and(String::is_empty) {
        cells.pop();
    }
    cells
}

/// Backtick-delimited spans inside one table cell.
fn code_spans(cell: &str) -> Vec<String> {
    cell.split('`')
        .enumerate()
        .filter(|&(i, _)| i % 2 == 1)
        .map(|(_, s)| s.to_string())
        .collect()
}

fn read(root: &Path, rel: &str, id: &'static str, out: &mut Vec<Finding>) -> Option<String> {
    match std::fs::read_to_string(root.join(rel)) {
        Ok(text) => Some(text),
        Err(e) => {
            out.push(Finding::new(
                rel,
                0,
                id,
                format!("cannot read the checked artifact: {e}"),
            ));
            None
        }
    }
}

// ---------------------------------------------------------------------
// wire-protocol-doc
// ---------------------------------------------------------------------

/// `TAG_HELLO_OK` → `HelloOk`.
fn camel(tag: &str) -> String {
    tag.split('_')
        .map(|part| {
            let mut cs = part.chars();
            match cs.next() {
                Some(f) => f.to_ascii_uppercase().to_string() + &cs.as_str().to_ascii_lowercase(),
                None => String::new(),
            }
        })
        .collect()
}

fn parse_int(tok: &str) -> Option<u32> {
    let tok = tok.trim().trim_end_matches([',', ';']);
    if let Some(hex) = tok.strip_prefix("0x") {
        u32::from_str_radix(hex, 16).ok()
    } else {
        tok.parse().ok()
    }
}

/// Checks wire.rs opcodes + error codes against docs/protocol.md.
pub fn check_wire_protocol(root: &Path, out: &mut Vec<Finding>) {
    const ID: &str = "wire-protocol-doc";
    const WIRE: &str = "crates/net/src/wire.rs";
    const DOC: &str = "docs/protocol.md";
    let (Some(wire_text), Some(doc_text)) = (read(root, WIRE, ID, out), read(root, DOC, ID, out))
    else {
        return;
    };
    let wire = scan(&wire_text);

    // Code side: `const TAG_<X>: u8 = 0x…;` → (value, MessageName).
    let mut code_tags: BTreeMap<u32, (String, usize)> = BTreeMap::new();
    // Code side: `ErrorCode::<V> => <n>` / `<n> => Ok(ErrorCode::<V>)`
    // byte arms plus `ErrorCode::<V> => "<name>"` display arms.
    let mut variant_byte: BTreeMap<String, u32> = BTreeMap::new();
    let mut variant_name: BTreeMap<String, (String, usize)> = BTreeMap::new();
    for (idx, line) in wire.lines.iter().enumerate() {
        let code = line.code.as_str();
        if let Some(pos) = code.find("const TAG_") {
            let rest = &code[pos + "const ".len()..];
            let ident: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if let Some(eq) = rest.find('=') {
                if let Some(value) = parse_int(rest[eq + 1..].trim()) {
                    code_tags.insert(value, (camel(&ident["TAG_".len()..]), idx + 1));
                }
            }
        }
        if let Some((lhs, rhs)) = code.split_once("=>") {
            if let Some(pos) = rhs.find("ErrorCode::") {
                // `1 => Ok(ErrorCode::BadFrame),`
                if let Some(byte) = parse_int(lhs.trim()) {
                    let v: String = rhs[pos + "ErrorCode::".len()..]
                        .chars()
                        .take_while(|c| c.is_ascii_alphanumeric())
                        .collect();
                    variant_byte.insert(v, byte);
                }
            } else if let Some(pos) = lhs.find("ErrorCode::") {
                let v: String = lhs[pos + "ErrorCode::".len()..]
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric())
                    .collect();
                if let Some(byte) = parse_int(rhs.trim()) {
                    // `ErrorCode::BadFrame => 1,`
                    variant_byte.insert(v, byte);
                } else if rhs.contains("\"\"") && line.strings.len() == 1 {
                    // `ErrorCode::BadFrame => "bad-frame",`
                    variant_name.insert(v, (line.strings[0].clone(), idx + 1));
                }
            }
        }
    }
    let mut code_codes: BTreeMap<u32, (String, usize)> = BTreeMap::new();
    for (variant, byte) in &variant_byte {
        match variant_name.get(variant) {
            Some((name, lineno)) => {
                code_codes.insert(*byte, (name.clone(), *lineno));
            }
            None => out.push(Finding::new(
                WIRE,
                0,
                ID,
                format!("ErrorCode::{variant} has a byte arm but no Display name arm"),
            )),
        }
    }

    // Doc side.
    let mut doc_tags: BTreeMap<u32, (String, usize)> = BTreeMap::new();
    let mut doc_codes: BTreeMap<u32, (String, usize)> = BTreeMap::new();
    for (header, rows) in md_tables(&doc_text) {
        let h0 = header.first().map(String::as_str).unwrap_or("");
        let h1 = header.get(1).map(String::as_str).unwrap_or("");
        if h0 == "tag" && h1 == "message" {
            for row in rows {
                let (Some(tag_cell), Some(name_cell)) = (row.cells.first(), row.cells.get(1))
                else {
                    continue;
                };
                let (Some(tag), Some(name)) = (
                    code_spans(tag_cell).first().and_then(|s| parse_int(s)),
                    code_spans(name_cell).into_iter().next(),
                ) else {
                    out.push(Finding::new(
                        DOC,
                        row.line,
                        ID,
                        "malformed opcode row: expected | `0xNN` | `Name` | …",
                    ));
                    continue;
                };
                doc_tags.insert(tag, (name, row.line));
            }
        } else if h0 == "code" && h1 == "name" {
            for row in rows {
                let (Some(code_cell), Some(name_cell)) = (row.cells.first(), row.cells.get(1))
                else {
                    continue;
                };
                let (Some(byte), Some(name)) = (
                    parse_int(code_cell),
                    code_spans(name_cell).into_iter().next(),
                ) else {
                    out.push(Finding::new(
                        DOC,
                        row.line,
                        ID,
                        "malformed error-code row: expected | N | `name` | …",
                    ));
                    continue;
                };
                doc_codes.insert(byte, (name, row.line));
            }
        }
    }

    diff_maps(ID, WIRE, DOC, "opcode", &code_tags, &doc_tags, out);
    diff_maps(ID, WIRE, DOC, "error code", &code_codes, &doc_codes, out);
}

fn diff_maps(
    id: &'static str,
    code_file: &str,
    doc_file: &str,
    what: &str,
    code: &BTreeMap<u32, (String, usize)>,
    doc: &BTreeMap<u32, (String, usize)>,
    out: &mut Vec<Finding>,
) {
    for (value, (name, lineno)) in code {
        match doc.get(value) {
            None => out.push(Finding::new(
                code_file,
                *lineno,
                id,
                format!("{what} {value:#04x} `{name}` is in code but missing from {doc_file}"),
            )),
            Some((doc_name, doc_line)) if doc_name != name => out.push(Finding::new(
                doc_file,
                *doc_line,
                id,
                format!("{what} {value:#04x} is `{name}` in code but `{doc_name}` in the spec"),
            )),
            _ => {}
        }
    }
    for (value, (name, lineno)) in doc {
        if !code.contains_key(value) {
            out.push(Finding::new(
                doc_file,
                *lineno,
                id,
                format!("{what} {value:#04x} `{name}` is specified but absent from {code_file}"),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// metrics-doc
// ---------------------------------------------------------------------

/// Checks harvested registrations against the observability catalog.
pub fn check_metrics_doc(root: &Path, registered: &MetricNames, out: &mut Vec<Finding>) {
    const ID: &str = "metrics-doc";
    const DOC: &str = "docs/observability.md";
    let Some(doc_text) = read(root, DOC, ID, out) else {
        return;
    };
    let mut documented: BTreeMap<String, usize> = BTreeMap::new();
    for (header, rows) in md_tables(&doc_text) {
        if header.first().map(String::as_str) != Some("name") {
            continue;
        }
        for row in rows {
            let Some(cell) = row.cells.first() else {
                continue;
            };
            for span in code_spans(cell) {
                documented.insert(span, row.line);
            }
        }
    }
    for name in &registered.names {
        if !documented.contains_key(name) {
            out.push(Finding::new(
                DOC,
                0,
                ID,
                format!("metric `{name}` is registered in code but missing from the catalog"),
            ));
        }
    }
    for (name, lineno) in &documented {
        if !registered.names.contains(name) {
            out.push(Finding::new(
                DOC,
                *lineno,
                ID,
                format!("metric `{name}` is in the catalog but never registered in code"),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// cli-usage-doc
// ---------------------------------------------------------------------

fn flags_in(text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b'-'
            && bytes[i + 1] == b'-'
            && (i == 0 || !bytes[i - 1].is_ascii_alphanumeric() && bytes[i - 1] != b'-')
        {
            let start = i;
            i += 2;
            while i < bytes.len() && (bytes[i].is_ascii_lowercase() || bytes[i] == b'-') {
                i += 1;
            }
            if i > start + 2 {
                out.insert(text[start..i].trim_end_matches('-').to_string());
            }
        } else {
            i += 1;
        }
    }
    out
}

/// `bqs <cmd> …` mentions → per-command flag sets. `log` takes its
/// subcommand into the name (`log verify`). Word-boundary aware:
/// `fbqs trace.csv` is an algorithm argument, not a mention.
fn collect_mentions(text: &str, per: &mut BTreeMap<String, BTreeSet<String>>) {
    let bytes = text.as_bytes();
    let mut starts = Vec::new();
    let mut from = 0;
    while let Some(at) = text[from..].find("bqs ") {
        let pos = from + at;
        from = pos + "bqs ".len();
        let boundary = pos == 0
            || !(bytes[pos - 1].is_ascii_alphanumeric()
                || bytes[pos - 1] == b'_'
                || bytes[pos - 1] == b'-');
        if boundary {
            starts.push(pos);
        }
    }
    for (i, &pos) in starts.iter().enumerate() {
        let end = starts.get(i + 1).copied().unwrap_or(text.len());
        let chunk = &text[pos + "bqs ".len()..end];
        let mut words = chunk.split_whitespace();
        let Some(first) = words.next() else { continue };
        if first.starts_with('-') || !first.chars().all(|c| c.is_ascii_lowercase() || c == '-') {
            continue;
        }
        let mut name = first.to_string();
        if name == "log" {
            match words.next() {
                Some(sub) if sub.chars().all(|c| c.is_ascii_lowercase()) => {
                    name.push(' ');
                    name.push_str(sub);
                }
                _ => continue,
            }
        }
        per.entry(name).or_default().extend(flags_in(chunk));
    }
}

/// Checks the CLI surface: parser `--flag` literals ↔ `USAGE` ↔ README.
pub fn check_cli_usage(root: &Path, out: &mut Vec<Finding>) {
    const ID: &str = "cli-usage-doc";
    const ARGS: &str = "crates/cli/src/args.rs";
    const README: &str = "README.md";
    let (Some(args_text), Some(readme_text)) =
        (read(root, ARGS, ID, out), read(root, README, ID, out))
    else {
        return;
    };
    let args = scan(&args_text);

    // The USAGE const: the big multi-line literal on its declaring line.
    let mut usage: Option<&str> = None;
    for line in &args.lines {
        if line.code.contains("const USAGE") {
            usage = line.strings.first().map(String::as_str);
            break;
        }
    }
    let Some(usage) = usage else {
        out.push(Finding::new(ARGS, 0, ID, "no `const USAGE` string found"));
        return;
    };

    // USAGE side: commands + flags. A line starting `bqs ` opens a
    // command; indented lines continue it.
    let mut usage_cmds: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut current: Option<String> = None;
    for raw in usage.lines() {
        let line = raw.trim_start();
        if let Some(rest) = line.strip_prefix("bqs ") {
            let mut words = rest.split_whitespace();
            let Some(first) = words.next() else { continue };
            if !first.chars().all(|c| c.is_ascii_lowercase()) {
                continue; // the `bqs — <title>` banner line
            }
            let mut name = first.to_string();
            if name == "log" {
                if let Some(sub) = words.next() {
                    name.push(' ');
                    name.push_str(sub);
                }
            }
            usage_cmds
                .entry(name.clone())
                .or_default()
                .extend(flags_in(rest));
            current = Some(name);
        } else if let Some(name) = current.clone() {
            if raw.starts_with(' ') || raw.starts_with('\t') {
                usage_cmds.entry(name).or_default().extend(flags_in(line));
            } else {
                current = None;
            }
        }
    }

    // Parser side: every whole-literal `--flag` in args.rs.
    let mut parser_flags: BTreeSet<String> = BTreeSet::new();
    for line in &args.lines {
        for s in &line.strings {
            if s.starts_with("--")
                && s.len() > 2
                && s[2..].chars().all(|c| c.is_ascii_lowercase() || c == '-')
            {
                parser_flags.insert(s.clone());
            }
        }
    }
    let usage_flags: BTreeSet<String> = usage_cmds.values().flatten().cloned().collect();
    for flag in parser_flags.difference(&usage_flags) {
        out.push(Finding::new(
            ARGS,
            0,
            ID,
            format!("parser accepts `{flag}` but USAGE never mentions it"),
        ));
    }
    for flag in usage_flags.difference(&parser_flags) {
        out.push(Finding::new(
            ARGS,
            0,
            ID,
            format!("USAGE advertises `{flag}` but no parser literal matches it"),
        ));
    }

    // README side: every `bqs …` mention in code spans and fenced
    // blocks, unioned per command.
    let mut readme_cmds: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut fenced = false;
    let mut fenced_text = String::new();
    let mut inline_text = String::new();
    for raw in readme_text.lines() {
        if raw.trim_start().starts_with("```") {
            fenced = !fenced;
            continue;
        }
        if fenced {
            // Strip shell comments, keep line-continuations joined by
            // the whitespace split later.
            let body = raw.split(" #").next().unwrap_or(raw);
            fenced_text.push_str(body.trim_end_matches('\\'));
            fenced_text.push(' ');
            if !body.trim_end().ends_with('\\') {
                fenced_text.push('\n');
            }
        } else {
            inline_text.push_str(raw);
            inline_text.push('\n');
        }
    }
    for line in fenced_text.lines() {
        if line.trim_start().starts_with("bqs ") {
            collect_mentions(&format!("\n{}", line.trim_start()), &mut readme_cmds);
        }
    }
    // Inline spans may wrap across lines; split the prose on backticks.
    for (i, span) in inline_text.split('`').enumerate() {
        if i % 2 == 1 && span.starts_with("bqs ") {
            collect_mentions(span, &mut readme_cmds);
        }
    }

    for (name, flags) in &usage_cmds {
        let Some(readme_flags) = readme_cmds.get(name) else {
            out.push(Finding::new(
                README,
                0,
                ID,
                format!("`bqs {name}` is in USAGE but never shown in the README"),
            ));
            continue;
        };
        for flag in flags.difference(readme_flags) {
            out.push(Finding::new(
                README,
                0,
                ID,
                format!("`bqs {name}` flag `{flag}` is undocumented in the README"),
            ));
        }
        for flag in readme_flags.difference(flags) {
            out.push(Finding::new(
                README,
                0,
                ID,
                format!("README shows `bqs {name} {flag}` but USAGE does not have that flag"),
            ));
        }
    }
    for name in readme_cmds.keys() {
        if !usage_cmds.contains_key(name) && name != "help" {
            out.push(Finding::new(
                README,
                0,
                ID,
                format!("README mentions `bqs {name}` which is not a USAGE command"),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// bench-baseline
// ---------------------------------------------------------------------

/// Checks bench workload names against the pinned baseline keys.
pub fn check_bench_baseline(root: &Path, out: &mut Vec<Finding>) {
    const ID: &str = "bench-baseline";
    const BENCH: &str = "crates/cli/src/bench.rs";
    // The gate pins the newest committed baseline.
    let mut best: Option<(u64, String)> = None;
    if let Ok(entries) = std::fs::read_dir(root) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(n) = name
                .strip_prefix("BENCH_")
                .and_then(|r| r.strip_suffix(".json"))
                .and_then(|r| r.parse::<u64>().ok())
            {
                if best.as_ref().is_none_or(|(b, _)| n > *b) {
                    best = Some((n, name));
                }
            }
        }
    }
    let Some((_, baseline)) = best else {
        out.push(Finding::new(
            "BENCH_*.json",
            0,
            ID,
            "no BENCH_<N>.json baseline found at the workspace root",
        ));
        return;
    };
    let (Some(bench_text), Some(json_text)) =
        (read(root, BENCH, ID, out), read(root, &baseline, ID, out))
    else {
        return;
    };

    let bench = scan(&bench_text);
    let in_test = test_region_lines(&bench);
    // `name: "…"` struct-literal fields are definitely workload names;
    // the full non-test literal pool backs the reverse direction
    // (workloads whose name flows through a tuple or variable).
    let mut code_names: BTreeMap<String, usize> = BTreeMap::new();
    let mut all_literals: BTreeSet<String> = BTreeSet::new();
    for (idx, line) in bench.lines.iter().enumerate() {
        if in_test[idx] {
            continue;
        }
        all_literals.extend(line.strings.iter().cloned());
        let code = line.code.trim_start();
        if code.starts_with("name:") && !code.starts_with("name::") {
            if let Some(name) = line.strings.first() {
                code_names.insert(name.clone(), idx + 1);
            }
        }
    }

    // `"name": "<x>"` pairs in the baseline JSON.
    let mut json_names: BTreeSet<String> = BTreeSet::new();
    let mut rest = json_text.as_str();
    while let Some(at) = rest.find("\"name\"") {
        rest = &rest[at + "\"name\"".len()..];
        let after = rest.trim_start();
        if let Some(value) = after.strip_prefix(':') {
            let value = value.trim_start();
            if let Some(stripped) = value.strip_prefix('"') {
                if let Some(end) = stripped.find('"') {
                    json_names.insert(stripped[..end].to_string());
                }
            }
        }
    }

    for (name, lineno) in &code_names {
        if !json_names.contains(name) {
            out.push(Finding::new(
                BENCH,
                *lineno,
                ID,
                format!(
                    "workload `{name}` is produced by `bqs bench` but not pinned in {baseline}"
                ),
            ));
        }
    }
    for name in &json_names {
        if !code_names.contains_key(name) && !all_literals.contains(name) {
            out.push(Finding::new(
                &baseline,
                0,
                ID,
                format!("baseline pins workload `{name}` which `bqs bench` no longer produces"),
            ));
        }
    }
}
