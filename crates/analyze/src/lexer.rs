//! A small hand-rolled Rust lexer: splits a source file into per-line
//! *code*, *comment*, and *string-literal* views.
//!
//! The analyzer's lints must never fire on text inside a comment or a
//! string literal (a doc example containing `.unwrap()` is not a
//! violation), and the consistency checks need the *contents* of string
//! literals (metric names, wire tags, the CLI usage text). Rather than
//! pull in `syn` — the workspace builds offline, shims only — this
//! module walks the raw bytes with an explicit state machine covering
//! exactly the token classes that matter:
//!
//! - `//` line comments (incl. `///` and `//!` doc forms),
//! - `/* … */` block comments, **nested**, possibly spanning lines,
//! - `"…"` string literals with `\` escapes, possibly spanning lines,
//! - `r"…"` / `r#"…"#` (and `br…`) raw strings with up to 255 `#`s,
//! - `'c'` char literals (escapes included) vs `'a` lifetimes,
//! - everything else: code, passed through verbatim.
//!
//! The scanner is total: it never panics, and on malformed input (an
//! unterminated string, a stray quote) it degrades to treating the
//! remainder of the file as the open token, which is safe for a linter
//! (property-tested in `tests/lexer_prop.rs`).

/// One source line, split into its three views.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// The line's code with comments removed and every string/char
    /// literal replaced by an empty literal (`""` / `' '`). Token
    /// shapes like `.expect(` or `Ordering::Relaxed` survive intact.
    pub code: String,
    /// Text of every comment fragment touching this line, with the
    /// leading `//`, `///`, `//!`, `/*` markers stripped.
    pub comments: Vec<String>,
    /// Contents of every string literal that *starts* on this line
    /// (multi-line literals are recorded whole, at their start line).
    pub strings: Vec<String>,
}

/// A scanned file: `lines[i]` is source line `i + 1`.
#[derive(Debug, Default)]
pub struct FileScan {
    /// Per-line views, in order.
    pub lines: Vec<Line>,
}

impl FileScan {
    /// The comment texts relevant to a finding on 1-based line `n`:
    /// the line's own comments plus the preceding line's.
    pub fn comments_at(&self, n: usize) -> impl Iterator<Item = &str> {
        let above = n
            .checked_sub(2)
            .and_then(|i| self.lines.get(i))
            .map(|l| l.comments.as_slice())
            .unwrap_or(&[]);
        let own = self
            .lines
            .get(n - 1)
            .map(|l| l.comments.as_slice())
            .unwrap_or(&[]);
        above.iter().chain(own.iter()).map(String::as_str)
    }
}

/// Scans `source` into per-line code/comment/string views.
pub fn scan(source: &str) -> FileScan {
    let chars: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut line = Line::default();
    // Where a (possibly multi-line) string literal started, plus its
    // accumulated content.
    let mut open_string: Option<(usize, String)> = None;
    let mut comment = String::new();

    let mut i = 0usize;
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str { raw_hashes: Option<u8> },
        CharLit,
    }
    let mut state = State::Code;

    macro_rules! end_line {
        () => {{
            lines.push(std::mem::take(&mut line));
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            match state {
                State::LineComment => {
                    line.comments.push(std::mem::take(&mut comment));
                    state = State::Code;
                }
                State::BlockComment(_) => {
                    line.comments.push(std::mem::take(&mut comment));
                }
                State::Str { .. } => {
                    if let Some((_, content)) = open_string.as_mut() {
                        content.push('\n');
                    }
                }
                State::CharLit => {
                    // A newline inside a char literal is malformed
                    // source; recover as code.
                    state = State::Code;
                }
                State::Code => {}
            }
            end_line!();
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    i += 2;
                    // Strip any further `/`s (doc comments) and a `!`.
                    while matches!(chars.get(i), Some('/') | Some('!')) {
                        i += 1;
                    }
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    // Possibly prefixed by b — handled when we saw the
                    // ident char; a bare quote is a plain string.
                    line.code.push_str("\"\"");
                    open_string = Some((lines.len(), String::new()));
                    state = State::Str { raw_hashes: None };
                    i += 1;
                } else if (c == 'r' || c == 'b') && !prev_is_ident(&chars, i) {
                    // Raw / byte string prefixes: r" r#" br" b" br#" …
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u8;
                    while chars.get(j) == Some(&'#') && hashes < u8::MAX {
                        hashes += 1;
                        j += 1;
                    }
                    let raw = j > i + 1 || c == 'r';
                    if chars.get(j) == Some(&'"') && (raw || c == 'b') {
                        line.code.push_str("\"\"");
                        open_string = Some((lines.len(), String::new()));
                        state = State::Str {
                            raw_hashes: raw.then_some(hashes),
                        };
                        i = j + 1;
                    } else if c == 'b' && chars.get(i + 1) == Some(&'\'') {
                        line.code.push_str("' '");
                        state = State::CharLit;
                        i += 2;
                    } else {
                        line.code.push(c);
                        i += 1;
                    }
                } else if c == '\'' && !prev_is_ident(&chars, i) {
                    // Char literal vs lifetime: an escape or a closing
                    // quote two ahead means a literal; else `'ident`.
                    let next = chars.get(i + 1);
                    let is_char =
                        next == Some(&'\\') || (next.is_some() && chars.get(i + 2) == Some(&'\''));
                    if is_char {
                        line.code.push_str("' '");
                        state = State::CharLit;
                        i += 1;
                    } else {
                        line.code.push(c);
                        i += 1;
                    }
                } else {
                    line.code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    if depth == 1 {
                        line.comments.push(std::mem::take(&mut comment));
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                        comment.push_str("*/");
                    }
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    comment.push_str("/*");
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str { raw_hashes: None } => {
                if c == '\\' {
                    if let Some((_, content)) = open_string.as_mut() {
                        content.push('\\');
                        if let Some(&n) = chars.get(i + 1) {
                            if n != '\n' {
                                content.push(n);
                            }
                        }
                    }
                    // A backslash-newline continuation: leave the
                    // newline for the main loop so line counting stays
                    // true to the source.
                    if chars.get(i + 1) == Some(&'\n') {
                        i += 1;
                    } else {
                        i += 2;
                    }
                } else if c == '"' {
                    close_string(&mut open_string, &mut lines, &mut line);
                    state = State::Code;
                    i += 1;
                } else {
                    if let Some((_, content)) = open_string.as_mut() {
                        content.push(c);
                    }
                    i += 1;
                }
            }
            State::Str {
                raw_hashes: Some(hashes),
            } => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    close_string(&mut open_string, &mut lines, &mut line);
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    if let Some((_, content)) = open_string.as_mut() {
                        content.push(c);
                    }
                    i += 1;
                }
            }
            State::CharLit => {
                if c == '\\' {
                    // Never skip a newline: the main loop must see it so
                    // line counting stays true even for malformed `'\`.
                    if chars.get(i + 1) == Some(&'\n') {
                        i += 1;
                    } else {
                        i += 2;
                    }
                } else if c == '\'' {
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    // Flush whatever is still open at EOF.
    match state {
        State::LineComment | State::BlockComment(_) => {
            line.comments.push(comment);
        }
        State::Str { .. } => close_string(&mut open_string, &mut lines, &mut line),
        _ => {}
    }
    lines.push(line);
    FileScan { lines }
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i.checked_sub(1)
        .and_then(|p| chars.get(p))
        .is_some_and(|c| c.is_alphanumeric() || *c == '_')
}

fn closes_raw(chars: &[char], i: usize, hashes: u8) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

fn close_string(open: &mut Option<(usize, String)>, lines: &mut [Line], line: &mut Line) {
    if let Some((start, content)) = open.take() {
        if start == lines.len() {
            line.strings.push(content);
        } else if let Some(l) = lines.get_mut(start) {
            l.strings.push(content);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_stripped_from_code() {
        let s = scan("let x = \"a // not a comment\"; // real\n");
        assert_eq!(s.lines[0].code, "let x = \"\"; ");
        assert_eq!(s.lines[0].comments, vec![" real"]);
        assert_eq!(s.lines[0].strings, vec!["a // not a comment"]);
    }

    #[test]
    fn nested_block_comments() {
        let s = scan("a /* x /* y */ z */ b\n");
        assert_eq!(s.lines[0].code, "a  b");
    }

    #[test]
    fn raw_strings_swallow_quotes_and_escapes() {
        let s = scan("let u = r#\"say \"hi\" \\\"#; code()\n");
        assert_eq!(s.lines[0].code, "let u = \"\"; code()");
        assert_eq!(s.lines[0].strings, vec!["say \"hi\" \\"]);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let s = scan("fn f<'a>(x: &'a str) { let c = '\"'; let d = '\\''; }\n");
        assert!(s.lines[0].code.contains("<'a>"));
        assert!(!s.lines[0].code.contains('"'));
    }

    #[test]
    fn multi_line_string_lands_on_start_line() {
        let s = scan("const U: &str = \"line one\nline two\";\nnext();\n");
        assert_eq!(s.lines[0].strings, vec!["line one\nline two"]);
        assert!(s.lines[1].strings.is_empty());
        assert_eq!(s.lines[2].code, "next();");
    }

    #[test]
    fn doc_comment_examples_are_comments() {
        let s = scan("/// let x = v.unwrap();\nfn real() {}\n");
        assert_eq!(s.lines[0].code, "");
        assert!(s.lines[0].comments[0].contains(".unwrap()"));
    }

    #[test]
    fn line_count_matches_source() {
        for src in [
            "", "a", "a\n", "a\nb", "/*\n\n*/", "\"\n\n\"", "'\\\n'x", "b'\\\ny",
        ] {
            assert_eq!(scan(src).lines.len(), src.split('\n').count());
        }
    }

    #[test]
    fn backslash_newline_continuation_keeps_line_numbers() {
        let src = "let s = \"one \\\n    two\";\nafter();\n";
        let s = scan(src);
        assert_eq!(s.lines.len(), src.split('\n').count());
        assert_eq!(s.lines[2].code, "after();");
        assert_eq!(s.lines[0].strings, vec!["one \\\n    two"]);
    }
}
