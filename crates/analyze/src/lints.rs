//! Source lints over the lexer's per-line views.
//!
//! Every lint here enforces a *written-down* contract:
//!
//! | id | contract |
//! |---|---|
//! | `atomics-ordering` | every atomic `Ordering::…` site carries an `// ordering:` justification (except `Relaxed` inside `crates/obs`, whose relaxed-counter contract is documented in `docs/observability.md`) |
//! | `safety-comment` | every `unsafe` block/fn/impl carries a `// SAFETY:` comment |
//! | `no-unwrap-in-lib` | `.unwrap()` / `.expect(` / `panic!` are forbidden in non-test library code — typed errors are the house style |
//! | `no-print-in-lib` | `println!` / `eprintln!` (and the non-`ln` forms) only in `crates/cli` and binaries |
//! | `now-in-hot-path` | direct `Instant::now` / `SystemTime::now` reads are forbidden in the designated hot modules — clock reads go through the `bqs-obs` timing helpers |
//! | `bad-suppression` | a suppression marker must name a known lint and give a reason |
//!
//! Suppression grammar (same line or the line directly above): the
//! crate name, a colon, then `allow(<lint-id>) — <non-empty reason>`;
//! the exact form is spelled out in `docs/static-analysis.md`. (It is
//! paraphrased here so this very doc comment does not parse as a
//! marker.)

use crate::lexer::FileScan;
use crate::Finding;

/// The source-lint ids, as accepted by `--lint`.
pub const SOURCE_LINT_IDS: &[&str] = &[
    "atomics-ordering",
    "safety-comment",
    "no-unwrap-in-lib",
    "no-print-in-lib",
    "now-in-hot-path",
    "bad-suppression",
];

/// Modules on the ingest/serve hot path: per-event clock reads must go
/// through the `bqs-obs` helpers (`bqs_obs::now`, `elapsed_us`,
/// `Histogram::record_elapsed`) so their cost stays auditable in one
/// place.
pub const HOT_MODULES: &[&str] = &[
    "crates/net/src/server.rs",
    "crates/core/src/fleet/parallel.rs",
    "crates/core/src/fleet/reorder.rs",
    "crates/tlog/src/spill.rs",
    "crates/tlog/src/engine.rs",
];

const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// What the path of a file implies for lint scope.
struct Scope {
    /// Vendored dependency stand-ins under `shims/`: concurrency lints
    /// only — they mirror external crates' panicking/printing APIs.
    shim: bool,
    /// Integration tests, examples, or the bench crate: exempt from
    /// the style lints, covered by the concurrency lints.
    test_like: bool,
    /// `crates/cli` (and binaries): the one place allowed to print.
    cli: bool,
    /// `crates/obs/src`: relaxed counters are its documented contract.
    obs: bool,
    /// On the [`HOT_MODULES`] list.
    hot: bool,
}

impl Scope {
    fn of(rel: &str) -> Scope {
        Scope {
            shim: rel.starts_with("shims/"),
            test_like: rel.contains("/tests/")
                || rel.starts_with("tests/")
                || rel.contains("/benches/")
                || rel.contains("/examples/")
                || rel.starts_with("examples/")
                || rel.starts_with("crates/bench/"),
            cli: rel.starts_with("crates/cli/") || rel.ends_with("/main.rs"),
            obs: rel.starts_with("crates/obs/src/"),
            hot: HOT_MODULES.contains(&rel),
        }
    }
}

/// A parsed suppression marker.
struct Allow {
    id: String,
    has_reason: bool,
}

fn parse_allows(comment: &str) -> Vec<Allow> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(at) = rest.find("bqs-analyze:") {
        rest = &rest[at + "bqs-analyze:".len()..];
        let Some(open) = rest.find("allow(") else {
            // A marker without an allow form — flag it so typos
            // ("alow", "ignore") can't silently disable nothing.
            out.push(Allow {
                id: String::new(),
                has_reason: false,
            });
            continue;
        };
        rest = &rest[open + "allow(".len()..];
        let Some(close) = rest.find(')') else {
            out.push(Allow {
                id: String::new(),
                has_reason: false,
            });
            break;
        };
        let id = rest[..close].trim().to_string();
        rest = &rest[close + 1..];
        // The reason: whatever follows the closing paren after
        // separator punctuation (`—`, `-`, `:`), non-empty.
        let reason = rest
            .trim_start()
            .trim_start_matches(['—', '-', ':', ' '])
            .trim();
        let upto = reason.find("bqs-analyze:").unwrap_or(reason.len());
        out.push(Allow {
            id,
            has_reason: !reason[..upto].trim().is_empty(),
        });
    }
    out
}

/// Runs every source lint over one scanned file, appending findings.
pub fn lint_file(
    rel: &str,
    scan: &FileScan,
    enabled: &dyn Fn(&str) -> bool,
    out: &mut Vec<Finding>,
) {
    let scope = Scope::of(rel);

    // Per-line allow markers (and their own validity findings).
    let mut allows: Vec<Vec<String>> = vec![Vec::new(); scan.lines.len()];
    for (idx, line) in scan.lines.iter().enumerate() {
        for comment in &line.comments {
            for allow in parse_allows(comment) {
                let lineno = idx + 1;
                if allow.id.is_empty() {
                    if enabled("bad-suppression") {
                        out.push(Finding::new(
                            rel,
                            lineno,
                            "bad-suppression",
                            "malformed `bqs-analyze:` marker: expected `allow(<lint-id>) — reason`",
                        ));
                    }
                    continue;
                }
                if !SOURCE_LINT_IDS.contains(&allow.id.as_str()) {
                    if enabled("bad-suppression") {
                        out.push(Finding::new(
                            rel,
                            lineno,
                            "bad-suppression",
                            format!("unknown lint id in allow(): {:?}", allow.id),
                        ));
                    }
                    continue;
                }
                if !allow.has_reason {
                    if enabled("bad-suppression") {
                        out.push(Finding::new(
                            rel,
                            lineno,
                            "bad-suppression",
                            format!("allow({}) needs a reason after the closing paren", allow.id),
                        ));
                    }
                    continue;
                }
                allows[idx].push(allow.id);
            }
        }
    }
    let allowed = |lineno: usize, id: &str| -> bool {
        let own = allows.get(lineno - 1).map(Vec::as_slice).unwrap_or(&[]);
        let above = lineno
            .checked_sub(2)
            .and_then(|i| allows.get(i))
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        own.iter().chain(above).any(|a| a == id)
    };
    let justified = |lineno: usize, marker: &str| -> bool {
        scan.comments_at(lineno).any(|c| {
            c.trim_start()
                .trim_start_matches(['*', ' '])
                .starts_with(marker)
        })
    };

    let test_region = test_region_lines(scan);

    for (idx, line) in scan.lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = line.code.as_str();
        // The concurrency lints (atomics-ordering, safety-comment)
        // apply everywhere — a test that gets an ordering wrong is
        // still wrong. The style lints skip test code.
        let in_test = test_region[idx] || scope.test_like;

        for (pos, ident) in idents(code) {
            let before = &code[..pos];
            let after = &code[pos + ident.len()..];
            match ident {
                ord if ATOMIC_ORDERINGS.contains(&ord) && before.ends_with("Ordering::") => {
                    if !enabled("atomics-ordering") {
                        continue;
                    }
                    if scope.obs && ord == "Relaxed" {
                        continue; // the documented relaxed-counter contract
                    }
                    if justified(lineno, "ordering:") || allowed(lineno, "atomics-ordering") {
                        continue;
                    }
                    out.push(Finding::new(
                        rel,
                        lineno,
                        "atomics-ordering",
                        format!("Ordering::{ord} without an `// ordering:` justification"),
                    ));
                }
                "unsafe" => {
                    if !enabled("safety-comment") {
                        continue;
                    }
                    if justified(lineno, "SAFETY:") || allowed(lineno, "safety-comment") {
                        continue;
                    }
                    out.push(Finding::new(
                        rel,
                        lineno,
                        "safety-comment",
                        "`unsafe` without a `// SAFETY:` comment",
                    ));
                }
                "unwrap" | "expect"
                    if before.trim_end().ends_with('.')
                        && (ident == "expect" || after.trim_start().starts_with("()")) =>
                {
                    if ident == "expect" && !after.trim_start().starts_with('(') {
                        continue; // a field or path named `expect`
                    }
                    if !enabled("no-unwrap-in-lib") || in_test || scope.shim {
                        continue;
                    }
                    if allowed(lineno, "no-unwrap-in-lib") {
                        continue;
                    }
                    out.push(Finding::new(
                        rel,
                        lineno,
                        "no-unwrap-in-lib",
                        format!(
                            ".{ident}( in library code — return a typed error \
                             (CliError/TlogError/WireError style) or justify with allow()"
                        ),
                    ));
                }
                "panic" if after.trim_start().starts_with('!') => {
                    if !enabled("no-unwrap-in-lib") || in_test || scope.shim {
                        continue;
                    }
                    if allowed(lineno, "no-unwrap-in-lib") {
                        continue;
                    }
                    out.push(Finding::new(
                        rel,
                        lineno,
                        "no-unwrap-in-lib",
                        "panic! in library code — return a typed error or justify with allow()",
                    ));
                }
                "println" | "eprintln" | "print" | "eprint"
                    if after.trim_start().starts_with('!') =>
                {
                    if !enabled("no-print-in-lib") || in_test || scope.shim || scope.cli {
                        continue;
                    }
                    if allowed(lineno, "no-print-in-lib") {
                        continue;
                    }
                    out.push(Finding::new(
                        rel,
                        lineno,
                        "no-print-in-lib",
                        format!(
                            "{ident}! outside crates/cli — return strings, print at the binary"
                        ),
                    ));
                }
                "now" if before.ends_with("Instant::") || before.ends_with("SystemTime::") => {
                    if !enabled("now-in-hot-path") || !scope.hot || test_region[idx] {
                        continue;
                    }
                    if allowed(lineno, "now-in-hot-path") {
                        continue;
                    }
                    out.push(Finding::new(
                        rel,
                        lineno,
                        "now-in-hot-path",
                        "direct clock read in a hot module — use bqs_obs::now()/elapsed_us()",
                    ));
                }
                _ => {}
            }
        }
    }
}

/// Per-line "inside a `#[cfg(test)]` item" flags, via brace-depth
/// tracking over the comment/string-stripped code view. Shared with
/// the consistency checks, which must not harvest names that test
/// code registers (dummy metrics, the bench test's workload list).
pub fn test_region_lines(scan: &FileScan) -> Vec<bool> {
    let mut out = vec![false; scan.lines.len()];
    let mut depth: i64 = 0;
    let mut test_depth: Option<i64> = None;
    let mut pending_cfg = false;
    for (idx, line) in scan.lines.iter().enumerate() {
        let code = line.code.as_str();
        if test_depth.is_none() && code.trim_start().starts_with("#[cfg(") && code.contains("test")
        {
            pending_cfg = true;
        }
        if pending_cfg && code.contains('{') {
            test_depth = Some(depth);
            pending_cfg = false;
        }
        depth += code.matches('{').count() as i64 - code.matches('}').count() as i64;
        if let Some(td) = test_depth {
            out[idx] = true;
            if depth <= td {
                test_depth = None;
            }
        } else {
            out[idx] = pending_cfg;
        }
    }
    out
}

/// Yields `(byte_offset, ident)` for every identifier-shaped token in
/// a comment/string-stripped code line.
fn idents(code: &str) -> impl Iterator<Item = (usize, &str)> {
    let bytes = code.as_bytes();
    let mut i = 0usize;
    std::iter::from_fn(move || {
        while i < bytes.len() {
            let c = bytes[i];
            if c.is_ascii_alphabetic() || c == b'_' {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                return Some((start, &code[start..i]));
            }
            if c.is_ascii_digit() {
                // Skip number literals (incl. suffixes) so `0x81u8`
                // does not read as an ident.
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                continue;
            }
            i += 1;
        }
        None
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        lint_file(rel, &scan(src), &|_| true, &mut out);
        out
    }

    #[test]
    fn unjustified_ordering_fires_and_comment_clears() {
        let bad = "fn f(a: &AtomicU64) { a.load(Ordering::SeqCst); }\n";
        assert_eq!(run("crates/x/src/lib.rs", bad).len(), 1);
        let good = "// ordering: release-acquire pairs with the writer\n\
                    fn f(a: &AtomicU64) { a.load(Ordering::Acquire); }\n";
        assert!(run("crates/x/src/lib.rs", good).is_empty());
        let inline = "fn f(a: &AtomicU64) { a.load(Ordering::Acquire); } // ordering: see writer\n";
        assert!(run("crates/x/src/lib.rs", inline).is_empty());
    }

    #[test]
    fn obs_relaxed_is_contract_but_seqcst_is_not() {
        let relaxed = "fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n";
        assert!(run("crates/obs/src/lib.rs", relaxed).is_empty());
        assert_eq!(run("crates/net/src/x.rs", relaxed).len(), 1);
        let seqcst = "fn f(a: &AtomicU64) { a.load(Ordering::SeqCst); }\n";
        assert_eq!(run("crates/obs/src/lib.rs", seqcst).len(), 1);
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        assert_eq!(
            run("shims/p/src/lib.rs", "let x = unsafe { f() };\n").len(),
            1
        );
        let good = "// SAFETY: fd is open for the lifetime of self\n\
                    let x = unsafe { f() };\n";
        assert!(run("shims/p/src/lib.rs", good).is_empty());
    }

    #[test]
    fn unwrap_scope_and_suppression() {
        let src = "fn f(v: Option<u8>) -> u8 { v.unwrap() }\n";
        assert_eq!(run("crates/x/src/lib.rs", src).len(), 1);
        assert!(run("crates/x/tests/t.rs", src).is_empty());
        assert!(run("crates/bench/src/lib.rs", src).is_empty());
        assert!(run("shims/rand/src/lib.rs", src).is_empty());
        let cfg = "#[cfg(test)]\nmod tests {\n fn f(v: Option<u8>) -> u8 { v.unwrap() }\n}\n";
        assert!(run("crates/x/src/lib.rs", cfg).is_empty());
        let sup = "// bqs-analyze: allow(no-unwrap-in-lib) — invariant: set by new()\n\
                   fn f(v: Option<u8>) -> u8 { v.unwrap() }\n";
        assert!(run("crates/x/src/lib.rs", sup).is_empty());
    }

    #[test]
    fn unwrap_or_and_doc_examples_do_not_fire() {
        assert!(run("crates/x/src/lib.rs", "let v = o.unwrap_or(3);\n").is_empty());
        assert!(run("crates/x/src/lib.rs", "/// let v = o.unwrap();\n").is_empty());
        assert!(run("crates/x/src/lib.rs", "let s = \"don't .unwrap() me\";\n").is_empty());
    }

    #[test]
    fn print_only_in_cli() {
        let src = "fn f() { println!(\"hi\"); }\n";
        assert_eq!(run("crates/eval/src/lib.rs", src).len(), 1);
        assert!(run("crates/cli/src/commands.rs", src).is_empty());
        assert_eq!(
            run("crates/eval/src/lib.rs", "fn f() { eprint!(\"x\"); }\n").len(),
            1
        );
    }

    #[test]
    fn clock_reads_only_flag_hot_modules() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(run("crates/net/src/server.rs", src).len(), 1);
        assert!(run("crates/net/src/client.rs", src).is_empty());
        let sup = "fn f() { let t = Instant::now(); } \
                   // bqs-analyze: allow(now-in-hot-path) — one-shot uptime anchor\n";
        assert!(run("crates/net/src/server.rs", sup).is_empty());
    }

    #[test]
    fn suppression_without_reason_is_a_finding() {
        let src =
            "// bqs-analyze: allow(no-unwrap-in-lib)\nfn f(v: Option<u8>) -> u8 { v.unwrap() }\n";
        let found = run("crates/x/src/lib.rs", src);
        assert_eq!(found.len(), 2, "{found:?}"); // bad-suppression + the unsuppressed site
        let unknown = "// bqs-analyze: allow(no-such-lint) — because\nfn f() {}\n";
        assert_eq!(run("crates/x/src/lib.rs", unknown).len(), 1);
    }
}
