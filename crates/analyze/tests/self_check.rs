//! The analyzer's own gate, as a test: `bqs analyze --deny` must pass
//! on this workspace. CI runs the same check through the CLI; keeping
//! it here too means `cargo test` alone catches a regression (a new
//! unjustified atomic, a doc table drifting from the code) without the
//! extra CI step.

use bqs_analyze::{run, Config};
use std::path::PathBuf;

#[test]
fn workspace_is_clean_under_every_lint() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap();
    assert!(
        root.join("Cargo.toml").exists(),
        "fixture assumption broken: {} is not the workspace root",
        root.display()
    );
    let report = run(&Config {
        root,
        only: Vec::new(),
    })
    .unwrap();
    let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        report.findings.is_empty(),
        "bqs analyze --deny would fail on the workspace:\n{}",
        rendered.join("\n")
    );
    // Sanity: the walk actually visited the workspace (an empty scan
    // would pass vacuously).
    assert!(
        report.files_scanned > 100,
        "only {} files scanned — walk roots look wrong",
        report.files_scanned
    );
}
