//! Per-lint fixtures: for every source lint, a positive case (the
//! violation fires, at the right line), a suppressed case (a justifying
//! comment or an explicit allow marker silences it), and a clean case
//! (idiomatic code passes untouched). Fixtures are tiny on-disk
//! workspaces, so these tests exercise the real `run()` walk — path
//! scoping included — not just `lint_file` in isolation.

use bqs_analyze::{run, Config};
use std::path::{Path, PathBuf};

fn fixture(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = std::env::temp_dir()
        .join("bqs-analyze-fixtures")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    for (rel, content) in files {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, content).unwrap();
    }
    root
}

/// Runs only the given lints and flattens findings to `file:line id`.
fn findings(root: &Path, only: &[&str]) -> Vec<String> {
    let report = run(&Config {
        root: root.to_path_buf(),
        only: only.iter().map(|s| s.to_string()).collect(),
    })
    .unwrap();
    report
        .findings
        .iter()
        .map(|f| format!("{}:{} {}", f.file, f.line, f.lint))
        .collect()
}

// --- atomics-ordering ---------------------------------------------------

#[test]
fn atomics_positive_suppressed_clean() {
    let root = fixture(
        "atomics",
        &[(
            "crates/foo/src/lib.rs",
            "use std::sync::atomic::{AtomicUsize, Ordering};\n\
             pub fn bad(a: &AtomicUsize) -> usize {\n\
             \x20   a.load(Ordering::Relaxed)\n\
             }\n\
             pub fn justified(a: &AtomicUsize) -> usize {\n\
             \x20   // ordering: relaxed counter, only atomicity matters\n\
             \x20   a.load(Ordering::Relaxed)\n\
             }\n\
             pub fn clean(a: &AtomicUsize) -> usize {\n\
             \x20   42\n\
             }\n",
        )],
    );
    assert_eq!(
        findings(&root, &["atomics-ordering"]),
        vec!["crates/foo/src/lib.rs:3 atomics-ordering"]
    );
}

#[test]
fn atomics_obs_relaxed_carveout() {
    // `crates/obs` may use Relaxed bare (documented contract) but any
    // other ordering still needs a justification even there.
    let root = fixture(
        "atomics-obs",
        &[(
            "crates/obs/src/lib.rs",
            "use std::sync::atomic::{AtomicU64, Ordering};\n\
             pub fn count(c: &AtomicU64) {\n\
             \x20   c.fetch_add(1, Ordering::Relaxed);\n\
             \x20   c.fetch_add(1, Ordering::SeqCst);\n\
             }\n",
        )],
    );
    assert_eq!(
        findings(&root, &["atomics-ordering"]),
        vec!["crates/obs/src/lib.rs:4 atomics-ordering"]
    );
}

#[test]
fn atomics_fire_even_in_test_code() {
    // Concurrency lints are not style lints: a wrong ordering in a
    // test is still wrong, so `#[cfg(test)]` gives no exemption.
    let root = fixture(
        "atomics-test",
        &[(
            "crates/foo/src/lib.rs",
            "#[cfg(test)]\n\
             mod tests {\n\
             \x20   use std::sync::atomic::{AtomicUsize, Ordering};\n\
             \x20   fn f(a: &AtomicUsize) -> usize { a.load(Ordering::Acquire) }\n\
             }\n",
        )],
    );
    assert_eq!(
        findings(&root, &["atomics-ordering"]),
        vec!["crates/foo/src/lib.rs:4 atomics-ordering"]
    );
}

// --- safety-comment -----------------------------------------------------

#[test]
fn safety_positive_suppressed_clean() {
    let root = fixture(
        "safety",
        &[(
            "crates/foo/src/lib.rs",
            "pub fn bad(p: *const u8) -> u8 {\n\
             \x20   unsafe { *p }\n\
             }\n\
             pub fn good(p: *const u8) -> u8 {\n\
             \x20   // SAFETY: caller guarantees p is valid for reads\n\
             \x20   unsafe { *p }\n\
             }\n\
             pub fn clean() -> u8 {\n\
             \x20   0\n\
             }\n",
        )],
    );
    assert_eq!(
        findings(&root, &["safety-comment"]),
        vec!["crates/foo/src/lib.rs:2 safety-comment"]
    );
}

#[test]
fn safety_in_doc_example_is_not_a_finding() {
    let root = fixture(
        "safety-doc",
        &[(
            "crates/foo/src/lib.rs",
            "/// ```\n\
             /// unsafe { core::hint::unreachable_unchecked() }\n\
             /// ```\n\
             pub fn documented() {}\n",
        )],
    );
    assert_eq!(findings(&root, &["safety-comment"]), Vec::<String>::new());
}

// --- no-unwrap-in-lib ---------------------------------------------------

#[test]
fn unwrap_positive_suppressed_clean() {
    let root = fixture(
        "unwrap",
        &[(
            "crates/foo/src/lib.rs",
            "pub fn bad(v: Option<u8>) -> u8 {\n\
             \x20   v.unwrap()\n\
             }\n\
             pub fn bad_expect(v: Option<u8>) -> u8 {\n\
             \x20   v.expect(\"present\")\n\
             }\n\
             pub fn bad_panic() {\n\
             \x20   panic!(\"boom\");\n\
             }\n\
             pub fn allowed(v: Option<u8>) -> u8 {\n\
             \x20   // bqs-analyze: allow(no-unwrap-in-lib) — invariant: set in new()\n\
             \x20   v.unwrap()\n\
             }\n\
             pub fn clean(v: Option<u8>) -> u8 {\n\
             \x20   v.unwrap_or(0)\n\
             }\n",
        )],
    );
    assert_eq!(
        findings(&root, &["no-unwrap-in-lib"]),
        vec![
            "crates/foo/src/lib.rs:2 no-unwrap-in-lib",
            "crates/foo/src/lib.rs:5 no-unwrap-in-lib",
            "crates/foo/src/lib.rs:8 no-unwrap-in-lib",
        ]
    );
}

#[test]
fn unwrap_exempt_in_tests_and_shims() {
    let root = fixture(
        "unwrap-exempt",
        &[
            (
                "crates/foo/src/lib.rs",
                "#[cfg(test)]\n\
                 mod tests {\n\
                 \x20   fn f(v: Option<u8>) -> u8 { v.unwrap() }\n\
                 }\n",
            ),
            (
                "crates/foo/tests/it.rs",
                "fn f(v: Option<u8>) -> u8 { v.unwrap() }\n",
            ),
            (
                "shims/dep/src/lib.rs",
                "pub fn f(v: Option<u8>) -> u8 { v.unwrap() }\n",
            ),
        ],
    );
    assert_eq!(findings(&root, &["no-unwrap-in-lib"]), Vec::<String>::new());
}

#[test]
fn unwrap_in_comment_or_string_is_not_a_finding() {
    let root = fixture(
        "unwrap-quoted",
        &[(
            "crates/foo/src/lib.rs",
            "/// Call `v.unwrap()` at your peril.\n\
             pub fn doc() -> &'static str {\n\
             \x20   \"then .unwrap() the result\"\n\
             }\n",
        )],
    );
    assert_eq!(findings(&root, &["no-unwrap-in-lib"]), Vec::<String>::new());
}

// --- no-print-in-lib ----------------------------------------------------

#[test]
fn print_positive_and_cli_exemption() {
    let root = fixture(
        "print",
        &[
            (
                "crates/foo/src/lib.rs",
                "pub fn bad() {\n\
                 \x20   println!(\"hello\");\n\
                 }\n",
            ),
            (
                "crates/cli/src/lib.rs",
                "pub fn fine() {\n\
                 \x20   println!(\"hello\");\n\
                 }\n",
            ),
            (
                "crates/foo/src/main.rs",
                "fn main() {\n\
                 \x20   eprintln!(\"binaries may print\");\n\
                 }\n",
            ),
        ],
    );
    assert_eq!(
        findings(&root, &["no-print-in-lib"]),
        vec!["crates/foo/src/lib.rs:2 no-print-in-lib"]
    );
}

// --- now-in-hot-path ----------------------------------------------------

#[test]
fn now_fires_only_in_hot_modules() {
    let body = "use std::time::Instant;\n\
                pub fn stamp() -> Instant {\n\
                \x20   Instant::now()\n\
                }\n";
    let root = fixture(
        "hot-now",
        &[
            ("crates/net/src/server.rs", body),
            ("crates/net/src/wire.rs", body),
        ],
    );
    assert_eq!(
        findings(&root, &["now-in-hot-path"]),
        vec!["crates/net/src/server.rs:3 now-in-hot-path"]
    );
}

#[test]
fn now_suppressed_by_allow_marker() {
    let root = fixture(
        "hot-now-allow",
        &[(
            "crates/tlog/src/spill.rs",
            "use std::time::Instant;\n\
             pub fn stamp() -> Instant {\n\
             \x20   // bqs-analyze: allow(now-in-hot-path) — cold setup path, runs once\n\
             \x20   Instant::now()\n\
             }\n",
        )],
    );
    assert_eq!(findings(&root, &["now-in-hot-path"]), Vec::<String>::new());
}

// --- bad-suppression ----------------------------------------------------

#[test]
fn bad_suppressions_are_themselves_findings() {
    let root = fixture(
        "bad-suppression",
        &[(
            "crates/foo/src/lib.rs",
            "// bqs-analyze: allow(not-a-lint) — whatever\n\
             pub fn a() {}\n\
             // bqs-analyze: allow(no-unwrap-in-lib)\n\
             pub fn b() {}\n\
             // bqs-analyze: please ignore this file\n\
             pub fn c() {}\n",
        )],
    );
    assert_eq!(
        findings(&root, &["bad-suppression"]),
        vec![
            "crates/foo/src/lib.rs:1 bad-suppression",
            "crates/foo/src/lib.rs:3 bad-suppression",
            "crates/foo/src/lib.rs:5 bad-suppression",
        ]
    );
}

#[test]
fn allow_with_reason_is_not_flagged() {
    let root = fixture(
        "good-suppression",
        &[(
            "crates/foo/src/lib.rs",
            "// bqs-analyze: allow(no-unwrap-in-lib) — invariant: non-empty by construction\n\
             pub fn a(v: Option<u8>) -> u8 {\n\
             \x20   v.unwrap_or(0)\n\
             }\n",
        )],
    );
    assert_eq!(
        findings(&root, &["bad-suppression", "no-unwrap-in-lib"]),
        Vec::<String>::new()
    );
}
