//! Lexer total-function properties: `scan` must never panic, must keep
//! the line count faithful to the source, and must never leak comment
//! or string text into the code view — for *arbitrary* input, not just
//! well-formed Rust. A linter that dies (or drifts by a line) on a
//! weird file is worse than no linter.

use bqs_analyze::lexer::scan;
use proptest::prelude::*;

/// Token fragments chosen to collide: quote openers/closers, comment
/// markers, escapes, raw-string hashes, newlines — the places where a
/// hand-rolled state machine typically goes wrong.
const FRAGMENTS: &[&str] = &[
    "\"",
    "'",
    "\\",
    "//",
    "/*",
    "*/",
    "r#\"",
    "\"#",
    "r\"",
    "b\"",
    "b'",
    "#",
    "\n",
    " ",
    "ident",
    "0x1f",
    "let x = 1;",
    ".unwrap()",
    "Ordering::Relaxed",
    "unsafe",
    "'a>",
    "/* nested /* deep */ */",
    "\"str with // inside\"",
    "'\\n'",
    "r##\"raw\"##",
    "é",
    "🦀",
];

fn compose(picks: &[usize]) -> String {
    picks
        .iter()
        .map(|&i| FRAGMENTS[i % FRAGMENTS.len()])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes (lossily decoded): no panic, and one `Line` per
    /// source line regardless of how malformed the input is.
    #[test]
    fn arbitrary_bytes_scan_totally(
        bytes in proptest::collection::vec(0u8..=255, 0..400),
    ) {
        let src = String::from_utf8_lossy(&bytes);
        let scanned = scan(&src);
        prop_assert_eq!(scanned.lines.len(), src.split('\n').count());
    }

    /// Adversarial compositions of quote/comment/escape fragments keep
    /// the per-line invariant too — these hit the state machine's
    /// transitions far more densely than uniform bytes do.
    #[test]
    fn fragment_compositions_keep_line_count(
        picks in proptest::collection::vec(0usize..64, 0..80),
    ) {
        let src = compose(&picks);
        let scanned = scan(&src);
        prop_assert_eq!(scanned.lines.len(), src.split('\n').count());
    }

    /// Text placed inside a line comment never reaches the code view,
    /// and code before the comment always does — whatever garbage
    /// surrounds them on previous lines.
    #[test]
    fn comments_never_leak_into_code(
        picks in proptest::collection::vec(0usize..64, 0..40),
    ) {
        // A prefix of arbitrary fragments, closed off so the probe line
        // starts in `Code` state: a newline ends line comments and char
        // literals; any open block comment or string stays open, which
        // is exactly what the assertion below tolerates (`scan` then
        // files the probe text as comment/string content, not code).
        let mut src = compose(&picks);
        src.push('\n');
        let probe_line = src.split('\n').count(); // 1-based line of the probe
        src.push_str("codetoken // SECRETCOMMENT\n");
        let scanned = scan(&src);
        let line = &scanned.lines[probe_line - 1];
        prop_assert!(!line.code.contains("SECRETCOMMENT"), "code: {:?}", line.code);
        // The probe's code half survives unless an earlier fragment
        // left a block comment or string literal open across the line.
        let swallowed = !line.code.contains("codetoken");
        if swallowed {
            let in_comment = line.comments.iter().any(|c| c.contains("codetoken"));
            let in_string = scanned
                .lines
                .iter()
                .any(|l| l.strings.iter().any(|s| s.contains("codetoken")));
            prop_assert!(in_comment || in_string, "codetoken vanished entirely");
        }
    }

    /// String contents never reach the code view; the literal is
    /// replaced by an empty `""` placeholder. The prefix here is built
    /// from *balanced* tokens only — an unbalanced prefix quote would
    /// make the probe's own `"` a closer, legitimately turning the
    /// probe text into code.
    #[test]
    fn strings_never_leak_into_code(
        picks in proptest::collection::vec(0usize..64, 0..40),
    ) {
        const BALANCED: &[&str] = &[
            "\"str\"", "'c'", "// line comment\n", "/* block */", "ident ",
            "\n", "r#\"raw\"#", "{}();", "0x1f ", "let x = 1; ",
        ];
        let mut src: String = picks
            .iter()
            .map(|&i| BALANCED[i % BALANCED.len()])
            .collect();
        src.push('\n');
        let probe_line = src.split('\n').count();
        src.push_str("let s = \"SECRETSTRING\";\n");
        let scanned = scan(&src);
        prop_assert!(scanned.lines.iter().all(|l| !l.code.contains("SECRETSTRING")));
        let line = &scanned.lines[probe_line - 1];
        prop_assert_eq!(&line.strings, &vec!["SECRETSTRING".to_string()]);
    }
}
