//! Parallel sweep execution.
//!
//! Tolerance sweeps are embarrassingly parallel: each `(algorithm,
//! tolerance)` cell is independent. A `std::thread::scope` fan-out keeps
//! the full-scale experiments (hundreds of thousands of points × 5
//! algorithms × 10 tolerances) tolerable on a laptop without any `'static`
//! gymnastics.

/// Maps `f` over `inputs` in parallel with at most `max_threads` workers,
/// preserving input order in the output.
pub fn parallel_map<T, R, F>(inputs: &[T], max_threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert!(max_threads >= 1, "need at least one worker");
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = max_threads.min(n);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, R)>();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                // ordering: relaxed work-stealing ticket — fetch_add is already atomic and no other memory hangs off the index
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // bqs-analyze: allow(no-unwrap-in-lib) — experiment harness fails fast on setup errors by design
                tx.send((i, f(&inputs[i]))).expect("collector alive");
            });
        }
    });
    drop(tx);

    let mut indexed: Vec<(usize, R)> = rx.into_iter().collect();
    indexed.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(indexed.len(), n);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// A sensible worker count for sweeps: the available parallelism capped at
/// 8 (experiments are memory-bandwidth-bound beyond that).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = parallel_map(&inputs, 4, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_and_empty_input() {
        let out = parallel_map(&[1, 2, 3], 1, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
        let empty: Vec<i32> = parallel_map(&[], 4, |x: &i32| *x);
        assert!(empty.is_empty());
    }

    #[test]
    fn more_workers_than_items() {
        let out = parallel_map(&[10], 16, |x| x - 1);
        assert_eq!(out, vec![9]);
    }

    #[test]
    fn heavy_closure_parallelises() {
        // Smoke test that results stay correct under real contention.
        let inputs: Vec<u64> = (0..32).collect();
        let out = parallel_map(&inputs, default_workers(), |x| {
            let mut acc = 0u64;
            for i in 0..50_000 {
                acc = acc.wrapping_add(i ^ x);
            }
            acc
        });
        let serial: Vec<u64> = inputs
            .iter()
            .map(|x| {
                let mut acc = 0u64;
                for i in 0..50_000 {
                    acc = acc.wrapping_add(i ^ x);
                }
                acc
            })
            .collect();
        assert_eq!(out, serial);
    }
}
