//! A uniform factory over every compressor in the workspace, so sweeps can
//! treat algorithms as data.

use bqs_baselines::{
    BufferedDpCompressor, BufferedGreedyCompressor, DeadReckoningCompressor, DpCompressor,
    MbrCompressor, SquishECompressor, StTraceCompressor,
};
use bqs_core::stream::{compress_into, DecisionStats, HasDecisionStats, StreamCompressor};
use bqs_core::{BqsCompressor, BqsConfig, FastBqsCompressor};
use bqs_geo::TimedPoint;
use std::time::{Duration, Instant};

/// The algorithms of the paper's comparative study plus the related-work
/// extensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Buffered Bounded Quadrant System (Algorithm 1).
    Bqs,
    /// Fast BQS (§V-E).
    Fbqs,
    /// Buffered Douglas–Peucker with the given window.
    Bdp {
        /// Window size in points.
        buffer: usize,
    },
    /// Buffered Greedy Deviation (sliding window) with the given window.
    Bgd {
        /// Window size in points.
        buffer: usize,
    },
    /// Offline Douglas–Peucker.
    Dp,
    /// Dead Reckoning.
    DeadReckoning,
    /// SQUISH-E(ε) (SED error bound; offline).
    SquishE,
    /// MBR-style bounding-rectangle runs with the given point budget.
    Mbr {
        /// Per-run point budget.
        max_run: usize,
    },
    /// STTrace with a fixed sample capacity (ignores the tolerance — its
    /// knob is memory, not error).
    StTrace {
        /// Sample capacity in points.
        capacity: usize,
    },
}

impl Algorithm {
    /// The paper's five Fig. 7 algorithms with the 32-point working set.
    pub const FIG7: [Algorithm; 5] = [
        Algorithm::Bqs,
        Algorithm::Fbqs,
        Algorithm::Bdp { buffer: 32 },
        Algorithm::Bgd { buffer: 32 },
        Algorithm::Dp,
    ];

    /// Display label matching the paper.
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::Bqs => "BQS",
            Algorithm::Fbqs => "FBQS",
            Algorithm::Bdp { .. } => "BDP",
            Algorithm::Bgd { .. } => "BGD",
            Algorithm::Dp => "DP",
            Algorithm::DeadReckoning => "DR",
            Algorithm::SquishE => "SQUISH-E",
            Algorithm::Mbr { .. } => "MBR",
            Algorithm::StTrace { .. } => "STTrace",
        }
    }

    /// Runs the algorithm over a point stream at the given tolerance.
    pub fn run(&self, points: &[TimedPoint], tolerance: f64) -> CompressionRun {
        match self {
            Algorithm::Bqs => {
                // bqs-analyze: allow(no-unwrap-in-lib) — tolerance is a positive constant validated at the call site
                let mut c = BqsCompressor::new(BqsConfig::new(tolerance).expect("tolerance"));
                timed_run(
                    *self,
                    points,
                    &mut c,
                    Some(&|c: &BqsCompressor| c.decision_stats()),
                )
            }
            Algorithm::Fbqs => {
                // bqs-analyze: allow(no-unwrap-in-lib) — tolerance is a positive constant validated at the call site
                let mut c = FastBqsCompressor::new(BqsConfig::new(tolerance).expect("tolerance"));
                timed_run(
                    *self,
                    points,
                    &mut c,
                    Some(&|c: &FastBqsCompressor| c.decision_stats()),
                )
            }
            Algorithm::Bdp { buffer } => {
                let mut c = BufferedDpCompressor::new(tolerance, *buffer);
                timed_run::<_, fn(&BufferedDpCompressor) -> DecisionStats>(
                    *self, points, &mut c, None,
                )
            }
            Algorithm::Bgd { buffer } => {
                let mut c = BufferedGreedyCompressor::new(tolerance, *buffer);
                timed_run::<_, fn(&BufferedGreedyCompressor) -> DecisionStats>(
                    *self, points, &mut c, None,
                )
            }
            Algorithm::Dp => {
                let mut c = DpCompressor::new(tolerance);
                timed_run::<_, fn(&DpCompressor) -> DecisionStats>(*self, points, &mut c, None)
            }
            Algorithm::DeadReckoning => {
                let mut c = DeadReckoningCompressor::new(tolerance);
                timed_run::<_, fn(&DeadReckoningCompressor) -> DecisionStats>(
                    *self, points, &mut c, None,
                )
            }
            Algorithm::SquishE => {
                let mut c = SquishECompressor::new(tolerance);
                timed_run::<_, fn(&SquishECompressor) -> DecisionStats>(*self, points, &mut c, None)
            }
            Algorithm::Mbr { max_run } => {
                let mut c = MbrCompressor::new(tolerance, *max_run);
                timed_run::<_, fn(&MbrCompressor) -> DecisionStats>(*self, points, &mut c, None)
            }
            Algorithm::StTrace { capacity } => {
                let mut c = StTraceCompressor::new(*capacity);
                timed_run::<_, fn(&StTraceCompressor) -> DecisionStats>(*self, points, &mut c, None)
            }
        }
    }
}

fn timed_run<C, F>(
    algorithm: Algorithm,
    points: &[TimedPoint],
    compressor: &mut C,
    stats_fn: Option<&F>,
) -> CompressionRun
where
    C: StreamCompressor,
    F: Fn(&C) -> DecisionStats,
{
    let start = Instant::now();
    // `compress_into` pre-sizes from the stream length, so a sweep does
    // not pay per-trace reallocation inside the timed region.
    let mut kept = Vec::new();
    compress_into(compressor, points.iter().copied(), &mut kept);
    let elapsed = start.elapsed();
    CompressionRun {
        algorithm,
        original: points.len(),
        kept_count: kept.len(),
        kept,
        elapsed,
        stats: stats_fn.map(|f| f(compressor)),
    }
}

/// Outcome of one compression run.
#[derive(Debug, Clone)]
pub struct CompressionRun {
    /// Which algorithm ran.
    pub algorithm: Algorithm,
    /// Input size.
    pub original: usize,
    /// Output size.
    pub kept_count: usize,
    /// The kept points.
    pub kept: Vec<TimedPoint>,
    /// Wall-clock duration of the full stream.
    pub elapsed: Duration,
    /// BQS decision statistics when the algorithm exposes them.
    pub stats: Option<DecisionStats>,
}

impl CompressionRun {
    /// The paper's compression rate (kept ÷ original; lower is better).
    pub fn compression_rate(&self) -> f64 {
        crate::metrics::compression_rate(self.kept_count, self.original)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(n: usize) -> Vec<TimedPoint> {
        (0..n)
            .map(|i| {
                let a = i as f64;
                TimedPoint::new(a * 8.0, (a * 0.25).sin() * 22.0, a)
            })
            .collect()
    }

    #[test]
    fn all_algorithms_run_and_bound_output_size() {
        let pts = wave(400);
        for algo in [
            Algorithm::Bqs,
            Algorithm::Fbqs,
            Algorithm::Bdp { buffer: 32 },
            Algorithm::Bgd { buffer: 32 },
            Algorithm::Dp,
            Algorithm::DeadReckoning,
            Algorithm::SquishE,
        ] {
            let run = algo.run(&pts, 6.0);
            assert_eq!(run.original, 400);
            assert!(run.kept_count >= 2, "{algo:?}");
            assert!(run.kept_count <= 400, "{algo:?}");
            assert_eq!(run.kept.len(), run.kept_count);
            assert!(run.compression_rate() <= 1.0);
        }
    }

    #[test]
    fn bqs_family_exposes_stats_others_do_not() {
        let pts = wave(100);
        assert!(Algorithm::Bqs.run(&pts, 5.0).stats.is_some());
        assert!(Algorithm::Fbqs.run(&pts, 5.0).stats.is_some());
        assert!(Algorithm::Dp.run(&pts, 5.0).stats.is_none());
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Algorithm::Bqs.label(), "BQS");
        assert_eq!(Algorithm::Bdp { buffer: 32 }.label(), "BDP");
        assert_eq!(Algorithm::FIG7.len(), 5);
    }

    #[test]
    fn bqs_beats_window_algorithms_on_compressible_input() {
        let pts: Vec<TimedPoint> = (0..500)
            .map(|i| TimedPoint::new(i as f64 * 10.0, 0.0, i as f64))
            .collect();
        let bqs = Algorithm::Bqs.run(&pts, 5.0).kept_count;
        let bdp = Algorithm::Bdp { buffer: 32 }.run(&pts, 5.0).kept_count;
        assert!(bqs < bdp, "BQS {bqs} !< BDP {bdp}");
    }
}
