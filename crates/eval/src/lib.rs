//! # bqs-eval — the evaluation harness
//!
//! One runner per table and figure of the paper's evaluation (§VI), each
//! producing the same rows/series the paper reports so the reproduction can
//! be compared shape-for-shape:
//!
//! | Runner | Paper artefact |
//! |---|---|
//! | [`experiments::fig3`] | Fig. 3 — bounds vs. actual deviation |
//! | [`experiments::fig6`] | Fig. 6a/6b — pruning power vs. tolerance |
//! | [`experiments::fig7`] | Fig. 7a/7b — compression rate, 5 algorithms |
//! | [`experiments::fig8`] | Fig. 8a/8b — synthetic data; FBQS vs. DR |
//! | [`experiments::table1`] | Table I — empirical complexity scaling |
//! | [`experiments::table2`] | Table II — estimated operational time |
//! | [`experiments::table3`] | Table III — run time vs. buffer size |
//! | [`experiments::ablation`] | extra — rotation / bounds-tier ablations |
//! | [`experiments::fleet`] | extra — multi-session FleetEngine scaling |
//! | [`experiments::storage`] | extra — tlog codec bytes/point vs fixed-width baselines |
//!
//! Supporting modules: [`metrics`] (compression rate, error verification),
//! [`algorithms`] (a uniform factory over every compressor in the
//! workspace), [`report`] (plain-text table rendering), [`runner`]
//! (crossbeam-parallel sweeps).

#![deny(missing_docs)]

pub mod algorithms;
pub mod experiments;
pub mod metrics;
pub mod report;
pub mod runner;

pub use algorithms::{Algorithm, CompressionRun};
pub use metrics::{compression_rate, kept_indices, verify_deviation_bound};
pub use report::TextTable;

/// How much data an experiment generates: `Quick` keeps unit tests and
/// examples snappy; `Full` matches the paper's dataset sizes (used by the
/// benches and the `paper_experiments` example).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced datasets (seconds end-to-end).
    Quick,
    /// Paper-scale datasets (~138k field samples + 30k synthetic).
    Full,
}
