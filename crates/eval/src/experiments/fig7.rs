//! Fig. 7 — compression rate of five error-bounded algorithms.
//!
//! BQS, FBQS, BDP, BGD (both with the 32-point working set matching the
//! FBQS significant-point budget) and offline DP, swept over each dataset's
//! tolerance range. The paper's shape: **BQS best**, FBQS between BQS and
//! DP, BDP worst, BGD between DP and BDP; bat data compresses better than
//! vehicle data at equal tolerance; at 20 m FBQS improves on BDP/BGD by
//! ~45–47 %.

use crate::algorithms::Algorithm;
use crate::report::TextTable;
use crate::runner::{default_workers, parallel_map};
use crate::Scale;
use bqs_sim::dataset::{BAT_TOLERANCES, VEHICLE_TOLERANCES};
use bqs_sim::Trace;

/// Compression rates of every algorithm at one tolerance.
#[derive(Debug, Clone)]
pub struct RatePoint {
    /// Error tolerance (metres).
    pub tolerance: f64,
    /// `(algorithm, compression rate)` pairs in [`Algorithm::FIG7`] order.
    pub rates: Vec<(Algorithm, f64)>,
}

impl RatePoint {
    /// Rate for a specific algorithm.
    pub fn rate_of(&self, label: &str) -> Option<f64> {
        self.rates
            .iter()
            .find(|(a, _)| a.label() == label)
            .map(|(_, r)| *r)
    }
}

/// One dataset's sweep (one subplot of Fig. 7).
#[derive(Debug, Clone)]
pub struct RateSweep {
    /// Dataset label.
    pub dataset: &'static str,
    /// Sweep points in tolerance order.
    pub points: Vec<RatePoint>,
}

impl RateSweep {
    /// Renders the sweep as a table with one algorithm per column.
    pub fn to_table(&self) -> TextTable {
        let mut header = vec!["tolerance(m)".to_string()];
        header.extend(Algorithm::FIG7.iter().map(|a| a.label().to_string()));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = TextTable::new(
            format!("Fig. 7 — compression rate ({})", self.dataset),
            &header_refs,
        );
        for p in &self.points {
            let mut row = vec![format!("{}", p.tolerance)];
            row.extend(p.rates.iter().map(|(_, r)| format!("{:.4}", r)));
            t.row(row);
        }
        t
    }
}

/// Both subplots.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// Fig. 7a: bat data.
    pub bat: RateSweep,
    /// Fig. 7b: vehicle data.
    pub vehicle: RateSweep,
}

/// Sweeps all Fig. 7 algorithms over one trace.
pub fn sweep_trace(trace: &Trace, dataset: &'static str, tolerances: &[f64]) -> RateSweep {
    let points = parallel_map(tolerances, default_workers(), |&tolerance| {
        let rates = Algorithm::FIG7
            .iter()
            .map(|algo| (*algo, algo.run(&trace.points, tolerance).compression_rate()))
            .collect();
        RatePoint { tolerance, rates }
    });
    RateSweep { dataset, points }
}

/// Runs both subplots at the requested scale.
pub fn run(scale: Scale) -> Fig7Result {
    let bat = super::bat_trace(scale);
    let vehicle = super::vehicle_trace(scale);
    Fig7Result {
        bat: sweep_trace(&bat, "bat", &super::sweep(&BAT_TOLERANCES, scale)),
        vehicle: sweep_trace(
            &vehicle,
            "vehicle",
            &super::sweep(&VEHICLE_TOLERANCES, scale),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bqs_is_best_and_fbqs_close_behind() {
        let result = run(Scale::Quick);
        for sweep in [&result.bat, &result.vehicle] {
            let mut agg = [0.0f64; 4]; // bqs, fbqs, bdp, bgd
            for p in &sweep.points {
                let bqs = p.rate_of("BQS").unwrap();
                let fbqs = p.rate_of("FBQS").unwrap();
                let bdp = p.rate_of("BDP").unwrap();
                let bgd = p.rate_of("BGD").unwrap();
                // Per tolerance: never materially worse. Exact ties are
                // common in the incompressible low-tolerance regime, and
                // per-instance the window algorithms can edge ahead by a
                // point or two on a short trace (the segmentations diverge
                // after the first inconclusive decision), so allow 1% of
                // slack here; the aggregate ordering below stays strict.
                assert!(
                    bqs <= fbqs + 1e-2 && bqs <= bdp + 1e-2 && bqs <= bgd + 1e-2,
                    "{} at {} m: BQS {bqs} vs FBQS {fbqs} BDP {bdp} BGD {bgd}",
                    sweep.dataset,
                    p.tolerance
                );
                agg[0] += bqs;
                agg[1] += fbqs;
                agg[2] += bdp;
                agg[3] += bgd;
            }
            // Across the sweep the ordering must be strict.
            assert!(
                agg[0] < agg[2] && agg[0] < agg[3],
                "{}: aggregate BQS {} must beat BDP {} and BGD {}",
                sweep.dataset,
                agg[0],
                agg[2],
                agg[3]
            );
        }
    }

    #[test]
    fn window_algorithms_pay_substantial_overhead() {
        // The paper: BDP/BGD use ~30–50 % more points than BQS.
        let result = run(Scale::Quick);
        // Aggregate over the sweep, skipping the incompressible 2 m regime
        // where every algorithm keeps nearly everything.
        let (mut bqs_sum, mut bdp_sum) = (0.0f64, 0.0f64);
        for p in result.bat.points.iter().filter(|p| p.tolerance >= 5.0) {
            bqs_sum += p.rate_of("BQS").unwrap();
            bdp_sum += p.rate_of("BDP").unwrap();
        }
        assert!(
            bdp_sum / bqs_sum > 1.15,
            "BDP/BQS aggregate ratio only {:.2}",
            bdp_sum / bqs_sum
        );
    }

    #[test]
    fn rates_fall_with_tolerance() {
        let result = run(Scale::Quick);
        for sweep in [&result.bat, &result.vehicle] {
            let bqs: Vec<f64> = sweep
                .points
                .iter()
                .map(|p| p.rate_of("BQS").unwrap())
                .collect();
            for w in bqs.windows(2) {
                assert!(w[1] <= w[0] + 0.005, "{}: {bqs:?}", sweep.dataset);
            }
        }
    }

    #[test]
    fn table_has_five_algorithm_columns() {
        let result = run(Scale::Quick);
        let csv = result.bat.to_table().to_csv();
        let header = csv.lines().next().unwrap();
        assert_eq!(header, "tolerance(m),BQS,FBQS,BDP,BGD,DP");
    }
}
