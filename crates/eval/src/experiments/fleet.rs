//! Fleet-scaling experiment (beyond the paper): throughput and compression
//! of the multi-session [`FleetEngine`] as the number of concurrent
//! trackers grows.
//!
//! The paper evaluates one tracker at a time; the deployment it motivates
//! is a fleet. This experiment interleaves `n` synthetic trackers
//! round-robin — the worst case for per-session locality — through one
//! engine and reports points/second, compression rate, merged pruning
//! power, and shard skew. Output goes to a [`CountingFleetSink`], so the
//! measured path allocates no output storage.

use crate::report::TextTable;
use crate::Scale;
use bqs_core::fleet::{CountingFleetSink, FleetConfig, FleetEngine, ParallelConfig, ParallelFleet};
use bqs_core::{BqsConfig, FastBqsCompressor};
use bqs_geo::TimedPoint;
use bqs_sim::{RandomWalkConfig, RandomWalkModel};
use std::time::Instant;

/// Tolerance used throughout (the paper's 10 m default).
pub const TOLERANCE: f64 = 10.0;

/// One row of the scaling sweep.
#[derive(Debug, Clone)]
pub struct FleetRow {
    /// Concurrent sessions.
    pub sessions: usize,
    /// Total points pushed across all sessions.
    pub points: usize,
    /// Kept points across all sessions.
    pub kept: usize,
    /// Wall-clock ingest throughput in points/second.
    pub points_per_sec: f64,
    /// Merged pruning power across sessions.
    pub pruning_power: f64,
    /// Max/mean shard load ratio (1.0 = perfectly even).
    pub shard_skew: f64,
}

/// One row of the parallel-runtime workers sweep.
#[derive(Debug, Clone)]
pub struct ParallelRow {
    /// Worker threads.
    pub workers: usize,
    /// Total points pushed.
    pub points: usize,
    /// Kept points (must be identical across worker counts — the
    /// equivalence guarantee).
    pub kept: usize,
    /// Wall-clock ingest throughput in points/second.
    pub points_per_sec: f64,
    /// Throughput relative to the 1-worker row.
    pub speedup: f64,
}

/// Full result.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// One row per session count (serial engine).
    pub rows: Vec<FleetRow>,
    /// One row per worker count (parallel runtime).
    pub parallel: Vec<ParallelRow>,
}

impl FleetResult {
    /// Renders the serial scaling sweep as a text table.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Fleet — multi-session scaling (FBQS, 10 m, round-robin interleave)",
            &[
                "sessions", "points", "kept", "rate %", "Mpts/s", "pruning", "skew",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.sessions.to_string(),
                r.points.to_string(),
                r.kept.to_string(),
                format!("{:.2}", 100.0 * r.kept as f64 / r.points.max(1) as f64),
                format!("{:.3}", r.points_per_sec / 1e6),
                format!("{:.4}", r.pruning_power),
                format!("{:.2}", r.shard_skew),
            ]);
        }
        t
    }

    /// Renders the parallel workers sweep as a text table.
    pub fn to_parallel_table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Fleet — parallel runtime scaling (FBQS, 10 m, workers sweep)",
            &["workers", "points", "kept", "Mpts/s", "speedup"],
        );
        for r in &self.parallel {
            t.row(vec![
                r.workers.to_string(),
                r.points.to_string(),
                r.kept.to_string(),
                format!("{:.3}", r.points_per_sec / 1e6),
                format!("{:.2}x", r.speedup),
            ]);
        }
        t
    }
}

/// Per-session synthetic trace: a correlated random walk, seeded per track
/// so every session follows a distinct path.
fn track_points(track: u64, n: usize) -> Vec<TimedPoint> {
    let config = RandomWalkConfig {
        samples: n,
        ..RandomWalkConfig::default()
    };
    RandomWalkModel::new(config)
        .generate(track.wrapping_mul(0x9E37_79B9).wrapping_add(1))
        .points
}

/// Session counts for the sweep at each scale.
pub fn session_counts(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![1, 8, 64],
        Scale::Full => vec![1, 10, 100, 1_000, 10_000],
    }
}

/// Points per session at each scale.
pub fn points_per_session(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 200,
        Scale::Full => 1_000,
    }
}

/// Worker counts for the parallel sweep (same at both scales: the axis
/// is cores, not data volume).
pub fn worker_counts() -> Vec<usize> {
    vec![1, 2, 4, 8]
}

/// Sessions driven through the parallel runtime at each scale.
pub fn parallel_sessions(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 64,
        Scale::Full => 1_000,
    }
}

/// Runs the parallel workers sweep at a fixed session count.
fn run_parallel(scale: Scale) -> Vec<ParallelRow> {
    let per_session = points_per_session(scale);
    let sessions = parallel_sessions(scale);
    let traces: Vec<Vec<TimedPoint>> = (0..sessions)
        .map(|t| track_points(t as u64, per_session))
        .collect();
    let total_points = per_session * sessions;

    let mut rows: Vec<ParallelRow> = Vec::new();
    for workers in worker_counts() {
        // bqs-analyze: allow(no-unwrap-in-lib) — tolerance is a positive constant validated at the call site
        let config = BqsConfig::new(TOLERANCE).expect("tolerance");
        let mut fleet = ParallelFleet::new(
            ParallelConfig {
                workers,
                ..ParallelConfig::default()
            },
            move || FastBqsCompressor::new(config),
            |_| CountingFleetSink::default(),
        );
        let start = Instant::now();
        for i in 0..per_session {
            for (t, trace) in traces.iter().enumerate() {
                fleet.push(t as u64, trace[i]);
            }
        }
        let join = fleet.join();
        let elapsed = start.elapsed().as_secs_f64().max(1e-9);
        assert!(join.is_ok(), "no worker may panic in the sweep");
        let kept: usize = join.shards.iter().map(|s| s.sink.count).sum();
        let points_per_sec = total_points as f64 / elapsed;
        let baseline = rows.first().map_or(points_per_sec, |r| r.points_per_sec);
        rows.push(ParallelRow {
            workers,
            points: total_points,
            kept,
            points_per_sec,
            speedup: points_per_sec / baseline.max(1e-9),
        });
    }
    rows
}

/// Runs the scaling sweep.
pub fn run(scale: Scale) -> FleetResult {
    let per_session = points_per_session(scale);
    let mut rows = Vec::new();
    for sessions in session_counts(scale) {
        let traces: Vec<Vec<TimedPoint>> = (0..sessions)
            .map(|t| track_points(t as u64, per_session))
            .collect();

        // bqs-analyze: allow(no-unwrap-in-lib) — tolerance is a positive constant validated at the call site
        let config = BqsConfig::new(TOLERANCE).expect("tolerance");
        let mut fleet = FleetEngine::new(FleetConfig::default(), move || {
            FastBqsCompressor::new(config)
        });
        let mut sink = CountingFleetSink::default();

        let start = Instant::now();
        for i in 0..per_session {
            for (t, trace) in traces.iter().enumerate() {
                fleet.push_tagged(t as u64, trace[i], &mut sink);
            }
        }
        // Peak shard occupancy, observed from the engine itself while
        // every session is still live (finish_all empties the shards).
        let skew = shard_skew(&fleet.shard_loads());
        fleet.finish_all(&mut sink);
        let elapsed = start.elapsed().as_secs_f64().max(1e-9);

        let stats = fleet.stats();
        let total_points = per_session * sessions;
        rows.push(FleetRow {
            sessions,
            points: total_points,
            kept: sink.count,
            points_per_sec: total_points as f64 / elapsed,
            pruning_power: stats.pruning_power(),
            shard_skew: skew,
        });
    }
    FleetResult {
        rows,
        parallel: run_parallel(scale),
    }
}

/// Max/mean shard-occupancy ratio from observed per-shard session loads.
fn shard_skew(loads: &[usize]) -> f64 {
    let total: usize = loads.iter().sum();
    if total == 0 || loads.is_empty() {
        return 1.0;
    }
    // bqs-analyze: allow(no-unwrap-in-lib) — experiment harness fails fast on setup errors by design
    let max = *loads.iter().max().expect("non-empty") as f64;
    let mean = total as f64 / loads.len() as f64;
    max / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_sane_rows() {
        let result = run(Scale::Quick);
        assert_eq!(result.rows.len(), 3);
        for row in &result.rows {
            assert_eq!(row.points, row.sessions * points_per_session(Scale::Quick));
            assert!(
                row.kept >= 2 * row.sessions,
                "each session keeps ≥ 2 points"
            );
            assert!(row.kept <= row.points);
            assert!(row.points_per_sec > 0.0);
            assert!(row.pruning_power >= 0.99, "FBQS never full-scans");
            assert!(row.shard_skew >= 1.0);
        }
        let table = result.to_table();
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn parallel_sweep_is_equivalent_across_worker_counts() {
        let result = run(Scale::Quick);
        assert_eq!(result.parallel.len(), worker_counts().len());
        let first = &result.parallel[0];
        assert_eq!(first.workers, 1);
        assert!((first.speedup - 1.0).abs() < 1e-12);
        for row in &result.parallel {
            assert_eq!(
                row.points,
                parallel_sessions(Scale::Quick) * points_per_session(Scale::Quick)
            );
            // The equivalence guarantee, observed end to end: the kept
            // count never depends on the worker count.
            assert_eq!(row.kept, first.kept, "workers={}", row.workers);
            assert!(row.points_per_sec > 0.0);
            assert!(row.speedup > 0.0);
        }
        let table = result.to_parallel_table();
        assert_eq!(table.len(), worker_counts().len());
    }

    #[test]
    fn compression_rate_is_stable_across_session_counts() {
        // Multiplexing must not change per-stream behaviour: the aggregate
        // rate at 64 sessions stays in the same band as at 1 session
        // (sessions differ by seed, so allow a loose band).
        let result = run(Scale::Quick);
        let rate = |r: &FleetRow| r.kept as f64 / r.points as f64;
        let first = rate(&result.rows[0]);
        let last = rate(result.rows.last().unwrap());
        assert!(
            (first - last).abs() < 0.25,
            "rates diverged: {first:.3} vs {last:.3}"
        );
    }
}
