//! Fig. 3 — lower/upper bounds vs. the actual deviation.
//!
//! The paper plots both bounds and the true deviation for ~100 points of
//! the bat dataset at a 5 m tolerance, showing the bounds hugging the truth
//! tightly enough that "in more than 90 % of the occasions" no deviation
//! computation is needed. This runner instruments the buffered BQS with
//! [`bqs_core::BqsCompressor::push_traced`] and reports the same series.

use crate::report::TextTable;
use crate::Scale;
use bqs_core::engine::DecisionKind;
use bqs_core::{BqsCompressor, BqsConfig};
use bqs_geo::max_deviation_to_chord;
use bqs_geo::Point2;

/// One plotted point of Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundRecord {
    /// Index of the point within the sampled series.
    pub index: usize,
    /// Aggregated lower bound (metres).
    pub lower: f64,
    /// Aggregated upper bound (metres).
    pub upper: f64,
    /// Exact deviation of the buffer against the chord (always computed
    /// here for plotting, regardless of whether the algorithm needed it).
    pub actual: f64,
    /// Whether the bounds alone decided this point in the algorithm.
    pub conclusive: bool,
}

/// The Fig. 3 series plus the headline statistic.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// Error tolerance used (the paper's 5 m).
    pub tolerance: f64,
    /// Sampled records.
    pub records: Vec<BoundRecord>,
    /// Fraction of *all* bounded decisions that were conclusive (the
    /// paper's ">90 %" claim).
    pub conclusive_fraction: f64,
}

impl Fig3Result {
    /// Renders the series as a table.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(
            format!(
                "Fig. 3 — bounds vs actual deviation (d = {} m, conclusive: {:.1}%)",
                self.tolerance,
                self.conclusive_fraction * 100.0
            ),
            &["idx", "lower(m)", "upper(m)", "actual(m)", "conclusive"],
        );
        for r in &self.records {
            t.row(vec![
                r.index.to_string(),
                format!("{:.2}", r.lower),
                format!("{:.2}", r.upper),
                format!("{:.2}", r.actual),
                if r.conclusive { "yes" } else { "no" }.to_string(),
            ]);
        }
        t
    }
}

/// Runs the experiment: the bat trace at d = 5 m, sampling up to
/// `max_records` bounded decisions evenly across the stream.
pub fn run(scale: Scale) -> Fig3Result {
    run_with(super::bat_trace(scale), 5.0, 100)
}

/// Parameterised variant used by tests and the ablation harness.
pub fn run_with(trace: bqs_sim::Trace, tolerance: f64, max_records: usize) -> Fig3Result {
    // bqs-analyze: allow(no-unwrap-in-lib) — tolerance is a positive constant validated at the call site
    let mut bqs = BqsCompressor::new(BqsConfig::new(tolerance).expect("tolerance"));
    let mut out = Vec::new();

    // Replay the stream, tracking the current segment interior so the exact
    // deviation can be recomputed for every bounded decision (the algorithm
    // itself only computes it when forced).
    let mut segment_interior: Vec<Point2> = Vec::new();
    let mut segment_start: Option<Point2> = None;
    let mut all: Vec<BoundRecord> = Vec::new();
    let mut bounded = 0usize;
    let mut conclusive = 0usize;

    for p in &trace.points {
        let trace_rec = bqs.push_traced(*p, &mut out);
        if let Some(bounds) = trace_rec.bounds {
            bounded += 1;
            let is_conclusive = bounds.is_conclusive(tolerance);
            if is_conclusive {
                conclusive += 1;
            }
            // bqs-analyze: allow(no-unwrap-in-lib) — experiment harness fails fast on setup errors by design
            let start = segment_start.expect("bounded decision implies a segment");
            let actual = trace_rec
                .actual
                .unwrap_or_else(|| max_deviation_to_chord(&segment_interior, start, p.pos));
            all.push(BoundRecord {
                index: all.len(),
                lower: bounds.lower,
                upper: bounds.upper,
                actual,
                conclusive: is_conclusive,
            });
        }
        // Maintain the shadow segment state.
        match trace_rec.outcome {
            bqs_core::engine::Outcome::Included => {
                if segment_start.is_none() {
                    segment_start = Some(p.pos);
                } else if trace_rec.decided_by != DecisionKind::StreamStart {
                    segment_interior.push(p.pos);
                }
            }
            bqs_core::engine::Outcome::SegmentCut => {
                // New segment starts at the previous point; p joins it.
                // bqs-analyze: allow(no-unwrap-in-lib) — experiment harness fails fast on setup errors by design
                let new_start = out.last().expect("cut emitted a key point").pos;
                segment_start = Some(new_start);
                segment_interior.clear();
                segment_interior.push(p.pos);
            }
        }
    }

    // Thin to max_records evenly.
    let records = if all.len() > max_records {
        let step = all.len() as f64 / max_records as f64;
        (0..max_records)
            .map(|i| {
                let mut r = all[(i as f64 * step) as usize];
                r.index = i;
                r
            })
            .collect()
    } else {
        all
    };

    Fig3Result {
        tolerance,
        records,
        conclusive_fraction: if bounded == 0 {
            1.0
        } else {
            conclusive as f64 / bounded as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn upper_bound_is_sound_and_pairs_are_ordered() {
        let result = run(Scale::Quick);
        assert!(!result.records.is_empty());
        let mut lb_overshoots = 0usize;
        for r in &result.records {
            // The upper bound is the safety-critical direction: it must
            // dominate the true deviation of everything the structure
            // covers. Near-start points are exempt (Theorem 5.1 caps their
            // deviation at the tolerance without structural help), so a
            // record is sound when the bound dominates OR the actual
            // deviation is within the tolerance anyway.
            assert!(
                r.upper >= r.actual - 1e-6 || r.actual <= result.tolerance + 1e-6,
                "record {}: upper {} < actual {} beyond the tolerance",
                r.index,
                r.upper,
                r.actual
            );
            assert!(r.lower <= r.upper + 1e-9);
            // The paper's lower-bound formulas are heuristic: they may
            // overshoot the true deviation (chord-crossing edges; structure
            // vertices after a frame rebuild). An overshoot can only cause
            // an early cut, never an error breach — but it should be rare.
            if r.lower > r.actual + 1e-6 {
                lb_overshoots += 1;
            }
        }
        assert!(
            lb_overshoots * 4 <= result.records.len(),
            "lower bound overshoots the truth too often: {lb_overshoots}/{}",
            result.records.len()
        );
    }

    #[test]
    fn most_decisions_are_conclusive() {
        let result = run(Scale::Quick);
        // Over the bounds stage alone (trivial/warm-up decisions excluded
        // from the denominator) a conservative floor still demonstrates the
        // bounds do most of the work.
        assert!(
            result.conclusive_fraction > 0.6,
            "conclusive fraction {} too low",
            result.conclusive_fraction
        );
    }

    #[test]
    fn table_renders() {
        let result = run(Scale::Quick);
        let table = result.to_table();
        assert_eq!(table.len(), result.records.len());
        assert!(table.to_string().contains("Fig. 3"));
    }

    #[test]
    fn record_cap_respected() {
        let result = run_with(super::super::bat_trace(Scale::Quick), 5.0, 10);
        assert!(result.records.len() <= 10);
    }
}
