//! Table I — worst-case complexity, verified empirically.
//!
//! The paper states FBQS is O(n) time / O(1) space while BDP and BGD are
//! O(n²) time / O(n) space **when the buffer is unconstrained**. This
//! runner measures wall time on the adversarial input that exposes the
//! difference — an endlessly compressible straight line with sub-tolerance
//! noise, on which the sliding window grows without bound — at a geometric
//! ladder of input sizes, and reports per-point cost so the growth class is
//! visible as the ratio column.

use crate::report::TextTable;
use crate::Scale;
use bqs_baselines::{BufferedDpCompressor, BufferedGreedyCompressor};
use bqs_core::stream::{compress_all, StreamCompressor};
use bqs_core::{BqsConfig, FastBqsCompressor};
use bqs_geo::TimedPoint;
use std::time::Instant;

/// Timing of one `(algorithm, n)` cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingCell {
    /// Input size.
    pub n: usize,
    /// Total wall time in nanoseconds.
    pub total_ns: u128,
    /// Nanoseconds per point.
    pub ns_per_point: f64,
}

/// One algorithm's scaling series.
#[derive(Debug, Clone)]
pub struct ScalingSeries {
    /// Algorithm label.
    pub algorithm: &'static str,
    /// Claimed worst-case time, from the paper's Table I.
    pub claimed_time: &'static str,
    /// Claimed worst-case space.
    pub claimed_space: &'static str,
    /// Measured cells in ascending `n`.
    pub cells: Vec<ScalingCell>,
}

impl ScalingSeries {
    /// Ratio of per-point cost between the largest and smallest `n` — ≈ 1
    /// for a linear-time algorithm, ≈ `n_max/n_min` for a quadratic one.
    pub fn per_point_growth(&self) -> f64 {
        let first = self.cells.first().map_or(0.0, |c| c.ns_per_point);
        let last = self.cells.last().map_or(0.0, |c| c.ns_per_point);
        last / first.max(1e-9)
    }
}

/// The Table I reproduction.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// Input sizes used.
    pub sizes: Vec<usize>,
    /// Per-algorithm series (FBQS, BDP, BGD).
    pub series: Vec<ScalingSeries>,
}

impl Table1Result {
    /// Renders measured per-point costs next to the claimed classes.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Table I — worst-case complexity (measured ns/point on adversarial input)",
            &[
                "algorithm",
                "claimed time",
                "claimed space",
                "ns/pt @min n",
                "ns/pt @max n",
                "growth",
            ],
        );
        for s in &self.series {
            t.row(vec![
                s.algorithm.to_string(),
                s.claimed_time.to_string(),
                s.claimed_space.to_string(),
                format!("{:.0}", s.cells.first().map_or(0.0, |c| c.ns_per_point)),
                format!("{:.0}", s.cells.last().map_or(0.0, |c| c.ns_per_point)),
                format!("{:.1}x", s.per_point_growth()),
            ]);
        }
        t
    }
}

/// The adversarial stream: straight-line motion with deterministic noise
/// well below the tolerance, so no error-bounded algorithm ever cuts.
pub fn adversarial_stream(n: usize) -> Vec<TimedPoint> {
    (0..n)
        .map(|i| {
            let a = i as f64;
            TimedPoint::new(a * 10.0, (a * 0.7).sin() * 0.5, a)
        })
        .collect()
}

fn time_run<C: StreamCompressor>(mut compressor: C, points: &[TimedPoint]) -> ScalingCell {
    let start = Instant::now();
    let kept = compress_all(&mut compressor, points.iter().copied());
    let total_ns = start.elapsed().as_nanos();
    // The compressible input must actually compress (sanity, not timing).
    assert!(kept.len() < points.len() / 2 || points.len() < 8);
    ScalingCell {
        n: points.len(),
        total_ns,
        ns_per_point: total_ns as f64 / points.len() as f64,
    }
}

/// Runs the scaling ladder.
pub fn run(scale: Scale) -> Table1Result {
    let tolerance = 5.0;
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![500, 1_000, 2_000, 4_000],
        Scale::Full => vec![4_000, 8_000, 16_000, 32_000, 64_000],
    };

    let mut fbqs = ScalingSeries {
        algorithm: "FBQS",
        claimed_time: "O(n)",
        claimed_space: "O(1)",
        cells: Vec::new(),
    };
    let mut bdp = ScalingSeries {
        algorithm: "BDP",
        claimed_time: "O(n^2)",
        claimed_space: "O(n)",
        cells: Vec::new(),
    };
    let mut bgd = ScalingSeries {
        algorithm: "BGD",
        claimed_time: "O(n^2)",
        claimed_space: "O(n)",
        cells: Vec::new(),
    };

    for &n in &sizes {
        let stream = adversarial_stream(n);
        fbqs.cells.push(time_run(
            // bqs-analyze: allow(no-unwrap-in-lib) — tolerance is a positive constant validated at the call site
            FastBqsCompressor::new(BqsConfig::new(tolerance).expect("tolerance")),
            &stream,
        ));
        // "Unconstrained buffer": the window can hold the whole stream.
        bdp.cells.push(time_run(
            BufferedDpCompressor::new(tolerance, n.max(2)),
            &stream,
        ));
        bgd.cells.push(time_run(
            BufferedGreedyCompressor::new(tolerance, n.max(1)),
            &stream,
        ));
    }

    Table1Result {
        sizes,
        series: vec![fbqs, bdp, bgd],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adversarial_stream_is_compressible() {
        let pts = adversarial_stream(1_000);
        let mut fbqs = FastBqsCompressor::new(BqsConfig::new(5.0).unwrap());
        let kept = compress_all(&mut fbqs, pts);
        assert!(kept.len() < 20, "kept {}", kept.len());
    }

    #[test]
    fn bgd_per_point_cost_grows_fbqs_does_not() {
        let result = run(Scale::Quick);
        let fbqs = result
            .series
            .iter()
            .find(|s| s.algorithm == "FBQS")
            .unwrap();
        let bgd = result.series.iter().find(|s| s.algorithm == "BGD").unwrap();
        // On an 8× size ladder, quadratic BGD grows per-point cost ~8×;
        // generous margins keep this robust on noisy CI machines.
        assert!(
            bgd.per_point_growth() > 2.0,
            "BGD growth {:.2} too flat for O(n^2)",
            bgd.per_point_growth()
        );
        assert!(
            fbqs.per_point_growth() < bgd.per_point_growth() / 1.5,
            "FBQS growth {:.2} should be well below BGD {:.2}",
            fbqs.per_point_growth(),
            bgd.per_point_growth()
        );
    }

    #[test]
    fn table_lists_all_three_algorithms() {
        let result = run(Scale::Quick);
        let rendered = result.to_table().to_string();
        for label in ["FBQS", "BDP", "BGD", "O(n)", "O(1)", "O(n^2)"] {
            assert!(rendered.contains(label), "missing {label} in:\n{rendered}");
        }
    }
}
