//! Extended comparison (beyond the paper's own figures): every compressor
//! in the workspace on one table, with rate, run time and working-set
//! columns.
//!
//! The paper's §II argues STTrace and the MBR method "fall outside of
//! capabilities of our target hardware platform" and that SQUISH lacks an
//! error bound; with all of them implemented behind one interface, that
//! argument becomes a measurable row instead of a citation.

use crate::algorithms::Algorithm;
use crate::report::{ms, TextTable};
use crate::Scale;
use bqs_sim::Trace;

/// One algorithm's row.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtendedRow {
    /// Algorithm label.
    pub algorithm: &'static str,
    /// Parameterisation shown to the reader.
    pub params: String,
    /// Whether the algorithm guarantees a (chord or SED) error bound.
    pub error_bounded: bool,
    /// Whether it runs online with bounded memory.
    pub online_bounded_memory: bool,
    /// Compression rate.
    pub compression_rate: f64,
    /// Wall time over the stream.
    pub elapsed: std::time::Duration,
}

/// The comparison table.
#[derive(Debug, Clone)]
pub struct ExtendedResult {
    /// Tolerance used for the error-bounded algorithms.
    pub tolerance: f64,
    /// Stream length.
    pub points: usize,
    /// Rows in presentation order.
    pub rows: Vec<ExtendedRow>,
}

impl ExtendedResult {
    /// Row by label.
    pub fn row(&self, label: &str) -> Option<&ExtendedRow> {
        self.rows.iter().find(|r| r.algorithm == label)
    }

    /// Renders the table.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(
            format!(
                "Extended comparison — all algorithms (d = {} m, {} points)",
                self.tolerance, self.points
            ),
            &[
                "algorithm",
                "params",
                "bounded err",
                "online+O(1)ish mem",
                "rate",
                "time(ms)",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.algorithm.to_string(),
                r.params.clone(),
                if r.error_bounded { "yes" } else { "no" }.to_string(),
                if r.online_bounded_memory { "yes" } else { "no" }.to_string(),
                format!("{:.2}%", r.compression_rate * 100.0),
                ms(r.elapsed),
            ]);
        }
        t
    }
}

/// The full roster with capability annotations.
fn roster() -> Vec<(Algorithm, String, bool, bool)> {
    vec![
        (Algorithm::Bqs, "exact fallback".into(), true, false),
        (Algorithm::Fbqs, "≤32 pts".into(), true, true),
        (
            Algorithm::Bdp { buffer: 32 },
            "window 32".into(),
            true,
            true,
        ),
        (
            Algorithm::Bgd { buffer: 32 },
            "window 32".into(),
            true,
            true,
        ),
        (Algorithm::Dp, "offline".into(), true, false),
        (Algorithm::DeadReckoning, "v + heading".into(), true, true),
        (Algorithm::SquishE, "SED ε, offline".into(), true, false),
        (Algorithm::Mbr { max_run: 32 }, "run 32".into(), true, true),
        (
            Algorithm::StTrace { capacity: 128 },
            "sample 128".into(),
            false,
            true,
        ),
    ]
}

/// Runs the comparison on the bat trace at 10 m.
pub fn run(scale: Scale) -> ExtendedResult {
    run_on(&super::bat_trace(scale), 10.0)
}

/// Runs the comparison on an arbitrary trace.
pub fn run_on(trace: &Trace, tolerance: f64) -> ExtendedResult {
    let rows = roster()
        .into_iter()
        .map(|(algo, params, error_bounded, online)| {
            let run = algo.run(&trace.points, tolerance);
            ExtendedRow {
                algorithm: algo.label(),
                params,
                error_bounded,
                online_bounded_memory: online,
                compression_rate: run.compression_rate(),
                elapsed: run.elapsed,
            }
        })
        .collect();
    ExtendedResult {
        tolerance,
        points: trace.len(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nine_algorithms_report() {
        let result = run(Scale::Quick);
        assert_eq!(result.rows.len(), 9);
        for r in &result.rows {
            assert!(
                r.compression_rate > 0.0 && r.compression_rate <= 1.0,
                "{r:?}"
            );
        }
    }

    #[test]
    fn bqs_family_leads_the_error_bounded_online_field() {
        let result = run(Scale::Quick);
        let fbqs = result.row("FBQS").unwrap().compression_rate;
        for label in ["BDP", "BGD", "DR", "MBR"] {
            let other = result.row(label).unwrap().compression_rate;
            assert!(
                fbqs < other * 1.05,
                "FBQS {fbqs:.4} should at least match {label} {other:.4}"
            );
        }
    }

    #[test]
    fn capability_flags_match_the_paper_s_argument() {
        let result = run(Scale::Quick);
        assert!(!result.row("STTrace").unwrap().error_bounded);
        assert!(!result.row("DP").unwrap().online_bounded_memory);
        assert!(result.row("FBQS").unwrap().error_bounded);
        assert!(result.row("FBQS").unwrap().online_bounded_memory);
    }

    #[test]
    fn table_renders() {
        let table = run(Scale::Quick).to_table();
        assert_eq!(table.len(), 9);
        assert!(table.to_string().contains("Extended comparison"));
    }
}
