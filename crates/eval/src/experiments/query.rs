//! Query-fanout experiment (beyond the paper): the unified
//! [`bqs_tlog::QueryEngine`] over spill trees of 1/2/4/8 shards.
//!
//! The paper's §V-F storage sketch assumes the compressed history is
//! *queryable*; this experiment measures what that costs once the
//! history is sharded. For each shard count it builds a spill tree
//! (tracks routed by [`worker_of`], exactly as `bqs fleet --workers N`
//! writes them), writes the tree's `MANIFEST`, and runs the same four
//! queries through the engine:
//!
//! * **full scan** — every track, all time: the fan-out ceiling;
//! * **time window** — a narrow interval: record-level index pruning;
//! * **one track** — track-selective: manifest pruning skips every
//!   shard but one without opening it;
//! * **bbox** — a spatial cut: manifest + per-record bbox pruning.
//!
//! The invariant the rows witness (and the tests assert): the *answer*
//! never depends on the shard count — only the amount of work done and
//! skipped does.

use crate::report::TextTable;
use crate::Scale;
use bqs_core::fleet::worker_of;
use bqs_core::stream::compress_all;
use bqs_core::{BqsConfig, FastBqsCompressor};
use bqs_geo::{Point2, Rect, TimedPoint};
use bqs_sim::{RandomWalkConfig, RandomWalkModel};
use bqs_tlog::{open_shard_logs, LogConfig, Manifest, QueryEngine, TimeRange};
use std::path::PathBuf;
use std::time::Instant;

/// Tolerance used throughout (the paper's 10 m default).
pub const TOLERANCE: f64 = 10.0;

/// Shard counts for the sweep (the axis is worker shards, not data).
pub fn shard_counts() -> Vec<usize> {
    vec![1, 2, 4, 8]
}

/// Sessions at each scale.
pub fn sessions(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 32,
        Scale::Full => 256,
    }
}

/// Points per session at each scale.
pub fn points_per_session(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 200,
        Scale::Full => 1_000,
    }
}

/// One query against one tree.
#[derive(Debug, Clone)]
pub struct QueryRow {
    /// Shards in the tree.
    pub shards: usize,
    /// Query label ("full scan", "time window", "one track", "bbox").
    pub query: &'static str,
    /// Matching tracks.
    pub tracks: usize,
    /// Matching points — identical across shard counts per query.
    pub points: usize,
    /// Records the planners considered.
    pub candidate_records: usize,
    /// Records actually decoded.
    pub decoded_records: usize,
    /// Shards skipped via the manifest without being opened.
    pub shards_pruned: usize,
    /// Wall-clock time for the query, milliseconds.
    pub millis: f64,
}

/// Full result.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// One row per (shard count, query).
    pub rows: Vec<QueryRow>,
}

impl QueryResult {
    /// Renders the sweep as a text table.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Query — unified engine over sharded spill trees (FBQS @ 10 m)",
            &[
                "shards", "query", "tracks", "points", "cand", "decoded", "pruned", "ms",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.shards.to_string(),
                r.query.to_string(),
                r.tracks.to_string(),
                r.points.to_string(),
                r.candidate_records.to_string(),
                r.decoded_records.to_string(),
                r.shards_pruned.to_string(),
                format!("{:.2}", r.millis),
            ]);
        }
        t
    }

    /// The rows of one query label, in shard-count order.
    pub fn rows_for(&self, query: &str) -> Vec<&QueryRow> {
        self.rows.iter().filter(|r| r.query == query).collect()
    }
}

/// Per-session synthetic trace, seeded per track.
fn track_points(track: u64, n: usize) -> Vec<TimedPoint> {
    let config = RandomWalkConfig {
        samples: n,
        ..RandomWalkConfig::default()
    };
    RandomWalkModel::new(config)
        .generate(track.wrapping_mul(0x9E37_79B9).wrapping_add(1))
        .points
}

/// Builds a `shards`-way spill tree of the compressed traces at `root`,
/// routed exactly like the parallel fleet routes them, plus `MANIFEST`.
fn build_tree(root: &PathBuf, shards: usize, traces: &[Vec<TimedPoint>]) {
    // bqs-analyze: allow(no-unwrap-in-lib) — tolerance is a positive constant validated at the call site
    let config = BqsConfig::new(TOLERANCE).expect("tolerance");
    // bqs-analyze: allow(no-unwrap-in-lib) — experiment harness fails fast on setup errors by design
    let mut logs = open_shard_logs(root, shards, LogConfig::default()).expect("open tree");
    for (t, trace) in traces.iter().enumerate() {
        let kept = compress_all(&mut FastBqsCompressor::new(config), trace.iter().copied());
        let shard = worker_of(t as u64, shards);
        // bqs-analyze: allow(no-unwrap-in-lib) — experiment harness fails fast on setup errors by design
        logs[shard].0.append(t as u64, &kept).expect("append");
    }
    drop(logs);
    // bqs-analyze: allow(no-unwrap-in-lib) — experiment harness fails fast on setup errors by design
    Manifest::rebuild(root).expect("manifest");
}

/// Runs the sweep. Trees are built under a per-process temp directory
/// and removed afterwards.
pub fn run(scale: Scale) -> QueryResult {
    let traces: Vec<Vec<TimedPoint>> = (0..sessions(scale))
        .map(|t| track_points(t as u64, points_per_session(scale)))
        .collect();
    // Walks sample every 10 s, so the run spans [0, 10·points].
    let t_max = points_per_session(scale) as f64 * 10.0;
    let window = TimeRange::new(t_max * 0.45, t_max * 0.55);
    // A box around track 0's own extent: selective but non-empty.
    let bbox = Rect::bounding(traces[0].iter().map(|p| p.pos))
        // bqs-analyze: allow(no-unwrap-in-lib) — experiment harness fails fast on setup errors by design
        .expect("non-empty trace")
        .union(&Rect::from_point(Point2::new(0.0, 0.0)));

    let base = std::env::temp_dir().join(format!("bqs-eval-query-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let mut rows = Vec::new();
    for shards in shard_counts() {
        let root = base.join(format!("tree-{shards}"));
        build_tree(&root, shards, &traces);
        // bqs-analyze: allow(no-unwrap-in-lib) — experiment harness fails fast on setup errors by design
        let mut engine = QueryEngine::open(&root).expect("open tree");
        let queries: Vec<(&'static str, Option<u64>, TimeRange, Option<Rect>)> = vec![
            ("full scan", None, TimeRange::all(), None),
            ("time window", None, window, None),
            ("one track", Some(0), TimeRange::all(), None),
            ("bbox", None, TimeRange::all(), Some(bbox)),
        ];
        for (label, track, range, area) in queries {
            let start = Instant::now();
            let output = match area {
                Some(area) => engine.query_bbox(track, area, Some(range)),
                None => engine.query_time_range(track, range),
            }
            // bqs-analyze: allow(no-unwrap-in-lib) — experiment harness fails fast on setup errors by design
            .expect("query");
            rows.push(QueryRow {
                shards,
                query: label,
                tracks: output.slices.len(),
                points: output.total_points(),
                candidate_records: output.stats.candidate_records,
                decoded_records: output.stats.decoded_records,
                shards_pruned: output.shards_pruned,
                millis: start.elapsed().as_secs_f64() * 1_000.0,
            });
        }
    }
    let _ = std::fs::remove_dir_all(&base);
    QueryResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answers_are_identical_across_shard_counts() {
        let result = run(Scale::Quick);
        assert_eq!(result.rows.len(), shard_counts().len() * 4);
        for query in ["full scan", "time window", "one track", "bbox"] {
            let rows = result.rows_for(query);
            assert_eq!(rows.len(), shard_counts().len());
            for row in &rows {
                assert_eq!(
                    (row.tracks, row.points),
                    (rows[0].tracks, rows[0].points),
                    "{query} diverged at {} shards",
                    row.shards
                );
            }
        }
    }

    #[test]
    fn track_selective_queries_prune_shards_without_losing_points() {
        let result = run(Scale::Quick);
        for row in result.rows_for("one track") {
            assert_eq!(row.tracks, 1);
            assert!(row.points > 0);
            // All but the track's own shard are skipped unopened.
            assert_eq!(row.shards_pruned, row.shards - 1, "{row:?}");
        }
        // The full scan can never prune.
        for row in result.rows_for("full scan") {
            assert_eq!(row.shards_pruned, 0);
            assert!(row.decoded_records <= row.candidate_records);
        }
    }

    #[test]
    fn table_renders_every_row() {
        let result = run(Scale::Quick);
        assert_eq!(result.to_table().len(), result.rows.len());
    }
}
