//! Table II — estimated operational time of the tracking device.
//!
//! The paper fixes a 10 m tolerance, averages each algorithm's compression
//! rate over both field datasets, assumes Dead Reckoning needs 39 % more
//! points than FBQS (its Fig. 8b measurement at that tolerance), and feeds
//! the rates into the storage model (50 KB GPS budget, 12 B/sample,
//! 1 fix/min). Paper row: BQS 62 d, FBQS 60 d, BDP 45 d, BGD 44 d, DR 45 d
//! — a 36–41 % lifetime win for the BQS family.

use crate::algorithms::Algorithm;
use crate::report::TextTable;
use crate::Scale;
use bqs_device::operational::OperationalModel;

/// One algorithm's Table II row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperationalRow {
    /// Algorithm label.
    pub algorithm: &'static str,
    /// Average compression rate at the 10 m tolerance.
    pub compression_rate: f64,
    /// Estimated operational days.
    pub days: u64,
}

/// The Table II reproduction.
#[derive(Debug, Clone)]
pub struct Table2Result {
    /// Rows in the paper's column order (BQS, FBQS, BDP, BGD, DR).
    pub rows: Vec<OperationalRow>,
}

impl Table2Result {
    /// Row by label.
    pub fn row(&self, label: &str) -> Option<&OperationalRow> {
        self.rows.iter().find(|r| r.algorithm == label)
    }

    /// Renders the table.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Table II — estimated operational time (10 m tolerance)",
            &["algorithm", "compression rate", "days"],
        );
        for r in &self.rows {
            t.row(vec![
                r.algorithm.to_string(),
                format!("{:.2}%", r.compression_rate * 100.0),
                r.days.to_string(),
            ]);
        }
        t
    }
}

/// DR's point overhead over FBQS assumed by the paper for this table.
pub const DR_OVERHEAD: f64 = 1.39;

/// Runs the experiment.
pub fn run(scale: Scale) -> Table2Result {
    let tolerance = 10.0;
    let bat = super::bat_trace(scale);
    let vehicle = super::vehicle_trace(scale);
    let model = OperationalModel::paper();

    let average_rate = |algo: Algorithm| -> f64 {
        let a = algo.run(&bat.points, tolerance).compression_rate();
        let b = algo.run(&vehicle.points, tolerance).compression_rate();
        (a + b) / 2.0
    };

    let mut rows = Vec::new();
    let mut fbqs_rate = 0.0;
    for algo in [
        Algorithm::Bqs,
        Algorithm::Fbqs,
        Algorithm::Bdp { buffer: 32 },
        Algorithm::Bgd { buffer: 32 },
    ] {
        let rate = average_rate(algo);
        if algo == Algorithm::Fbqs {
            fbqs_rate = rate;
        }
        rows.push(OperationalRow {
            algorithm: algo.label(),
            compression_rate: rate,
            // bqs-analyze: allow(no-unwrap-in-lib) — experiment harness fails fast on setup errors by design
            days: model.operational_days(rate).expect("valid rate"),
        });
    }
    // DR, following the paper: 39 % more points than FBQS at 10 m.
    let dr_rate = (fbqs_rate * DR_OVERHEAD).min(1.0);
    rows.push(OperationalRow {
        algorithm: "DR",
        compression_rate: dr_rate,
        // bqs-analyze: allow(no-unwrap-in-lib) — experiment harness fails fast on setup errors by design
        days: model.operational_days(dr_rate).expect("valid rate"),
    });

    Table2Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bqs_family_outlives_the_window_algorithms() {
        let result = run(Scale::Quick);
        let bqs = result.row("BQS").unwrap().days;
        let fbqs = result.row("FBQS").unwrap().days;
        let bdp = result.row("BDP").unwrap().days;
        let bgd = result.row("BGD").unwrap().days;
        let dr = result.row("DR").unwrap().days;
        assert!(bqs >= fbqs, "BQS {bqs} d < FBQS {fbqs} d");
        assert!(
            fbqs > bdp && fbqs > bgd && fbqs > dr,
            "FBQS {fbqs} d must beat BDP {bdp}, BGD {bgd}, DR {dr}"
        );
    }

    #[test]
    fn lifetime_improvement_is_substantial() {
        // The paper's headline: up to 41 % (BQS) / 36 % (FBQS) improvement.
        let result = run(Scale::Quick);
        let bqs = result.row("BQS").unwrap().days as f64;
        let worst = result
            .rows
            .iter()
            .filter(|r| r.algorithm != "BQS" && r.algorithm != "FBQS")
            .map(|r| r.days)
            .min()
            .unwrap() as f64;
        assert!(
            bqs / worst > 1.2,
            "BQS improvement {:.2}x below the paper's 1.3–1.4x ballpark",
            bqs / worst
        );
    }

    #[test]
    fn all_rates_plausible() {
        let result = run(Scale::Quick);
        for r in &result.rows {
            assert!(
                r.compression_rate > 0.0 && r.compression_rate < 0.5,
                "{}: rate {}",
                r.algorithm,
                r.compression_rate
            );
            assert!(r.days >= 5, "{}: {} days", r.algorithm, r.days);
        }
    }

    #[test]
    fn table_has_five_rows_in_paper_order() {
        let result = run(Scale::Quick);
        let labels: Vec<&str> = result.rows.iter().map(|r| r.algorithm).collect();
        assert_eq!(labels, vec!["BQS", "FBQS", "BDP", "BGD", "DR"]);
        assert_eq!(result.to_table().len(), 5);
    }
}
