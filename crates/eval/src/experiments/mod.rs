//! Experiment runners, one per table/figure of the paper's evaluation.

pub mod ablation;
pub mod extended;
pub mod fig3;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fleet;
pub mod net;
pub mod query;
pub mod storage;
pub mod table1;
pub mod table2;
pub mod table3;

use crate::Scale;
use bqs_sim::dataset;
use bqs_sim::Trace;

/// Fixed seed so every run of the harness reproduces the same numbers.
pub const SEED: u64 = 20150413; // ICDE 2015 week

/// The bat dataset at the requested scale.
pub fn bat_trace(scale: Scale) -> Trace {
    match scale {
        Scale::Quick => dataset::bat_dataset_sized(SEED, 2, 2),
        Scale::Full => dataset::bat_dataset(SEED),
    }
}

/// The vehicle dataset at the requested scale.
pub fn vehicle_trace(scale: Scale) -> Trace {
    match scale {
        Scale::Quick => dataset::vehicle_dataset_sized(SEED, 8),
        Scale::Full => dataset::vehicle_dataset(SEED),
    }
}

/// The synthetic dataset at the requested scale.
pub fn synthetic_trace(scale: Scale) -> Trace {
    match scale {
        Scale::Quick => dataset::synthetic_dataset_sized(SEED, 4_000),
        Scale::Full => dataset::synthetic_dataset(SEED),
    }
}

/// Tolerance sweep for a dataset, thinned at `Quick` scale.
pub fn sweep(tolerances: &[f64], scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Full => tolerances.to_vec(),
        Scale::Quick => tolerances.iter().copied().step_by(3).collect(),
    }
}
