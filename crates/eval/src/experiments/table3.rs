//! Table III — run-time efficiency vs. buffer size.
//!
//! The paper runs FBQS, BDP and BGD over 87,704 empirical points at a 10 m
//! tolerance, with BDP/BGD swept over buffer sizes {32, 64, 128, 256}. The
//! shape to reproduce: FBQS's compression rate and run time are
//! **independent of buffer size**; BDP/BGD improve their rates with bigger
//! buffers but their run time grows; only BDP@32 undercuts FBQS's run time,
//! and it pays ~89 % more points for it.

use crate::algorithms::Algorithm;
use crate::report::{ms, TextTable};
use crate::Scale;
use bqs_sim::Trace;
use std::time::Duration;

/// One `(algorithm, buffer)` cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeCell {
    /// Buffer size (points); `None` for FBQS, which has no buffer.
    pub buffer: Option<usize>,
    /// Compression rate.
    pub compression_rate: f64,
    /// Wall time for the whole stream.
    pub elapsed: Duration,
}

/// One algorithm's Table III row group.
#[derive(Debug, Clone)]
pub struct RuntimeSeries {
    /// Algorithm label.
    pub algorithm: &'static str,
    /// Cells in ascending buffer order.
    pub cells: Vec<RuntimeCell>,
}

/// The Table III reproduction.
#[derive(Debug, Clone)]
pub struct Table3Result {
    /// Stream length used.
    pub points: usize,
    /// FBQS (single cell), BDP and BGD (four cells each).
    pub series: Vec<RuntimeSeries>,
}

impl Table3Result {
    /// Series by label.
    pub fn series_of(&self, label: &str) -> Option<&RuntimeSeries> {
        self.series.iter().find(|s| s.algorithm == label)
    }

    /// Renders the table in the paper's layout (buffer sizes as columns).
    pub fn to_table(&self) -> TextTable {
        let buffers = [32usize, 64, 128, 256];
        let mut t = TextTable::new(
            format!(
                "Table III — rate & run time vs buffer size ({} points)",
                self.points
            ),
            &["metric", "algorithm", "32", "64", "128", "256"],
        );
        for s in &self.series {
            let cell_for = |b: usize| -> Option<&RuntimeCell> {
                s.cells
                    .iter()
                    .find(|c| c.buffer.is_none() || c.buffer == Some(b))
            };
            let mut rate_row = vec!["rate".to_string(), s.algorithm.to_string()];
            let mut time_row = vec!["time(ms)".to_string(), s.algorithm.to_string()];
            for b in buffers {
                match cell_for(b) {
                    Some(c) => {
                        rate_row.push(format!("{:.2}%", c.compression_rate * 100.0));
                        time_row.push(ms(c.elapsed));
                    }
                    None => {
                        rate_row.push("—".to_string());
                        time_row.push("—".to_string());
                    }
                }
            }
            t.row(rate_row);
            t.row(time_row);
        }
        t
    }
}

/// The combined field stream the paper uses (bat + vehicle as one stream).
pub fn combined_stream(scale: Scale) -> Trace {
    let bat = super::bat_trace(scale);
    let vehicle = super::vehicle_trace(scale);
    Trace::concatenate("combined", &[bat, vehicle], 3_600.0)
}

/// Runs the experiment at a 10 m tolerance.
pub fn run(scale: Scale) -> Table3Result {
    let tolerance = 10.0;
    let stream = combined_stream(scale);
    let buffers = [32usize, 64, 128, 256];

    let fbqs_run = Algorithm::Fbqs.run(&stream.points, tolerance);
    let fbqs = RuntimeSeries {
        algorithm: "FBQS",
        cells: vec![RuntimeCell {
            buffer: None,
            compression_rate: fbqs_run.compression_rate(),
            elapsed: fbqs_run.elapsed,
        }],
    };

    let sweep = |make: &dyn Fn(usize) -> Algorithm, label: &'static str| -> RuntimeSeries {
        let cells = buffers
            .iter()
            .map(|&b| {
                let run = make(b).run(&stream.points, tolerance);
                RuntimeCell {
                    buffer: Some(b),
                    compression_rate: run.compression_rate(),
                    elapsed: run.elapsed,
                }
            })
            .collect();
        RuntimeSeries {
            algorithm: label,
            cells,
        }
    };

    let bdp = sweep(&|b| Algorithm::Bdp { buffer: b }, "BDP");
    let bgd = sweep(&|b| Algorithm::Bgd { buffer: b }, "BGD");

    Table3Result {
        points: stream.len(),
        series: vec![fbqs, bdp, bgd],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fbqs_beats_device_realistic_buffers_and_stays_competitive() {
        let result = run(Scale::Quick);
        let fbqs_rate = result.series_of("FBQS").unwrap().cells[0].compression_rate;
        for label in ["BDP", "BGD"] {
            for cell in &result.series_of(label).unwrap().cells {
                let b = cell.buffer.unwrap();
                if b <= 64 {
                    // At the working-set sizes a 4 KB-RAM device can afford,
                    // FBQS must win outright (the paper's headline).
                    assert!(
                        fbqs_rate < cell.compression_rate,
                        "{label}@{b}: rate {:.4} not worse than FBQS {:.4}",
                        cell.compression_rate,
                        fbqs_rate
                    );
                } else {
                    // With luxurious buffers the window algorithms close in;
                    // FBQS must stay in the same league (paper: it still
                    // wins there on field data; our synthetic traces are
                    // smoother, so allow a bounded crossover).
                    assert!(
                        fbqs_rate < cell.compression_rate * 1.6,
                        "{label}@{b}: FBQS rate {:.4} not competitive with {:.4}",
                        fbqs_rate,
                        cell.compression_rate
                    );
                }
            }
        }
    }

    #[test]
    fn buffered_rates_improve_with_buffer_size() {
        let result = run(Scale::Quick);
        for label in ["BDP", "BGD"] {
            let rates: Vec<f64> = result
                .series_of(label)
                .unwrap()
                .cells
                .iter()
                .map(|c| c.compression_rate)
                .collect();
            assert!(
                rates.last().unwrap() < rates.first().unwrap(),
                "{label}: rates {rates:?} should fall with buffer size"
            );
        }
    }

    #[test]
    fn buffered_runtime_grows_with_buffer_size() {
        let result = run(Scale::Quick);
        let cells = &result.series_of("BGD").unwrap().cells;
        let first = cells.first().unwrap().elapsed;
        let last = cells.last().unwrap().elapsed;
        assert!(
            last > first,
            "BGD runtime must grow with the window: {first:?} → {last:?}"
        );
    }

    #[test]
    fn table_renders_both_metric_rows_per_algorithm() {
        let result = run(Scale::Quick);
        assert_eq!(result.to_table().len(), 6); // 3 algorithms × 2 metric rows
    }
}
