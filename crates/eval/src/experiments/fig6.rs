//! Fig. 6 — pruning power of the BQS bounds vs. error tolerance.
//!
//! Pruning power = `1 − N_computed / N_total` (§VI-B): how often the bounds
//! decide without a full deviation scan. The paper reports it "generally
//! above 90 %" on both datasets (Fig. 6a bats at 2–20 m, Fig. 6b vehicles
//! at 5–50 m), with the vehicle data higher thanks to road-constrained
//! headings.

use crate::report::TextTable;
use crate::runner::{default_workers, parallel_map};
use crate::Scale;
use bqs_core::stream::compress_all_with_stats;
use bqs_core::{BqsCompressor, BqsConfig};
use bqs_sim::dataset::{BAT_TOLERANCES, VEHICLE_TOLERANCES};
use bqs_sim::Trace;

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PruningPoint {
    /// Error tolerance (metres).
    pub tolerance: f64,
    /// Pruning power in `[0, 1]`.
    pub pruning_power: f64,
    /// Compression rate at this tolerance (context column).
    pub compression_rate: f64,
}

/// One dataset's sweep (one subplot of Fig. 6).
#[derive(Debug, Clone)]
pub struct PruningSweep {
    /// Dataset label.
    pub dataset: &'static str,
    /// Sweep points in tolerance order.
    pub points: Vec<PruningPoint>,
}

impl PruningSweep {
    /// Renders the sweep as a table.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(
            format!("Fig. 6 — pruning power ({})", self.dataset),
            &["tolerance(m)", "pruning power", "compression rate"],
        );
        for p in &self.points {
            t.row(vec![
                format!("{}", p.tolerance),
                format!("{:.3}", p.pruning_power),
                format!("{:.4}", p.compression_rate),
            ]);
        }
        t
    }
}

/// Both subplots.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// Fig. 6a: bat data.
    pub bat: PruningSweep,
    /// Fig. 6b: vehicle data.
    pub vehicle: PruningSweep,
}

/// Runs the pruning-power sweep over one trace.
pub fn sweep_trace(trace: &Trace, dataset: &'static str, tolerances: &[f64]) -> PruningSweep {
    let points = parallel_map(tolerances, default_workers(), |&tolerance| {
        // bqs-analyze: allow(no-unwrap-in-lib) — tolerance is a positive constant validated at the call site
        let mut bqs = BqsCompressor::new(BqsConfig::new(tolerance).expect("tolerance"));
        let (kept, stats) = compress_all_with_stats(&mut bqs, trace.points.iter().copied());
        PruningPoint {
            tolerance,
            pruning_power: stats.pruning_power(),
            compression_rate: crate::metrics::compression_rate(kept.len(), trace.len()),
        }
    });
    PruningSweep { dataset, points }
}

/// Runs both subplots at the requested scale.
pub fn run(scale: Scale) -> Fig6Result {
    let bat = super::bat_trace(scale);
    let vehicle = super::vehicle_trace(scale);
    Fig6Result {
        bat: sweep_trace(&bat, "bat", &super::sweep(&BAT_TOLERANCES, scale)),
        vehicle: sweep_trace(
            &vehicle,
            "vehicle",
            &super::sweep(&VEHICLE_TOLERANCES, scale),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruning_power_is_high_on_both_datasets() {
        let result = run(Scale::Quick);
        for sweep in [&result.bat, &result.vehicle] {
            assert!(!sweep.points.is_empty());
            let mean = sweep.points.iter().map(|p| p.pruning_power).sum::<f64>()
                / sweep.points.len() as f64;
            assert!(
                mean > 0.85,
                "{}: mean pruning power {mean} below the paper's >0.9 ballpark",
                sweep.dataset
            );
            for p in &sweep.points {
                assert!(
                    p.pruning_power > 0.7,
                    "{} at {} m: pruning power {}",
                    sweep.dataset,
                    p.tolerance,
                    p.pruning_power
                );
                assert!((0.0..=1.0).contains(&p.pruning_power));
            }
        }
    }

    #[test]
    fn vehicle_pruning_power_at_least_bat_like() {
        // The paper: "BQS shows higher pruning power on the car dataset".
        // Average across the sweeps (tolerance grids differ).
        let result = run(Scale::Quick);
        let avg = |s: &PruningSweep| {
            s.points.iter().map(|p| p.pruning_power).sum::<f64>() / s.points.len() as f64
        };
        let bat = avg(&result.bat);
        let vehicle = avg(&result.vehicle);
        assert!(
            vehicle >= bat - 0.05,
            "vehicle {vehicle} should not trail bat {bat} meaningfully"
        );
    }

    #[test]
    fn compression_improves_with_tolerance() {
        let result = run(Scale::Quick);
        let rates: Vec<f64> = result
            .bat
            .points
            .iter()
            .map(|p| p.compression_rate)
            .collect();
        for w in rates.windows(2) {
            assert!(
                w[1] <= w[0] + 0.01,
                "rate should not grow with tolerance: {rates:?}"
            );
        }
    }

    #[test]
    fn tables_render() {
        let result = run(Scale::Quick);
        assert!(result.bat.to_table().to_string().contains("bat"));
        assert!(result.vehicle.to_table().to_string().contains("vehicle"));
    }
}
