//! Storage-footprint experiment (beyond the paper): bytes per point of
//! the `bqs-tlog` binary codec against two fixed-width baselines, on the
//! vehicle simulation dataset.
//!
//! The paper's storage argument (Table II) is byte-counting: each GPS
//! sample costs "at least 12 bytes" in the Camazotz fixed-point record,
//! and compression multiplies operational time by keeping fewer samples.
//! The trajectory log adds a second lever: the *kept* samples themselves
//! shrink, because the codec delta-encodes them losslessly. This
//! experiment quantifies both levers:
//!
//! * **naive f64** — 24 B/point (`3 × f64`), the in-memory layout.
//! * **paper record** — 12 B/point, the Camazotz fixed-point record
//!   (lossy: centimetre/second quantisation).
//! * **codec exact** — the tlog codec's bit-lossless profile over the
//!   full trace. The dataset's metre-scale GPS noise puts an entropy
//!   floor of ~40 bits per coordinate under any lossless coder, so this
//!   row cannot fall below ~11 B/point no matter the format.
//! * **codec mm grid** — the quantized profile (1 mm cells, 10× finer
//!   than the paper's own records, three orders of magnitude below GPS
//!   noise): the configuration that clears the < 50 %-of-naive bar.
//! * **fbqs@τ + codec** — compress first (the paper's pipeline), then
//!   encode the kept points exactly: the end-to-end on-disk footprint
//!   of the durable log.

use crate::report::TextTable;
use crate::Scale;
use bqs_core::stream::compress_all;
use bqs_core::{BqsConfig, FastBqsCompressor};
use bqs_geo::TimedPoint;
use bqs_tlog::codec;

/// Bytes per point of the naive fixed-width `TimedPoint` layout.
pub const NAIVE_BYTES: usize = codec::NAIVE_POINT_BYTES;

/// Bytes per point of the paper's fixed-point flash record.
pub const PAPER_RECORD_BYTES: usize = bqs_device::storage::GPS_RECORD_BYTES;

/// One storage configuration's footprint.
#[derive(Debug, Clone)]
pub struct StorageRow {
    /// Human label ("naive f64", "codec raw", "fbqs@10m + codec", …).
    pub label: String,
    /// Points actually stored under this configuration.
    pub stored_points: usize,
    /// Bytes those points occupy.
    pub bytes: usize,
    /// Bytes per *stored* point — the codec's own efficiency.
    pub bytes_per_stored_point: f64,
    /// Bytes relative to storing every input point as naive f64 —
    /// the end-to-end footprint, in percent.
    pub pct_of_naive_raw: f64,
    /// Whether this configuration reproduces the input bit-exactly.
    pub lossless: bool,
}

/// Full result.
#[derive(Debug, Clone)]
pub struct StorageResult {
    /// Input points of the vehicle trace.
    pub input_points: usize,
    /// One row per storage configuration.
    pub rows: Vec<StorageRow>,
}

impl StorageResult {
    /// Renders the result as a text table.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(
            format!(
                "Storage — tlog codec footprint, vehicle dataset ({} points)",
                self.input_points
            ),
            &[
                "configuration",
                "stored",
                "bytes",
                "B/pt",
                "% naive",
                "lossless",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.label.clone(),
                r.stored_points.to_string(),
                r.bytes.to_string(),
                format!("{:.2}", r.bytes_per_stored_point),
                format!("{:.2}", r.pct_of_naive_raw),
                if r.lossless { "yes" } else { "no" }.to_string(),
            ]);
        }
        t
    }

    /// The bit-lossless codec row.
    pub fn codec_exact(&self) -> &StorageRow {
        self.rows
            .iter()
            .find(|r| r.label == "codec exact")
            // bqs-analyze: allow(no-unwrap-in-lib) — experiment harness fails fast on setup errors by design
            .expect("codec exact row always present")
    }

    /// The millimetre-grid codec row — the acceptance-criterion
    /// configuration (< 50 % of the naive fixed-width layout).
    pub fn codec_quantized(&self) -> &StorageRow {
        self.rows
            .iter()
            .find(|r| r.label == "codec mm grid")
            // bqs-analyze: allow(no-unwrap-in-lib) — experiment harness fails fast on setup errors by design
            .expect("codec mm grid row always present")
    }
}

/// Tolerances (metres) for the compress-then-encode rows; the vehicle
/// dataset's paper sweep is 5–50 m.
pub fn tolerances(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Quick => vec![10.0],
        Scale::Full => vec![5.0, 10.0, 20.0, 50.0],
    }
}

fn row(
    label: impl Into<String>,
    stored: usize,
    bytes: usize,
    input: usize,
    lossless: bool,
) -> StorageRow {
    StorageRow {
        label: label.into(),
        stored_points: stored,
        bytes,
        bytes_per_stored_point: bytes as f64 / stored.max(1) as f64,
        pct_of_naive_raw: 100.0 * bytes as f64 / (NAIVE_BYTES * input.max(1)) as f64,
        lossless,
    }
}

/// Runs the footprint sweep on the vehicle dataset.
pub fn run(scale: Scale) -> StorageResult {
    let trace = super::vehicle_trace(scale);
    let points = &trace.points;
    let n = points.len();
    let mut rows = Vec::new();

    rows.push(row("naive f64", n, NAIVE_BYTES * n, n, true));
    rows.push(row(
        "paper 12 B record",
        n,
        PAPER_RECORD_BYTES * n,
        n,
        false,
    ));

    // bqs-analyze: allow(no-unwrap-in-lib) — experiment harness fails fast on setup errors by design
    let encoded = codec::encode_to_vec(points).expect("vehicle timestamps are monotone");
    debug_assert_eq!(
        // bqs-analyze: allow(no-unwrap-in-lib) — experiment harness fails fast on setup errors by design
        codec::decode_to_vec(&encoded).expect("round trip"),
        *points,
        "codec must be lossless on the dataset"
    );
    rows.push(row("codec exact", n, encoded.len(), n, true));

    let quantized = codec::encode_to_vec_with(codec::CodecProfile::millimetre(), points)
        // bqs-analyze: allow(no-unwrap-in-lib) — experiment harness fails fast on setup errors by design
        .expect("vehicle coordinates fit a mm grid");
    rows.push(row("codec mm grid", n, quantized.len(), n, false));

    for tolerance in tolerances(scale) {
        // bqs-analyze: allow(no-unwrap-in-lib) — tolerance is a positive constant validated at the call site
        let config = BqsConfig::new(tolerance).expect("positive tolerance");
        let kept = compress_all(&mut FastBqsCompressor::new(config), points.iter().copied());
        // bqs-analyze: allow(no-unwrap-in-lib) — experiment harness fails fast on setup errors by design
        let encoded = codec::encode_to_vec(&kept).expect("kept points stay monotone");
        rows.push(row(
            format!("fbqs@{tolerance}m + codec"),
            kept.len(),
            encoded.len(),
            n,
            false,
        ));
    }

    StorageResult {
        input_points: n,
        rows,
    }
}

/// Encodes then decodes `points`, asserting bit-exactness; helper shared
/// with the pipeline tests.
pub fn assert_lossless(points: &[TimedPoint]) {
    // bqs-analyze: allow(no-unwrap-in-lib) — experiment harness fails fast on setup errors by design
    let bytes = codec::encode_to_vec(points).expect("encode");
    // bqs-analyze: allow(no-unwrap-in-lib) — experiment harness fails fast on setup errors by design
    let back = codec::decode_to_vec(&bytes).expect("decode");
    assert_eq!(back.len(), points.len());
    for (a, b) in points.iter().zip(&back) {
        assert_eq!(a.pos.x.to_bits(), b.pos.x.to_bits());
        assert_eq!(a.pos.y.to_bits(), b.pos.y.to_bits());
        assert_eq!(a.t.to_bits(), b.t.to_bits());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_beats_half_of_the_naive_layout_on_vehicle_data() {
        let result = run(Scale::Quick);
        let q = result.codec_quantized();
        assert!(
            q.bytes_per_stored_point < NAIVE_BYTES as f64 / 2.0,
            "acceptance: codec must stay below 12 B/point, got {:.2}",
            q.bytes_per_stored_point
        );
        // Millimetre cells also undercut the paper's 12 B centimetre
        // record while storing 10× finer positions.
        assert!(q.bytes_per_stored_point < PAPER_RECORD_BYTES as f64);
        assert_eq!(q.stored_points, result.input_points);

        // The exact profile is lossless and still beats the naive layout,
        // but sits above the dataset's noise-entropy floor.
        let exact = result.codec_exact();
        assert!(exact.lossless);
        assert!(exact.bytes_per_stored_point < NAIVE_BYTES as f64 * 0.7);
        assert!(exact.bytes_per_stored_point > q.bytes_per_stored_point);
    }

    #[test]
    fn compression_then_codec_compounds_the_saving() {
        let result = run(Scale::Quick);
        let exact = result.codec_exact();
        let compressed = result
            .rows
            .iter()
            .find(|r| r.label.starts_with("fbqs@"))
            .expect("at least one tolerance row");
        assert!(compressed.stored_points < result.input_points);
        assert!(compressed.pct_of_naive_raw < exact.pct_of_naive_raw);
        // End-to-end the paper-style pipeline plus codec is far below
        // even the paper's own 12 B fixed-point record.
        assert!(
            compressed.pct_of_naive_raw < 50.0 * (PAPER_RECORD_BYTES as f64 / NAIVE_BYTES as f64)
        );
    }

    #[test]
    fn table_renders_every_row() {
        let result = run(Scale::Quick);
        let table = result.to_table();
        assert_eq!(table.len(), result.rows.len());
        assert!(result.rows.len() >= 5);
    }

    #[test]
    fn lossless_helper_round_trips_the_bat_dataset_too() {
        let trace = crate::experiments::bat_trace(Scale::Quick);
        assert_lossless(&trace.points);
    }
}
