//! Ablations of the BQS design choices (beyond the paper's own figures).
//!
//! DESIGN.md calls out three knobs worth isolating:
//!
//! 1. **Data-centric rotation** (§V-D) — the paper claims it "improves the
//!    BQS's pruning power significantly"; this ablation runs BQS with and
//!    without it.
//! 2. **Bound tier** — Theorem 5.2's corner-only bounds vs. the full
//!    Theorem 5.3–5.5 machinery ("can hardly avoid any deviation
//!    computation" without the advanced bounds).
//! 3. **Bounds mode** — the provably sound clipped-wedge upper bound vs.
//!    the paper-exact printed formulas (compression-rate and pruning-power
//!    cost of soundness).

use crate::report::TextTable;
use crate::Scale;
use bqs_core::stream::compress_all_with_stats;
use bqs_core::{BoundsMode, BqsCompressor, BqsConfig, RotationMode};
use bqs_sim::Trace;

/// One ablation variant's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// Compression rate (lower is better).
    pub compression_rate: f64,
    /// Pruning power (higher is better).
    pub pruning_power: f64,
}

/// The ablation grid.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// Tolerance used.
    pub tolerance: f64,
    /// Rows, one per variant.
    pub rows: Vec<AblationRow>,
}

impl AblationResult {
    /// Row by label.
    pub fn row(&self, variant: &str) -> Option<&AblationRow> {
        self.rows.iter().find(|r| r.variant == variant)
    }

    /// Renders the grid.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(
            format!("Ablation — BQS design knobs (d = {} m)", self.tolerance),
            &["variant", "compression rate", "pruning power"],
        );
        for r in &self.rows {
            t.row(vec![
                r.variant.clone(),
                format!("{:.4}", r.compression_rate),
                format!("{:.3}", r.pruning_power),
            ]);
        }
        t
    }
}

fn run_variant(trace: &Trace, config: BqsConfig, label: &str) -> AblationRow {
    let mut bqs = BqsCompressor::new(config);
    let (kept, stats) = compress_all_with_stats(&mut bqs, trace.points.iter().copied());
    AblationRow {
        variant: label.to_string(),
        compression_rate: crate::metrics::compression_rate(kept.len(), trace.len()),
        pruning_power: stats.pruning_power(),
    }
}

/// Runs the ablation grid on the bat trace at 5 m.
pub fn run(scale: Scale) -> AblationResult {
    let trace = super::bat_trace(scale);
    let tolerance = 5.0;
    // bqs-analyze: allow(no-unwrap-in-lib) — tolerance is a positive constant validated at the call site
    let base = BqsConfig::new(tolerance).expect("tolerance");

    let rows = vec![
        run_variant(&trace, base, "full (rotation + sound bounds)"),
        run_variant(
            &trace,
            base.with_rotation(RotationMode::Disabled),
            "no rotation",
        ),
        run_variant(
            &trace,
            base.with_bounds_mode(BoundsMode::CoarseCorners),
            "coarse bounds (Thm 5.2 only)",
        ),
        run_variant(
            &trace,
            base.with_bounds_mode(BoundsMode::PaperExact),
            "paper-exact bounds",
        ),
        run_variant(
            &trace,
            base.with_rotation(RotationMode::DataCentric { warmup: 10 }),
            "rotation warm-up 10",
        ),
    ];

    AblationResult { tolerance, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_config_prunes_at_least_as_well_as_coarse() {
        let result = run(Scale::Quick);
        let full = result.row("full (rotation + sound bounds)").unwrap();
        let coarse = result.row("coarse bounds (Thm 5.2 only)").unwrap();
        assert!(
            full.pruning_power >= coarse.pruning_power - 0.01,
            "full {} vs coarse {}",
            full.pruning_power,
            coarse.pruning_power
        );
    }

    #[test]
    fn all_variants_compress() {
        let result = run(Scale::Quick);
        assert_eq!(result.rows.len(), 5);
        for r in &result.rows {
            assert!(
                r.compression_rate > 0.0 && r.compression_rate < 0.6,
                "{}: {}",
                r.variant,
                r.compression_rate
            );
            assert!((0.0..=1.0).contains(&r.pruning_power));
        }
    }

    #[test]
    fn compression_rate_is_variant_independent_for_buffered_bqs() {
        // The buffered BQS always falls back to an exact scan, so bound
        // quality affects *work*, not *output*: rates must agree closely.
        let result = run(Scale::Quick);
        let rates: Vec<f64> = result
            .rows
            .iter()
            .filter(|r| !r.variant.contains("rotation")) // rotation changes the frame, not the fallback
            .map(|r| r.compression_rate)
            .collect();
        let (min, max) = rates.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), r| {
            (lo.min(*r), hi.max(*r))
        });
        assert!(
            max - min < 0.02,
            "bound-mode variants should compress almost identically: {rates:?}"
        );
    }

    #[test]
    fn table_renders() {
        let result = run(Scale::Quick);
        assert!(result.to_table().to_string().contains("Ablation"));
    }
}
