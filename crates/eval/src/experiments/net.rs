//! Serving-layer experiment (beyond the paper): loopback ingest
//! throughput of the framed TCP server as client fan-in and fleet
//! fan-out grow.
//!
//! Each cell runs the full lifecycle — bind, seeded multi-connection
//! `loadgen`, graceful shutdown, spill — and reports wire throughput
//! plus the durable outcome. The kept (spilled) point count must be
//! identical in every cell: compression is deterministic per seed, so
//! neither the connection count nor the worker count may change what
//! lands on disk. The table asserts that invariant rather than just
//! printing it.

use crate::report::TextTable;
use crate::Scale;
use bqs_net::{loadgen, LoadgenConfig, Server, ServerConfig};
use std::path::PathBuf;

/// Seed shared with the rest of the harness.
use super::SEED;

/// One (workers × connections) cell.
#[derive(Debug, Clone)]
pub struct NetRow {
    /// Fleet worker shards behind the server.
    pub workers: usize,
    /// Concurrent client connections.
    pub connections: usize,
    /// Points sent over the wire.
    pub points: u64,
    /// Wire ingest throughput in points/second.
    pub points_per_sec: f64,
    /// Sessions spilled at shutdown.
    pub spilled_sessions: usize,
    /// Compressed points in the spill tree.
    pub spilled_points: u64,
    /// On-disk bytes per spilled point.
    pub bytes_per_point: f64,
}

/// Full sweep result.
#[derive(Debug, Clone)]
pub struct NetResult {
    /// One row per (workers, connections) cell.
    pub rows: Vec<NetRow>,
}

impl NetResult {
    /// Renders the sweep as a text table.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Net — loopback serve/loadgen sweep (FBQS, 10 m, seeded; kept counts must match)",
            &[
                "workers", "conns", "points", "Mpts/s", "sessions", "kept", "B/pt",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.workers.to_string(),
                r.connections.to_string(),
                r.points.to_string(),
                format!("{:.3}", r.points_per_sec / 1e6),
                r.spilled_sessions.to_string(),
                r.spilled_points.to_string(),
                format!("{:.2}", r.bytes_per_point),
            ]);
        }
        t
    }
}

fn temp_root(workers: usize, connections: usize) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("bqs-eval-net")
        .join(format!("w{workers}-c{connections}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the sweep.
pub fn run(scale: Scale) -> NetResult {
    let (sessions, points) = match scale {
        Scale::Quick => (8usize, 150usize),
        Scale::Full => (64, 500),
    };
    let mut rows = Vec::new();
    for workers in [1usize, 2, 4] {
        for connections in [1usize, 4] {
            let root = temp_root(workers, connections);
            let server = Server::bind(ServerConfig::new("127.0.0.1:0", workers, &root))
                // bqs-analyze: allow(no-unwrap-in-lib) — experiment harness fails fast on setup errors by design
                .expect("bind loopback server");
            let addr = server.local_addr();
            // bqs-analyze: allow(no-unwrap-in-lib) — experiment harness fails fast on setup errors by design
            let handle = std::thread::spawn(move || server.run().expect("serve"));
            let report = loadgen::run(&LoadgenConfig {
                addr: addr.to_string(),
                sessions,
                points,
                seed: SEED,
                connections,
                batch: 64,
                shutdown: true,
                disorder: 0.0,
                backfill: false,
            })
            // bqs-analyze: allow(no-unwrap-in-lib) — experiment harness fails fast on setup errors by design
            .expect("loadgen");
            // bqs-analyze: allow(no-unwrap-in-lib) — propagate a worker panic instead of masking it
            let serve_report = handle.join().expect("server thread");
            rows.push(NetRow {
                workers,
                connections,
                points: report.points_sent,
                points_per_sec: report.points_per_sec(),
                spilled_sessions: serve_report.spilled_sessions,
                spilled_points: serve_report.spilled_points,
                bytes_per_point: serve_report.spilled_bytes as f64
                    / serve_report.spilled_points.max(1) as f64,
            });
            let _ = std::fs::remove_dir_all(&root);
        }
    }
    // The invariance assertion: what lands on disk is independent of
    // how the load arrived and how it was sharded.
    let kept = rows[0].spilled_points;
    assert!(
        rows.iter().all(|r| r.spilled_points == kept),
        "kept counts diverged across serve configurations"
    );
    NetResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_is_invariant_across_cells() {
        let result = run(Scale::Quick);
        assert_eq!(result.rows.len(), 6);
        let first = &result.rows[0];
        assert_eq!(first.points, 8 * 150);
        assert!(result
            .rows
            .iter()
            .all(|r| r.spilled_sessions == 8 && r.spilled_points == first.spilled_points));
        let table = result.to_table().to_string();
        assert!(table.contains("Net —"), "{table}");
    }
}
