//! Fig. 8 — the synthetic dataset and the FBQS vs. Dead Reckoning
//! comparison.
//!
//! Fig. 8a plots the shape of the §VI-A correlated-random-walk trace
//! (10 km × 10 km, 30,000 points); here it becomes a CSV/summary. Fig. 8b
//! compares the number of points kept by FBQS and by error-bounded Dead
//! Reckoning over tolerances 2–20 m: the paper reports DR needing ~40 %
//! more points at 2 m, widening to ~50 % at 20 m.

use crate::algorithms::Algorithm;
use crate::report::TextTable;
use crate::runner::{default_workers, parallel_map};
use crate::Scale;
use bqs_sim::Trace;

/// Fig. 8a: the synthetic trace plus summary statistics.
#[derive(Debug, Clone)]
pub struct Fig8aResult {
    /// The generated trace.
    pub trace: Trace,
    /// Bounding-box extent (metres).
    pub extent: (f64, f64),
    /// Total travel distance (metres).
    pub travel_distance: f64,
}

/// One Fig. 8b sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointsUsed {
    /// Error tolerance (metres).
    pub tolerance: f64,
    /// Points kept by FBQS.
    pub fbqs: usize,
    /// Points kept by Dead Reckoning.
    pub dr: usize,
}

impl PointsUsed {
    /// DR overhead ratio over FBQS (the paper's 1.4–1.5×).
    pub fn dr_overhead(&self) -> f64 {
        self.dr as f64 / self.fbqs as f64
    }
}

/// Fig. 8b: the sweep.
#[derive(Debug, Clone)]
pub struct Fig8bResult {
    /// Sweep points in tolerance order.
    pub points: Vec<PointsUsed>,
}

impl Fig8bResult {
    /// Renders the sweep as a table.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Fig. 8b — points used on synthetic data",
            &["tolerance(m)", "FBQS", "DR", "DR/FBQS"],
        );
        for p in &self.points {
            t.row(vec![
                format!("{}", p.tolerance),
                p.fbqs.to_string(),
                p.dr.to_string(),
                format!("{:.2}", p.dr_overhead()),
            ]);
        }
        t
    }
}

/// Generates Fig. 8a.
pub fn run_8a(scale: Scale) -> Fig8aResult {
    let trace = super::synthetic_trace(scale);
    // bqs-analyze: allow(no-unwrap-in-lib) — experiment harness fails fast on setup errors by design
    let bb = trace.bounding_box().expect("non-empty trace");
    Fig8aResult {
        extent: (bb.width(), bb.height()),
        travel_distance: trace.travel_distance(),
        trace,
    }
}

/// Runs Fig. 8b over tolerances 2–20 m.
pub fn run_8b(scale: Scale) -> Fig8bResult {
    let trace = super::synthetic_trace(scale);
    let tolerances: Vec<f64> = super::sweep(
        &[2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0, 20.0],
        scale,
    );
    let points = parallel_map(&tolerances, default_workers(), |&tolerance| {
        let fbqs = Algorithm::Fbqs.run(&trace.points, tolerance).kept_count;
        let dr = Algorithm::DeadReckoning
            .run(&trace.points, tolerance)
            .kept_count;
        PointsUsed {
            tolerance,
            fbqs,
            dr,
        }
    });
    Fig8bResult { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_trace_fits_the_arena() {
        let result = run_8a(Scale::Quick);
        assert!(result.extent.0 <= 10_000.0 && result.extent.1 <= 10_000.0);
        assert!(result.travel_distance > 1_000.0);
        assert!(!result.trace.is_empty());
    }

    #[test]
    fn dr_needs_meaningfully_more_points_than_fbqs() {
        let result = run_8b(Scale::Quick);
        assert!(!result.points.is_empty());
        // The paper's headline: DR ≈ 1.4× at small tolerances.
        let avg_overhead: f64 = result
            .points
            .iter()
            .map(PointsUsed::dr_overhead)
            .sum::<f64>()
            / result.points.len() as f64;
        assert!(
            avg_overhead > 1.15,
            "DR average overhead {avg_overhead:.2} too small — FBQS should win clearly"
        );
        for p in &result.points {
            assert!(p.fbqs >= 2 && p.dr >= 2);
        }
    }

    #[test]
    fn point_counts_fall_with_tolerance() {
        let result = run_8b(Scale::Quick);
        let fbqs: Vec<usize> = result.points.iter().map(|p| p.fbqs).collect();
        for w in fbqs.windows(2) {
            assert!(w[1] <= w[0] + 5, "{fbqs:?}");
        }
    }

    #[test]
    fn table_renders_with_ratio_column() {
        let result = run_8b(Scale::Quick);
        let csv = result.to_table().to_csv();
        assert!(csv.lines().next().unwrap().contains("DR/FBQS"));
    }
}
