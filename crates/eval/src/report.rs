//! Plain-text table rendering for experiment output.

use std::fmt;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column header.
    pub fn new(title: impl Into<String>, header: &[&str]) -> TextTable {
        TextTable {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows as raw cells (for tests and CSV export).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let line: Vec<String> = cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            writeln!(f, "  {}", line.join("  "))
        };
        render(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        writeln!(f, "  {}", "-".repeat(total))?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a duration in milliseconds with one decimal.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = TextTable::new("Demo", &["algo", "rate"]);
        t.row(vec!["BQS".into(), "4.8%".into()]);
        t.row(vec!["FBQS".into(), "5.0%".into()]);
        let s = t.to_string();
        assert!(s.contains("Demo"));
        assert!(s.contains("BQS"));
        assert!(s.lines().count() >= 5);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_export() {
        let mut t = TextTable::new("x", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.048), "4.8%");
        assert_eq!(ms(std::time::Duration::from_micros(1500)), "1.5");
    }
}
