//! Evaluation metrics: compression rate and error-bound verification.

use bqs_core::metrics::DeviationMetric;
use bqs_geo::TimedPoint;

/// The paper's compression rate: `N_compressed / N_original` (lower is
/// better). Returns 0 for an empty original stream.
pub fn compression_rate(kept: usize, original: usize) -> f64 {
    if original == 0 {
        0.0
    } else {
        kept as f64 / original as f64
    }
}

/// Maps kept points back to their indices in the original stream.
///
/// Kept points must be an ordered subsequence of `original` (matched by
/// timestamp, then position); returns `None` when matching fails, which
/// would indicate a compressor emitted something it never received.
pub fn kept_indices(original: &[TimedPoint], kept: &[TimedPoint]) -> Option<Vec<usize>> {
    let mut out = Vec::with_capacity(kept.len());
    let mut cursor = 0usize;
    for k in kept {
        let idx = original[cursor..]
            .iter()
            .position(|p| p.t == k.t && p.pos == k.pos)?
            + cursor;
        out.push(idx);
        cursor = idx + 1;
    }
    Some(out)
}

/// Verifies an error-bounded compression end-to-end: every original point
/// must lie within `tolerance` of the chord of the kept pair bracketing it.
/// Returns the worst observed deviation or `None` when `kept` is not a
/// valid anchor-to-anchor subsequence of `original`.
pub fn verify_deviation_bound(
    original: &[TimedPoint],
    kept: &[TimedPoint],
    metric: DeviationMetric,
) -> Option<f64> {
    if original.is_empty() {
        return if kept.is_empty() { Some(0.0) } else { None };
    }
    let indices = kept_indices(original, kept)?;
    if indices.first() != Some(&0) || indices.last() != Some(&(original.len() - 1)) {
        return None;
    }
    let mut worst = 0.0f64;
    for w in indices.windows(2) {
        let (i, j) = (w[0], w[1]);
        let (a, b) = (original[i].pos, original[j].pos);
        for p in &original[i + 1..j] {
            worst = worst.max(metric.distance(p.pos, a, b));
        }
    }
    Some(worst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f64, f64)]) -> Vec<TimedPoint> {
        coords
            .iter()
            .enumerate()
            .map(|(i, (x, y))| TimedPoint::new(*x, *y, i as f64))
            .collect()
    }

    #[test]
    fn compression_rate_basics() {
        assert_eq!(compression_rate(5, 100), 0.05);
        assert_eq!(compression_rate(0, 0), 0.0);
        assert_eq!(compression_rate(100, 100), 1.0);
    }

    #[test]
    fn kept_indices_matches_subsequence() {
        let original = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 1.0), (3.0, 0.0)]);
        let kept = vec![original[0], original[2], original[3]];
        assert_eq!(kept_indices(&original, &kept), Some(vec![0, 2, 3]));
    }

    #[test]
    fn kept_indices_rejects_foreign_points() {
        let original = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let foreign = vec![TimedPoint::new(9.0, 9.0, 0.5)];
        assert_eq!(kept_indices(&original, &foreign), None);
    }

    #[test]
    fn verify_bound_happy_path() {
        let original = pts(&[(0.0, 0.0), (1.0, 0.4), (2.0, 0.0)]);
        let kept = vec![original[0], original[2]];
        let worst = verify_deviation_bound(&original, &kept, DeviationMetric::PointToLine).unwrap();
        assert!((worst - 0.4).abs() < 1e-12);
    }

    #[test]
    fn verify_bound_requires_both_anchors() {
        let original = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        // Missing the final anchor.
        let kept = vec![original[0], original[1]];
        assert_eq!(
            verify_deviation_bound(&original, &kept, DeviationMetric::PointToLine),
            None
        );
    }

    #[test]
    fn empty_cases() {
        assert_eq!(
            verify_deviation_bound(&[], &[], DeviationMetric::PointToLine),
            Some(0.0)
        );
        assert_eq!(
            verify_deviation_bound(&[], &pts(&[(0.0, 0.0)]), DeviationMetric::PointToLine),
            None
        );
    }
}
