//! Command execution for the `bqs` binary.

use crate::args::{Command, USAGE};
use bqs_baselines::{
    BufferedDpCompressor, BufferedGreedyCompressor, DeadReckoningCompressor, DpCompressor,
    MbrCompressor, SquishECompressor,
};
use bqs_core::fleet::{FleetConfig, FleetEngine, TrackId};
use bqs_core::stream::{compress_all, StreamCompressor};
use bqs_core::{BqsCompressor, BqsConfig, FastBqsCompressor};
use bqs_eval::experiments;
use bqs_eval::Scale;
use bqs_sim::{dataset, Trace};

/// Runs a parsed command, returning the text to print on success.
pub fn run(command: &Command) -> Result<String, String> {
    match command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Info => Ok(info()),
        Command::Generate {
            dataset,
            seed,
            full,
            out,
        } => generate(dataset, *seed, *full, out.as_deref()),
        Command::Compress {
            algorithm,
            input,
            tolerance,
            buffer,
            out,
        } => compress(algorithm, input, *tolerance, *buffer, out.as_deref()),
        Command::Verify {
            original,
            compressed,
            tolerance,
        } => verify(original, compressed, *tolerance),
        Command::Experiments { names, full } => run_experiments(names, *full),
        Command::Fleet {
            sessions,
            points,
            tolerance,
            algorithm,
            shards,
            seed,
            spill,
        } => fleet(
            *sessions,
            *points,
            *tolerance,
            algorithm,
            *shards,
            *seed,
            spill.as_deref(),
        ),
        Command::LogAppend {
            dir,
            input,
            track,
            algorithm,
            tolerance,
        } => log_append(dir, input, *track, algorithm, *tolerance),
        Command::LogQuery {
            dir,
            track,
            from,
            to,
            bbox,
            at,
            out,
        } => log_query(dir, *track, *from, *to, *bbox, *at, out.as_deref()),
        Command::LogCompact { dir, drop } => log_compact(dir, drop),
        Command::LogVerify { dir } => log_verify(dir),
    }
}

fn info() -> String {
    let spec = bqs_device::CamazotzSpec::paper();
    format!(
        "bqs — Bounded Quadrant System (Liu et al., ICDE 2015) reproduction\n\
         target platform: Camazotz (CC430F5137): {} B RAM, {} KB flash,\n\
         {} KB GPS budget, 1 fix/{} s, 12 B/record\n\
         uncompressed lifetime: {} days; at 5% compression: {} days\n",
        spec.ram_bytes,
        spec.flash_bytes / 1024,
        spec.gps_budget_bytes / 1024,
        spec.gps_interval_s,
        bqs_device::estimate_operational_days(1.0).unwrap_or(0),
        bqs_device::estimate_operational_days(0.05).unwrap_or(0),
    )
}

fn write_or_return(csv: String, out: Option<&str>, summary: String) -> Result<String, String> {
    match out {
        Some(path) => {
            std::fs::write(path, csv).map_err(|e| format!("cannot write {path}: {e}"))?;
            Ok(summary)
        }
        None => Ok(format!("{csv}\n{summary}")),
    }
}

fn generate(name: &str, seed: u64, full: bool, out: Option<&str>) -> Result<String, String> {
    let trace = match (name, full) {
        ("bat", true) => dataset::bat_dataset(seed),
        ("bat", false) => dataset::bat_dataset_sized(seed, 2, 2),
        ("vehicle", true) => dataset::vehicle_dataset(seed),
        ("vehicle", false) => dataset::vehicle_dataset_sized(seed, 8),
        ("synthetic", true) => dataset::synthetic_dataset(seed),
        ("synthetic", false) => dataset::synthetic_dataset_sized(seed, 4_000),
        _ => return Err(format!("unknown dataset: {name}")),
    };
    let summary = format!(
        "generated {}: {} points, {:.1} km travelled",
        trace.name,
        trace.len(),
        trace.travel_distance() / 1_000.0
    );
    write_or_return(trace.to_csv(), out, summary)
}

fn load_trace(path: &str) -> Result<Trace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Trace::from_csv(path.to_string(), &text)
}

fn compress(
    algorithm: &str,
    input: &str,
    tolerance: f64,
    buffer: usize,
    out: Option<&str>,
) -> Result<String, String> {
    let trace = load_trace(input)?;
    let points = trace.points.clone();

    let run = |c: &mut dyn StreamCompressor| -> Vec<bqs_geo::TimedPoint> {
        let mut kept = Vec::new();
        for p in &points {
            c.push(*p, &mut kept);
        }
        c.finish(&mut kept);
        kept
    };

    let config = BqsConfig::new(tolerance).map_err(|e| e.to_string())?;
    let start = std::time::Instant::now();
    let kept = match algorithm {
        "bqs" => run(&mut BqsCompressor::new(config)),
        "fbqs" => run(&mut FastBqsCompressor::new(config)),
        "bdp" => run(&mut BufferedDpCompressor::new(tolerance, buffer.max(2))),
        "bgd" => run(&mut BufferedGreedyCompressor::new(tolerance, buffer.max(1))),
        "dp" => run(&mut DpCompressor::new(tolerance)),
        "dr" => run(&mut DeadReckoningCompressor::new(tolerance)),
        "squish-e" => run(&mut SquishECompressor::new(tolerance)),
        "mbr" => run(&mut MbrCompressor::new(tolerance, buffer.max(2))),
        other => return Err(format!("unknown algorithm: {other}")),
    };
    let elapsed = start.elapsed();

    let compressed = Trace::new(format!("{}:{algorithm}", trace.name), kept);
    let summary = format!(
        "{algorithm}: {} → {} points (rate {:.2}%), {:.1} ms",
        trace.len(),
        compressed.len(),
        100.0 * compressed.len() as f64 / trace.len().max(1) as f64,
        elapsed.as_secs_f64() * 1_000.0
    );
    write_or_return(compressed.to_csv(), out, summary)
}

fn verify(original: &str, compressed: &str, tolerance: f64) -> Result<String, String> {
    let orig = load_trace(original)?;
    let comp = load_trace(compressed)?;
    let worst = bqs_eval::verify_deviation_bound(
        &orig.points,
        &comp.points,
        bqs_core::metrics::DeviationMetric::PointToLine,
    )
    .ok_or("compressed trace is not an anchored subsequence of the original")?;
    if worst <= tolerance + 1e-9 {
        Ok(format!(
            "OK: worst deviation {worst:.3} m ≤ tolerance {tolerance} m \
             ({} of {} points kept)",
            comp.len(),
            orig.len()
        ))
    } else {
        Err(format!(
            "FAIL: worst deviation {worst:.3} m > tolerance {tolerance} m"
        ))
    }
}

/// Drives a simulated fleet of `sessions` trackers through one
/// [`FleetEngine`], then cross-checks one session against solo compression
/// (the interleaving-equivalence guarantee). With `spill`, session output
/// is additionally flushed into a [`TrajectoryLog`] on close and the probe
/// session is re-read from disk for the same check.
fn fleet(
    sessions: usize,
    points: usize,
    tolerance: f64,
    algorithm: &str,
    shards: usize,
    seed: u64,
    spill: Option<&str>,
) -> Result<String, String> {
    use bqs_core::fleet::{FleetSink, TeeFleetSink};
    use bqs_sim::{RandomWalkConfig, RandomWalkModel};
    use bqs_tlog::{LogConfig, SpillSink, TrajectoryLog};
    use std::collections::HashMap;

    let config = BqsConfig::new(tolerance).map_err(|e| e.to_string())?;
    let traces: Vec<Vec<bqs_geo::TimedPoint>> = (0..sessions)
        .map(|t| {
            let cfg = RandomWalkConfig {
                samples: points,
                ..RandomWalkConfig::default()
            };
            RandomWalkModel::new(cfg)
                .generate(seed.wrapping_add(t as u64))
                .points
        })
        .collect();

    // One generic driver for both compressor families.
    fn drive<C>(
        traces: &[Vec<bqs_geo::TimedPoint>],
        fleet_config: FleetConfig,
        factory: impl Fn() -> C,
        out: &mut dyn FleetSink,
    ) -> (bqs_core::DecisionStats, f64)
    where
        C: StreamCompressor + bqs_core::stream::HasDecisionStats,
    {
        let mut engine = FleetEngine::new(fleet_config, factory);
        let n = traces.first().map_or(0, Vec::len);
        let start = std::time::Instant::now();
        for i in 0..n {
            for (t, trace) in traces.iter().enumerate() {
                engine.push_tagged(t as TrackId, trace[i], out);
            }
        }
        engine.finish_all(out);
        (engine.stats(), start.elapsed().as_secs_f64())
    }

    let fleet_config = FleetConfig {
        shards,
        ..FleetConfig::default()
    };
    let mut log = match spill {
        Some(dir) => {
            let (log, _) =
                TrajectoryLog::open(dir, LogConfig::default()).map_err(|e| e.to_string())?;
            // Fleet runs reuse track ids 0..sessions with simulated
            // timestamps starting at 0; appending onto an earlier run's
            // data would fail the log's time-order check with a cryptic
            // error, so refuse up front.
            if !log.tracks().is_empty() {
                return Err(format!(
                    "--spill {dir} already contains {} track(s); \
                     use a fresh directory per fleet run",
                    log.tracks().len()
                ));
            }
            Some(log)
        }
        None => None,
    };
    let mut tagged: HashMap<TrackId, Vec<bqs_geo::TimedPoint>> = HashMap::new();
    let mut spill_line = String::new();
    let (stats, elapsed) = {
        let mut spill_sink = log.as_mut().map(SpillSink::new);
        let run = |out: &mut dyn FleetSink| match algorithm {
            "bqs" => Ok(drive(
                &traces,
                fleet_config,
                move || BqsCompressor::new(config),
                out,
            )),
            "fbqs" => Ok(drive(
                &traces,
                fleet_config,
                move || FastBqsCompressor::new(config),
                out,
            )),
            other => Err(format!("fleet supports bqs|fbqs, got {other}")),
        };
        let result = match spill_sink.as_mut() {
            Some(sink) => run(&mut TeeFleetSink::new(&mut tagged, sink))?,
            None => run(&mut tagged)?,
        };
        if let Some(sink) = spill_sink {
            let reports = sink.finish().map_err(|e| e.to_string())?;
            let bytes: u64 = reports.iter().map(|r| r.bytes).sum();
            let spilled: u64 = reports.iter().map(|r| r.points).sum();
            spill_line = format!(
                "spilled {} sessions, {spilled} points, {bytes} B \
                 ({:.2} B/point) to {}\n",
                reports.len(),
                bytes as f64 / spilled.max(1) as f64,
                spill.unwrap_or("?"),
            );
        }
        result
    };

    // Equivalence spot-check: the session with the most output must be
    // byte-identical to compressing its trace alone.
    let (&probe, fleet_kept) = tagged
        .iter()
        .max_by_key(|(_, v)| v.len())
        .ok_or("fleet produced no output")?;
    let solo = match algorithm {
        "bqs" => compress_all(
            &mut BqsCompressor::new(config),
            traces[probe as usize].iter().copied(),
        ),
        _ => compress_all(
            &mut FastBqsCompressor::new(config),
            traces[probe as usize].iter().copied(),
        ),
    };
    if fleet_kept != &solo {
        return Err(format!(
            "session {probe}: fleet output diverged from solo compression \
             ({} vs {} points)",
            fleet_kept.len(),
            solo.len()
        ));
    }
    if let Some(log) = &log {
        let from_disk = log.read_track(probe).map_err(|e| e.to_string())?;
        if from_disk != solo {
            return Err(format!(
                "session {probe}: spilled log diverged from solo compression \
                 ({} vs {} points)",
                from_disk.len(),
                solo.len()
            ));
        }
    }

    let total: usize = traces.iter().map(Vec::len).sum();
    let kept: usize = tagged.values().map(Vec::len).sum();
    Ok(format!(
        "fleet: {sessions} sessions × {points} points \
         ({algorithm}, {tolerance} m, {shards} shards, seed {seed})\n\
         {total} → {kept} points (rate {:.2}%), {:.2} Mpts/s\n\
         pruning power {:.4}; session {probe} verified identical to solo compression\n\
         {spill_line}",
        100.0 * kept as f64 / total.max(1) as f64,
        total as f64 / elapsed.max(1e-9) / 1e6,
        stats.pruning_power(),
    ))
}

/// `bqs log append`: optionally compress a trace, then append it to the
/// log under the given track id.
fn log_append(
    dir: &str,
    input: &str,
    track: u64,
    algorithm: &str,
    tolerance: f64,
) -> Result<String, String> {
    use bqs_tlog::{LogConfig, TrajectoryLog};

    let trace = load_trace(input)?;
    let config = BqsConfig::new(tolerance).map_err(|e| e.to_string())?;
    let points = match algorithm {
        "none" => trace.points.clone(),
        "bqs" => compress_all(
            &mut BqsCompressor::new(config),
            trace.points.iter().copied(),
        ),
        "fbqs" => compress_all(
            &mut FastBqsCompressor::new(config),
            trace.points.iter().copied(),
        ),
        other => return Err(format!("log append supports none|bqs|fbqs, got {other}")),
    };
    let (mut log, recovery) =
        TrajectoryLog::open(dir, LogConfig::default()).map_err(|e| e.to_string())?;
    let receipt = log.append(track, &points).map_err(|e| e.to_string())?;
    let mut out = recovery_line(&recovery);
    out.push_str(&format!(
        "appended track {track}: {} → {} points ({algorithm}), {} B \
         ({:.2} B/point, naive {} B/point) into segment {:06}\n",
        trace.len(),
        receipt.points,
        receipt.bytes,
        receipt.bytes as f64 / receipt.points.max(1) as f64,
        bqs_tlog::NAIVE_POINT_BYTES,
        receipt.segment,
    ));
    Ok(out)
}

/// Describes what `TrajectoryLog::open` repaired, or `""` when nothing
/// was; every log command prints it so on-disk mutation is never silent.
fn recovery_line(recovery: &bqs_tlog::RecoveryReport) -> String {
    if recovery.truncated_segments == 0 {
        String::new()
    } else {
        format!(
            "recovered: truncated {} torn segment tail(s), {} B dropped\n",
            recovery.truncated_segments, recovery.truncated_bytes
        )
    }
}

/// `bqs log query`: time-range / bounding-box queries and point-in-time
/// reconstruction, CSV output.
fn log_query(
    dir: &str,
    track: Option<u64>,
    from: Option<f64>,
    to: Option<f64>,
    bbox: Option<[f64; 4]>,
    at: Option<f64>,
    out: Option<&str>,
) -> Result<String, String> {
    use bqs_tlog::{LogConfig, TimeRange, TrajectoryLog};

    // Also guarded in the argument parser; re-checked here because
    // `run` is a public entry point.
    if at.is_some() && track.is_none() {
        return Err("--at requires --track".to_string());
    }
    if at.is_some() && (from.is_some() || to.is_some() || bbox.is_some()) {
        return Err("--at cannot be combined with --from/--to/--bbox".to_string());
    }

    let (log, recovery) =
        TrajectoryLog::open(dir, LogConfig::default()).map_err(|e| e.to_string())?;
    let recovered = recovery_line(&recovery);

    if let (Some(t), Some(track)) = (at, track) {
        return match log.reconstruct_at(track, t).map_err(|e| e.to_string())? {
            Some(p) => Ok(format!(
                "{recovered}track {track} at t={t}: x={:.3} y={:.3}\n",
                p.pos.x, p.pos.y
            )),
            None => Err(format!("track {track} has no data")),
        };
    }

    let range = TimeRange::new(
        from.unwrap_or(f64::NEG_INFINITY),
        to.unwrap_or(f64::INFINITY),
    );
    let result = match bbox {
        Some([x0, y0, x1, y1]) => {
            let area = bqs_geo::Rect::from_corners(
                bqs_geo::Point2::new(x0, y0),
                bqs_geo::Point2::new(x1, y1),
            );
            log.query_bbox(track, area, Some(range))
                .map_err(|e| e.to_string())?
        }
        None => log
            .query_time_range(track, range)
            .map_err(|e| e.to_string())?,
    };

    let mut csv = String::from("track,x,y,t\n");
    for slice in &result.slices {
        for p in &slice.points {
            csv.push_str(&format!(
                "{},{},{},{}\n",
                slice.track, p.pos.x, p.pos.y, p.t
            ));
        }
    }
    let summary = format!(
        "{} tracks, {} points (decoded {} of {} records via the index)\n",
        result.slices.len(),
        result.total_points(),
        result.stats.decoded_records,
        result.stats.candidate_records,
    );
    match out {
        Some(path) => {
            std::fs::write(path, csv).map_err(|e| format!("cannot write {path}: {e}"))?;
            Ok(format!("{recovered}{summary}"))
        }
        None => Ok(format!("{recovered}{csv}{summary}")),
    }
}

/// `bqs log compact`: tombstone the dropped tracks, then rewrite live
/// records into fresh segments.
fn log_compact(dir: &str, drop: &[u64]) -> Result<String, String> {
    use bqs_tlog::{LogConfig, TrajectoryLog};

    let (mut log, recovery) =
        TrajectoryLog::open(dir, LogConfig::default()).map_err(|e| e.to_string())?;
    let mut dropped = 0usize;
    for &track in drop {
        if log.delete_track(track).map_err(|e| e.to_string())? {
            dropped += 1;
        }
    }
    let report = log.compact().map_err(|e| e.to_string())?;
    Ok(format!(
        "{}dropped {dropped} track(s); compacted {} → {} segments, \
         {} → {} B ({} records removed)\n",
        recovery_line(&recovery),
        report.segments_before,
        report.segments_after,
        report.bytes_before,
        report.bytes_after,
        report.records_dropped,
    ))
}

/// `bqs log verify`: strict full-scan verification (no repair).
fn log_verify(dir: &str) -> Result<String, String> {
    let report = bqs_tlog::verify_dir(dir).map_err(|e| format!("FAIL: {e}"))?;
    Ok(format!(
        "OK: {} segments, {} records (+{} tombstones), {} points, {} B \
         ({:.2} B/point on disk, naive {} B/point)\n",
        report.segments,
        report.records,
        report.tombstones,
        report.points,
        report.file_bytes,
        report.file_bytes_per_point(),
        bqs_tlog::NAIVE_POINT_BYTES,
    ))
}

fn run_experiments(names: &[String], full: bool) -> Result<String, String> {
    let scale = if full { Scale::Full } else { Scale::Quick };
    let wanted = |name: &str| names.is_empty() || names.iter().any(|n| n == name || n == "all");
    let mut out = String::new();
    if wanted("fig3") {
        out.push_str(&experiments::fig3::run(scale).to_table().to_string());
    }
    if wanted("fig6") {
        let r = experiments::fig6::run(scale);
        out.push_str(&r.bat.to_table().to_string());
        out.push_str(&r.vehicle.to_table().to_string());
    }
    if wanted("fig7") {
        let r = experiments::fig7::run(scale);
        out.push_str(&r.bat.to_table().to_string());
        out.push_str(&r.vehicle.to_table().to_string());
    }
    if wanted("fig8a") {
        let r = experiments::fig8::run_8a(scale);
        out.push_str(&format!(
            "Fig. 8a — synthetic trace: {} points, {:.0} m × {:.0} m\n",
            r.trace.len(),
            r.extent.0,
            r.extent.1
        ));
    }
    if wanted("fig8b") {
        out.push_str(&experiments::fig8::run_8b(scale).to_table().to_string());
    }
    if wanted("table1") {
        out.push_str(&experiments::table1::run(scale).to_table().to_string());
    }
    if wanted("table2") {
        out.push_str(&experiments::table2::run(scale).to_table().to_string());
    }
    if wanted("table3") {
        out.push_str(&experiments::table3::run(scale).to_table().to_string());
    }
    if wanted("ablation") {
        out.push_str(&experiments::ablation::run(scale).to_table().to_string());
    }
    if wanted("fleet") {
        out.push_str(&experiments::fleet::run(scale).to_table().to_string());
    }
    if wanted("storage") {
        out.push_str(&experiments::storage::run(scale).to_table().to_string());
    }
    if wanted("extended") {
        out.push_str(&experiments::extended::run(scale).to_table().to_string());
    }
    if out.is_empty() {
        return Err(format!("no experiment matched {names:?}"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("bqs-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn info_mentions_the_platform() {
        let text = run(&Command::Info).unwrap();
        assert!(text.contains("Camazotz"));
        assert!(text.contains("4096 B RAM"));
    }

    #[test]
    fn generate_compress_verify_round_trip() {
        let trace_path = tmp("trace.csv");
        let out_path = tmp("compressed.csv");

        let summary = run(&Command::Generate {
            dataset: "synthetic".into(),
            seed: 5,
            full: false,
            out: Some(trace_path.clone()),
        })
        .unwrap();
        assert!(summary.contains("generated synthetic"));

        let summary = run(&Command::Compress {
            algorithm: "fbqs".into(),
            input: trace_path.clone(),
            tolerance: 10.0,
            buffer: 32,
            out: Some(out_path.clone()),
        })
        .unwrap();
        assert!(summary.contains("fbqs:"), "{summary}");

        let verdict = run(&Command::Verify {
            original: trace_path,
            compressed: out_path,
            tolerance: 10.0,
        })
        .unwrap();
        assert!(verdict.starts_with("OK"), "{verdict}");
    }

    #[test]
    fn verify_fails_for_wrong_tolerance() {
        let trace_path = tmp("trace2.csv");
        let out_path = tmp("compressed2.csv");
        run(&Command::Generate {
            dataset: "synthetic".into(),
            seed: 6,
            full: false,
            out: Some(trace_path.clone()),
        })
        .unwrap();
        run(&Command::Compress {
            algorithm: "bqs".into(),
            input: trace_path.clone(),
            tolerance: 50.0,
            buffer: 32,
            out: Some(out_path.clone()),
        })
        .unwrap();
        // A 50 m compression will not satisfy a 0.5 m verification.
        let err = run(&Command::Verify {
            original: trace_path,
            compressed: out_path,
            tolerance: 0.5,
        })
        .unwrap_err();
        assert!(err.starts_with("FAIL"), "{err}");
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let err = run(&Command::Compress {
            algorithm: "fbqs".into(),
            input: "/nonexistent/x.csv".into(),
            tolerance: 5.0,
            buffer: 32,
            out: None,
        })
        .unwrap_err();
        assert!(err.contains("cannot read"));
    }

    #[test]
    fn end_to_end_through_the_parser() {
        let text = crate::main_with_args(&["info".to_string()]).unwrap();
        assert!(text.contains("Camazotz"));
        let (err, code) = crate::main_with_args(&["bogus".to_string()]).unwrap_err();
        assert_eq!(code, 2);
        assert!(err.contains("unknown command"));
    }

    #[test]
    fn every_algorithm_runs_through_the_cli() {
        let trace_path = tmp("trace3.csv");
        run(&Command::Generate {
            dataset: "vehicle".into(),
            seed: 9,
            full: false,
            out: Some(trace_path.clone()),
        })
        .unwrap();
        for algo in ["bqs", "fbqs", "bdp", "bgd", "dp", "dr", "squish-e", "mbr"] {
            let summary = run(&Command::Compress {
                algorithm: algo.into(),
                input: trace_path.clone(),
                tolerance: 15.0,
                buffer: 32,
                out: Some(tmp(&format!("out_{algo}.csv"))),
            })
            .unwrap();
            assert!(summary.contains(algo), "{summary}");
        }
    }

    #[test]
    fn fleet_subcommand_runs_and_verifies() {
        let text = run(&Command::Fleet {
            sessions: 6,
            points: 120,
            tolerance: 10.0,
            algorithm: "fbqs".into(),
            shards: 4,
            seed: 1,
            spill: None,
        })
        .unwrap();
        assert!(text.contains("6 sessions"), "{text}");
        assert!(text.contains("verified identical"), "{text}");
        let text = run(&Command::Fleet {
            sessions: 3,
            points: 80,
            tolerance: 8.0,
            algorithm: "bqs".into(),
            shards: 2,
            seed: 1,
            spill: None,
        })
        .unwrap();
        assert!(text.contains("3 sessions"), "{text}");
    }

    #[test]
    fn fleet_runs_are_reproducible_per_seed() {
        let fleet_cmd = |seed: u64| Command::Fleet {
            sessions: 4,
            points: 100,
            tolerance: 10.0,
            algorithm: "fbqs".into(),
            shards: 4,
            seed,
            spill: None,
        };
        // Same seed → identical point counts in the summary; a different
        // seed changes the generated traces (strip the Mpts/s timing).
        let strip = |s: String| {
            s.lines()
                .filter(|l| !l.contains("Mpts/s"))
                .map(str::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        };
        let a = strip(run(&fleet_cmd(7)).unwrap());
        let b = strip(run(&fleet_cmd(7)).unwrap());
        let c = strip(run(&fleet_cmd(8)).unwrap());
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn fleet_spill_makes_the_run_durable_and_queryable() {
        let dir = tmp("fleet-spill-log");
        let _ = std::fs::remove_dir_all(&dir);
        let text = run(&Command::Fleet {
            sessions: 5,
            points: 150,
            tolerance: 10.0,
            algorithm: "fbqs".into(),
            shards: 4,
            seed: 3,
            spill: Some(dir.clone()),
        })
        .unwrap();
        assert!(text.contains("spilled 5 sessions"), "{text}");

        let verdict = run(&Command::LogVerify { dir: dir.clone() }).unwrap();
        assert!(verdict.starts_with("OK"), "{verdict}");

        let listing = run(&Command::LogQuery {
            dir: dir.clone(),
            track: None,
            from: None,
            to: None,
            bbox: None,
            at: None,
            out: None,
        })
        .unwrap();
        assert!(listing.contains("5 tracks"), "{listing}");

        // Re-spilling into a used directory is refused up front rather
        // than failing deep in the log with a time-order error.
        let err = run(&Command::Fleet {
            sessions: 5,
            points: 150,
            tolerance: 10.0,
            algorithm: "fbqs".into(),
            shards: 4,
            seed: 3,
            spill: Some(dir),
        })
        .unwrap_err();
        assert!(err.contains("fresh directory"), "{err}");
    }

    #[test]
    fn log_append_query_compact_verify_round_trip() {
        let dir = tmp("log-cli");
        let _ = std::fs::remove_dir_all(&dir);
        let trace_path = tmp("log-cli-trace.csv");
        run(&Command::Generate {
            dataset: "synthetic".into(),
            seed: 11,
            full: false,
            out: Some(trace_path.clone()),
        })
        .unwrap();

        let appended = run(&Command::LogAppend {
            dir: dir.clone(),
            input: trace_path.clone(),
            track: 1,
            algorithm: "fbqs".into(),
            tolerance: 10.0,
        })
        .unwrap();
        assert!(appended.contains("appended track 1"), "{appended}");
        run(&Command::LogAppend {
            dir: dir.clone(),
            input: trace_path,
            track: 2,
            algorithm: "none".into(),
            tolerance: 10.0,
        })
        .unwrap();

        let csv_path = tmp("log-cli-query.csv");
        let summary = run(&Command::LogQuery {
            dir: dir.clone(),
            track: Some(2),
            from: Some(0.0),
            to: Some(1e12),
            bbox: None,
            at: None,
            out: Some(csv_path.clone()),
        })
        .unwrap();
        assert!(summary.contains("1 tracks"), "{summary}");
        let csv = std::fs::read_to_string(&csv_path).unwrap();
        assert!(csv.starts_with("track,x,y,t"), "{}", &csv[..40]);

        let at = run(&Command::LogQuery {
            dir: dir.clone(),
            track: Some(1),
            from: None,
            to: None,
            bbox: None,
            at: Some(30.0),
            out: None,
        })
        .unwrap();
        assert!(at.contains("track 1 at t=30"), "{at}");

        let compacted = run(&Command::LogCompact {
            dir: dir.clone(),
            drop: vec![2],
        })
        .unwrap();
        assert!(compacted.contains("dropped 1 track"), "{compacted}");

        let verdict = run(&Command::LogVerify { dir: dir.clone() }).unwrap();
        assert!(verdict.starts_with("OK"), "{verdict}");

        // Track 2 is gone, track 1 remains.
        let listing = run(&Command::LogQuery {
            dir,
            track: None,
            from: None,
            to: None,
            bbox: None,
            at: None,
            out: None,
        })
        .unwrap();
        assert!(listing.contains("1 tracks"), "{listing}");
    }

    #[test]
    fn experiments_subcommand_quick() {
        let cmd = parse(&["experiments".to_string(), "table2".to_string()]).unwrap();
        let text = run(&cmd).unwrap();
        assert!(text.contains("Table II"));
        let err = run(&Command::Experiments {
            names: vec!["nope".into()],
            full: false,
        })
        .unwrap_err();
        assert!(err.contains("no experiment matched"));
    }
}
