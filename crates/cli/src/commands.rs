//! Command execution for the `bqs` binary.
//!
//! Every command runs through [`execute`], which returns a typed
//! [`CliError`]; [`run`] converts it to the printable message at one
//! place. User-reachable failures — I/O on named paths, the durable
//! log, the network layer, invalid requests — are never `unwrap`s.

use crate::args::{Command, USAGE};
use crate::bench;
use crate::error::CliError;
use bqs_baselines::{
    BufferedDpCompressor, BufferedGreedyCompressor, DeadReckoningCompressor, DpCompressor,
    MbrCompressor, SquishECompressor,
};
use bqs_core::fleet::{
    worker_of, FleetConfig, FleetJoin, FleetSink, ParallelConfig, ParallelFleet, SessionReport,
    TrackId,
};
use bqs_core::stream::{compress_all, HasDecisionStats, StreamCompressor};
use bqs_core::{BqsCompressor, BqsConfig, FastBqsCompressor};
use bqs_eval::experiments;
use bqs_eval::Scale;
use bqs_sim::{dataset, Trace};

/// Runs a parsed command, returning the text to print on success. The
/// string form of [`execute`]: every typed error renders through its
/// `Display` here, and nowhere else.
pub fn run(command: &Command) -> Result<String, String> {
    execute(command).map_err(|e| e.to_string())
}

/// Runs a parsed command with typed errors.
pub fn execute(command: &Command) -> Result<String, CliError> {
    match command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Info => Ok(info()),
        Command::Generate {
            dataset,
            seed,
            full,
            out,
        } => generate(dataset, *seed, *full, out.as_deref()),
        Command::Compress {
            algorithm,
            input,
            tolerance,
            buffer,
            out,
        } => compress(algorithm, input, *tolerance, *buffer, out.as_deref()),
        Command::Verify {
            original,
            compressed,
            tolerance,
        } => verify(original, compressed, *tolerance),
        Command::Experiments { names, full } => run_experiments(names, *full),
        Command::Fleet {
            sessions,
            points,
            tolerance,
            algorithm,
            shards,
            workers,
            seed,
            spill,
            query_after,
        } => fleet(FleetRun {
            sessions: *sessions,
            points: *points,
            tolerance: *tolerance,
            algorithm,
            shards: *shards,
            workers: *workers,
            seed: *seed,
            spill: spill.as_deref(),
            query_after: *query_after,
        }),
        Command::Query {
            dir,
            track,
            from,
            to,
            bbox,
            out,
        } => unified_query(dir, *track, *from, *to, *bbox, out.as_deref()),
        Command::LogAppend {
            dir,
            input,
            track,
            algorithm,
            tolerance,
        } => log_append(dir, input, *track, algorithm, *tolerance),
        Command::LogQuery {
            dir,
            track,
            from,
            to,
            bbox,
            at,
            out,
        } => log_query(dir, *track, *from, *to, *bbox, *at, out.as_deref()),
        Command::LogCompact { dir, drop } => log_compact(dir, drop),
        Command::LogVerify { dir } => log_verify(dir),
        Command::Serve {
            addr,
            workers,
            spill,
            tolerance,
            shards,
            io_threads,
            max_connections,
            port_file,
            metrics_interval,
            lateness,
            alerts,
            prom_addr,
            evict_idle,
        } => serve(ServeRun {
            addr,
            workers: *workers,
            spill,
            tolerance: *tolerance,
            shards: *shards,
            io_threads: *io_threads,
            max_connections: *max_connections,
            port_file: port_file.as_deref(),
            metrics_interval: *metrics_interval,
            lateness: *lateness,
            alerts,
            prom_addr: prom_addr.as_deref(),
            evict_idle: *evict_idle,
        }),
        Command::Loadgen {
            addr,
            sessions,
            points,
            seed,
            connections,
            batch,
            shutdown,
            disorder,
            backfill,
        } => loadgen(
            addr,
            *sessions,
            *points,
            *seed,
            *connections,
            *batch,
            *shutdown,
            *disorder,
            *backfill,
        ),
        Command::Subscribe {
            addr,
            track,
            bbox,
            out,
        } => subscribe(addr, *track, *bbox, out.as_deref()),
        Command::Bench {
            quick,
            seed,
            out,
            compare,
            current,
        } => bench::run(
            *quick,
            *seed,
            out.as_deref(),
            compare.as_deref(),
            current.as_deref(),
        ),
        Command::Metrics { addr, watch, prom } => metrics(addr, *watch, *prom),
        Command::Trace { addr, last, conn } => trace(addr, *last, *conn),
        Command::Analyze { deny, lints, root } => analyze(*deny, lints, root.as_deref()),
    }
}

/// `bqs analyze`: the project-native static analysis pass — source
/// lints plus code↔spec consistency checks — over a workspace tree.
/// With `deny`, any finding is an error (the CI gate); without it the
/// findings are the report.
fn analyze(deny: bool, lints: &[String], root: Option<&str>) -> Result<String, CliError> {
    bqs_analyze::validate_filter(lints).map_err(CliError::Invalid)?;
    let root = std::path::PathBuf::from(root.unwrap_or("."));
    if !root.join("Cargo.toml").is_file() {
        return Err(CliError::invalid(format!(
            "{} is not a workspace root (no Cargo.toml); run from the repo or pass ROOT",
            root.display()
        )));
    }
    let config = bqs_analyze::Config {
        root: root.clone(),
        only: lints.to_vec(),
    };
    let report = bqs_analyze::run(&config)
        .map_err(|e| CliError::io("analyze", root.display().to_string(), e))?;
    let mut out = String::new();
    for finding in &report.findings {
        out.push_str(&finding.to_string());
        out.push('\n');
    }
    let summary = format!(
        "analyze: {} finding(s) across {} file(s) scanned",
        report.findings.len(),
        report.files_scanned
    );
    if deny && !report.findings.is_empty() {
        return Err(CliError::Invalid(format!("{out}{summary}")));
    }
    out.push_str(&summary);
    Ok(out)
}

fn info() -> String {
    let spec = bqs_device::CamazotzSpec::paper();
    format!(
        "bqs — Bounded Quadrant System (Liu et al., ICDE 2015) reproduction\n\
         target platform: Camazotz (CC430F5137): {} B RAM, {} KB flash,\n\
         {} KB GPS budget, 1 fix/{} s, 12 B/record\n\
         uncompressed lifetime: {} days; at 5% compression: {} days\n",
        spec.ram_bytes,
        spec.flash_bytes / 1024,
        spec.gps_budget_bytes / 1024,
        spec.gps_interval_s,
        bqs_device::estimate_operational_days(1.0).unwrap_or(0),
        bqs_device::estimate_operational_days(0.05).unwrap_or(0),
    )
}

fn write_or_return(csv: String, out: Option<&str>, summary: String) -> Result<String, CliError> {
    match out {
        Some(path) => {
            std::fs::write(path, csv).map_err(|e| CliError::io("write", path, e))?;
            Ok(summary)
        }
        None => Ok(format!("{csv}\n{summary}")),
    }
}

/// The one formatter for `track,x,y,t` point rows. Both query commands
/// (`bqs query` over the unified engine, `bqs log query` over a flat
/// log) and the fleet's `--query-after` output build their CSV here, so
/// the formats can never drift apart.
fn slices_csv(slices: &[bqs_tlog::TrackSlice]) -> String {
    let mut csv = String::from("track,x,y,t\n");
    for slice in slices {
        for p in &slice.points {
            csv.push_str(&format!(
                "{},{},{},{}\n",
                slice.track, p.pos.x, p.pos.y, p.t
            ));
        }
    }
    csv
}

fn generate(name: &str, seed: u64, full: bool, out: Option<&str>) -> Result<String, CliError> {
    let trace = match (name, full) {
        ("bat", true) => dataset::bat_dataset(seed),
        ("bat", false) => dataset::bat_dataset_sized(seed, 2, 2),
        ("vehicle", true) => dataset::vehicle_dataset(seed),
        ("vehicle", false) => dataset::vehicle_dataset_sized(seed, 8),
        ("synthetic", true) => dataset::synthetic_dataset(seed),
        ("synthetic", false) => dataset::synthetic_dataset_sized(seed, 4_000),
        _ => return Err(CliError::Invalid(format!("unknown dataset: {name}"))),
    };
    let summary = format!(
        "generated {}: {} points, {:.1} km travelled",
        trace.name,
        trace.len(),
        trace.travel_distance() / 1_000.0
    );
    write_or_return(trace.to_csv(), out, summary)
}

fn load_trace(path: &str) -> Result<Trace, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| CliError::io("read", path, e))?;
    Trace::from_csv(path.to_string(), &text).map_err(CliError::Invalid)
}

fn compress(
    algorithm: &str,
    input: &str,
    tolerance: f64,
    buffer: usize,
    out: Option<&str>,
) -> Result<String, CliError> {
    let trace = load_trace(input)?;
    let points = trace.points.clone();

    let run = |c: &mut dyn StreamCompressor| -> Vec<bqs_geo::TimedPoint> {
        let mut kept = Vec::new();
        for p in &points {
            c.push(*p, &mut kept);
        }
        c.finish(&mut kept);
        kept
    };

    let config = BqsConfig::new(tolerance).map_err(CliError::invalid)?;
    let start = std::time::Instant::now();
    let kept = match algorithm {
        "bqs" => run(&mut BqsCompressor::new(config)),
        "fbqs" => run(&mut FastBqsCompressor::new(config)),
        "bdp" => run(&mut BufferedDpCompressor::new(tolerance, buffer.max(2))),
        "bgd" => run(&mut BufferedGreedyCompressor::new(tolerance, buffer.max(1))),
        "dp" => run(&mut DpCompressor::new(tolerance)),
        "dr" => run(&mut DeadReckoningCompressor::new(tolerance)),
        "squish-e" => run(&mut SquishECompressor::new(tolerance)),
        "mbr" => run(&mut MbrCompressor::new(tolerance, buffer.max(2))),
        other => return Err(CliError::Invalid(format!("unknown algorithm: {other}"))),
    };
    let elapsed = start.elapsed();

    let compressed = Trace::new(format!("{}:{algorithm}", trace.name), kept);
    let summary = format!(
        "{algorithm}: {} → {} points (rate {:.2}%), {:.1} ms",
        trace.len(),
        compressed.len(),
        100.0 * compressed.len() as f64 / trace.len().max(1) as f64,
        elapsed.as_secs_f64() * 1_000.0
    );
    write_or_return(compressed.to_csv(), out, summary)
}

fn verify(original: &str, compressed: &str, tolerance: f64) -> Result<String, CliError> {
    let orig = load_trace(original)?;
    let comp = load_trace(compressed)?;
    let worst = bqs_eval::verify_deviation_bound(
        &orig.points,
        &comp.points,
        bqs_core::metrics::DeviationMetric::PointToLine,
    )
    .ok_or_else(|| {
        CliError::invalid("compressed trace is not an anchored subsequence of the original")
    })?;
    if worst <= tolerance + 1e-9 {
        Ok(format!(
            "OK: worst deviation {worst:.3} m ≤ tolerance {tolerance} m \
             ({} of {} points kept)",
            comp.len(),
            orig.len()
        ))
    } else {
        Err(CliError::Invalid(format!(
            "FAIL: worst deviation {worst:.3} m > tolerance {tolerance} m"
        )))
    }
}

/// Per-worker sink of the `bqs fleet` command: collects tagged output in
/// memory and, when spilling, makes closed sessions durable in the worker
/// shard's private [`bqs_tlog::TrajectoryLog`].
struct FleetShardSink {
    tagged: std::collections::HashMap<TrackId, Vec<bqs_geo::TimedPoint>>,
    spill: Option<bqs_tlog::SpillSink<bqs_tlog::TrajectoryLog>>,
}

impl FleetSink for FleetShardSink {
    fn accept(&mut self, track: TrackId, point: bqs_geo::TimedPoint) {
        self.tagged.entry(track).or_default().push(point);
        if let Some(sink) = self.spill.as_mut() {
            sink.accept(track, point);
        }
    }

    fn session_closed(&mut self, report: &SessionReport) {
        if let Some(sink) = self.spill.as_mut() {
            sink.session_closed(report);
        }
    }
}

/// Round-robin feeds every trace through a [`ParallelFleet`] and joins;
/// generic over the compressor family.
fn drive_parallel<C, F>(
    traces: &[Vec<bqs_geo::TimedPoint>],
    config: ParallelConfig,
    factory: F,
    mut logs: Vec<Option<bqs_tlog::TrajectoryLog>>,
) -> (FleetJoin<FleetShardSink>, f64)
where
    C: StreamCompressor + HasDecisionStats + Clone + Send + 'static,
    F: Fn() -> C + Clone + Send + 'static,
{
    let mut fleet = ParallelFleet::new(config, factory, |shard| FleetShardSink {
        tagged: std::collections::HashMap::new(),
        spill: logs[shard].take().map(bqs_tlog::SpillSink::new),
    });
    let n = traces.first().map_or(0, Vec::len);
    let start = std::time::Instant::now();
    for i in 0..n {
        for (t, trace) in traces.iter().enumerate() {
            fleet.push(t as TrackId, trace[i]);
        }
    }
    let join = fleet.join();
    (join, start.elapsed().as_secs_f64())
}

/// Parameters of one `bqs fleet` invocation.
struct FleetRun<'a> {
    sessions: usize,
    points: usize,
    tolerance: f64,
    algorithm: &'a str,
    shards: usize,
    workers: usize,
    seed: u64,
    spill: Option<&'a str>,
    query_after: Option<[f64; 2]>,
}

/// Drives a simulated fleet of `sessions` trackers through the parallel
/// sharded runtime ([`ParallelFleet`]; one worker reproduces the serial
/// engine), then cross-checks one session against solo compression (the
/// interleaving-equivalence guarantee). With `spill`, session output is
/// flushed on close into one [`bqs_tlog::TrajectoryLog`] per worker shard
/// (`shard-<k>/` subdirectories when `workers > 1`) and the probe session
/// is re-read from disk for the same check.
///
/// The report is deterministic for a given seed and worker count: the
/// per-shard table is sorted by (shard, track), never by join order, and
/// the compressed data itself is identical for *any* worker count.
fn fleet(run: FleetRun<'_>) -> Result<String, CliError> {
    use bqs_sim::{RandomWalkConfig, RandomWalkModel};
    use bqs_tlog::{LogConfig, TrajectoryLog};
    use std::collections::HashMap;

    let FleetRun {
        sessions,
        points,
        tolerance,
        algorithm,
        shards,
        workers,
        seed,
        spill,
        query_after,
    } = run;
    let workers = workers.max(1);
    let config = BqsConfig::new(tolerance).map_err(CliError::invalid)?;
    let traces: Vec<Vec<bqs_geo::TimedPoint>> = (0..sessions)
        .map(|t| {
            let cfg = RandomWalkConfig {
                samples: points,
                ..RandomWalkConfig::default()
            };
            RandomWalkModel::new(cfg)
                .generate(seed.wrapping_add(t as u64))
                .points
        })
        .collect();

    // `prepare_spill_logs` is the one guard + open path every spill
    // writer (this command and `bqs serve`) shares: incompatible
    // layouts get their specific diagnosis, any other non-empty
    // directory is refused up front (fleet runs restart stream clocks,
    // so appending over old data would fail deep in the codec), and a
    // single worker gets a flat log while several get `shard-<k>/`
    // trees.
    let logs: Vec<Option<TrajectoryLog>> = match spill {
        Some(dir) => bqs_tlog::prepare_spill_logs(dir, workers, LogConfig::default())?
            .into_iter()
            .map(Some)
            .collect(),
        None => (0..workers).map(|_| None).collect(),
    };

    let parallel_config = ParallelConfig {
        workers,
        fleet: FleetConfig {
            shards,
            ..FleetConfig::default()
        },
        ..ParallelConfig::default()
    };
    let (join, elapsed) = match algorithm {
        "bqs" => drive_parallel(
            &traces,
            parallel_config,
            move || BqsCompressor::new(config),
            logs,
        ),
        "fbqs" => drive_parallel(
            &traces,
            parallel_config,
            move || FastBqsCompressor::new(config),
            logs,
        ),
        other => {
            return Err(CliError::Invalid(format!(
                "fleet supports bqs|fbqs, got {other}"
            )))
        }
    };
    if !join.is_ok() {
        let failure = &join.failures[0];
        return Err(CliError::Invalid(format!(
            "worker shard {} panicked: {} ({} sessions poisoned)",
            failure.shard,
            failure.panic,
            failure.tracks.len()
        )));
    }
    let stats = join.stats;

    // Per-shard table, deterministic: shards ascend, tracks ascend within
    // a shard — never the engines' (hash-map) close order.
    let mut shard_table = String::new();
    let mut session_rows: Vec<(usize, TrackId, u64, usize)> = Vec::new();
    for shard in &join.shards {
        let shard_points: u64 = shard.reports.iter().map(|r| r.points).sum();
        let shard_kept: usize = shard.sink.tagged.values().map(Vec::len).sum();
        shard_table.push_str(&format!(
            "  shard {:>2}: {:>5} sessions, {:>8} → {:>7} points (pruning {:.4})\n",
            shard.shard,
            shard.reports.len(),
            shard_points,
            shard_kept,
            shard.stats.pruning_power(),
        ));
        for report in &shard.reports {
            let kept = shard.sink.tagged.get(&report.track).map_or(0, Vec::len);
            session_rows.push((shard.shard, report.track, report.points, kept));
        }
    }
    session_rows.sort_unstable_by_key(|&(shard, track, ..)| (shard, track));
    let mut session_table = String::new();
    if sessions <= 24 {
        for (shard, track, pushed, kept) in &session_rows {
            session_table.push_str(&format!(
                "    shard {shard:>2} track {track:>4}: {pushed:>6} → {kept:>5} points\n"
            ));
        }
    }

    // Consume the shards: merge tagged output (tracks are disjoint across
    // shards by routing) and finish every spill sink.
    let mut tagged: HashMap<TrackId, Vec<bqs_geo::TimedPoint>> = HashMap::new();
    let mut spill_sessions = 0usize;
    let mut spill_points = 0u64;
    let mut spill_bytes = 0u64;
    for shard in join.shards {
        tagged.extend(shard.sink.tagged);
        if let Some(sink) = shard.sink.spill {
            let reports = sink.finish()?;
            spill_sessions += reports.len();
            spill_points += reports.iter().map(|r| r.points).sum::<u64>();
            spill_bytes += reports.iter().map(|r| r.bytes).sum::<u64>();
        }
    }
    let mut spill_line = match spill {
        Some(dir) => format!(
            "spilled {spill_sessions} sessions, {spill_points} points, {spill_bytes} B \
             ({:.2} B/point) to {dir}\n",
            spill_bytes as f64 / spill_points.max(1) as f64,
        ),
        None => String::new(),
    };
    if let Some(dir) = spill.filter(|_| workers > 1) {
        // Cache the tree's pruning inputs so readers never open shards
        // a query cannot touch; `bqs log verify` cross-checks it.
        let manifest = bqs_tlog::Manifest::rebuild(dir)?;
        spill_line.push_str(&format!(
            "wrote MANIFEST ({} shards, {} tracks)\n",
            manifest.shards.len(),
            manifest
                .shards
                .iter()
                .map(|s| s.tracks.len())
                .sum::<usize>(),
        ));
    }
    if let (Some(dir), Some([from, to])) = (spill, query_after) {
        // Prove the run is queryable end to end: same unified engine,
        // same answer shape, flat log or tree alike.
        let mut engine = bqs_tlog::QueryEngine::open(dir)?;
        let result = engine.query_time_range(None, bqs_tlog::TimeRange::new(from, to))?;
        spill_line.push_str(&format!(
            "query [{from}, {to}]: {} tracks, {} points \
             (decoded {} of {} records, {} of {} shards pruned)\n",
            result.slices.len(),
            result.total_points(),
            result.stats.decoded_records,
            result.stats.candidate_records,
            result.shards_pruned,
            engine.shard_count(),
        ));
    }

    // Equivalence spot-check: the session with the most output (smallest
    // track id on ties — deterministic) must be byte-identical to
    // compressing its trace alone.
    let (&probe, fleet_kept) = tagged
        .iter()
        .max_by_key(|(&track, v)| (v.len(), std::cmp::Reverse(track)))
        .ok_or_else(|| CliError::invalid("fleet produced no output"))?;
    let solo = match algorithm {
        "bqs" => compress_all(
            &mut BqsCompressor::new(config),
            traces[probe as usize].iter().copied(),
        ),
        _ => compress_all(
            &mut FastBqsCompressor::new(config),
            traces[probe as usize].iter().copied(),
        ),
    };
    if fleet_kept != &solo {
        return Err(CliError::Invalid(format!(
            "session {probe}: fleet output diverged from solo compression \
             ({} vs {} points)",
            fleet_kept.len(),
            solo.len()
        )));
    }
    if let Some(dir) = spill {
        // Reopen the probe's shard log and check the durable copy too.
        let probe_dir = if workers == 1 {
            std::path::PathBuf::from(dir)
        } else {
            bqs_tlog::shard_dir(dir, worker_of(probe, workers))
        };
        let (log, _) = TrajectoryLog::open(probe_dir, LogConfig::default())?;
        let from_disk = log.read_track(probe)?;
        if from_disk != solo {
            return Err(CliError::Invalid(format!(
                "session {probe}: spilled log diverged from solo compression \
                 ({} vs {} points)",
                from_disk.len(),
                solo.len()
            )));
        }
    }

    let total: usize = traces.iter().map(Vec::len).sum();
    let kept: usize = tagged.values().map(Vec::len).sum();
    Ok(format!(
        "fleet: {sessions} sessions × {points} points \
         ({algorithm}, {tolerance} m, {shards} shards, {workers} workers, seed {seed})\n\
         {total} → {kept} points (rate {:.2}%), pruning power {:.4}\n\
         {shard_table}{session_table}\
         throughput {:.2} Mpts/s\n\
         session {probe} verified identical to solo compression\n\
         {spill_line}",
        100.0 * kept as f64 / total.max(1) as f64,
        stats.pruning_power(),
        total as f64 / elapsed.max(1e-9) / 1e6,
    ))
}

/// Guard for the flat-log commands: opening the *root* of a sharded
/// spill tree as a flat log would silently see an empty log (and
/// `append` would even write a rogue segment no tree tooling visits).
/// Point the user at a shard instead.
fn reject_sharded_root(dir: &str) -> Result<(), CliError> {
    if bqs_tlog::is_sharded_tree(dir) {
        return Err(CliError::Invalid(format!(
            "{dir} is a sharded spill tree (shard-<k>/ directories); \
             run this command on one shard, e.g. {dir}/shard-0 \
             (`bqs query` and `bqs log verify` accept the tree root)"
        )));
    }
    Ok(())
}

/// `bqs query`: the unified read path — one query over a flat log or a
/// whole `shard-<k>/` spill tree, fanned out across shards in parallel
/// and pruned via the tree's `MANIFEST`. CSV output plus a per-shard
/// work breakdown.
fn unified_query(
    dir: &str,
    track: Option<u64>,
    from: Option<f64>,
    to: Option<f64>,
    bbox: Option<[f64; 4]>,
    out: Option<&str>,
) -> Result<String, CliError> {
    use bqs_tlog::{QueryEngine, TimeRange};

    let mut engine = QueryEngine::open(dir)?;
    let range = TimeRange::new(
        from.unwrap_or(f64::NEG_INFINITY),
        to.unwrap_or(f64::INFINITY),
    );
    let result = match bbox {
        Some([x0, y0, x1, y1]) => {
            let area = bqs_geo::Rect::from_corners(
                bqs_geo::Point2::new(x0, y0),
                bqs_geo::Point2::new(x1, y1),
            );
            engine.query_bbox(track, area, Some(range))?
        }
        None => engine.query_time_range(track, range)?,
    };

    let csv = slices_csv(&result.slices);
    let mut summary = format!(
        "{} tracks, {} points over {} shard(s) \
         (decoded {} of {} records, {} shard(s) pruned via MANIFEST)\n",
        result.slices.len(),
        result.total_points(),
        engine.shard_count(),
        result.stats.decoded_records,
        result.stats.candidate_records,
        result.shards_pruned,
    );
    if engine.shard_count() > 1 {
        for shard in &result.shards {
            let label = shard.shard.map_or("flat".to_string(), |k| k.to_string());
            if shard.skipped {
                summary.push_str(&format!("  shard {label:>2}: pruned, never opened\n"));
            } else {
                summary.push_str(&format!(
                    "  shard {label:>2}: decoded {} of {} records, kept {} points\n",
                    shard.stats.decoded_records,
                    shard.stats.candidate_records,
                    shard.stats.kept_points,
                ));
            }
        }
    }
    match out {
        Some(path) => {
            std::fs::write(path, csv).map_err(|e| CliError::io("write", path, e))?;
            Ok(summary)
        }
        None => Ok(format!("{csv}{summary}")),
    }
}

/// `bqs log append`: optionally compress a trace, then append it to the
/// log under the given track id.
fn log_append(
    dir: &str,
    input: &str,
    track: u64,
    algorithm: &str,
    tolerance: f64,
) -> Result<String, CliError> {
    use bqs_tlog::{LogConfig, TrajectoryLog};

    reject_sharded_root(dir)?;
    let trace = load_trace(input)?;
    let config = BqsConfig::new(tolerance).map_err(CliError::invalid)?;
    let points = match algorithm {
        "none" => trace.points.clone(),
        "bqs" => compress_all(
            &mut BqsCompressor::new(config),
            trace.points.iter().copied(),
        ),
        "fbqs" => compress_all(
            &mut FastBqsCompressor::new(config),
            trace.points.iter().copied(),
        ),
        other => {
            return Err(CliError::Invalid(format!(
                "log append supports none|bqs|fbqs, got {other}"
            )))
        }
    };
    let (mut log, recovery) = TrajectoryLog::open(dir, LogConfig::default())?;
    let receipt = log.append(track, &points)?;
    let mut out = recovery_line(&recovery);
    out.push_str(&format!(
        "appended track {track}: {} → {} points ({algorithm}), {} B \
         ({:.2} B/point, naive {} B/point) into segment {:06}\n",
        trace.len(),
        receipt.points,
        receipt.bytes,
        receipt.bytes as f64 / receipt.points.max(1) as f64,
        bqs_tlog::NAIVE_POINT_BYTES,
        receipt.segment,
    ));
    Ok(out)
}

/// Describes what `TrajectoryLog::open` repaired, or `""` when nothing
/// was; every log command prints it so on-disk mutation is never silent.
fn recovery_line(recovery: &bqs_tlog::RecoveryReport) -> String {
    if recovery.truncated_segments == 0 {
        String::new()
    } else {
        format!(
            "recovered: truncated {} torn segment tail(s), {} B dropped\n",
            recovery.truncated_segments, recovery.truncated_bytes
        )
    }
}

/// `bqs log query`: time-range / bounding-box queries and point-in-time
/// reconstruction, CSV output.
fn log_query(
    dir: &str,
    track: Option<u64>,
    from: Option<f64>,
    to: Option<f64>,
    bbox: Option<[f64; 4]>,
    at: Option<f64>,
    out: Option<&str>,
) -> Result<String, CliError> {
    use bqs_tlog::{LogConfig, TimeRange, TrajectoryLog};

    reject_sharded_root(dir)?;
    // Also guarded in the argument parser; re-checked here because
    // `run` is a public entry point.
    if at.is_some() && track.is_none() {
        return Err(CliError::invalid("--at requires --track"));
    }
    if at.is_some() && (from.is_some() || to.is_some() || bbox.is_some()) {
        return Err(CliError::invalid(
            "--at cannot be combined with --from/--to/--bbox",
        ));
    }

    let (log, recovery) = TrajectoryLog::open(dir, LogConfig::default())?;
    let recovered = recovery_line(&recovery);

    if let (Some(t), Some(track)) = (at, track) {
        return match log.reconstruct_at(track, t)? {
            Some(p) => Ok(format!(
                "{recovered}track {track} at t={t}: x={:.3} y={:.3}\n",
                p.pos.x, p.pos.y
            )),
            None => Err(CliError::Invalid(format!("track {track} has no data"))),
        };
    }

    let range = TimeRange::new(
        from.unwrap_or(f64::NEG_INFINITY),
        to.unwrap_or(f64::INFINITY),
    );
    let result = match bbox {
        Some([x0, y0, x1, y1]) => {
            let area = bqs_geo::Rect::from_corners(
                bqs_geo::Point2::new(x0, y0),
                bqs_geo::Point2::new(x1, y1),
            );
            log.query_bbox(track, area, Some(range))?
        }
        None => log.query_time_range(track, range)?,
    };

    let csv = slices_csv(&result.slices);
    let summary = format!(
        "{} tracks, {} points (decoded {} of {} records via the index)\n",
        result.slices.len(),
        result.total_points(),
        result.stats.decoded_records,
        result.stats.candidate_records,
    );
    match out {
        Some(path) => {
            std::fs::write(path, csv).map_err(|e| CliError::io("write", path, e))?;
            Ok(format!("{recovered}{summary}"))
        }
        None => Ok(format!("{recovered}{csv}{summary}")),
    }
}

/// `bqs log compact`: tombstone the dropped tracks, then rewrite live
/// records into fresh segments.
fn log_compact(dir: &str, drop: &[u64]) -> Result<String, CliError> {
    use bqs_tlog::{LogConfig, TrajectoryLog};

    reject_sharded_root(dir)?;
    let (mut log, recovery) = TrajectoryLog::open(dir, LogConfig::default())?;
    let mut dropped = 0usize;
    for &track in drop {
        if log.delete_track(track)? {
            dropped += 1;
        }
    }
    let report = log.compact()?;
    Ok(format!(
        "{}dropped {dropped} track(s); compacted {} → {} segments, \
         {} → {} B ({} records removed)\n",
        recovery_line(&recovery),
        report.segments_before,
        report.segments_after,
        report.bytes_before,
        report.bytes_after,
        report.records_dropped,
    ))
}

/// `bqs log verify`: strict full-scan verification (no repair). A
/// directory holding `shard-<k>/` subdirectories (a parallel fleet's
/// spill tree) is verified shard by shard; anything else is treated as
/// one flat log.
fn log_verify(dir: &str) -> Result<String, CliError> {
    if bqs_tlog::is_sharded_tree(dir) {
        let report =
            bqs_tlog::verify_sharded(dir).map_err(|e| CliError::Invalid(format!("FAIL: {e}")))?;
        let total = &report.total;
        let mut out = format!(
            "OK: {} shards{}, {} segments, {} records ({} backfill, +{} tombstones), {} points, \
             {} B ({:.2} B/point on disk, naive {} B/point)\n",
            report.shards.len(),
            match report.manifest {
                bqs_tlog::ManifestStatus::Verified => " (MANIFEST verified)",
                bqs_tlog::ManifestStatus::Absent => "",
            },
            total.segments,
            total.records,
            total.backfill_records,
            total.tombstones,
            total.points,
            total.file_bytes,
            total.file_bytes_per_point(),
            bqs_tlog::NAIVE_POINT_BYTES,
        );
        for (shard, r) in &report.shards {
            out.push_str(&format!(
                "  shard {shard:>2}: {} segments, {} records, {} points, {} B\n",
                r.segments, r.records, r.points, r.file_bytes,
            ));
        }
        return Ok(out);
    }
    let report = bqs_tlog::verify_dir(dir).map_err(|e| CliError::Invalid(format!("FAIL: {e}")))?;
    Ok(format!(
        "OK: {} segments, {} records ({} backfill, +{} tombstones), {} points, {} B \
         ({:.2} B/point on disk, naive {} B/point)\n",
        report.segments,
        report.records,
        report.backfill_records,
        report.tombstones,
        report.points,
        report.file_bytes,
        report.file_bytes_per_point(),
        bqs_tlog::NAIVE_POINT_BYTES,
    ))
}

fn run_experiments(names: &[String], full: bool) -> Result<String, CliError> {
    let scale = if full { Scale::Full } else { Scale::Quick };
    let wanted = |name: &str| names.is_empty() || names.iter().any(|n| n == name || n == "all");
    let mut out = String::new();
    if wanted("fig3") {
        out.push_str(&experiments::fig3::run(scale).to_table().to_string());
    }
    if wanted("fig6") {
        let r = experiments::fig6::run(scale);
        out.push_str(&r.bat.to_table().to_string());
        out.push_str(&r.vehicle.to_table().to_string());
    }
    if wanted("fig7") {
        let r = experiments::fig7::run(scale);
        out.push_str(&r.bat.to_table().to_string());
        out.push_str(&r.vehicle.to_table().to_string());
    }
    if wanted("fig8a") {
        let r = experiments::fig8::run_8a(scale);
        out.push_str(&format!(
            "Fig. 8a — synthetic trace: {} points, {:.0} m × {:.0} m\n",
            r.trace.len(),
            r.extent.0,
            r.extent.1
        ));
    }
    if wanted("fig8b") {
        out.push_str(&experiments::fig8::run_8b(scale).to_table().to_string());
    }
    if wanted("table1") {
        out.push_str(&experiments::table1::run(scale).to_table().to_string());
    }
    if wanted("table2") {
        out.push_str(&experiments::table2::run(scale).to_table().to_string());
    }
    if wanted("table3") {
        out.push_str(&experiments::table3::run(scale).to_table().to_string());
    }
    if wanted("ablation") {
        out.push_str(&experiments::ablation::run(scale).to_table().to_string());
    }
    if wanted("fleet") {
        let r = experiments::fleet::run(scale);
        out.push_str(&r.to_table().to_string());
        out.push_str(&r.to_parallel_table().to_string());
    }
    if wanted("storage") {
        out.push_str(&experiments::storage::run(scale).to_table().to_string());
    }
    if wanted("query") {
        out.push_str(&experiments::query::run(scale).to_table().to_string());
    }
    if wanted("net") {
        out.push_str(&experiments::net::run(scale).to_table().to_string());
    }
    if wanted("extended") {
        out.push_str(&experiments::extended::run(scale).to_table().to_string());
    }
    if out.is_empty() {
        return Err(CliError::Invalid(format!(
            "no experiment matched {names:?}"
        )));
    }
    Ok(out)
}

/// Parameters of one `bqs serve` invocation.
struct ServeRun<'a> {
    addr: &'a str,
    workers: usize,
    spill: &'a str,
    tolerance: f64,
    shards: usize,
    io_threads: usize,
    max_connections: usize,
    port_file: Option<&'a str>,
    metrics_interval: Option<u64>,
    lateness: f64,
    alerts: &'a [String],
    prom_addr: Option<&'a str>,
    evict_idle: f64,
}

/// `bqs serve`: binds the framed TCP server over a parallel fleet,
/// announces the bound address (stdout line + optional `--port-file`),
/// then blocks until a client sends `Shutdown`. On exit the fleet has
/// been drained, every session spilled, and the `MANIFEST` written —
/// the directory passes `bqs log verify`.
fn serve(run: ServeRun<'_>) -> Result<String, CliError> {
    use std::io::Write;

    let ServeRun {
        addr,
        workers,
        spill,
        tolerance,
        shards,
        io_threads,
        max_connections,
        port_file,
        metrics_interval,
        lateness,
        alerts,
        prom_addr,
        evict_idle,
    } = run;

    // The CLI server always carries a registry — `bqs metrics` against
    // a `bqs serve` instance should never come back empty. (Library
    // embedders opt in; see `ServerConfig::metrics`.)
    let registry = bqs_obs::MetricsRegistry::new();
    // The flight recorder rides along unconditionally: recording is a
    // few relaxed stores per event, and `bqs trace` against a CLI
    // server should never come back empty either.
    let recorder = bqs_obs::FlightRecorder::with_counters(
        65_536,
        registry.counter("trace_events_recorded_total"),
        registry.counter("trace_events_dropped_total"),
    );
    // Malformed rules are refused before the listener even binds…
    let mut rules = Vec::new();
    for raw in alerts {
        rules.push(bqs_obs::AlertRule::parse(raw).map_err(CliError::Invalid)?);
    }
    let server = bqs_net::Server::bind(bqs_net::ServerConfig {
        addr: addr.to_string(),
        workers,
        spill: spill.into(),
        tolerance,
        shards,
        io_threads,
        max_connections,
        fallback_poller: false,
        metrics: Some(registry.clone()),
        lateness,
        trace: Some(recorder.clone()),
        prom_addr: prom_addr.map(String::from),
        evict_idle,
    })?;
    // …and unknown metric names or kind-mismatched stats right after
    // `bind` has registered the server's whole catalog.
    for rule in &rules {
        rule.validate(&registry).map_err(CliError::Invalid)?;
    }
    let local = server.local_addr();
    if let Some(path) = port_file {
        std::fs::write(path, format!("{local}\n")).map_err(|e| CliError::io("write", path, e))?;
    }
    // Announced eagerly (not in the returned summary): scripts and
    // operators need the port while the server is still running.
    println!("listening on {local}");
    if let Some(prom) = server.prom_addr() {
        // Scrapers need the resolved port when `--prom-addr` used 0.
        println!("prometheus on {prom}");
    }
    let _ = std::io::stdout().flush();

    let reporter = metrics_interval
        .map(|secs| spawn_metrics_reporter(&registry, workers, secs, rules, recorder.clone()));
    let run_result = server.run();
    if let Some((stop, handle)) = reporter {
        // ordering: relaxed stop flag — the reporter only needs to observe it eventually; join() below is the real synchronisation
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let _ = handle.join();
    }
    let report = run_result?;
    // The recorder's last moments — drain, spill, reply flushes — are
    // exactly what a post-mortem wants; dump them on every clean exit.
    let trace_line = match dump_trace(&recorder.snapshot(), "shutdown") {
        Ok((path, events)) => format!("flight recorder: {events} event(s) dumped to {path}\n"),
        Err(e) => format!("flight recorder: dump failed ({e})\n"),
    };
    let manifest_line = if report.manifest_shards > 0 {
        format!("wrote MANIFEST ({} shards)\n", report.manifest_shards)
    } else {
        String::new()
    };
    let rejected_line = if report.rejected_connections > 0 {
        format!(
            "rejected {} connection(s) over the {max_connections}-connection cap\n",
            report.rejected_connections
        )
    } else {
        String::new()
    };
    let io_mode = if io_threads == 0 {
        "thread-per-connection".to_string()
    } else {
        format!("{io_threads} io-threads")
    };
    let lateness_line = if report.late_points + report.backfill_points + report.too_late_points > 0
    {
        format!(
            "late data: {} accepted late, {} backfilled, {} refused too-late \
             (lateness window {lateness} s)\n",
            report.late_points, report.backfill_points, report.too_late_points
        )
    } else {
        String::new()
    };
    Ok(format!(
        "served {} connection(s), {} frame(s), {} points \
         ({workers} workers, {io_mode}, {tolerance} m, {shards} shards)\n\
         {rejected_line}\
         {lateness_line}\
         spilled {} sessions, {} points, {} B ({:.2} B/point) to {spill}\n\
         {manifest_line}\
         {trace_line}\
         pruning power {:.4}\n",
        report.connections,
        report.frames,
        report.appended_points,
        report.spilled_sessions,
        report.spilled_points,
        report.spilled_bytes,
        report.spilled_bytes as f64 / report.spilled_points.max(1) as f64,
        report.stats.pruning_power(),
    ))
}

/// Writes a trace snapshot to a dump file under the system temp
/// directory (never the spill directory — dumps must not dirty the
/// durable tree). Returns `(path, events)` for the announcement line.
fn dump_trace(
    snapshot: &bqs_obs::TraceSnapshot,
    label: &str,
) -> Result<(String, usize), std::io::Error> {
    let path = std::env::temp_dir().join(format!("bqs-trace-{}-{label}.txt", std::process::id()));
    std::fs::write(&path, snapshot.render())?;
    Ok((path.to_string_lossy().into_owned(), snapshot.events.len()))
}

/// Spawns the `--metrics-interval` reporter thread: one line to stderr
/// every `secs` seconds with the ingest rate over the interval, the
/// all-time p99 append latency, live connections, and the deepest
/// per-shard queue high-water mark. It only reads the registry the
/// server writes, so the reporter costs the request path nothing.
///
/// The same tick refreshes the `process_rss_bytes` gauge and evaluates
/// the `--alert` rules: a breached rule prints one structured `alert:`
/// line to stderr, flushes the flight recorder to a dump file, and
/// bumps `alerts_tripped_total` plus its own per-rule counter — every
/// tick the breach persists, so the counters measure breach duration
/// in ticks.
fn spawn_metrics_reporter(
    registry: &bqs_obs::MetricsRegistry,
    workers: usize,
    secs: u64,
    rules: Vec<bqs_obs::AlertRule>,
    recorder: bqs_obs::FlightRecorder,
) -> (
    std::sync::Arc<std::sync::atomic::AtomicBool>,
    std::thread::JoinHandle<()>,
) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let submitted = registry.counter("fleet_submitted_points_total");
    let append_us = registry.histogram("net_request_us_append");
    let live = registry.gauge("net_connections_live");
    let rss = registry.gauge("process_rss_bytes");
    let alerts_tripped = registry.counter("alerts_tripped_total");
    let rule_tripped: Vec<bqs_obs::Counter> = (0..rules.len())
        .map(|k| registry.counter(&format!("alert_rule{k}_tripped_total")))
        .collect();
    let depths: Vec<bqs_obs::Gauge> = (0..workers)
        .map(|k| registry.gauge(&format!("fleet_shard{k}_channel_depth")))
        .collect();
    let reg = registry.clone();
    let handle = std::thread::spawn(move || {
        let mut last = submitted.get();
        // Per-rule counter totals at the previous tick (`rate` stats).
        let mut prev_totals = vec![0u64; rules.len()];
        rss.set(bqs_obs::process_rss_bytes());
        loop {
            // Sleep in short slices so shutdown stays prompt.
            let woke = std::time::Instant::now();
            while woke.elapsed().as_secs() < secs {
                // ordering: relaxed stop-flag poll — a 100 ms-late observation of shutdown is fine
                if flag.load(Ordering::Relaxed) {
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
            let interval = woke.elapsed().as_secs_f64();
            let now = submitted.get();
            let rate = (now.saturating_sub(last)) / secs.max(1);
            last = now;
            rss.set(bqs_obs::process_rss_bytes());
            let high_water = depths.iter().map(bqs_obs::Gauge::peak).max().unwrap_or(0);
            eprintln!(
                "metrics: ingest {rate} pts/s, append p99 {} us, {} live conn(s), \
                 queue high-water {high_water}",
                append_us.snapshot().p99(),
                live.get(),
            );
            for (k, rule) in rules.iter().enumerate() {
                // Validated at startup; a vanished metric would be a
                // registry bug, not a user error — skip, don't panic.
                let Some(sample) = reg.sample(rule.metric()) else {
                    continue;
                };
                let observed = rule.observe(&sample, prev_totals[k], interval);
                if let bqs_obs::MetricSample::Counter(total) = sample {
                    prev_totals[k] = total;
                }
                if rule.check(observed) {
                    alerts_tripped.inc();
                    rule_tripped[k].inc();
                    let dump = match dump_trace(&recorder.snapshot(), &format!("alert-{k}")) {
                        Ok((path, _)) => path,
                        Err(e) => format!("(dump failed: {e})"),
                    };
                    eprintln!(
                        "alert: rule={:?} observed={observed:.3} threshold={} dump={dump}",
                        rule.raw(),
                        rule.threshold(),
                    );
                }
            }
        }
    });
    (stop, handle)
}

/// `bqs metrics`: fetches a server's metric catalog over the wire. A
/// single shot prints the sorted `name value` text as-is; `--watch N`
/// keeps the connection open and prints changed lines (with `+delta`
/// for increases) every `N` seconds until the server goes away;
/// `--prom` fetches the Prometheus text exposition instead (one shot —
/// it cannot be combined with `--watch`).
fn metrics(addr: &str, watch: Option<u64>, prom: bool) -> Result<String, CliError> {
    use std::io::Write;

    // Also guarded in the argument parser; re-checked here because
    // `run` is a public entry point.
    if prom && watch.is_some() {
        return Err(CliError::invalid(
            "--prom and --watch are mutually exclusive \
             (--prom is a one-shot scrape; --watch prints native-format deltas)",
        ));
    }
    let mut client = bqs_net::BqsClient::connect(addr)?;
    if prom {
        return Ok(client.metrics_prom()?);
    }
    let text = client.metrics()?;
    let Some(secs) = watch else {
        return Ok(text);
    };

    println!("{}", text.trim_end());
    let _ = std::io::stdout().flush();
    let mut prev = parse_metrics(&text);
    let mut samples = 1u64;
    loop {
        std::thread::sleep(std::time::Duration::from_secs(secs));
        let text = match client.metrics() {
            Ok(text) => text,
            // The server exiting mid-watch is the normal way out.
            Err(_) => break,
        };
        samples += 1;
        let now = parse_metrics(&text);
        println!("--- sample {samples}");
        for (name, value) in &now {
            match prev.get(name) {
                Some(old) if old == value => {}
                Some(old) if value > old => println!("{name} {value} (+{})", value - old),
                _ => println!("{name} {value}"),
            }
        }
        let _ = std::io::stdout().flush();
        prev = now;
    }
    Ok(format!("metrics: server gone after {samples} sample(s)\n"))
}

/// `bqs trace`: fetches a server's flight-recorder contents over the
/// wire and renders them one event per line, oldest first — the same
/// text the server writes to dump files on alert trips and shutdown.
fn trace(addr: &str, last: Option<u64>, conn: Option<u64>) -> Result<String, CliError> {
    let mut client = bqs_net::BqsClient::connect(addr)?;
    let (dropped, events) = client.trace_dump(last, conn)?;
    Ok(bqs_obs::TraceSnapshot { events, dropped }.render())
}

/// Parses exposition text (`name value` per line) for `--watch` deltas.
fn parse_metrics(text: &str) -> std::collections::BTreeMap<String, u64> {
    text.lines()
        .filter_map(|line| {
            let (name, value) = line.rsplit_once(' ')?;
            Some((name.to_string(), value.parse().ok()?))
        })
        .collect()
}

/// `bqs loadgen`: seeded, reproducible ingest against a running server
/// — the same workload `bqs fleet --seed` drives in process, so the
/// spilled trees are comparable byte for byte.
#[allow(clippy::too_many_arguments)]
fn loadgen(
    addr: &str,
    sessions: usize,
    points: usize,
    seed: u64,
    connections: usize,
    batch: usize,
    shutdown: bool,
    disorder: f64,
    backfill: bool,
) -> Result<String, CliError> {
    let report = bqs_net::loadgen::run(&bqs_net::LoadgenConfig {
        addr: addr.to_string(),
        sessions,
        points,
        seed,
        connections,
        batch,
        shutdown,
        disorder,
        backfill,
    })?;
    let shutdown_line = match report.shutdown {
        Some(ack) => format!(
            "server acknowledged shutdown ({} connection(s), {} points served)\n",
            ack.connections, ack.appended_points
        ),
        None => String::new(),
    };
    // Percentiles over zero samples would print as zeros and read like
    // a (suspiciously perfect) measurement — say so instead.
    let latency = |kind: &str, snap: &bqs_obs::HistogramSnapshot| {
        if snap.count() == 0 {
            return format!("{kind} latency: no calls\n");
        }
        format!(
            "{kind} latency (µs over {} calls): p50 {} p90 {} p99 {} max {}\n",
            snap.count(),
            snap.p50(),
            snap.p90(),
            snap.p99(),
            snap.max(),
        )
    };
    let lateness_line = if disorder > 0.0 || backfill {
        format!(
            "lateness ground truth: {} late-accepted, {} backfilled, {} too-late point(s)\n",
            report.late_points, report.backfill_points, report.too_late_points,
        )
    } else {
        String::new()
    };
    Ok(format!(
        "loadgen: {sessions} sessions × {points} points over {} connection(s) \
         (seed {seed}, batch {batch}) against {addr}\n\
         sent {} points in {:.2} s ({:.2} Mpts/s; {} frames, {} B on the wire)\n\
         {lateness_line}{}{}{shutdown_line}",
        report.connections,
        report.points_sent,
        report.elapsed,
        report.points_per_sec() / 1e6,
        report.frames_sent,
        report.bytes_sent,
        latency("append", &report.append_latency),
        latency("flush", &report.flush_latency),
    ))
}

/// `bqs subscribe`: attaches to a running server as a live subscriber
/// and streams kept points as `track,t,x,y` CSV lines until the server
/// drains (`SubEnd`) or the connection closes.
fn subscribe(
    addr: &str,
    track: Option<u64>,
    bbox: Option<[f64; 4]>,
    out: Option<&str>,
) -> Result<String, CliError> {
    use std::io::Write;

    let client = bqs_net::BqsClient::connect(addr)?;
    let mut subscription = client.subscribe(track, bbox)?;
    let mut sink: Box<dyn Write> = match out {
        Some(path) => Box::new(std::io::BufWriter::new(
            std::fs::File::create(path).map_err(|e| CliError::io("create", path, e))?,
        )),
        None => Box::new(std::io::stdout().lock()),
    };
    writeln!(sink, "track,t,x,y").map_err(|e| CliError::io("write", out.unwrap_or("-"), e))?;
    let mut received = 0u64;
    let mut batches = 0u64;
    while let Some((track, points)) = subscription.next_batch()? {
        batches += 1;
        received += points.len() as u64;
        for p in &points {
            writeln!(sink, "{track},{},{},{}", p.t, p.pos.x, p.pos.y)
                .map_err(|e| CliError::io("write", out.unwrap_or("-"), e))?;
        }
    }
    sink.flush()
        .map_err(|e| CliError::io("flush", out.unwrap_or("-"), e))?;
    drop(sink);
    Ok(format!(
        "subscribe: stream ended after {received} point(s) in {batches} batch(es)\n"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("bqs-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn info_mentions_the_platform() {
        let text = run(&Command::Info).unwrap();
        assert!(text.contains("Camazotz"));
        assert!(text.contains("4096 B RAM"));
    }

    #[test]
    fn generate_compress_verify_round_trip() {
        let trace_path = tmp("trace.csv");
        let out_path = tmp("compressed.csv");

        let summary = run(&Command::Generate {
            dataset: "synthetic".into(),
            seed: 5,
            full: false,
            out: Some(trace_path.clone()),
        })
        .unwrap();
        assert!(summary.contains("generated synthetic"));

        let summary = run(&Command::Compress {
            algorithm: "fbqs".into(),
            input: trace_path.clone(),
            tolerance: 10.0,
            buffer: 32,
            out: Some(out_path.clone()),
        })
        .unwrap();
        assert!(summary.contains("fbqs:"), "{summary}");

        let verdict = run(&Command::Verify {
            original: trace_path,
            compressed: out_path,
            tolerance: 10.0,
        })
        .unwrap();
        assert!(verdict.starts_with("OK"), "{verdict}");
    }

    #[test]
    fn verify_fails_for_wrong_tolerance() {
        let trace_path = tmp("trace2.csv");
        let out_path = tmp("compressed2.csv");
        run(&Command::Generate {
            dataset: "synthetic".into(),
            seed: 6,
            full: false,
            out: Some(trace_path.clone()),
        })
        .unwrap();
        run(&Command::Compress {
            algorithm: "bqs".into(),
            input: trace_path.clone(),
            tolerance: 50.0,
            buffer: 32,
            out: Some(out_path.clone()),
        })
        .unwrap();
        // A 50 m compression will not satisfy a 0.5 m verification.
        let err = run(&Command::Verify {
            original: trace_path,
            compressed: out_path,
            tolerance: 0.5,
        })
        .unwrap_err();
        assert!(err.starts_with("FAIL"), "{err}");
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let err = run(&Command::Compress {
            algorithm: "fbqs".into(),
            input: "/nonexistent/x.csv".into(),
            tolerance: 5.0,
            buffer: 32,
            out: None,
        })
        .unwrap_err();
        assert!(err.contains("cannot read"));
    }

    #[test]
    fn end_to_end_through_the_parser() {
        let text = crate::main_with_args(&["info".to_string()]).unwrap();
        assert!(text.contains("Camazotz"));
        let (err, code) = crate::main_with_args(&["bogus".to_string()]).unwrap_err();
        assert_eq!(code, 2);
        assert!(err.contains("unknown command"));
    }

    #[test]
    fn every_algorithm_runs_through_the_cli() {
        let trace_path = tmp("trace3.csv");
        run(&Command::Generate {
            dataset: "vehicle".into(),
            seed: 9,
            full: false,
            out: Some(trace_path.clone()),
        })
        .unwrap();
        for algo in ["bqs", "fbqs", "bdp", "bgd", "dp", "dr", "squish-e", "mbr"] {
            let summary = run(&Command::Compress {
                algorithm: algo.into(),
                input: trace_path.clone(),
                tolerance: 15.0,
                buffer: 32,
                out: Some(tmp(&format!("out_{algo}.csv"))),
            })
            .unwrap();
            assert!(summary.contains(algo), "{summary}");
        }
    }

    #[test]
    fn fleet_subcommand_runs_and_verifies() {
        let text = run(&Command::Fleet {
            sessions: 6,
            points: 120,
            tolerance: 10.0,
            algorithm: "fbqs".into(),
            shards: 4,
            workers: 1,
            seed: 1,
            spill: None,
            query_after: None,
        })
        .unwrap();
        assert!(text.contains("6 sessions"), "{text}");
        assert!(text.contains("verified identical"), "{text}");
        let text = run(&Command::Fleet {
            sessions: 3,
            points: 80,
            tolerance: 8.0,
            algorithm: "bqs".into(),
            shards: 2,
            workers: 2,
            seed: 1,
            spill: None,
            query_after: None,
        })
        .unwrap();
        assert!(text.contains("3 sessions"), "{text}");
        assert!(text.contains("2 workers"), "{text}");
    }

    #[test]
    fn fleet_runs_are_reproducible_per_seed() {
        let fleet_cmd = |seed: u64| Command::Fleet {
            sessions: 4,
            points: 100,
            tolerance: 10.0,
            algorithm: "fbqs".into(),
            shards: 4,
            workers: 1,
            seed,
            spill: None,
            query_after: None,
        };
        // Same seed → identical point counts in the summary; a different
        // seed changes the generated traces (strip the Mpts/s timing).
        let strip = |s: String| {
            s.lines()
                .filter(|l| !l.contains("Mpts/s"))
                .map(str::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        };
        let a = strip(run(&fleet_cmd(7)).unwrap());
        let b = strip(run(&fleet_cmd(7)).unwrap());
        let c = strip(run(&fleet_cmd(8)).unwrap());
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn fleet_spill_makes_the_run_durable_and_queryable() {
        let dir = tmp("fleet-spill-log");
        let _ = std::fs::remove_dir_all(&dir);
        let text = run(&Command::Fleet {
            sessions: 5,
            points: 150,
            tolerance: 10.0,
            algorithm: "fbqs".into(),
            shards: 4,
            workers: 1,
            seed: 3,
            spill: Some(dir.clone()),
            query_after: None,
        })
        .unwrap();
        assert!(text.contains("spilled 5 sessions"), "{text}");

        let verdict = run(&Command::LogVerify { dir: dir.clone() }).unwrap();
        assert!(verdict.starts_with("OK"), "{verdict}");

        let listing = run(&Command::LogQuery {
            dir: dir.clone(),
            track: None,
            from: None,
            to: None,
            bbox: None,
            at: None,
            out: None,
        })
        .unwrap();
        assert!(listing.contains("5 tracks"), "{listing}");

        // Re-spilling into a used directory is refused up front rather
        // than failing deep in the log with a time-order error.
        let err = run(&Command::Fleet {
            sessions: 5,
            points: 150,
            tolerance: 10.0,
            algorithm: "fbqs".into(),
            shards: 4,
            workers: 1,
            seed: 3,
            spill: Some(dir),
            query_after: None,
        })
        .unwrap_err();
        assert!(err.contains("fresh directory"), "{err}");
    }

    #[test]
    fn fleet_data_is_identical_across_worker_counts() {
        let run_with = |workers: usize| {
            run(&Command::Fleet {
                sessions: 8,
                points: 150,
                tolerance: 10.0,
                algorithm: "fbqs".into(),
                shards: 4,
                workers,
                seed: 5,
                spill: None,
                query_after: None,
            })
            .unwrap()
        };
        // Everything derived from the data (totals, rate, pruning power,
        // probe verification) is identical for any worker count; only the
        // run-config echo, the shard breakdown and timing may differ.
        let data = |text: String| {
            text.lines()
                .filter(|l| {
                    !l.contains("Mpts/s")
                        && !l.trim_start().starts_with("shard")
                        && !l.starts_with("fleet:")
                })
                .map(str::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        };
        let one = data(run_with(1));
        let two = data(run_with(2));
        let eight = data(run_with(8));
        assert_eq!(one, two);
        assert_eq!(one, eight);
    }

    #[test]
    fn fleet_report_is_deterministic_per_run_not_join_order() {
        // Session close order inside an engine follows hash-map iteration,
        // which differs between runs; the printed table must not.
        let cmd = || Command::Fleet {
            sessions: 12,
            points: 100,
            tolerance: 10.0,
            algorithm: "fbqs".into(),
            shards: 4,
            workers: 3,
            seed: 9,
            spill: None,
            query_after: None,
        };
        let strip = |s: String| {
            s.lines()
                .filter(|l| !l.contains("Mpts/s"))
                .map(str::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        };
        let a = strip(run(&cmd()).unwrap());
        let b = strip(run(&cmd()).unwrap());
        assert_eq!(a, b);
        // And the session table really is sorted by (shard, track).
        let rows: Vec<(usize, u64)> = a
            .lines()
            .filter_map(|l| {
                let l = l.trim_start();
                let rest = l.strip_prefix("shard ")?;
                let (shard, rest) = rest.split_once(" track ")?;
                let (track, _) = rest.split_once(':')?;
                Some((shard.trim().parse().ok()?, track.trim().parse().ok()?))
            })
            .collect();
        assert_eq!(rows.len(), 12, "{a}");
        let mut sorted = rows.clone();
        sorted.sort_unstable();
        assert_eq!(rows, sorted);
    }

    #[test]
    fn fleet_parallel_spill_builds_a_shard_tree_that_verifies() {
        let dir = tmp("fleet-pspill-log");
        let _ = std::fs::remove_dir_all(&dir);
        let text = run(&Command::Fleet {
            sessions: 10,
            points: 120,
            tolerance: 10.0,
            algorithm: "fbqs".into(),
            shards: 4,
            workers: 4,
            seed: 3,
            spill: Some(dir.clone()),
            query_after: None,
        })
        .unwrap();
        assert!(text.contains("spilled 10 sessions"), "{text}");
        // Each worker got its own shard directory…
        for k in 0..4 {
            assert!(
                std::path::Path::new(&dir)
                    .join(format!("shard-{k}"))
                    .is_dir(),
                "missing shard-{k}"
            );
        }
        // …and `log verify` dispatches to the tree-wide verification.
        let verdict = run(&Command::LogVerify { dir: dir.clone() }).unwrap();
        assert!(verdict.starts_with("OK"), "{verdict}");
        assert!(verdict.contains("4 shards"), "{verdict}");
        // A used tree is refused like a used flat directory.
        let err = run(&Command::Fleet {
            sessions: 10,
            points: 120,
            tolerance: 10.0,
            algorithm: "fbqs".into(),
            shards: 4,
            workers: 2,
            seed: 3,
            spill: Some(dir.clone()),
            query_after: None,
        })
        .unwrap_err();
        assert!(err.contains("fresh directory"), "{err}");

        // Flat-log commands must not open the tree root as an (empty)
        // flat log — query would lie, append would write a rogue segment
        // invisible to tree tooling.
        let err = run(&Command::LogQuery {
            dir: dir.clone(),
            track: Some(1),
            from: None,
            to: None,
            bbox: None,
            at: None,
            out: None,
        })
        .unwrap_err();
        assert!(err.contains("sharded spill tree"), "{err}");
        let err = run(&Command::LogCompact {
            dir: dir.clone(),
            drop: vec![],
        })
        .unwrap_err();
        assert!(err.contains("sharded spill tree"), "{err}");
        let trace_path = tmp("pspill-trace.csv");
        run(&Command::Generate {
            dataset: "synthetic".into(),
            seed: 1,
            full: false,
            out: Some(trace_path.clone()),
        })
        .unwrap();
        let err = run(&Command::LogAppend {
            dir: dir.clone(),
            input: trace_path,
            track: 999,
            algorithm: "none".into(),
            tolerance: 10.0,
        })
        .unwrap_err();
        assert!(err.contains("sharded spill tree"), "{err}");
        // But any single shard still works as a normal flat log.
        let shard0 = std::path::Path::new(&dir)
            .join("shard-0")
            .to_string_lossy()
            .into_owned();
        let listing = run(&Command::LogQuery {
            dir: shard0,
            track: None,
            from: None,
            to: None,
            bbox: None,
            at: None,
            out: None,
        })
        .unwrap();
        assert!(listing.contains("tracks"), "{listing}");
    }

    #[test]
    fn unified_query_answers_identically_over_flat_logs_and_shard_trees() {
        let flat = tmp("uq-flat");
        let tree = tmp("uq-tree");
        let _ = std::fs::remove_dir_all(&flat);
        let _ = std::fs::remove_dir_all(&tree);
        let fleet_to = |dir: &str, workers: usize| Command::Fleet {
            sessions: 10,
            points: 150,
            tolerance: 10.0,
            algorithm: "fbqs".into(),
            shards: 4,
            workers,
            seed: 21,
            spill: Some(dir.to_string()),
            query_after: None,
        };
        run(&fleet_to(&flat, 1)).unwrap();
        let text = run(&fleet_to(&tree, 4)).unwrap();
        assert!(text.contains("wrote MANIFEST"), "{text}");

        let query = |dir: &str| Command::Query {
            dir: dir.to_string(),
            track: None,
            from: Some(0.0),
            to: Some(600.0),
            bbox: None,
            out: None,
        };
        // Identical data lines; only the shard breakdown differs.
        let data = |text: String| {
            text.lines()
                .filter(|l| !l.contains("shard") && !l.contains("pruned"))
                .map(str::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        };
        let from_flat = run(&query(&flat)).unwrap();
        let from_tree = run(&query(&tree)).unwrap();
        assert!(from_tree.contains("4 shard(s)"), "{from_tree}");
        assert_eq!(data(from_flat), data(from_tree));

        // A track-selective query prunes shards via the MANIFEST.
        let one = run(&Command::Query {
            dir: tree.clone(),
            track: Some(3),
            from: None,
            to: None,
            bbox: None,
            out: None,
        })
        .unwrap();
        assert!(one.contains("3 shard(s) pruned"), "{one}");
        assert!(one.contains("pruned, never opened"), "{one}");

        // And the tree verifies with its manifest cross-checked.
        let verdict = run(&Command::LogVerify { dir: tree }).unwrap();
        assert!(verdict.contains("MANIFEST verified"), "{verdict}");
    }

    #[test]
    fn query_after_reports_through_the_unified_engine() {
        let dir = tmp("uq-after");
        let _ = std::fs::remove_dir_all(&dir);
        let text = run(&Command::Fleet {
            sessions: 6,
            points: 100,
            tolerance: 10.0,
            algorithm: "fbqs".into(),
            shards: 4,
            workers: 2,
            seed: 5,
            spill: Some(dir),
            query_after: Some([0.0, 300.0]),
        })
        .unwrap();
        assert!(text.contains("query [0, 300]"), "{text}");
        assert!(text.contains("6 tracks"), "{text}");
    }

    #[test]
    fn incompatible_spill_layouts_are_diagnosed_specifically() {
        // A flat log refuses a multi-worker tree with a layout-specific
        // error, not the generic non-empty message.
        let dir = tmp("layout-guard");
        let _ = std::fs::remove_dir_all(&dir);
        let fleet = |workers: usize, spill: String| Command::Fleet {
            sessions: 4,
            points: 80,
            tolerance: 10.0,
            algorithm: "fbqs".into(),
            shards: 4,
            workers,
            seed: 2,
            spill: Some(spill),
            query_after: None,
        };
        run(&fleet(1, dir.clone())).unwrap();
        let err = run(&fleet(4, dir.clone())).unwrap_err();
        assert!(err.contains("flat trajectory log"), "{err}");
        assert!(err.contains("fresh directory"), "{err}");

        // And a tree refuses both a flat run and a different worker
        // count, naming what it found.
        let tree = tmp("layout-guard-tree");
        let _ = std::fs::remove_dir_all(&tree);
        run(&fleet(4, tree.clone())).unwrap();
        let err = run(&fleet(1, tree.clone())).unwrap_err();
        assert!(err.contains("sharded spill tree"), "{err}");
        let err = run(&fleet(2, tree)).unwrap_err();
        assert!(err.contains("different --workers"), "{err}");
    }

    #[test]
    fn log_append_query_compact_verify_round_trip() {
        let dir = tmp("log-cli");
        let _ = std::fs::remove_dir_all(&dir);
        let trace_path = tmp("log-cli-trace.csv");
        run(&Command::Generate {
            dataset: "synthetic".into(),
            seed: 11,
            full: false,
            out: Some(trace_path.clone()),
        })
        .unwrap();

        let appended = run(&Command::LogAppend {
            dir: dir.clone(),
            input: trace_path.clone(),
            track: 1,
            algorithm: "fbqs".into(),
            tolerance: 10.0,
        })
        .unwrap();
        assert!(appended.contains("appended track 1"), "{appended}");
        run(&Command::LogAppend {
            dir: dir.clone(),
            input: trace_path,
            track: 2,
            algorithm: "none".into(),
            tolerance: 10.0,
        })
        .unwrap();

        let csv_path = tmp("log-cli-query.csv");
        let summary = run(&Command::LogQuery {
            dir: dir.clone(),
            track: Some(2),
            from: Some(0.0),
            to: Some(1e12),
            bbox: None,
            at: None,
            out: Some(csv_path.clone()),
        })
        .unwrap();
        assert!(summary.contains("1 tracks"), "{summary}");
        let csv = std::fs::read_to_string(&csv_path).unwrap();
        assert!(csv.starts_with("track,x,y,t"), "{}", &csv[..40]);

        let at = run(&Command::LogQuery {
            dir: dir.clone(),
            track: Some(1),
            from: None,
            to: None,
            bbox: None,
            at: Some(30.0),
            out: None,
        })
        .unwrap();
        assert!(at.contains("track 1 at t=30"), "{at}");

        let compacted = run(&Command::LogCompact {
            dir: dir.clone(),
            drop: vec![2],
        })
        .unwrap();
        assert!(compacted.contains("dropped 1 track"), "{compacted}");

        let verdict = run(&Command::LogVerify { dir: dir.clone() }).unwrap();
        assert!(verdict.starts_with("OK"), "{verdict}");

        // Track 2 is gone, track 1 remains.
        let listing = run(&Command::LogQuery {
            dir,
            track: None,
            from: None,
            to: None,
            bbox: None,
            at: None,
            out: None,
        })
        .unwrap();
        assert!(listing.contains("1 tracks"), "{listing}");
    }

    #[test]
    fn serve_and_loadgen_round_trip_over_loopback() {
        let dir = tmp("serve-spill");
        let _ = std::fs::remove_dir_all(&dir);
        let port_file = tmp("serve-port");
        let _ = std::fs::remove_file(&port_file);

        let serve_cmd = Command::Serve {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            spill: dir.clone(),
            tolerance: 10.0,
            shards: 4,
            io_threads: 2,
            max_connections: 64,
            port_file: Some(port_file.clone()),
            metrics_interval: Some(1),
            lateness: 0.0,
            alerts: vec![],
            prom_addr: None,
            evict_idle: 0.0,
        };
        let server = std::thread::spawn(move || run(&serve_cmd));

        // The bound address lands in the port file once the listener is
        // up; poll briefly instead of guessing a port.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                let addr = text.trim().to_string();
                if !addr.is_empty() {
                    break addr;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "server never wrote its port file"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        };

        let text = run(&Command::Loadgen {
            addr,
            sessions: 6,
            points: 80,
            seed: 3,
            connections: 2,
            batch: 16,
            shutdown: true,
            disorder: 0.0,
            backfill: false,
        })
        .unwrap();
        assert!(text.contains("sent 480 points"), "{text}");
        assert!(text.contains("append latency"), "{text}");
        assert!(text.contains("acknowledged shutdown"), "{text}");

        let summary = server.join().unwrap().unwrap();
        assert!(summary.contains("spilled 6 sessions"), "{summary}");
        assert!(summary.contains("wrote MANIFEST (2 shards)"), "{summary}");

        // The spilled tree verifies and answers queries like any fleet
        // spill tree.
        let verdict = run(&Command::LogVerify { dir: dir.clone() }).unwrap();
        assert!(verdict.starts_with("OK"), "{verdict}");
        assert!(verdict.contains("2 shards"), "{verdict}");
        let listing = run(&Command::Query {
            dir,
            track: None,
            from: None,
            to: None,
            bbox: None,
            out: None,
        })
        .unwrap();
        assert!(listing.contains("6 tracks"), "{listing}");
    }

    #[test]
    fn serve_refuses_a_used_spill_directory() {
        let dir = tmp("serve-used");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(std::path::Path::new(&dir).join("junk"), b"x").unwrap();
        let err = run(&Command::Serve {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            spill: dir,
            tolerance: 10.0,
            shards: 4,
            io_threads: 4,
            max_connections: 4096,
            port_file: None,
            metrics_interval: None,
            lateness: 0.0,
            alerts: vec![],
            prom_addr: None,
            evict_idle: 0.0,
        })
        .unwrap_err();
        assert!(err.contains("fresh directory"), "{err}");
    }

    #[test]
    fn experiments_subcommand_quick() {
        let cmd = parse(&["experiments".to_string(), "table2".to_string()]).unwrap();
        let text = run(&cmd).unwrap();
        assert!(text.contains("Table II"));
        let err = run(&Command::Experiments {
            names: vec!["nope".into()],
            full: false,
        })
        .unwrap_err();
        assert!(err.contains("no experiment matched"));
    }
}
