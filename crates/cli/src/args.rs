//! Hand-rolled argument parsing for the `bqs` binary.

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `bqs generate <dataset> [--seed N] [--scale quick|full] [--out FILE]`
    Generate {
        /// Dataset name: bat, vehicle or synthetic.
        dataset: String,
        /// RNG seed.
        seed: u64,
        /// Paper-size data when true.
        full: bool,
        /// Output path (stdout when `None`).
        out: Option<String>,
    },
    /// `bqs compress <algorithm> <input> [--tolerance M] [--buffer N] [--out FILE]`
    Compress {
        /// Algorithm label.
        algorithm: String,
        /// Input CSV path.
        input: String,
        /// Error tolerance in metres.
        tolerance: f64,
        /// Window size for buffered algorithms.
        buffer: usize,
        /// Output path (stdout when `None`).
        out: Option<String>,
    },
    /// `bqs verify <original> <compressed> --tolerance M`
    Verify {
        /// Original trace CSV.
        original: String,
        /// Compressed trace CSV.
        compressed: String,
        /// Tolerance to verify against.
        tolerance: f64,
    },
    /// `bqs experiments [names...] [--full]`
    Experiments {
        /// Experiment names; empty means all.
        names: Vec<String>,
        /// Paper-size data when true.
        full: bool,
    },
    /// `bqs fleet [--sessions N] [--points N] [--tolerance M] [--algorithm bqs|fbqs] [--shards N] [--workers N] [--seed N] [--spill DIR] [--query-after FROM,TO|all]`
    Fleet {
        /// Concurrent simulated trackers.
        sessions: usize,
        /// Points per tracker.
        points: usize,
        /// Error tolerance in metres.
        tolerance: f64,
        /// Compressor family: "bqs" or "fbqs".
        algorithm: String,
        /// Session shards inside each engine (rounded up to a power of
        /// two).
        shards: usize,
        /// Parallel worker threads; each owns a private engine (and,
        /// with `--spill`, a private `shard-<k>/` log).
        workers: usize,
        /// Base RNG seed; session `t` walks with seed `seed + t`, so a
        /// fleet run is reproducible end-to-end.
        seed: u64,
        /// Spill session output into a trajectory log at this directory.
        spill: Option<String>,
        /// After the run, answer a time-range query over the spilled
        /// data through the unified query engine (`[from, to]`;
        /// `--query-after all` covers everything). Needs `--spill`.
        query_after: Option<[f64; 2]>,
    },
    /// `bqs query <dir> [--track N] [--from T] [--to T] [--bbox X0,Y0,X1,Y1] [--out FILE]`
    Query {
        /// A flat log directory or a `shard-<k>/` spill-tree root.
        dir: String,
        /// Restrict to one track.
        track: Option<u64>,
        /// Inclusive lower time bound.
        from: Option<f64>,
        /// Inclusive upper time bound.
        to: Option<f64>,
        /// Spatial filter `x0,y0,x1,y1` (any two opposite corners).
        bbox: Option<[f64; 4]>,
        /// Output path (stdout when `None`).
        out: Option<String>,
    },
    /// `bqs log append <dir> <trace.csv> --track N [--algorithm none|bqs|fbqs] [--tolerance M]`
    LogAppend {
        /// Log directory.
        dir: String,
        /// Input trace CSV.
        input: String,
        /// Track id to append under.
        track: u64,
        /// Compress before appending: "none", "bqs" or "fbqs".
        algorithm: String,
        /// Error tolerance in metres (compressing algorithms only).
        tolerance: f64,
    },
    /// `bqs log query <dir> [--track N] [--from T] [--to T] [--bbox X0,Y0,X1,Y1] [--at T] [--out FILE]`
    LogQuery {
        /// Log directory.
        dir: String,
        /// Restrict to one track.
        track: Option<u64>,
        /// Inclusive lower time bound.
        from: Option<f64>,
        /// Inclusive upper time bound.
        to: Option<f64>,
        /// Spatial filter `x0,y0,x1,y1` (any two opposite corners).
        bbox: Option<[f64; 4]>,
        /// Reconstruct the track's position at this time (needs --track).
        at: Option<f64>,
        /// Output path (stdout when `None`).
        out: Option<String>,
    },
    /// `bqs log compact <dir> [--drop TRACK]...`
    LogCompact {
        /// Log directory.
        dir: String,
        /// Tracks to tombstone before compacting.
        drop: Vec<u64>,
    },
    /// `bqs log verify <dir>`
    LogVerify {
        /// Log directory.
        dir: String,
    },
    /// `bqs serve --spill DIR [--addr HOST:PORT] [--workers N] [--tolerance M] [--shards N] [--io-threads N] [--max-connections N] [--port-file FILE]`
    Serve {
        /// Bind address, `host:port` (`:0` picks an ephemeral port).
        addr: String,
        /// Parallel fleet worker threads behind the server.
        workers: usize,
        /// Directory the server spills closed sessions into (must be
        /// fresh, like `bqs fleet --spill`).
        spill: String,
        /// Error tolerance in metres.
        tolerance: f64,
        /// Session shards inside each worker's engine.
        shards: usize,
        /// I/O threads multiplexing the connections (0 = legacy
        /// thread-per-connection runtime).
        io_threads: usize,
        /// Cap on concurrently served connections; accepts beyond it
        /// get a typed over-capacity error frame.
        max_connections: usize,
        /// Write the actually bound address to this file (useful with
        /// port 0 — scripts read it instead of parsing stdout).
        port_file: Option<String>,
        /// Log a one-line metrics summary to stderr every N seconds
        /// (`None` disables the reporter thread).
        metrics_interval: Option<u64>,
        /// Bounded-lateness window in seconds: points up to this far
        /// behind a track's watermark are reorder-buffered instead of
        /// rejected (0 keeps strict in-order ingest).
        lateness: f64,
        /// Declarative threshold rules (`metric:stat>threshold`),
        /// evaluated every reporter tick; repeatable. Needs
        /// `--metrics-interval`.
        alerts: Vec<String>,
        /// Serve the Prometheus text exposition over HTTP at this
        /// address (`GET /metrics`).
        prom_addr: Option<String>,
        /// Evict sessions idle longer than this many stream-clock
        /// seconds (0 disables eviction).
        evict_idle: f64,
    },
    /// `bqs loadgen --addr HOST:PORT [--sessions N] [--points N] [--seed N] [--connections N] [--batch N] [--disorder S] [--backfill] [--shutdown]`
    Loadgen {
        /// Server address, `host:port`.
        addr: String,
        /// Simulated tracker sessions.
        sessions: usize,
        /// Points per session.
        points: usize,
        /// Base RNG seed (session `t` walks with seed `seed + t`, the
        /// same workload `bqs fleet --seed` drives in process).
        seed: u64,
        /// Concurrent client connections.
        connections: usize,
        /// Points per `Append` frame.
        batch: usize,
        /// Send `Shutdown` once the load completes.
        shutdown: bool,
        /// Deliver each session's points out of order within this many
        /// seconds (seeded bounded shuffle; needs a server started with
        /// `--lateness` at least this large). 0 = strict order.
        disorder: f64,
        /// Ship each session's oldest third through the durable
        /// backfill path after its live remainder.
        backfill: bool,
    },
    /// `bqs subscribe --addr HOST:PORT [--track N] [--bbox X0,Y0,X1,Y1] [--out FILE]`
    Subscribe {
        /// Server address, `host:port`.
        addr: String,
        /// Restrict the stream to one track.
        track: Option<u64>,
        /// Spatial filter `x0,y0,x1,y1` (any two opposite corners).
        bbox: Option<[f64; 4]>,
        /// Output path (stdout when `None`).
        out: Option<String>,
    },
    /// `bqs bench [--quick] [--seed N] [--out FILE] [--compare BASELINE.json [--current RUN.json]]`
    Bench {
        /// Smaller workloads (CI-sized) instead of the full sweep.
        quick: bool,
        /// Base RNG seed for the generated workloads.
        seed: u64,
        /// Output path for the JSON report (stdout when `None`).
        out: Option<String>,
        /// Baseline report to gate against: any pinned workload whose
        /// throughput regresses more than 15% fails the run (non-zero
        /// exit).
        compare: Option<String>,
        /// With `--compare`: gate this existing report instead of
        /// running the benchmarks (cheap re-checks and CI negative
        /// tests).
        current: Option<String>,
    },
    /// `bqs metrics --addr HOST:PORT [--watch N | --prom]`
    Metrics {
        /// Server address, `host:port`.
        addr: String,
        /// Re-fetch every N seconds, printing counter deltas, until
        /// interrupted (`None` fetches once).
        watch: Option<u64>,
        /// Fetch the Prometheus text exposition instead of the native
        /// `name value` catalog (mutually exclusive with `--watch`).
        prom: bool,
    },
    /// `bqs trace --addr HOST:PORT [--last N] [--conn ID]`
    Trace {
        /// Server address, `host:port`.
        addr: String,
        /// Only the most recent N events.
        last: Option<u64>,
        /// Only events belonging to one connection id.
        conn: Option<u64>,
    },
    /// `bqs analyze [--deny] [--lint ID]... [ROOT]`
    Analyze {
        /// Exit non-zero when any finding is produced (the CI gate).
        deny: bool,
        /// Restrict the run to these lint/check ids (empty = all).
        lints: Vec<String>,
        /// Workspace root to analyze (the current directory when
        /// `None`).
        root: Option<String>,
    },
    /// `bqs info`
    Info,
    /// `bqs help` (or no arguments).
    Help,
}

/// Usage text.
pub const USAGE: &str = "\
bqs — Bounded Quadrant System trajectory compression

USAGE:
  bqs generate <bat|vehicle|synthetic> [--seed N] [--scale quick|full] [--out FILE]
  bqs compress <bqs|fbqs|bdp|bgd|dp|dr|squish-e|mbr> <trace.csv>
               [--tolerance M] [--buffer N] [--out FILE]
  bqs verify <original.csv> <compressed.csv> --tolerance M
  bqs experiments [fig3|fig6|fig7|fig8a|fig8b|table1|table2|table3|ablation|fleet|
                   storage|query|net|all] [--full]
  bqs fleet [--sessions N] [--points N] [--tolerance M] [--algorithm bqs|fbqs]
            [--shards N] [--workers N] [--seed N] [--spill DIR]
            [--query-after FROM,TO|all]
  bqs query <dir> [--track N] [--from T] [--to T] [--bbox X0,Y0,X1,Y1]
            [--out FILE]
  bqs serve --spill DIR [--addr HOST:PORT] [--workers N] [--tolerance M]
            [--shards N] [--io-threads N] [--max-connections N]
            [--port-file FILE] [--metrics-interval N] [--lateness S]
            [--alert RULE]... [--prom-addr HOST:PORT] [--evict-idle S]
  bqs loadgen --addr HOST:PORT [--sessions N] [--points N] [--seed N]
              [--connections N] [--batch N] [--disorder S] [--backfill]
              [--shutdown]
              (--sessions 0 --shutdown = no ingest, just shut down)
  bqs subscribe --addr HOST:PORT [--track N] [--bbox X0,Y0,X1,Y1] [--out FILE]
  bqs metrics --addr HOST:PORT [--watch N | --prom]
  bqs trace --addr HOST:PORT [--last N] [--conn ID]
  bqs bench [--quick] [--seed N] [--out FILE]
            [--compare BASELINE.json [--current RUN.json]]
  bqs log append <dir> <trace.csv> --track N [--algorithm none|bqs|fbqs]
                 [--tolerance M]
  bqs log query <dir> [--track N] [--from T] [--to T] [--bbox X0,Y0,X1,Y1]
                [--at T] [--out FILE]
  bqs log compact <dir> [--drop TRACK]...
  bqs log verify <dir>
  bqs analyze [--deny] [--lint ID]... [ROOT]
  bqs info
  bqs help (alias: --help, -h)
";

fn take_value<'a>(flag: &str, it: &mut std::slice::Iter<'a, String>) -> Result<&'a String, String> {
    it.next().ok_or_else(|| format!("{flag} requires a value"))
}

fn parse_f64(flag: &str, it: &mut std::slice::Iter<'_, String>) -> Result<f64, String> {
    take_value(flag, it)?
        .parse()
        .map_err(|e| format!("bad {flag}: {e}"))
}

fn parse_bbox(it: &mut std::slice::Iter<'_, String>) -> Result<[f64; 4], String> {
    let raw = take_value("--bbox", it)?;
    let parts: Vec<f64> = raw
        .split(',')
        .map(|s| s.trim().parse::<f64>())
        .collect::<Result<_, _>>()
        .map_err(|e| format!("bad --bbox: {e}"))?;
    let [x0, y0, x1, y1] = parts[..] else {
        return Err("--bbox needs exactly x0,y0,x1,y1".to_string());
    };
    Ok([x0, y0, x1, y1])
}

/// Parses the `bqs log <append|query|compact|verify>` family.
fn parse_log(it: &mut std::slice::Iter<'_, String>) -> Result<Command, String> {
    let sub = it.next().ok_or("log needs a subcommand")?;
    match sub.as_str() {
        "append" => {
            let mut positional: Vec<String> = Vec::new();
            let mut track: Option<u64> = None;
            let mut algorithm = "none".to_string();
            let mut tolerance = 10.0f64;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--track" => {
                        track = Some(
                            take_value("--track", it)?
                                .parse()
                                .map_err(|e| format!("bad --track: {e}"))?,
                        );
                    }
                    "--algorithm" => algorithm = take_value("--algorithm", it)?.clone(),
                    "--tolerance" => tolerance = parse_f64("--tolerance", it)?,
                    other if !other.starts_with('-') => positional.push(other.to_string()),
                    other => return Err(format!("unexpected argument: {other}")),
                }
            }
            if positional.len() != 2 {
                return Err("log append needs <dir> <trace.csv>".to_string());
            }
            if !["none", "bqs", "fbqs"].contains(&algorithm.as_str()) {
                return Err(format!(
                    "log append supports none|bqs|fbqs, got {algorithm}"
                ));
            }
            if !(tolerance.is_finite() && tolerance > 0.0) {
                return Err(format!("tolerance must be > 0, got {tolerance}"));
            }
            Ok(Command::LogAppend {
                dir: positional.remove(0),
                input: positional.remove(0),
                track: track.ok_or("log append needs --track")?,
                algorithm,
                tolerance,
            })
        }
        "query" => {
            let mut dir: Option<String> = None;
            let mut track: Option<u64> = None;
            let mut from: Option<f64> = None;
            let mut to: Option<f64> = None;
            let mut bbox: Option<[f64; 4]> = None;
            let mut at: Option<f64> = None;
            let mut out: Option<String> = None;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--track" => {
                        track = Some(
                            take_value("--track", it)?
                                .parse()
                                .map_err(|e| format!("bad --track: {e}"))?,
                        );
                    }
                    "--from" => from = Some(parse_f64("--from", it)?),
                    "--to" => to = Some(parse_f64("--to", it)?),
                    "--at" => at = Some(parse_f64("--at", it)?),
                    "--out" => out = Some(take_value("--out", it)?.clone()),
                    "--bbox" => bbox = Some(parse_bbox(it)?),
                    other if !other.starts_with('-') && dir.is_none() => {
                        dir = Some(other.to_string());
                    }
                    other => return Err(format!("unexpected argument: {other}")),
                }
            }
            if at.is_some() && track.is_none() {
                return Err("--at requires --track".to_string());
            }
            if at.is_some() && (from.is_some() || to.is_some() || bbox.is_some()) {
                return Err("--at cannot be combined with --from/--to/--bbox".to_string());
            }
            Ok(Command::LogQuery {
                dir: dir.ok_or("log query needs <dir>")?,
                track,
                from,
                to,
                bbox,
                at,
                out,
            })
        }
        "compact" => {
            let mut dir: Option<String> = None;
            let mut drop = Vec::new();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--drop" => {
                        drop.push(
                            take_value("--drop", it)?
                                .parse()
                                .map_err(|e| format!("bad --drop: {e}"))?,
                        );
                    }
                    other if !other.starts_with('-') && dir.is_none() => {
                        dir = Some(other.to_string());
                    }
                    other => return Err(format!("unexpected argument: {other}")),
                }
            }
            Ok(Command::LogCompact {
                dir: dir.ok_or("log compact needs <dir>")?,
                drop,
            })
        }
        "verify" => {
            let mut dir: Option<String> = None;
            for arg in it {
                match arg.as_str() {
                    other if !other.starts_with('-') && dir.is_none() => {
                        dir = Some(other.to_string());
                    }
                    other => return Err(format!("unexpected argument: {other}")),
                }
            }
            Ok(Command::LogVerify {
                dir: dir.ok_or("log verify needs <dir>")?,
            })
        }
        other => Err(format!("unknown log subcommand: {other}\n\n{USAGE}")),
    }
}

/// Parses `argv` (without the program name).
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let mut it = argv.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "info" => Ok(Command::Info),
        "generate" => {
            let mut dataset: Option<String> = None;
            let mut seed = 42u64;
            let mut full = false;
            let mut out = None;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--seed" => {
                        seed = take_value("--seed", &mut it)?
                            .parse()
                            .map_err(|e| format!("bad --seed: {e}"))?;
                    }
                    "--scale" => {
                        full = match take_value("--scale", &mut it)?.as_str() {
                            "full" => true,
                            "quick" => false,
                            other => return Err(format!("bad --scale: {other}")),
                        };
                    }
                    "--out" => out = Some(take_value("--out", &mut it)?.clone()),
                    other if !other.starts_with('-') && dataset.is_none() => {
                        dataset = Some(other.to_string());
                    }
                    other => return Err(format!("unexpected argument: {other}")),
                }
            }
            let dataset = dataset.ok_or("generate needs a dataset name")?;
            if !["bat", "vehicle", "synthetic"].contains(&dataset.as_str()) {
                return Err(format!("unknown dataset: {dataset}"));
            }
            Ok(Command::Generate {
                dataset,
                seed,
                full,
                out,
            })
        }
        "compress" => {
            let mut positional: Vec<String> = Vec::new();
            let mut tolerance = 10.0f64;
            let mut buffer = 32usize;
            let mut out = None;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--tolerance" => {
                        tolerance = take_value("--tolerance", &mut it)?
                            .parse()
                            .map_err(|e| format!("bad --tolerance: {e}"))?;
                    }
                    "--buffer" => {
                        buffer = take_value("--buffer", &mut it)?
                            .parse()
                            .map_err(|e| format!("bad --buffer: {e}"))?;
                    }
                    "--out" => out = Some(take_value("--out", &mut it)?.clone()),
                    other if !other.starts_with('-') => positional.push(other.to_string()),
                    other => return Err(format!("unexpected argument: {other}")),
                }
            }
            if positional.len() != 2 {
                return Err("compress needs <algorithm> <input.csv>".to_string());
            }
            if !(tolerance.is_finite() && tolerance > 0.0) {
                return Err(format!("tolerance must be > 0, got {tolerance}"));
            }
            let algorithm = positional.remove(0);
            let known = ["bqs", "fbqs", "bdp", "bgd", "dp", "dr", "squish-e", "mbr"];
            if !known.contains(&algorithm.as_str()) {
                return Err(format!("unknown algorithm: {algorithm}"));
            }
            Ok(Command::Compress {
                algorithm,
                input: positional.remove(0),
                tolerance,
                buffer,
                out,
            })
        }
        "verify" => {
            let mut positional: Vec<String> = Vec::new();
            let mut tolerance: Option<f64> = None;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--tolerance" => {
                        tolerance = Some(
                            take_value("--tolerance", &mut it)?
                                .parse()
                                .map_err(|e| format!("bad --tolerance: {e}"))?,
                        );
                    }
                    other if !other.starts_with('-') => positional.push(other.to_string()),
                    other => return Err(format!("unexpected argument: {other}")),
                }
            }
            if positional.len() != 2 {
                return Err("verify needs <original.csv> <compressed.csv>".to_string());
            }
            let tolerance = tolerance.ok_or("verify needs --tolerance")?;
            Ok(Command::Verify {
                original: positional.remove(0),
                compressed: positional.remove(0),
                tolerance,
            })
        }
        "experiments" => {
            let mut names = Vec::new();
            let mut full = false;
            for arg in it {
                match arg.as_str() {
                    "--full" => full = true,
                    other if !other.starts_with('-') => names.push(other.to_string()),
                    other => return Err(format!("unexpected argument: {other}")),
                }
            }
            Ok(Command::Experiments { names, full })
        }
        "fleet" => {
            let mut sessions = 100usize;
            let mut points = 500usize;
            let mut tolerance = 10.0f64;
            let mut algorithm = "fbqs".to_string();
            let mut shards = 16usize;
            let mut workers = 1usize;
            let mut seed = 1u64;
            let mut spill = None;
            let mut query_after = None;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--seed" => {
                        seed = take_value("--seed", &mut it)?
                            .parse()
                            .map_err(|e| format!("bad --seed: {e}"))?;
                    }
                    "--spill" => spill = Some(take_value("--spill", &mut it)?.clone()),
                    "--query-after" => {
                        let raw = take_value("--query-after", &mut it)?;
                        query_after = Some(if raw == "all" {
                            [f64::NEG_INFINITY, f64::INFINITY]
                        } else {
                            let parts: Vec<f64> = raw
                                .split(',')
                                .map(|s| s.trim().parse::<f64>())
                                .collect::<Result<_, _>>()
                                .map_err(|e| format!("bad --query-after: {e}"))?;
                            let [from, to] = parts[..] else {
                                return Err("--query-after needs FROM,TO or \"all\"".to_string());
                            };
                            [from, to]
                        });
                    }
                    "--sessions" => {
                        sessions = take_value("--sessions", &mut it)?
                            .parse()
                            .map_err(|e| format!("bad --sessions: {e}"))?;
                    }
                    "--points" => {
                        points = take_value("--points", &mut it)?
                            .parse()
                            .map_err(|e| format!("bad --points: {e}"))?;
                    }
                    "--tolerance" => {
                        tolerance = take_value("--tolerance", &mut it)?
                            .parse()
                            .map_err(|e| format!("bad --tolerance: {e}"))?;
                    }
                    "--algorithm" => {
                        algorithm = take_value("--algorithm", &mut it)?.clone();
                    }
                    "--shards" => {
                        shards = take_value("--shards", &mut it)?
                            .parse()
                            .map_err(|e| format!("bad --shards: {e}"))?;
                    }
                    "--workers" => {
                        workers = take_value("--workers", &mut it)?
                            .parse()
                            .map_err(|e| format!("bad --workers: {e}"))?;
                    }
                    other => return Err(format!("unexpected argument: {other}")),
                }
            }
            // Every counted quantity is validated the same way: a zero
            // produces an empty or nonsense run, never a report.
            for (flag, value) in [
                ("--sessions", sessions),
                ("--points", points),
                ("--shards", shards),
                ("--workers", workers),
            ] {
                if value == 0 {
                    return Err(format!("fleet needs {flag} ≥ 1, got 0"));
                }
            }
            if !(tolerance.is_finite() && tolerance > 0.0) {
                return Err(format!("tolerance must be > 0, got {tolerance}"));
            }
            if !["bqs", "fbqs"].contains(&algorithm.as_str()) {
                return Err(format!("fleet supports bqs|fbqs, got {algorithm}"));
            }
            if query_after.is_some() && spill.is_none() {
                return Err("--query-after needs --spill (it queries the spilled log)".to_string());
            }
            Ok(Command::Fleet {
                sessions,
                points,
                tolerance,
                algorithm,
                shards,
                workers,
                seed,
                spill,
                query_after,
            })
        }
        "query" => {
            let mut dir: Option<String> = None;
            let mut track: Option<u64> = None;
            let mut from: Option<f64> = None;
            let mut to: Option<f64> = None;
            let mut bbox: Option<[f64; 4]> = None;
            let mut out: Option<String> = None;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--track" => {
                        track = Some(
                            take_value("--track", &mut it)?
                                .parse()
                                .map_err(|e| format!("bad --track: {e}"))?,
                        );
                    }
                    "--from" => from = Some(parse_f64("--from", &mut it)?),
                    "--to" => to = Some(parse_f64("--to", &mut it)?),
                    "--bbox" => bbox = Some(parse_bbox(&mut it)?),
                    "--out" => out = Some(take_value("--out", &mut it)?.clone()),
                    other if !other.starts_with('-') && dir.is_none() => {
                        dir = Some(other.to_string());
                    }
                    other => return Err(format!("unexpected argument: {other}")),
                }
            }
            Ok(Command::Query {
                dir: dir.ok_or("query needs <dir>")?,
                track,
                from,
                to,
                bbox,
                out,
            })
        }
        "serve" => {
            let mut addr = "127.0.0.1:0".to_string();
            let mut workers = 4usize;
            let mut spill: Option<String> = None;
            let mut tolerance = 10.0f64;
            let mut shards = 16usize;
            let mut io_threads = 4usize;
            let mut max_connections = 4096usize;
            let mut port_file: Option<String> = None;
            let mut metrics_interval: Option<u64> = None;
            let mut lateness = 0.0f64;
            let mut alerts: Vec<String> = Vec::new();
            let mut prom_addr: Option<String> = None;
            let mut evict_idle = 0.0f64;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--addr" => addr = take_value("--addr", &mut it)?.clone(),
                    "--lateness" => lateness = parse_f64("--lateness", &mut it)?,
                    "--alert" => alerts.push(take_value("--alert", &mut it)?.clone()),
                    "--prom-addr" => prom_addr = Some(take_value("--prom-addr", &mut it)?.clone()),
                    "--evict-idle" => evict_idle = parse_f64("--evict-idle", &mut it)?,
                    "--spill" => spill = Some(take_value("--spill", &mut it)?.clone()),
                    "--port-file" => port_file = Some(take_value("--port-file", &mut it)?.clone()),
                    "--metrics-interval" => {
                        let n: u64 = take_value("--metrics-interval", &mut it)?
                            .parse()
                            .map_err(|e| format!("bad --metrics-interval: {e}"))?;
                        if n == 0 {
                            return Err("serve needs --metrics-interval ≥ 1, got 0".to_string());
                        }
                        metrics_interval = Some(n);
                    }
                    "--tolerance" => tolerance = parse_f64("--tolerance", &mut it)?,
                    "--workers" => {
                        workers = take_value("--workers", &mut it)?
                            .parse()
                            .map_err(|e| format!("bad --workers: {e}"))?;
                    }
                    "--shards" => {
                        shards = take_value("--shards", &mut it)?
                            .parse()
                            .map_err(|e| format!("bad --shards: {e}"))?;
                    }
                    "--io-threads" => {
                        // 0 is meaningful: the legacy runtime.
                        io_threads = take_value("--io-threads", &mut it)?
                            .parse()
                            .map_err(|e| format!("bad --io-threads: {e}"))?;
                    }
                    "--max-connections" => {
                        max_connections = take_value("--max-connections", &mut it)?
                            .parse()
                            .map_err(|e| format!("bad --max-connections: {e}"))?;
                    }
                    other => return Err(format!("unexpected argument: {other}")),
                }
            }
            for (flag, value) in [
                ("--workers", workers),
                ("--shards", shards),
                ("--max-connections", max_connections),
            ] {
                if value == 0 {
                    return Err(format!("serve needs {flag} ≥ 1, got 0"));
                }
            }
            if !(tolerance.is_finite() && tolerance > 0.0) {
                return Err(format!("tolerance must be > 0, got {tolerance}"));
            }
            if !(lateness.is_finite() && lateness >= 0.0) {
                return Err(format!("--lateness must be ≥ 0 seconds, got {lateness}"));
            }
            if !(evict_idle.is_finite() && evict_idle >= 0.0) {
                return Err(format!(
                    "--evict-idle must be ≥ 0 seconds, got {evict_idle}"
                ));
            }
            if !alerts.is_empty() && metrics_interval.is_none() {
                return Err(
                    "--alert needs --metrics-interval (the reporter evaluates the rules)"
                        .to_string(),
                );
            }
            Ok(Command::Serve {
                addr,
                workers,
                spill: spill.ok_or("serve needs --spill DIR (the durable output)")?,
                tolerance,
                shards,
                io_threads,
                max_connections,
                port_file,
                metrics_interval,
                lateness,
                alerts,
                prom_addr,
                evict_idle,
            })
        }
        "loadgen" => {
            let mut addr: Option<String> = None;
            let mut sessions = 100usize;
            let mut points = 500usize;
            let mut seed = 1u64;
            let mut connections = 1usize;
            let mut batch = 64usize;
            let mut shutdown = false;
            let mut disorder = 0.0f64;
            let mut backfill = false;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--addr" => addr = Some(take_value("--addr", &mut it)?.clone()),
                    "--shutdown" => shutdown = true,
                    "--backfill" => backfill = true,
                    "--disorder" => disorder = parse_f64("--disorder", &mut it)?,
                    "--seed" => {
                        seed = take_value("--seed", &mut it)?
                            .parse()
                            .map_err(|e| format!("bad --seed: {e}"))?;
                    }
                    "--sessions" => {
                        sessions = take_value("--sessions", &mut it)?
                            .parse()
                            .map_err(|e| format!("bad --sessions: {e}"))?;
                    }
                    "--points" => {
                        points = take_value("--points", &mut it)?
                            .parse()
                            .map_err(|e| format!("bad --points: {e}"))?;
                    }
                    "--connections" => {
                        connections = take_value("--connections", &mut it)?
                            .parse()
                            .map_err(|e| format!("bad --connections: {e}"))?;
                    }
                    "--batch" => {
                        batch = take_value("--batch", &mut it)?
                            .parse()
                            .map_err(|e| format!("bad --batch: {e}"))?;
                    }
                    other => return Err(format!("unexpected argument: {other}")),
                }
            }
            // `--sessions 0 --shutdown` (or `--points 0`) is the
            // pure-shutdown mode: no ingest, one Shutdown connection.
            let shutdown_only = shutdown && (sessions == 0 || points == 0);
            if !shutdown_only {
                for (flag, value) in [
                    ("--sessions", sessions),
                    ("--points", points),
                    ("--connections", connections),
                    ("--batch", batch),
                ] {
                    if value == 0 {
                        return Err(format!("loadgen needs {flag} ≥ 1, got 0"));
                    }
                }
            }
            if !(disorder.is_finite() && disorder >= 0.0) {
                return Err(format!("--disorder must be ≥ 0 seconds, got {disorder}"));
            }
            Ok(Command::Loadgen {
                addr: addr.ok_or("loadgen needs --addr HOST:PORT (a running bqs serve)")?,
                sessions,
                points,
                seed,
                connections,
                batch,
                shutdown,
                disorder,
                backfill,
            })
        }
        "subscribe" => {
            let mut addr: Option<String> = None;
            let mut track: Option<u64> = None;
            let mut bbox: Option<[f64; 4]> = None;
            let mut out: Option<String> = None;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--addr" => addr = Some(take_value("--addr", &mut it)?.clone()),
                    "--track" => {
                        track = Some(
                            take_value("--track", &mut it)?
                                .parse()
                                .map_err(|e| format!("bad --track: {e}"))?,
                        );
                    }
                    "--bbox" => bbox = Some(parse_bbox(&mut it)?),
                    "--out" => out = Some(take_value("--out", &mut it)?.clone()),
                    other => return Err(format!("unexpected argument: {other}")),
                }
            }
            Ok(Command::Subscribe {
                addr: addr.ok_or("subscribe needs --addr HOST:PORT (a running bqs serve)")?,
                track,
                bbox,
                out,
            })
        }
        "bench" => {
            let mut quick = false;
            let mut seed = 1u64;
            let mut out: Option<String> = None;
            let mut compare: Option<String> = None;
            let mut current: Option<String> = None;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--quick" => quick = true,
                    "--out" => out = Some(take_value("--out", &mut it)?.clone()),
                    "--compare" => compare = Some(take_value("--compare", &mut it)?.clone()),
                    "--current" => current = Some(take_value("--current", &mut it)?.clone()),
                    "--seed" => {
                        seed = take_value("--seed", &mut it)?
                            .parse()
                            .map_err(|e| format!("bad --seed: {e}"))?;
                    }
                    other => return Err(format!("unexpected argument: {other}")),
                }
            }
            if current.is_some() && compare.is_none() {
                return Err("--current needs --compare (the baseline to gate against)".to_string());
            }
            Ok(Command::Bench {
                quick,
                seed,
                out,
                compare,
                current,
            })
        }
        "metrics" => {
            let mut addr: Option<String> = None;
            let mut watch: Option<u64> = None;
            let mut prom = false;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--addr" => addr = Some(take_value("--addr", &mut it)?.clone()),
                    "--prom" => prom = true,
                    "--watch" => {
                        let n: u64 = take_value("--watch", &mut it)?
                            .parse()
                            .map_err(|e| format!("bad --watch: {e}"))?;
                        if n == 0 {
                            return Err("metrics needs --watch ≥ 1, got 0".to_string());
                        }
                        watch = Some(n);
                    }
                    other => return Err(format!("unexpected argument: {other}")),
                }
            }
            if prom && watch.is_some() {
                return Err("--prom and --watch are mutually exclusive \
                     (--prom is a one-shot scrape; --watch prints native-format deltas)"
                    .to_string());
            }
            Ok(Command::Metrics {
                addr: addr.ok_or("metrics needs --addr HOST:PORT (a running bqs serve)")?,
                watch,
                prom,
            })
        }
        "trace" => {
            let mut addr: Option<String> = None;
            let mut last: Option<u64> = None;
            let mut conn: Option<u64> = None;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--addr" => addr = Some(take_value("--addr", &mut it)?.clone()),
                    "--last" => {
                        let n: u64 = take_value("--last", &mut it)?
                            .parse()
                            .map_err(|e| format!("bad --last: {e}"))?;
                        if n == 0 {
                            return Err("trace needs --last ≥ 1, got 0".to_string());
                        }
                        last = Some(n);
                    }
                    "--conn" => {
                        conn = Some(
                            take_value("--conn", &mut it)?
                                .parse()
                                .map_err(|e| format!("bad --conn: {e}"))?,
                        );
                    }
                    other => return Err(format!("unexpected argument: {other}")),
                }
            }
            Ok(Command::Trace {
                addr: addr.ok_or("trace needs --addr HOST:PORT (a running bqs serve)")?,
                last,
                conn,
            })
        }
        "analyze" => {
            let mut deny = false;
            let mut lints: Vec<String> = Vec::new();
            let mut root: Option<String> = None;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--deny" => deny = true,
                    "--lint" => lints.push(take_value("--lint", &mut it)?.clone()),
                    other if !other.starts_with('-') && root.is_none() => {
                        root = Some(other.to_string());
                    }
                    other => return Err(format!("unexpected argument: {other}")),
                }
            }
            Ok(Command::Analyze { deny, lints, root })
        }
        "log" => parse_log(&mut it),
        other => Err(format!("unknown command: {other}\n\n{USAGE}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn no_args_is_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&args("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn generate_defaults_and_flags() {
        assert_eq!(
            parse(&args("generate bat")).unwrap(),
            Command::Generate {
                dataset: "bat".into(),
                seed: 42,
                full: false,
                out: None
            }
        );
        assert_eq!(
            parse(&args(
                "generate synthetic --seed 7 --scale full --out x.csv"
            ))
            .unwrap(),
            Command::Generate {
                dataset: "synthetic".into(),
                seed: 7,
                full: true,
                out: Some("x.csv".into())
            }
        );
    }

    #[test]
    fn generate_rejects_bad_input() {
        assert!(parse(&args("generate")).is_err());
        assert!(parse(&args("generate mars")).is_err());
        assert!(parse(&args("generate bat --seed nope")).is_err());
        assert!(parse(&args("generate bat --scale medium")).is_err());
    }

    #[test]
    fn compress_parses() {
        assert_eq!(
            parse(&args(
                "compress fbqs in.csv --tolerance 7.5 --buffer 64 --out out.csv"
            ))
            .unwrap(),
            Command::Compress {
                algorithm: "fbqs".into(),
                input: "in.csv".into(),
                tolerance: 7.5,
                buffer: 64,
                out: Some("out.csv".into())
            }
        );
    }

    #[test]
    fn compress_rejects_bad_input() {
        assert!(parse(&args("compress fbqs")).is_err());
        assert!(parse(&args("compress warp in.csv")).is_err());
        assert!(parse(&args("compress fbqs in.csv --tolerance -3")).is_err());
    }

    #[test]
    fn verify_requires_tolerance() {
        assert!(parse(&args("verify a.csv b.csv")).is_err());
        assert_eq!(
            parse(&args("verify a.csv b.csv --tolerance 5")).unwrap(),
            Command::Verify {
                original: "a.csv".into(),
                compressed: "b.csv".into(),
                tolerance: 5.0
            }
        );
    }

    #[test]
    fn experiments_parses() {
        assert_eq!(
            parse(&args("experiments fig7 table2 --full")).unwrap(),
            Command::Experiments {
                names: vec!["fig7".into(), "table2".into()],
                full: true
            }
        );
        assert_eq!(
            parse(&args("experiments")).unwrap(),
            Command::Experiments {
                names: vec![],
                full: false
            }
        );
    }

    #[test]
    fn fleet_parses_with_defaults_and_flags() {
        assert_eq!(
            parse(&args("fleet")).unwrap(),
            Command::Fleet {
                sessions: 100,
                points: 500,
                tolerance: 10.0,
                algorithm: "fbqs".into(),
                shards: 16,
                workers: 1,
                seed: 1,
                spill: None,
                query_after: None
            }
        );
        assert_eq!(
            parse(&args(
                "fleet --sessions 8 --points 50 --tolerance 5 --algorithm bqs --shards 4 \
                 --workers 4 --seed 99 --spill /tmp/l --query-after 10,600"
            ))
            .unwrap(),
            Command::Fleet {
                sessions: 8,
                points: 50,
                tolerance: 5.0,
                algorithm: "bqs".into(),
                shards: 4,
                workers: 4,
                seed: 99,
                spill: Some("/tmp/l".into()),
                query_after: Some([10.0, 600.0])
            }
        );
        assert!(matches!(
            parse(&args("fleet --spill /tmp/l --query-after all")).unwrap(),
            Command::Fleet {
                query_after: Some([f, t]),
                ..
            } if f == f64::NEG_INFINITY && t == f64::INFINITY
        ));
    }

    #[test]
    fn fleet_rejects_bad_input() {
        assert!(parse(&args("fleet --tolerance -2")).is_err());
        assert!(parse(&args("fleet --tolerance inf")).is_err());
        assert!(parse(&args("fleet --algorithm dp")).is_err());
        assert!(parse(&args("fleet --frobnicate")).is_err());
        assert!(parse(&args("fleet --seed banana")).is_err());
        assert!(parse(&args("fleet --workers two")).is_err());
        // --query-after without a spill target is meaningless.
        assert!(parse(&args("fleet --query-after all")).is_err());
        assert!(parse(&args("fleet --spill /tmp/l --query-after 1,2,3")).is_err());
    }

    #[test]
    fn every_zero_count_is_rejected_with_a_uniform_message() {
        // A zero for any counted quantity would mean an empty or
        // nonsense run; all four flags fail the same way.
        for flag in ["--sessions", "--points", "--shards", "--workers"] {
            let err = parse(&args(&format!("fleet {flag} 0"))).unwrap_err();
            assert_eq!(err, format!("fleet needs {flag} ≥ 1, got 0"));
        }
    }

    #[test]
    fn query_parses_filters_and_requires_dir() {
        assert_eq!(
            parse(&args(
                "query /tmp/tree --track 3 --from 10 --to 99.5 --bbox 0,0,50,50 --out q.csv"
            ))
            .unwrap(),
            Command::Query {
                dir: "/tmp/tree".into(),
                track: Some(3),
                from: Some(10.0),
                to: Some(99.5),
                bbox: Some([0.0, 0.0, 50.0, 50.0]),
                out: Some("q.csv".into())
            }
        );
        assert_eq!(
            parse(&args("query /tmp/tree")).unwrap(),
            Command::Query {
                dir: "/tmp/tree".into(),
                track: None,
                from: None,
                to: None,
                bbox: None,
                out: None
            }
        );
        assert!(parse(&args("query")).is_err());
        assert!(parse(&args("query /tmp/tree --bbox 1,2,3")).is_err());
        assert!(parse(&args("query /tmp/tree --frobnicate")).is_err());
    }

    #[test]
    fn log_append_parses_and_validates() {
        assert_eq!(
            parse(&args("log append /tmp/log trace.csv --track 7")).unwrap(),
            Command::LogAppend {
                dir: "/tmp/log".into(),
                input: "trace.csv".into(),
                track: 7,
                algorithm: "none".into(),
                tolerance: 10.0
            }
        );
        assert_eq!(
            parse(&args(
                "log append /tmp/log trace.csv --track 7 --algorithm fbqs --tolerance 5"
            ))
            .unwrap(),
            Command::LogAppend {
                dir: "/tmp/log".into(),
                input: "trace.csv".into(),
                track: 7,
                algorithm: "fbqs".into(),
                tolerance: 5.0
            }
        );
        assert!(parse(&args("log append /tmp/log trace.csv")).is_err());
        assert!(parse(&args("log append /tmp/log --track 1")).is_err());
        assert!(parse(&args("log append /tmp/log t.csv --track 1 --algorithm dp")).is_err());
    }

    #[test]
    fn log_query_parses_filters() {
        assert_eq!(
            parse(&args(
                "log query /tmp/log --track 3 --from 10 --to 99.5 --bbox 0,0,50,50"
            ))
            .unwrap(),
            Command::LogQuery {
                dir: "/tmp/log".into(),
                track: Some(3),
                from: Some(10.0),
                to: Some(99.5),
                bbox: Some([0.0, 0.0, 50.0, 50.0]),
                at: None,
                out: None
            }
        );
        assert_eq!(
            parse(&args("log query /tmp/log --track 3 --at 42")).unwrap(),
            Command::LogQuery {
                dir: "/tmp/log".into(),
                track: Some(3),
                from: None,
                to: None,
                bbox: None,
                at: Some(42.0),
                out: None
            }
        );
        assert!(parse(&args("log query")).is_err());
        assert!(
            parse(&args("log query /tmp/log --at 5")).is_err(),
            "--at needs --track"
        );
        assert!(parse(&args("log query /tmp/log --bbox 1,2,3")).is_err());
    }

    #[test]
    fn log_compact_and_verify_parse() {
        assert_eq!(
            parse(&args("log compact /tmp/log --drop 4 --drop 9")).unwrap(),
            Command::LogCompact {
                dir: "/tmp/log".into(),
                drop: vec![4, 9]
            }
        );
        assert_eq!(
            parse(&args("log verify /tmp/log")).unwrap(),
            Command::LogVerify {
                dir: "/tmp/log".into()
            }
        );
        assert!(parse(&args("log")).is_err());
        assert!(parse(&args("log frobnicate /tmp/log")).is_err());
    }

    #[test]
    fn serve_parses_with_defaults_and_validates() {
        assert_eq!(
            parse(&args("serve --spill /tmp/tree")).unwrap(),
            Command::Serve {
                addr: "127.0.0.1:0".into(),
                workers: 4,
                spill: "/tmp/tree".into(),
                tolerance: 10.0,
                shards: 16,
                io_threads: 4,
                max_connections: 4096,
                port_file: None,
                metrics_interval: None,
                lateness: 0.0,
                alerts: vec![],
                prom_addr: None,
                evict_idle: 0.0
            }
        );
        assert_eq!(
            parse(&args(
                "serve --addr 0.0.0.0:4750 --workers 8 --spill /tmp/t --tolerance 5 \
                 --shards 4 --io-threads 2 --max-connections 64 --port-file /tmp/port \
                 --metrics-interval 10 --lateness 2.5 --alert append_latency_us:p99>5000 \
                 --alert fleet_queue_depth:peak>48 --prom-addr 127.0.0.1:9100 \
                 --evict-idle 30"
            ))
            .unwrap(),
            Command::Serve {
                addr: "0.0.0.0:4750".into(),
                workers: 8,
                spill: "/tmp/t".into(),
                tolerance: 5.0,
                shards: 4,
                io_threads: 2,
                max_connections: 64,
                port_file: Some("/tmp/port".into()),
                metrics_interval: Some(10),
                lateness: 2.5,
                alerts: vec![
                    "append_latency_us:p99>5000".into(),
                    "fleet_queue_depth:peak>48".into()
                ],
                prom_addr: Some("127.0.0.1:9100".into()),
                evict_idle: 30.0
            }
        );
        // 0 io-threads is valid: the legacy thread-per-connection mode.
        assert!(matches!(
            parse(&args("serve --spill /tmp/t --io-threads 0")).unwrap(),
            Command::Serve { io_threads: 0, .. }
        ));
        assert!(parse(&args("serve")).is_err(), "spill is required");
        assert!(parse(&args("serve --spill /tmp/t --workers 0")).is_err());
        assert!(parse(&args("serve --spill /tmp/t --max-connections 0")).is_err());
        assert!(parse(&args("serve --spill /tmp/t --tolerance -2")).is_err());
        assert!(parse(&args("serve --spill /tmp/t --metrics-interval 0")).is_err());
        assert!(parse(&args("serve --spill /tmp/t --frobnicate")).is_err());
        // Eviction windows validate like the lateness window.
        assert!(parse(&args("serve --spill /tmp/t --evict-idle -1")).is_err());
        assert!(parse(&args("serve --spill /tmp/t --evict-idle inf")).is_err());
        // Alert rules are evaluated by the reporter, so they need it.
        let err = parse(&args(
            "serve --spill /tmp/t --alert fleet_queue_depth:peak>48",
        ))
        .unwrap_err();
        assert!(err.contains("--alert needs --metrics-interval"), "{err}");
    }

    #[test]
    fn bench_parses_with_defaults_and_flags() {
        assert_eq!(
            parse(&args("bench")).unwrap(),
            Command::Bench {
                quick: false,
                seed: 1,
                out: None,
                compare: None,
                current: None
            }
        );
        assert_eq!(
            parse(&args("bench --quick --seed 7 --out BENCH.json")).unwrap(),
            Command::Bench {
                quick: true,
                seed: 7,
                out: Some("BENCH.json".into()),
                compare: None,
                current: None
            }
        );
        assert_eq!(
            parse(&args(
                "bench --quick --compare BASE.json --current RUN.json"
            ))
            .unwrap(),
            Command::Bench {
                quick: true,
                seed: 1,
                out: None,
                compare: Some("BASE.json".into()),
                current: Some("RUN.json".into())
            }
        );
        // Gating an existing report only makes sense against a baseline.
        assert!(parse(&args("bench --current RUN.json")).is_err());
        assert!(parse(&args("bench --frobnicate")).is_err());
    }

    #[test]
    fn metrics_parses_and_validates() {
        assert_eq!(
            parse(&args("metrics --addr 127.0.0.1:4750")).unwrap(),
            Command::Metrics {
                addr: "127.0.0.1:4750".into(),
                watch: None,
                prom: false
            }
        );
        assert_eq!(
            parse(&args("metrics --addr h:1 --watch 5")).unwrap(),
            Command::Metrics {
                addr: "h:1".into(),
                watch: Some(5),
                prom: false
            }
        );
        assert_eq!(
            parse(&args("metrics --addr h:1 --prom")).unwrap(),
            Command::Metrics {
                addr: "h:1".into(),
                watch: None,
                prom: true
            }
        );
        assert!(parse(&args("metrics")).is_err(), "addr is required");
        assert!(parse(&args("metrics --addr h:1 --watch 0")).is_err());
        assert!(parse(&args("metrics --addr h:1 --frobnicate")).is_err());
        // One-shot Prometheus scrape and the delta-printing watch loop
        // are different output formats; combining them is refused.
        let err = parse(&args("metrics --addr h:1 --prom --watch 5")).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn trace_parses_and_validates() {
        assert_eq!(
            parse(&args("trace --addr 127.0.0.1:4750")).unwrap(),
            Command::Trace {
                addr: "127.0.0.1:4750".into(),
                last: None,
                conn: None
            }
        );
        assert_eq!(
            parse(&args("trace --addr h:1 --last 50 --conn 3")).unwrap(),
            Command::Trace {
                addr: "h:1".into(),
                last: Some(50),
                conn: Some(3)
            }
        );
        assert!(parse(&args("trace")).is_err(), "addr is required");
        assert!(parse(&args("trace --addr h:1 --last 0")).is_err());
        assert!(parse(&args("trace --addr h:1 --conn banana")).is_err());
        assert!(parse(&args("trace --addr h:1 --frobnicate")).is_err());
    }

    #[test]
    fn loadgen_parses_with_defaults_and_validates() {
        assert_eq!(
            parse(&args("loadgen --addr 127.0.0.1:4750")).unwrap(),
            Command::Loadgen {
                addr: "127.0.0.1:4750".into(),
                sessions: 100,
                points: 500,
                seed: 1,
                connections: 1,
                batch: 64,
                shutdown: false,
                disorder: 0.0,
                backfill: false
            }
        );
        assert_eq!(
            parse(&args(
                "loadgen --addr h:1 --sessions 8 --points 50 --seed 9 --connections 4 \
                 --batch 32 --disorder 1.5 --backfill --shutdown"
            ))
            .unwrap(),
            Command::Loadgen {
                addr: "h:1".into(),
                sessions: 8,
                points: 50,
                seed: 9,
                connections: 4,
                batch: 32,
                shutdown: true,
                disorder: 1.5,
                backfill: true
            }
        );
        assert!(parse(&args("loadgen")).is_err(), "addr is required");
        for flag in ["--sessions", "--points", "--connections", "--batch"] {
            let err = parse(&args(&format!("loadgen --addr h:1 {flag} 0"))).unwrap_err();
            assert_eq!(err, format!("loadgen needs {flag} ≥ 1, got 0"));
        }
        // Pure-shutdown mode: zero sessions/points is legal with
        // --shutdown (no ingest, one Shutdown connection).
        assert_eq!(
            parse(&args("loadgen --addr h:1 --sessions 0 --shutdown")).unwrap(),
            Command::Loadgen {
                addr: "h:1".into(),
                sessions: 0,
                points: 500,
                seed: 1,
                connections: 1,
                batch: 64,
                shutdown: true,
                disorder: 0.0,
                backfill: false
            }
        );
        // Lateness-window flags validate like the server's.
        assert!(parse(&args("loadgen --addr h:1 --disorder -1")).is_err());
        assert!(parse(&args("loadgen --addr h:1 --disorder nan")).is_err());
        assert!(parse(&args("serve --spill /tmp/t --lateness -0.5")).is_err());
        assert!(parse(&args("serve --spill /tmp/t --lateness inf")).is_err());
    }

    #[test]
    fn subscribe_parses_and_requires_addr() {
        assert_eq!(
            parse(&args("subscribe --addr 127.0.0.1:4750")).unwrap(),
            Command::Subscribe {
                addr: "127.0.0.1:4750".into(),
                track: None,
                bbox: None,
                out: None
            }
        );
        assert_eq!(
            parse(&args(
                "subscribe --addr h:1 --track 7 --bbox 0,0,100,50 --out pts.csv"
            ))
            .unwrap(),
            Command::Subscribe {
                addr: "h:1".into(),
                track: Some(7),
                bbox: Some([0.0, 0.0, 100.0, 50.0]),
                out: Some("pts.csv".into())
            }
        );
        assert!(parse(&args("subscribe")).is_err(), "addr is required");
        assert!(parse(&args("subscribe --addr h:1 --frobnicate")).is_err());
    }

    #[test]
    fn unknown_command_shows_usage() {
        let err = parse(&args("frobnicate")).unwrap_err();
        assert!(err.contains("USAGE"));
    }
}
