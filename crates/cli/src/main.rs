//! The `bqs` binary: parse arguments, run, print, exit.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match bqs_cli::main_with_args(&argv) {
        Ok(text) => println!("{text}"),
        Err((message, code)) => {
            eprintln!("error: {message}");
            std::process::exit(code);
        }
    }
}
