//! The CLI's typed error: every failure a command can hit — I/O on a
//! named path, the durable-log layer, the network layer, a spill at
//! close, or an invalid request — as one enum with consistent
//! messages, instead of ad-hoc strings assembled at each call site.
//!
//! Commands return `Result<_, CliError>` internally;
//! [`crate::commands::run`] converts to the printable string (and the
//! process exit code) at exactly one place.

use std::fmt;

/// Everything a `bqs` command can fail with.
#[derive(Debug)]
pub enum CliError {
    /// An I/O operation on a user-named path failed. Displays as
    /// `cannot <action> <path>: <source>` so every file error reads the
    /// same way.
    Io {
        /// The verb: "read", "write", …
        action: &'static str,
        /// The path involved.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The durable trajectory log failed.
    Tlog(bqs_tlog::TlogError),
    /// Spilling buffered session output failed; the unflushed points
    /// are inside, not silently dropped.
    Spill(Box<bqs_tlog::SpillFailure>),
    /// The network layer (serve/loadgen) failed.
    Net(bqs_net::NetError),
    /// The request is invalid or cannot be satisfied; the message is
    /// self-contained.
    Invalid(String),
}

impl CliError {
    /// An I/O error tagged with its operation and path.
    pub fn io(action: &'static str, path: impl Into<String>, source: std::io::Error) -> CliError {
        CliError::Io {
            action,
            path: path.into(),
            source,
        }
    }

    /// An invalid-request error from anything displayable.
    pub fn invalid(message: impl fmt::Display) -> CliError {
        CliError::Invalid(message.to_string())
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Io {
                action,
                path,
                source,
            } => write!(f, "cannot {action} {path}: {source}"),
            CliError::Tlog(e) => e.fmt(f),
            CliError::Spill(e) => e.fmt(f),
            CliError::Net(e) => e.fmt(f),
            CliError::Invalid(message) => f.write_str(message),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io { source, .. } => Some(source),
            CliError::Tlog(e) => Some(e),
            CliError::Spill(e) => Some(e),
            CliError::Net(e) => Some(e),
            CliError::Invalid(_) => None,
        }
    }
}

impl From<bqs_tlog::TlogError> for CliError {
    fn from(e: bqs_tlog::TlogError) -> CliError {
        CliError::Tlog(e)
    }
}

impl From<Box<bqs_tlog::SpillFailure>> for CliError {
    fn from(e: Box<bqs_tlog::SpillFailure>) -> CliError {
        CliError::Spill(e)
    }
}

impl From<bqs_net::NetError> for CliError {
    fn from(e: bqs_net::NetError) -> CliError {
        CliError::Net(e)
    }
}
