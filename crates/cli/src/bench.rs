//! `bqs bench`: the in-repo performance runner behind the recorded
//! perf trajectory (`BENCH_<n>.json`).
//!
//! Each workload isolates one stage of the ingest path and reports
//! points/sec (plus bytes/point where the stage produces bytes):
//!
//! * `codec_encode_row` / `codec_encode_columnar` — the storage codec
//!   over row-shaped (`&[TimedPoint]`) vs columnar
//!   ([`ColumnarBatch`]) input; the outputs are
//!   byte-identical, so the delta is pure code-shape.
//! * `codec_decode_row` / `codec_decode_columnar` — the reverse
//!   direction.
//! * `fleet_push_points` / `fleet_submit_runs` — per-point
//!   [`ParallelFleet::push`](bqs_core::fleet::ParallelFleet::push) vs
//!   frame-grained
//!   [`ParallelFleet::submit_run`](bqs_core::fleet::ParallelFleet::submit_run)
//!   submission of the same workload.
//! * `net_ingest_threaded` / `net_ingest_pool` — loopback `bqs serve`
//!   end to end under a pipelined multi-connection driver (the loadgen
//!   schedule with one frame in flight per connection), legacy
//!   thread-per-connection runtime vs the multiplexed I/O pool;
//!   best-of-N rounds.
//! * `net_ingest_pool_metrics` / `net_ingest_pool_tracing` — the pool
//!   runtime with a live metrics registry, then with the flight
//!   recorder layered on top; the summary ratios pin the cost of each
//!   observability layer.
//! * `query_fanout` — per-track time-range queries against the live
//!   pool server (hot snapshot + spill tree fan-out).
//!
//! The workloads are seeded and the report is plain JSON (hand-rolled,
//! like everything else in this workspace — no serde). `--quick` is
//! the CI size; the full sweep is for real measurements.

use crate::error::CliError;
use bqs_core::fleet::{CountingFleetSink, FleetConfig, ParallelConfig, ParallelFleet};
use bqs_core::{BqsConfig, FastBqsCompressor};
use bqs_geo::{ColumnarBatch, TimedPoint};
use bqs_net::{session_trace, BqsClient, Server, ServerConfig};
use bqs_tlog::codec::{decode_columns_into, decode_to_vec, encode_columns, encode_points};
use std::time::Instant;

/// One measured workload.
struct Workload {
    name: &'static str,
    /// Points processed across all repetitions.
    points: u64,
    /// Wall-clock seconds for all repetitions.
    elapsed: f64,
    /// Encoded bytes per point, where the workload produces bytes.
    bytes_per_point: Option<f64>,
}

impl Workload {
    fn points_per_sec(&self) -> f64 {
        self.points as f64 / self.elapsed.max(1e-9)
    }

    fn to_json(&self) -> String {
        let bytes = match self.bytes_per_point {
            Some(b) => format!(", \"bytes_per_point\": {b:.3}"),
            None => String::new(),
        };
        format!(
            "    {{\"name\": \"{}\", \"points\": {}, \"elapsed_s\": {:.6}, \
             \"points_per_sec\": {:.0}{bytes}}}",
            self.name,
            self.points,
            self.elapsed,
            self.points_per_sec(),
        )
    }
}

/// The knobs one bench run uses, scaled by `--quick`.
struct Sizes {
    /// Points in the codec workloads' trace.
    codec_points: usize,
    /// Codec repetitions (points/sec averages over them).
    codec_reps: usize,
    /// (sessions, points-per-session) for the fleet workloads.
    fleet: (usize, usize),
    /// (sessions, points, connections) for the loopback net workloads.
    net: (usize, usize, usize),
}

impl Sizes {
    fn new(quick: bool) -> Sizes {
        if quick {
            Sizes {
                codec_points: 20_000,
                codec_reps: 2,
                fleet: (16, 500),
                net: (32, 200, 16),
            }
        } else {
            Sizes {
                codec_points: 200_000,
                codec_reps: 5,
                fleet: (64, 5_000),
                net: (256, 2_000, 256),
            }
        }
    }
}

/// Points per `Append` frame in the net workloads — the loadgen
/// default, kept in lockstep with `tests/net_equivalence.rs`.
const NET_BATCH: usize = 64;

/// `--compare` fails when any pinned workload's throughput drops more
/// than this fraction below the baseline.
const REGRESSION_TOLERANCE: f64 = 0.15;

/// `--compare` also fails when the current report's
/// `tracing_enabled_vs_disabled` ratio falls below this: the flight
/// recorder must keep traced ingest within 5% of the metered pool
/// runtime, independent of what the baseline recorded.
const TRACING_FLOOR: f64 = 0.95;

/// Runs the bench suite and renders the JSON report (written to `out`
/// when given, returned for stdout otherwise). With `compare`, the run
/// (or the pre-recorded `current` report) is gated against the baseline
/// snapshot instead: any pinned workload regressing by more than
/// `REGRESSION_TOLERANCE` (15%) fails the command.
pub fn run(
    quick: bool,
    seed: u64,
    out: Option<&str>,
    compare: Option<&str>,
    current: Option<&str>,
) -> Result<String, CliError> {
    if let Some(baseline_path) = compare {
        let current_json = match current {
            Some(path) => {
                std::fs::read_to_string(path).map_err(|e| CliError::io("read", path, e))?
            }
            None => report(quick, seed)?,
        };
        if let (Some(path), None) = (out, current) {
            std::fs::write(path, &current_json).map_err(|e| CliError::io("write", path, e))?;
        }
        let baseline_json = std::fs::read_to_string(baseline_path)
            .map_err(|e| CliError::io("read", baseline_path, e))?;
        return gate(baseline_path, &baseline_json, &current_json);
    }
    let json = report(quick, seed)?;
    match out {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| CliError::io("write", path, e))?;
            Ok(format!(
                "bench: report written ({} mode) -> {path}\n",
                if quick { "quick" } else { "full" }
            ))
        }
        None => Ok(json),
    }
}

/// Extracts `(name, points_per_sec)` for every workload in a bench
/// report. Hand-rolled like the writer: each workload object in this
/// repo's reports carries `"name"` followed by `"points_per_sec"`, and
/// that ordering is all the scanner assumes.
fn extract_throughputs(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(i) = rest.find("\"name\": \"") {
        rest = &rest[i + "\"name\": \"".len()..];
        let Some(end) = rest.find('"') else { break };
        let name = rest[..end].to_string();
        rest = &rest[end..];
        let Some(j) = rest.find("\"points_per_sec\": ") else {
            break;
        };
        rest = &rest[j + "\"points_per_sec\": ".len()..];
        let digits: usize = rest
            .bytes()
            .take_while(|b| b.is_ascii_digit() || *b == b'.' || *b == b'-')
            .count();
        if let Ok(pps) = rest[..digits].parse::<f64>() {
            out.push((name, pps));
        }
    }
    out
}

/// The `--compare` verdict: per-workload throughput ratios, and an
/// `Err` (non-zero exit) when any baseline workload regressed beyond
/// [`REGRESSION_TOLERANCE`] or went missing from the current report.
fn gate(baseline_path: &str, baseline_json: &str, current_json: &str) -> Result<String, CliError> {
    let baseline = extract_throughputs(baseline_json);
    let current = extract_throughputs(current_json);
    if baseline.is_empty() {
        return Err(CliError::Invalid(format!(
            "no workloads found in baseline {baseline_path}"
        )));
    }
    let mut lines = Vec::new();
    let mut failures = 0usize;
    for (name, base_pps) in &baseline {
        match current.iter().find(|(n, _)| n == name) {
            Some((_, cur_pps)) => {
                let ratio = cur_pps / base_pps.max(1e-9);
                let verdict = if ratio < 1.0 - REGRESSION_TOLERANCE {
                    failures += 1;
                    "REGRESSED"
                } else {
                    "ok"
                };
                lines.push(format!(
                    "{verdict} {name}: {cur_pps:.0} vs {base_pps:.0} pts/s (x{ratio:.3})"
                ));
            }
            None => {
                failures += 1;
                lines.push(format!("MISSING {name}: not in the current report"));
            }
        }
    }
    // The tracing budget is absolute, not relative to the baseline:
    // whenever the current report carries both pool workloads, their
    // ratio must clear `TRACING_FLOOR`.
    let pps = |name: &str| current.iter().find(|(n, _)| n == name).map(|(_, p)| *p);
    if let (Some(traced), Some(metered)) = (
        pps("net_ingest_pool_tracing"),
        pps("net_ingest_pool_metrics"),
    ) {
        let ratio = traced / metered.max(1e-9);
        if ratio < TRACING_FLOOR {
            failures += 1;
            lines.push(format!(
                "REGRESSED tracing_enabled_vs_disabled: x{ratio:.3} below the {TRACING_FLOOR} floor"
            ));
        } else {
            lines.push(format!(
                "ok tracing_enabled_vs_disabled: x{ratio:.3} (floor {TRACING_FLOOR})"
            ));
        }
    }
    let body = lines.join("\n");
    if failures > 0 {
        Err(CliError::Invalid(format!(
            "bench regression gate failed ({failures} of {} workloads, \
             tolerance {:.0}%) against {baseline_path}:\n{body}",
            baseline.len(),
            REGRESSION_TOLERANCE * 100.0,
        )))
    } else {
        Ok(format!(
            "bench regression gate passed ({} workloads within {:.0}% of {baseline_path}):\n\
             {body}\n",
            baseline.len(),
            REGRESSION_TOLERANCE * 100.0,
        ))
    }
}

/// Runs every workload and renders the JSON report.
fn report(quick: bool, seed: u64) -> Result<String, CliError> {
    let sizes = Sizes::new(quick);
    let mut workloads: Vec<Workload> = Vec::new();

    bench_codec(&sizes, seed, &mut workloads);
    bench_fleet(&sizes, seed, &mut workloads);
    bench_net(&sizes, seed, &mut workloads)?;

    let speedup = |num: &str, den: &str| -> Option<f64> {
        let pps = |name: &str| {
            workloads
                .iter()
                .find(|w| w.name == name)
                .map(Workload::points_per_sec)
        };
        Some(pps(num)? / pps(den)?.max(1e-9))
    };
    let mut summary: Vec<(String, f64)> = Vec::new();
    for (key, num, den) in [
        (
            "net_pool_vs_threaded",
            "net_ingest_pool",
            "net_ingest_threaded",
        ),
        (
            // The acceptance ratio for the metrics layer: instrumented
            // ingest over the same pool runtime without a registry.
            // ≥ 0.95 keeps the "within 5%" budget.
            "metrics_enabled_vs_disabled",
            "net_ingest_pool_metrics",
            "net_ingest_pool",
        ),
        (
            // The flight recorder's budget on top of metrics: traced
            // ingest over the metered pool runtime. `--compare` holds
            // this ratio at `TRACING_FLOOR` (≥ 0.95).
            "tracing_enabled_vs_disabled",
            "net_ingest_pool_tracing",
            "net_ingest_pool_metrics",
        ),
        (
            "columnar_vs_row_encode",
            "codec_encode_columnar",
            "codec_encode_row",
        ),
        (
            "columnar_vs_row_decode",
            "codec_decode_columnar",
            "codec_decode_row",
        ),
        (
            "runs_vs_points_submit",
            "fleet_submit_runs",
            "fleet_push_points",
        ),
    ] {
        if let Some(ratio) = speedup(num, den) {
            summary.push((key.to_string(), ratio));
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": 8,\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"cores\": {},\n", available_cores()));
    json.push_str(
        "  \"notes\": \"net workloads: pipelined driver (one Append in flight per connection, \
         loadgen schedule), best-of-N rounds; driver and server share this host's cores, so \
         single-core numbers under-state the pool's advantage over per-connection threads\",\n",
    );
    json.push_str("  \"workloads\": [\n");
    let lines: Vec<String> = workloads.iter().map(Workload::to_json).collect();
    json.push_str(&lines.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str("  \"summary\": {\n");
    let lines: Vec<String> = summary
        .iter()
        .map(|(k, v)| format!("    \"{k}\": {v:.3}"))
        .collect();
    json.push_str(&lines.join(",\n"));
    json.push_str("\n  }\n}\n");
    Ok(json)
}

/// The storage codec, row-shaped vs columnar, both directions.
fn bench_codec(sizes: &Sizes, seed: u64, out: &mut Vec<Workload>) {
    let points: Vec<TimedPoint> = session_trace(seed, 0, sizes.codec_points);
    let batch = ColumnarBatch::from_points(&points);
    let reps = sizes.codec_reps;
    let total = (points.len() * reps) as u64;
    let mut encoded = Vec::new();

    let start = Instant::now();
    for _ in 0..reps {
        encoded.clear();
        // bqs-analyze: allow(no-unwrap-in-lib) — invariant: trace is codec-valid
        encode_points(&points, &mut encoded).expect("trace is codec-valid");
    }
    let bpp = encoded.len() as f64 / points.len() as f64;
    out.push(Workload {
        name: "codec_encode_row",
        points: total,
        elapsed: start.elapsed().as_secs_f64(),
        bytes_per_point: Some(bpp),
    });

    let start = Instant::now();
    for _ in 0..reps {
        encoded.clear();
        // bqs-analyze: allow(no-unwrap-in-lib) — invariant: trace is codec-valid
        encode_columns(&batch, &mut encoded).expect("trace is codec-valid");
    }
    out.push(Workload {
        name: "codec_encode_columnar",
        points: total,
        elapsed: start.elapsed().as_secs_f64(),
        bytes_per_point: Some(encoded.len() as f64 / batch.len() as f64),
    });

    let start = Instant::now();
    for _ in 0..reps {
        // bqs-analyze: allow(no-unwrap-in-lib) — invariant: encoded above
        let decoded = decode_to_vec(&encoded).expect("encoded above");
        assert_eq!(decoded.len(), points.len());
    }
    out.push(Workload {
        name: "codec_decode_row",
        points: total,
        elapsed: start.elapsed().as_secs_f64(),
        bytes_per_point: Some(bpp),
    });

    let mut scratch = ColumnarBatch::new();
    let start = Instant::now();
    for _ in 0..reps {
        scratch.clear();
        // bqs-analyze: allow(no-unwrap-in-lib) — invariant: encoded above
        decode_columns_into(&encoded, &mut scratch).expect("encoded above");
        assert_eq!(scratch.len(), batch.len());
    }
    out.push(Workload {
        name: "codec_decode_columnar",
        points: total,
        elapsed: start.elapsed().as_secs_f64(),
        bytes_per_point: Some(bpp),
    });
}

fn bench_fleet_workers() -> usize {
    2
}

/// The same sessions through per-point `push` vs frame-grained
/// `submit_run` (in `NET_BATCH`-point chunks, the server's shape).
fn bench_fleet(sizes: &Sizes, seed: u64, out: &mut Vec<Workload>) {
    let (sessions, points) = sizes.fleet;
    let runs: Vec<(u64, Vec<TimedPoint>)> = (0..sessions as u64)
        .map(|track| (track, session_trace(seed, track, points)))
        .collect();
    let total = (sessions * points) as u64;
    let fleet = || {
        ParallelFleet::new(
            ParallelConfig {
                workers: bench_fleet_workers(),
                fleet: FleetConfig::default(),
                ..ParallelConfig::default()
            },
            // bqs-analyze: allow(no-unwrap-in-lib) — tolerance is a positive constant validated at the call site
            || FastBqsCompressor::new(BqsConfig::new(10.0).expect("10 m is valid")),
            |_| CountingFleetSink::default(),
        )
    };

    let mut f = fleet();
    let start = Instant::now();
    for (track, trace) in &runs {
        for p in trace {
            f.push(*track, *p);
        }
    }
    let join = f.join();
    out.push(Workload {
        name: "fleet_push_points",
        points: total,
        elapsed: start.elapsed().as_secs_f64(),
        bytes_per_point: None,
    });
    assert!(join.is_ok(), "bench fleet worker failed");

    let mut f = fleet();
    let start = Instant::now();
    for (track, trace) in &runs {
        for chunk in trace.chunks(NET_BATCH) {
            f.submit_run(*track, chunk.to_vec());
        }
    }
    let join = f.join();
    out.push(Workload {
        name: "fleet_submit_runs",
        points: total,
        elapsed: start.elapsed().as_secs_f64(),
        bytes_per_point: None,
    });
    assert!(join.is_ok(), "bench fleet worker failed");
}

/// Drives the full seeded workload over `connections` raw framed
/// connections with one `Append` in flight per connection — write a
/// frame onto every connection, then collect every acknowledgement.
/// Pipelining keeps every connection's next frame queued while the
/// server works, so the measurement is the server's sustained
/// multiplexing throughput, not per-frame round-trip latency (which a
/// single-core host schedules too noisily to compare). Track ids are
/// offset by `track_base` so repetitions replay fresh sessions.
fn pipelined_ingest(
    addr: std::net::SocketAddr,
    traces: &[Vec<TimedPoint>],
    connections: usize,
    track_base: u64,
) -> Result<f64, CliError> {
    use bqs_net::wire::{read_frame, write_frame, Reply, Request, PROTOCOL_VERSION};
    use std::net::TcpStream;

    let mut conns: Vec<TcpStream> = Vec::with_capacity(connections);
    for _ in 0..connections {
        let mut stream = TcpStream::connect(addr)
            .map_err(|e| CliError::Invalid(format!("bench connect {addr}: {e}")))?;
        let _ = stream.set_nodelay(true);
        write_frame(
            &mut stream,
            &Request::Hello {
                protocol: PROTOCOL_VERSION,
            }
            .encode()
            .map_err(|e| CliError::Invalid(format!("bench hello: {e}")))?,
        )
        .map_err(|e| CliError::Invalid(format!("bench hello: {e}")))?;
        let reply = read_frame(&mut stream)
            .map_err(|e| CliError::Invalid(format!("bench hello ack: {e}")))?
            .ok_or_else(|| CliError::Invalid("server closed during handshake".to_string()))?;
        if !matches!(Reply::decode(&reply), Ok(Reply::HelloOk { .. })) {
            return Err(CliError::Invalid("unexpected handshake reply".to_string()));
        }
        conns.push(stream);
    }

    // Each connection interleaves its tracks round-robin in
    // `NET_BATCH`-point chunks — the loadgen schedule, pipelined.
    let chunks = traces.first().map_or(0, |t| t.chunks(NET_BATCH).count());
    let start = Instant::now();
    for chunk in 0..chunks {
        // Phase 1: one frame onto every connection that has work.
        let mut in_flight = vec![0usize; connections];
        for (track, trace) in traces.iter().enumerate() {
            let conn = track % connections;
            let lo = chunk * NET_BATCH;
            let hi = (lo + NET_BATCH).min(trace.len());
            if lo >= hi {
                continue;
            }
            let payload = Request::Append {
                track: track_base + track as u64,
                points: trace[lo..hi].to_vec(),
            }
            .encode()
            .map_err(|e| CliError::Invalid(format!("bench append: {e}")))?;
            write_frame(&mut conns[conn], &payload)
                .map_err(|e| CliError::Invalid(format!("bench append: {e}")))?;
            in_flight[conn] += 1;
        }
        // Phase 2: collect the acknowledgements.
        for (conn, &n) in in_flight.iter().enumerate() {
            for _ in 0..n {
                let reply = read_frame(&mut conns[conn])
                    .map_err(|e| CliError::Invalid(format!("bench ack: {e}")))?
                    .ok_or_else(|| CliError::Invalid("server closed mid-run".to_string()))?;
                match Reply::decode(&reply) {
                    Ok(Reply::Appended { .. }) => {}
                    other => {
                        return Err(CliError::Invalid(format!(
                            "expected an append ack, got {other:?}"
                        )))
                    }
                }
            }
        }
    }
    Ok(start.elapsed().as_secs_f64())
}

/// Loopback serve end to end: the legacy runtime, the I/O pool, and
/// per-track query fan-out against the live pool server. Ingest runs
/// are repeated and the best round is recorded (standard min-time
/// practice — the rounds share a binary and a host, so the minimum is
/// the least-scheduled-against measurement).
fn bench_net(sizes: &Sizes, seed: u64, out: &mut Vec<Workload>) -> Result<(), CliError> {
    let (sessions, points, connections) = sizes.net;
    let reps = if sizes.codec_reps > 2 { 3 } else { 2 };
    let traces: Vec<Vec<TimedPoint>> = (0..sessions as u64)
        .map(|track| session_trace(seed, track, points))
        .collect();
    // Wire bytes per point: one columnar append frame of the bench
    // batch size, amortised (header + CRC included).
    let wire_bpp = {
        let batch = ColumnarBatch::from_points(&traces[0][..NET_BATCH.min(points)]);
        let payload = bqs_net::encode_append_columns(0, &batch)
            .map_err(|e| CliError::Invalid(format!("bench frame: {e}")))?;
        (payload.len() + 10) as f64 / batch.len() as f64
    };

    for (name, io_threads) in [("net_ingest_threaded", 0usize), ("net_ingest_pool", 4usize)] {
        let dir = bench_dir(name);
        let mut config = ServerConfig::new("127.0.0.1:0", 4, &dir);
        config.io_threads = io_threads;
        let server = Server::bind(config)?;
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run());
        let mut best = f64::INFINITY;
        for rep in 0..reps {
            let elapsed = pipelined_ingest(addr, &traces, connections, (rep * sessions) as u64)?;
            best = best.min(elapsed);
        }
        out.push(Workload {
            name,
            points: (sessions * points) as u64,
            elapsed: best,
            bytes_per_point: Some(wire_bpp),
        });
        if name != "net_ingest_pool" {
            BqsClient::connect(addr)?.shutdown()?;
        } else {
            // The plain pool server stays up for the query workload.
            let mut client = BqsClient::connect(addr)?;
            let mut returned = 0u64;
            let start = Instant::now();
            for track in 0..sessions as u64 {
                let report =
                    client.query_time_range(Some(track), f64::NEG_INFINITY, f64::INFINITY)?;
                returned += report
                    .slices
                    .iter()
                    .map(|s| s.points.len() as u64)
                    .sum::<u64>()
                    + report.hot_points;
            }
            out.push(Workload {
                name: "query_fanout",
                points: returned,
                elapsed: start.elapsed().as_secs_f64(),
                bytes_per_point: None,
            });
            client.shutdown()?;
        }
        handle
            .join()
            .map_err(|_| CliError::Invalid("bench server panicked".to_string()))??;
        let _ = std::fs::remove_dir_all(&dir);
    }

    // The observability pair. `net_ingest_pool_metrics` is the pool
    // runtime with a live registry — the delta against
    // `net_ingest_pool` is the cost of full instrumentation, pinned in
    // the summary as `metrics_enabled_vs_disabled`.
    // `net_ingest_pool_tracing` layers the flight recorder (at the
    // serve-default capacity) on top of the metered runtime, so
    // `tracing_enabled_vs_disabled` isolates the recorder's own cost.
    // The two servers run side by side with their rounds interleaved:
    // each rep drives the metered server then the traced one, so both
    // sample the same host windows and the ratio isn't biased by
    // scheduler noise between two separate measurements.
    let spawn_pool = |name: &'static str, traced: bool| {
        let dir = bench_dir(name);
        let mut config = ServerConfig::new("127.0.0.1:0", 4, &dir);
        config.io_threads = 4;
        let registry = bqs_obs::MetricsRegistry::new();
        if traced {
            config.trace = Some(bqs_obs::FlightRecorder::with_counters(
                65_536,
                registry.counter("trace_events_recorded_total"),
                registry.counter("trace_events_dropped_total"),
            ));
        }
        config.metrics = Some(registry);
        let server = Server::bind(config)?;
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run());
        Ok::<_, CliError>((addr, handle, dir))
    };
    let metered = spawn_pool("net_ingest_pool_metrics", false)?;
    let traced = spawn_pool("net_ingest_pool_tracing", true)?;
    let mut bests = [f64::INFINITY; 2];
    for rep in 0..reps {
        let base = (rep * sessions) as u64;
        for (best, server) in bests.iter_mut().zip([&metered, &traced]) {
            *best = best.min(pipelined_ingest(server.0, &traces, connections, base)?);
        }
    }
    for (best, (addr, handle, dir), name) in [
        (bests[0], metered, "net_ingest_pool_metrics"),
        (bests[1], traced, "net_ingest_pool_tracing"),
    ] {
        out.push(Workload {
            name,
            points: (sessions * points) as u64,
            elapsed: best,
            bytes_per_point: Some(wire_bpp),
        });
        BqsClient::connect(addr)?.shutdown()?;
        handle
            .join()
            .map_err(|_| CliError::Invalid("bench server panicked".to_string()))??;
        let _ = std::fs::remove_dir_all(&dir);
    }
    Ok(())
}

fn available_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn bench_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bqs-bench-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_reports_every_workload() {
        let json = run(true, 42, None, None, None).unwrap();
        for name in [
            "codec_encode_row",
            "codec_encode_columnar",
            "codec_decode_row",
            "codec_decode_columnar",
            "fleet_push_points",
            "fleet_submit_runs",
            "net_ingest_threaded",
            "net_ingest_pool",
            "net_ingest_pool_metrics",
            "net_ingest_pool_tracing",
            "query_fanout",
            "net_pool_vs_threaded",
            "metrics_enabled_vs_disabled",
            "tracing_enabled_vs_disabled",
        ] {
            assert!(json.contains(name), "missing {name} in {json}");
        }
        assert!(json.contains("\"bench\": 8"), "{json}");
    }

    fn synthetic_report(ingest_pps: u64) -> String {
        format!(
            "{{\n  \"bench\": 8,\n  \"workloads\": [\n    \
             {{\"name\": \"codec_encode_row\", \"points\": 10, \"elapsed_s\": 1.0, \
             \"points_per_sec\": 1000}},\n    \
             {{\"name\": \"net_ingest_pool\", \"points\": 10, \"elapsed_s\": 1.0, \
             \"points_per_sec\": {ingest_pps}}}\n  ]\n}}\n"
        )
    }

    #[test]
    fn extract_throughputs_reads_this_repos_reports() {
        let parsed = extract_throughputs(&synthetic_report(2000));
        assert_eq!(
            parsed,
            vec![
                ("codec_encode_row".to_string(), 1000.0),
                ("net_ingest_pool".to_string(), 2000.0),
            ]
        );
    }

    #[test]
    fn gate_flags_a_twenty_percent_regression_and_passes_within_tolerance() {
        let baseline = synthetic_report(1000);
        // 20% down on one workload: past the 15% tolerance → error.
        let err = gate("base.json", &baseline, &synthetic_report(800)).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("REGRESSED net_ingest_pool"), "{text}");
        assert!(text.contains("ok codec_encode_row"), "{text}");
        // 10% down stays inside the tolerance.
        let ok = gate("base.json", &baseline, &synthetic_report(900)).unwrap();
        assert!(ok.contains("gate passed"), "{ok}");
        // A baseline workload missing from the current run fails too.
        let err = gate("base.json", &baseline, "{\"workloads\": []}").unwrap_err();
        assert!(err.to_string().contains("MISSING"), "{err}");
    }

    fn synthetic_tracing_report(metered_pps: u64, traced_pps: u64) -> String {
        format!(
            "{{\n  \"bench\": 8,\n  \"workloads\": [\n    \
             {{\"name\": \"net_ingest_pool_metrics\", \"points\": 10, \"elapsed_s\": 1.0, \
             \"points_per_sec\": {metered_pps}}},\n    \
             {{\"name\": \"net_ingest_pool_tracing\", \"points\": 10, \"elapsed_s\": 1.0, \
             \"points_per_sec\": {traced_pps}}}\n  ]\n}}\n"
        )
    }

    #[test]
    fn gate_enforces_the_tracing_floor_on_the_current_report() {
        let baseline = synthetic_tracing_report(1000, 1000);
        // A 6% tracing cost stays inside the 15% per-workload tolerance
        // but breaks the dedicated ≥ 0.95 floor.
        let err = gate("base.json", &baseline, &synthetic_tracing_report(1000, 940)).unwrap_err();
        assert!(
            err.to_string()
                .contains("REGRESSED tracing_enabled_vs_disabled"),
            "{err}"
        );
        // A 4% cost clears both gates.
        let ok = gate("base.json", &baseline, &synthetic_tracing_report(1000, 960)).unwrap();
        assert!(ok.contains("ok tracing_enabled_vs_disabled"), "{ok}");
    }

    #[test]
    fn gate_runs_from_recorded_reports_via_compare_and_current() {
        let dir = std::env::temp_dir().join(format!("bqs-bench-gate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let cur = dir.join("cur.json");
        std::fs::write(&base, synthetic_report(1000)).unwrap();
        std::fs::write(&cur, synthetic_report(790)).unwrap();
        let err = run(
            true,
            42,
            None,
            Some(base.to_str().unwrap()),
            Some(cur.to_str().unwrap()),
        )
        .unwrap_err();
        assert!(err.to_string().contains("regression gate failed"), "{err}");
        std::fs::write(&cur, synthetic_report(1100)).unwrap();
        let ok = run(
            true,
            42,
            None,
            Some(base.to_str().unwrap()),
            Some(cur.to_str().unwrap()),
        )
        .unwrap();
        assert!(ok.contains("gate passed"), "{ok}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
