//! `bqs bench`: the in-repo performance runner behind the recorded
//! perf trajectory (`BENCH_<n>.json`).
//!
//! Each workload isolates one stage of the ingest path and reports
//! points/sec (plus bytes/point where the stage produces bytes):
//!
//! * `codec_encode_row` / `codec_encode_columnar` — the storage codec
//!   over row-shaped (`&[TimedPoint]`) vs columnar
//!   ([`ColumnarBatch`]) input; the outputs are
//!   byte-identical, so the delta is pure code-shape.
//! * `codec_decode_row` / `codec_decode_columnar` — the reverse
//!   direction.
//! * `fleet_push_points` / `fleet_submit_runs` — per-point
//!   [`ParallelFleet::push`](bqs_core::fleet::ParallelFleet::push) vs
//!   frame-grained
//!   [`ParallelFleet::submit_run`](bqs_core::fleet::ParallelFleet::submit_run)
//!   submission of the same workload.
//! * `net_ingest_threaded` / `net_ingest_pool` — loopback `bqs serve`
//!   end to end under a pipelined multi-connection driver (the loadgen
//!   schedule with one frame in flight per connection), legacy
//!   thread-per-connection runtime vs the multiplexed I/O pool;
//!   best-of-N rounds.
//! * `query_fanout` — per-track time-range queries against the live
//!   pool server (hot snapshot + spill tree fan-out).
//!
//! The workloads are seeded and the report is plain JSON (hand-rolled,
//! like everything else in this workspace — no serde). `--quick` is
//! the CI size; the full sweep is for real measurements.

use crate::error::CliError;
use bqs_core::fleet::{CountingFleetSink, FleetConfig, ParallelConfig, ParallelFleet};
use bqs_core::{BqsConfig, FastBqsCompressor};
use bqs_geo::{ColumnarBatch, TimedPoint};
use bqs_net::{session_trace, BqsClient, Server, ServerConfig};
use bqs_tlog::codec::{decode_columns_into, decode_to_vec, encode_columns, encode_points};
use std::time::Instant;

/// One measured workload.
struct Workload {
    name: &'static str,
    /// Points processed across all repetitions.
    points: u64,
    /// Wall-clock seconds for all repetitions.
    elapsed: f64,
    /// Encoded bytes per point, where the workload produces bytes.
    bytes_per_point: Option<f64>,
}

impl Workload {
    fn points_per_sec(&self) -> f64 {
        self.points as f64 / self.elapsed.max(1e-9)
    }

    fn to_json(&self) -> String {
        let bytes = match self.bytes_per_point {
            Some(b) => format!(", \"bytes_per_point\": {b:.3}"),
            None => String::new(),
        };
        format!(
            "    {{\"name\": \"{}\", \"points\": {}, \"elapsed_s\": {:.6}, \
             \"points_per_sec\": {:.0}{bytes}}}",
            self.name,
            self.points,
            self.elapsed,
            self.points_per_sec(),
        )
    }
}

/// The knobs one bench run uses, scaled by `--quick`.
struct Sizes {
    /// Points in the codec workloads' trace.
    codec_points: usize,
    /// Codec repetitions (points/sec averages over them).
    codec_reps: usize,
    /// (sessions, points-per-session) for the fleet workloads.
    fleet: (usize, usize),
    /// (sessions, points, connections) for the loopback net workloads.
    net: (usize, usize, usize),
}

impl Sizes {
    fn new(quick: bool) -> Sizes {
        if quick {
            Sizes {
                codec_points: 20_000,
                codec_reps: 2,
                fleet: (16, 500),
                net: (32, 200, 16),
            }
        } else {
            Sizes {
                codec_points: 200_000,
                codec_reps: 5,
                fleet: (64, 5_000),
                net: (256, 2_000, 256),
            }
        }
    }
}

/// Points per `Append` frame in the net workloads — the loadgen
/// default, kept in lockstep with `tests/net_equivalence.rs`.
const NET_BATCH: usize = 64;

/// Runs the bench suite and renders the JSON report (written to `out`
/// when given, returned for stdout otherwise).
pub fn run(quick: bool, seed: u64, out: Option<&str>) -> Result<String, CliError> {
    let sizes = Sizes::new(quick);
    let mut workloads: Vec<Workload> = Vec::new();

    bench_codec(&sizes, seed, &mut workloads);
    bench_fleet(&sizes, seed, &mut workloads);
    bench_net(&sizes, seed, &mut workloads)?;

    let speedup = |num: &str, den: &str| -> Option<f64> {
        let pps = |name: &str| {
            workloads
                .iter()
                .find(|w| w.name == name)
                .map(Workload::points_per_sec)
        };
        Some(pps(num)? / pps(den)?.max(1e-9))
    };
    let mut summary: Vec<(String, f64)> = Vec::new();
    for (key, num, den) in [
        (
            "net_pool_vs_threaded",
            "net_ingest_pool",
            "net_ingest_threaded",
        ),
        (
            "columnar_vs_row_encode",
            "codec_encode_columnar",
            "codec_encode_row",
        ),
        (
            "columnar_vs_row_decode",
            "codec_decode_columnar",
            "codec_decode_row",
        ),
        (
            "runs_vs_points_submit",
            "fleet_submit_runs",
            "fleet_push_points",
        ),
    ] {
        if let Some(ratio) = speedup(num, den) {
            summary.push((key.to_string(), ratio));
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": 6,\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"cores\": {},\n", available_cores()));
    json.push_str(
        "  \"notes\": \"net workloads: pipelined driver (one Append in flight per connection, \
         loadgen schedule), best-of-N rounds; driver and server share this host's cores, so \
         single-core numbers under-state the pool's advantage over per-connection threads\",\n",
    );
    json.push_str("  \"workloads\": [\n");
    let lines: Vec<String> = workloads.iter().map(Workload::to_json).collect();
    json.push_str(&lines.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str("  \"summary\": {\n");
    let lines: Vec<String> = summary
        .iter()
        .map(|(k, v)| format!("    \"{k}\": {v:.3}"))
        .collect();
    json.push_str(&lines.join(",\n"));
    json.push_str("\n  }\n}\n");

    match out {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| CliError::io("write", path, e))?;
            Ok(format!(
                "bench: {} workloads ({} mode) -> {path}\n",
                workloads.len(),
                if quick { "quick" } else { "full" }
            ))
        }
        None => Ok(json),
    }
}

/// The storage codec, row-shaped vs columnar, both directions.
fn bench_codec(sizes: &Sizes, seed: u64, out: &mut Vec<Workload>) {
    let points: Vec<TimedPoint> = session_trace(seed, 0, sizes.codec_points);
    let batch = ColumnarBatch::from_points(&points);
    let reps = sizes.codec_reps;
    let total = (points.len() * reps) as u64;
    let mut encoded = Vec::new();

    let start = Instant::now();
    for _ in 0..reps {
        encoded.clear();
        encode_points(&points, &mut encoded).expect("trace is codec-valid");
    }
    let bpp = encoded.len() as f64 / points.len() as f64;
    out.push(Workload {
        name: "codec_encode_row",
        points: total,
        elapsed: start.elapsed().as_secs_f64(),
        bytes_per_point: Some(bpp),
    });

    let start = Instant::now();
    for _ in 0..reps {
        encoded.clear();
        encode_columns(&batch, &mut encoded).expect("trace is codec-valid");
    }
    out.push(Workload {
        name: "codec_encode_columnar",
        points: total,
        elapsed: start.elapsed().as_secs_f64(),
        bytes_per_point: Some(encoded.len() as f64 / batch.len() as f64),
    });

    let start = Instant::now();
    for _ in 0..reps {
        let decoded = decode_to_vec(&encoded).expect("encoded above");
        assert_eq!(decoded.len(), points.len());
    }
    out.push(Workload {
        name: "codec_decode_row",
        points: total,
        elapsed: start.elapsed().as_secs_f64(),
        bytes_per_point: Some(bpp),
    });

    let mut scratch = ColumnarBatch::new();
    let start = Instant::now();
    for _ in 0..reps {
        scratch.clear();
        decode_columns_into(&encoded, &mut scratch).expect("encoded above");
        assert_eq!(scratch.len(), batch.len());
    }
    out.push(Workload {
        name: "codec_decode_columnar",
        points: total,
        elapsed: start.elapsed().as_secs_f64(),
        bytes_per_point: Some(bpp),
    });
}

fn bench_fleet_workers() -> usize {
    2
}

/// The same sessions through per-point `push` vs frame-grained
/// `submit_run` (in `NET_BATCH`-point chunks, the server's shape).
fn bench_fleet(sizes: &Sizes, seed: u64, out: &mut Vec<Workload>) {
    let (sessions, points) = sizes.fleet;
    let runs: Vec<(u64, Vec<TimedPoint>)> = (0..sessions as u64)
        .map(|track| (track, session_trace(seed, track, points)))
        .collect();
    let total = (sessions * points) as u64;
    let fleet = || {
        ParallelFleet::new(
            ParallelConfig {
                workers: bench_fleet_workers(),
                fleet: FleetConfig::default(),
                ..ParallelConfig::default()
            },
            || FastBqsCompressor::new(BqsConfig::new(10.0).expect("10 m is valid")),
            |_| CountingFleetSink::default(),
        )
    };

    let mut f = fleet();
    let start = Instant::now();
    for (track, trace) in &runs {
        for p in trace {
            f.push(*track, *p);
        }
    }
    let join = f.join();
    out.push(Workload {
        name: "fleet_push_points",
        points: total,
        elapsed: start.elapsed().as_secs_f64(),
        bytes_per_point: None,
    });
    assert!(join.is_ok(), "bench fleet worker failed");

    let mut f = fleet();
    let start = Instant::now();
    for (track, trace) in &runs {
        for chunk in trace.chunks(NET_BATCH) {
            f.submit_run(*track, chunk.to_vec());
        }
    }
    let join = f.join();
    out.push(Workload {
        name: "fleet_submit_runs",
        points: total,
        elapsed: start.elapsed().as_secs_f64(),
        bytes_per_point: None,
    });
    assert!(join.is_ok(), "bench fleet worker failed");
}

/// Drives the full seeded workload over `connections` raw framed
/// connections with one `Append` in flight per connection — write a
/// frame onto every connection, then collect every acknowledgement.
/// Pipelining keeps every connection's next frame queued while the
/// server works, so the measurement is the server's sustained
/// multiplexing throughput, not per-frame round-trip latency (which a
/// single-core host schedules too noisily to compare). Track ids are
/// offset by `track_base` so repetitions replay fresh sessions.
fn pipelined_ingest(
    addr: std::net::SocketAddr,
    traces: &[Vec<TimedPoint>],
    connections: usize,
    track_base: u64,
) -> Result<f64, CliError> {
    use bqs_net::wire::{read_frame, write_frame, Reply, Request, PROTOCOL_VERSION};
    use std::net::TcpStream;

    let mut conns: Vec<TcpStream> = Vec::with_capacity(connections);
    for _ in 0..connections {
        let mut stream = TcpStream::connect(addr)
            .map_err(|e| CliError::Invalid(format!("bench connect {addr}: {e}")))?;
        let _ = stream.set_nodelay(true);
        write_frame(
            &mut stream,
            &Request::Hello {
                protocol: PROTOCOL_VERSION,
            }
            .encode()
            .map_err(|e| CliError::Invalid(format!("bench hello: {e}")))?,
        )
        .map_err(|e| CliError::Invalid(format!("bench hello: {e}")))?;
        let reply = read_frame(&mut stream)
            .map_err(|e| CliError::Invalid(format!("bench hello ack: {e}")))?
            .ok_or_else(|| CliError::Invalid("server closed during handshake".to_string()))?;
        if !matches!(Reply::decode(&reply), Ok(Reply::HelloOk { .. })) {
            return Err(CliError::Invalid("unexpected handshake reply".to_string()));
        }
        conns.push(stream);
    }

    // Each connection interleaves its tracks round-robin in
    // `NET_BATCH`-point chunks — the loadgen schedule, pipelined.
    let chunks = traces.first().map_or(0, |t| t.chunks(NET_BATCH).count());
    let start = Instant::now();
    for chunk in 0..chunks {
        // Phase 1: one frame onto every connection that has work.
        let mut in_flight = vec![0usize; connections];
        for (track, trace) in traces.iter().enumerate() {
            let conn = track % connections;
            let lo = chunk * NET_BATCH;
            let hi = (lo + NET_BATCH).min(trace.len());
            if lo >= hi {
                continue;
            }
            let payload = Request::Append {
                track: track_base + track as u64,
                points: trace[lo..hi].to_vec(),
            }
            .encode()
            .map_err(|e| CliError::Invalid(format!("bench append: {e}")))?;
            write_frame(&mut conns[conn], &payload)
                .map_err(|e| CliError::Invalid(format!("bench append: {e}")))?;
            in_flight[conn] += 1;
        }
        // Phase 2: collect the acknowledgements.
        for (conn, &n) in in_flight.iter().enumerate() {
            for _ in 0..n {
                let reply = read_frame(&mut conns[conn])
                    .map_err(|e| CliError::Invalid(format!("bench ack: {e}")))?
                    .ok_or_else(|| CliError::Invalid("server closed mid-run".to_string()))?;
                match Reply::decode(&reply) {
                    Ok(Reply::Appended { .. }) => {}
                    other => {
                        return Err(CliError::Invalid(format!(
                            "expected an append ack, got {other:?}"
                        )))
                    }
                }
            }
        }
    }
    Ok(start.elapsed().as_secs_f64())
}

/// Loopback serve end to end: the legacy runtime, the I/O pool, and
/// per-track query fan-out against the live pool server. Ingest runs
/// are repeated and the best round is recorded (standard min-time
/// practice — the rounds share a binary and a host, so the minimum is
/// the least-scheduled-against measurement).
fn bench_net(sizes: &Sizes, seed: u64, out: &mut Vec<Workload>) -> Result<(), CliError> {
    let (sessions, points, connections) = sizes.net;
    let reps = if sizes.codec_reps > 2 { 3 } else { 2 };
    let traces: Vec<Vec<TimedPoint>> = (0..sessions as u64)
        .map(|track| session_trace(seed, track, points))
        .collect();
    // Wire bytes per point: one columnar append frame of the bench
    // batch size, amortised (header + CRC included).
    let wire_bpp = {
        let batch = ColumnarBatch::from_points(&traces[0][..NET_BATCH.min(points)]);
        let payload = bqs_net::encode_append_columns(0, &batch)
            .map_err(|e| CliError::Invalid(format!("bench frame: {e}")))?;
        (payload.len() + 10) as f64 / batch.len() as f64
    };

    for (name, io_threads) in [("net_ingest_threaded", 0usize), ("net_ingest_pool", 4usize)] {
        let dir = bench_dir(name);
        let mut config = ServerConfig::new("127.0.0.1:0", 4, &dir);
        config.io_threads = io_threads;
        let server = Server::bind(config)?;
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run());
        let mut best = f64::INFINITY;
        for rep in 0..reps {
            let elapsed = pipelined_ingest(addr, &traces, connections, (rep * sessions) as u64)?;
            best = best.min(elapsed);
        }
        out.push(Workload {
            name,
            points: (sessions * points) as u64,
            elapsed: best,
            bytes_per_point: Some(wire_bpp),
        });
        if io_threads == 0 {
            BqsClient::connect(addr)?.shutdown()?;
        } else {
            // The pool server stays up for the query workload.
            let mut client = BqsClient::connect(addr)?;
            let mut returned = 0u64;
            let start = Instant::now();
            for track in 0..sessions as u64 {
                let report =
                    client.query_time_range(Some(track), f64::NEG_INFINITY, f64::INFINITY)?;
                returned += report
                    .slices
                    .iter()
                    .map(|s| s.points.len() as u64)
                    .sum::<u64>()
                    + report.hot_points;
            }
            out.push(Workload {
                name: "query_fanout",
                points: returned,
                elapsed: start.elapsed().as_secs_f64(),
                bytes_per_point: None,
            });
            client.shutdown()?;
        }
        handle
            .join()
            .map_err(|_| CliError::Invalid("bench server panicked".to_string()))??;
        let _ = std::fs::remove_dir_all(&dir);
    }
    Ok(())
}

fn available_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn bench_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bqs-bench-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_reports_every_workload() {
        let json = run(true, 42, None).unwrap();
        for name in [
            "codec_encode_row",
            "codec_encode_columnar",
            "codec_decode_row",
            "codec_decode_columnar",
            "fleet_push_points",
            "fleet_submit_runs",
            "net_ingest_threaded",
            "net_ingest_pool",
            "query_fanout",
            "net_pool_vs_threaded",
        ] {
            assert!(json.contains(name), "missing {name} in {json}");
        }
        assert!(json.contains("\"bench\": 6"), "{json}");
    }
}
