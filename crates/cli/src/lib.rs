//! # bqs-cli — command-line front end for the BQS workspace
//!
//! ```text
//! bqs generate <bat|vehicle|synthetic> [--seed N] [--scale quick|full] [--out FILE]
//! bqs compress <bqs|fbqs|bdp|bgd|dp|dr|squish-e|mbr> <trace.csv>
//!              [--tolerance M] [--buffer N] [--out FILE]
//! bqs verify <original.csv> <compressed.csv> --tolerance M
//! bqs experiments [fig3|fig6|fig7|fig8a|fig8b|table1|table2|table3|ablation|fleet|all]
//!                 [--full]
//! bqs fleet [--sessions N] [--points N] [--tolerance M] [--algorithm bqs|fbqs]
//!           [--shards N]
//! bqs serve --spill DIR [--addr HOST:PORT] [--workers N]
//! bqs loadgen --addr HOST:PORT [--sessions N] [--points N] [--shutdown]
//! bqs info
//! ```
//!
//! Traces are the `x,y,t` CSV format of [`bqs_sim::Trace`]. Argument
//! parsing is hand-rolled (no CLI dependency) and unit-tested here; the
//! thin binary in `main.rs` just forwards `std::env::args` and exit codes.

#![deny(missing_docs)]

pub mod args;
pub mod bench;
pub mod commands;
pub mod error;

pub use args::{parse, Command};
pub use commands::{execute, run};
pub use error::CliError;

/// Entry point shared by the binary and the tests: parse and run, mapping
/// errors to a message + exit code.
pub fn main_with_args(argv: &[String]) -> Result<String, (String, i32)> {
    let command = args::parse(argv).map_err(|e| (e, 2))?;
    commands::run(&command).map_err(|e| (e, 1))
}
