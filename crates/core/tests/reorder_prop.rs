//! Bounded-lateness reorder properties, end to end at the core layer:
//!
//! 1. **Sorted equivalence** — for arbitrary streams shuffled within a
//!    lateness window `W`, the reorder buffer's released-then-drained
//!    output is bit-identical to the sorted stream.
//! 2. **Compression transparency** — feeding the reorder buffer's
//!    releases into a [`ParallelFleet`] yields, at 1/2/8 workers,
//!    per-track kept points byte-identical to ingesting the sorted
//!    streams directly (so spill trees built from either are identical
//!    too; the durable half is asserted in `tests/net_equivalence.rs`).
//! 3. **Typed refusal** — a point more than `W` behind the watermark is
//!    rejected with the exact [`TooLate`] error and the buffer's state
//!    is untouched.

use bqs_core::fleet::reorder::{FleetReorder, ReorderBuffer, TooLate};
use bqs_core::fleet::{FleetConfig, ParallelConfig, ParallelFleet, TrackId};
use bqs_core::{BqsConfig, FastBqsCompressor};
use bqs_geo::TimedPoint;
use proptest::prelude::*;
use std::collections::{HashMap, VecDeque};

fn lcg(s: &mut u64) -> u64 {
    *s = s
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *s >> 33
}

/// A strictly time-increasing walk: shape is a pure function of
/// `(track, seed)`, so the sorted reference recomputes it.
fn track_trace(track: u64, seed: u64, n: usize) -> Vec<TimedPoint> {
    let mut s = (seed ^ track.wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1;
    let mut x = 0.0f64;
    let mut y = 0.0f64;
    let mut t = 0.0f64;
    (0..n)
        .map(|_| {
            x += (lcg(&mut s) % 2_000) as f64 / 100.0 - 10.0;
            y += (lcg(&mut s) % 2_000) as f64 / 100.0 - 10.0;
            t += 0.5 + (lcg(&mut s) % 1_000) as f64 / 100.0;
            TimedPoint::new(x, y, t)
        })
        .collect()
}

/// A seeded shuffle bounded to `margin` of the lateness window: each
/// emission is drawn from the sorted prefix whose timestamps lie within
/// `margin * window` of the earliest unsent point. Every emission then
/// satisfies `t >= watermark - margin * window`, so a reorder buffer
/// with window `window` accepts the whole stream.
fn bounded_shuffle(sorted: &[TimedPoint], window: f64, seed: u64) -> Vec<TimedPoint> {
    let mut rest: VecDeque<TimedPoint> = sorted.iter().copied().collect();
    let mut out = Vec::with_capacity(sorted.len());
    let mut s = seed | 1;
    while let Some(&front) = rest.front() {
        let limit = rest
            .iter()
            .take_while(|p| p.t - front.t <= 0.75 * window)
            .count()
            .max(1);
        let pick = lcg(&mut s) as usize % limit;
        out.push(rest.remove(pick).expect("pick < len"));
    }
    out
}

fn bits_eq(a: &TimedPoint, b: &TimedPoint) -> bool {
    a.pos.x.to_bits() == b.pos.x.to_bits()
        && a.pos.y.to_bits() == b.pos.y.to_bits()
        && a.t.to_bits() == b.t.to_bits()
}

fn fleet(workers: usize) -> ParallelFleet<HashMap<TrackId, Vec<TimedPoint>>> {
    let config = BqsConfig::new(10.0).unwrap();
    ParallelFleet::new(
        ParallelConfig {
            workers,
            fleet: FleetConfig::default(),
            ..ParallelConfig::default()
        },
        move || FastBqsCompressor::new(config),
        |_| HashMap::new(),
    )
}

fn merged(
    join: bqs_core::fleet::FleetJoin<HashMap<TrackId, Vec<TimedPoint>>>,
) -> HashMap<TrackId, Vec<TimedPoint>> {
    assert!(join.is_ok());
    let mut all = HashMap::new();
    for shard in join.shards {
        for (track, points) in shard.sink {
            assert!(all.insert(track, points).is_none(), "track in two shards");
        }
    }
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any ≤W-disordered stream comes out of the buffer bit-identical
    /// to the sorted stream, and nothing is refused.
    #[test]
    fn within_window_disorder_is_invisible(
        seed in 0u64..1_000_000,
        n in 1usize..300,
        window in 1.0f64..200.0,
    ) {
        let sorted = track_trace(0, seed, n);
        let shuffled = bounded_shuffle(&sorted, window, seed ^ 0xABCD);
        let mut buf = ReorderBuffer::new(window);
        let mut out = Vec::new();
        for p in &shuffled {
            prop_assert!(buf.push(*p, &mut out).is_ok());
        }
        out.extend(buf.drain());
        prop_assert_eq!(out.len(), sorted.len());
        for (a, b) in sorted.iter().zip(&out) {
            prop_assert!(bits_eq(a, b), "{a:?} vs {b:?}");
        }
    }

    /// Reorder-buffered ingest into a parallel fleet ≡ sorted ingest,
    /// per track, at 1/2/8 workers — kept points byte for byte.
    #[test]
    fn reorder_fed_fleet_equals_sorted_fleet_at_any_worker_count(
        seed in 0u64..1_000_000,
        sessions in 2usize..10,
        per_track in 20usize..120,
        window in 5.0f64..100.0,
    ) {
        let traces: Vec<Vec<TimedPoint>> = (0..sessions)
            .map(|t| track_trace(t as u64, seed, per_track))
            .collect();
        let disordered: Vec<Vec<TimedPoint>> = traces
            .iter()
            .enumerate()
            .map(|(t, trace)| bounded_shuffle(trace, window, seed ^ ((t as u64) << 7)))
            .collect();

        for workers in [1usize, 2, 8] {
            // Reference: sorted streams straight into the fleet.
            let mut sorted_fleet = fleet(workers);
            for (t, trace) in traces.iter().enumerate() {
                sorted_fleet.submit_run(t as TrackId, trace.clone());
            }
            let want = merged(sorted_fleet.join());

            // Candidate: disordered streams through per-track reorder
            // buffers, released points (plus the final drain) submitted
            // in release order.
            let mut reorder = FleetReorder::new(window);
            let mut reordered_fleet = fleet(workers);
            let mut released = Vec::new();
            for (t, trace) in disordered.iter().enumerate() {
                released.clear();
                for p in trace {
                    prop_assert!(reorder.push(t as TrackId, *p, &mut released).is_ok());
                }
                if !released.is_empty() {
                    reordered_fleet.submit_run(t as TrackId, released.clone());
                }
            }
            for (track, tail) in reorder.drain_all() {
                reordered_fleet.submit_run(track, tail);
            }
            let got = merged(reordered_fleet.join());

            prop_assert_eq!(got.len(), want.len(), "workers={}", workers);
            for (track, want_points) in &want {
                let got_points = &got[track];
                prop_assert_eq!(got_points.len(), want_points.len(),
                    "workers={} track={}", workers, track);
                for (a, b) in want_points.iter().zip(got_points) {
                    prop_assert!(bits_eq(a, b),
                        "workers={workers} track={track}: {a:?} vs {b:?}");
                }
            }
        }
    }

    /// A point strictly more than W behind the watermark is refused with
    /// the exact typed error, and the refusal has no side effects.
    #[test]
    fn beyond_window_points_are_refused_with_the_exact_error(
        seed in 0u64..1_000_000,
        n in 1usize..100,
        window in 0.0f64..50.0,
        behind in 1.0f64..1_000.0,
    ) {
        let sorted = track_trace(0, seed, n);
        let mut buf = ReorderBuffer::new(window);
        let mut out = Vec::new();
        for p in &sorted {
            buf.push(*p, &mut out).unwrap();
        }
        let watermark = sorted.last().unwrap().t;
        let depth_before = buf.len();
        let t_late = watermark - window - behind;
        let err = buf
            .push(TimedPoint::new(0.0, 0.0, t_late), &mut out)
            .unwrap_err();
        prop_assert_eq!(err, TooLate { t: t_late, watermark, window });
        prop_assert_eq!(buf.len(), depth_before);
        prop_assert_eq!(buf.watermark(), Some(watermark));

        // …and the boundary itself is admitted: exactly W behind is
        // still within the window.
        prop_assert!(buf.admits(watermark - window));
    }
}
