//! Bounded-lateness reordering for out-of-order ingest.
//!
//! Real trackers buffer offline and reconnect with late fixes, so a hard
//! "timestamps only move forward" gate at the ingest edge rejects valid
//! data. A [`ReorderBuffer`] relaxes that gate to a configurable window
//! `W` behind the stream's watermark (the largest timestamp seen so
//! far): any point with `t >= watermark - W` is accepted and parked;
//! points are *released* — in strict timestamp order — only once the
//! watermark has moved more than `W` past them, at which point nothing
//! that could still arrive may precede them. Points older than the
//! window are refused with the typed [`TooLate`] error so callers can
//! route them to an explicit backfill path instead.
//!
//! The invariant that makes the buffer transparent to downstream
//! consumers: a released point has `t < watermark - W`, and every
//! future accept has `t >= watermark' - W >= watermark - W`, so the
//! released stream is time-ordered and identical to the sorted input —
//! feeding it to a compressor yields byte-identical output to the
//! sorted stream (`crates/core/tests/reorder_prop.rs`).
//!
//! Points sharing a timestamp are released in arrival order (insertion
//! is stable), matching what a stable sort of the input would produce.

use super::TrackId;
use bqs_geo::TimedPoint;
use std::collections::{HashMap, VecDeque};

/// A point was older than the lateness window: it cannot be reordered
/// into the live stream and must take the backfill path (or be dropped).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TooLate {
    /// The refused point's timestamp.
    pub t: f64,
    /// The stream watermark at refusal time (largest accepted `t`).
    pub watermark: f64,
    /// The lateness window `W`.
    pub window: f64,
}

impl std::fmt::Display for TooLate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "too-late point: t={} is more than {}s behind the watermark {}",
            self.t, self.window, self.watermark
        )
    }
}

impl std::error::Error for TooLate {}

/// One stream's bounded-lateness reorder buffer. See the module docs.
#[derive(Debug, Clone)]
pub struct ReorderBuffer {
    window: f64,
    /// Largest accepted timestamp; `-inf` before the first accept, so
    /// the very first point of a stream is never "too late".
    watermark: f64,
    /// Parked points, sorted by `t` with stable (arrival-order) ties.
    pending: VecDeque<TimedPoint>,
}

impl ReorderBuffer {
    /// A buffer accepting points up to `window` seconds behind the
    /// watermark. `window` must be finite and `>= 0`; zero degenerates
    /// to the strict in-order gate (every point released immediately…
    /// except ties, which still wait for the watermark to pass them).
    pub fn new(window: f64) -> ReorderBuffer {
        debug_assert!(window.is_finite() && window >= 0.0);
        ReorderBuffer {
            window,
            watermark: f64::NEG_INFINITY,
            pending: VecDeque::new(),
        }
    }

    /// The lateness window `W`.
    pub fn window(&self) -> f64 {
        self.window
    }

    /// The largest accepted timestamp, `None` before the first accept.
    pub fn watermark(&self) -> Option<f64> {
        (self.watermark != f64::NEG_INFINITY).then_some(self.watermark)
    }

    /// Points currently parked.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// `true` when nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Whether a point with timestamp `t` would be accepted right now.
    pub fn admits(&self, t: f64) -> bool {
        t >= self.watermark - self.window
    }

    /// Accepts one point (or refuses it with [`TooLate`]), appending any
    /// newly releasable points — in timestamp order — to `out`.
    pub fn push(&mut self, p: TimedPoint, out: &mut Vec<TimedPoint>) -> Result<(), TooLate> {
        if !self.admits(p.t) {
            return Err(TooLate {
                t: p.t,
                watermark: self.watermark,
                window: self.window,
            });
        }
        // Stable insert: after every parked point with `t <= p.t`.
        let at = self.pending.partition_point(|q| q.t <= p.t);
        self.pending.insert(at, p);
        self.watermark = self.watermark.max(p.t);
        let horizon = self.watermark - self.window;
        // Strict inequality: a point *at* the horizon could still be
        // joined by an equal-timestamp arrival that must sort with it.
        while let Some(q) = self.pending.front() {
            if q.t >= horizon {
                break;
            }
            out.extend(self.pending.pop_front());
        }
        Ok(())
    }

    /// Releases every parked point (in timestamp order) — the
    /// end-of-stream flush. The watermark is kept, so a stream can
    /// continue pushing afterwards.
    pub fn drain(&mut self) -> Vec<TimedPoint> {
        self.pending.drain(..).collect()
    }
}

/// Per-track reorder buffers with fleet-wide depth accounting — the
/// ingest-edge companion of a fleet engine. Buffers are created lazily
/// on a track's first push and all share one lateness window.
#[derive(Debug)]
pub struct FleetReorder {
    window: f64,
    tracks: HashMap<TrackId, ReorderBuffer>,
    depth: usize,
}

impl FleetReorder {
    /// Per-track buffers sharing the lateness window `window`.
    pub fn new(window: f64) -> FleetReorder {
        FleetReorder {
            window,
            tracks: HashMap::new(),
            depth: 0,
        }
    }

    /// The shared lateness window.
    pub fn window(&self) -> f64 {
        self.window
    }

    /// Total parked points across every track — the backlog gauge.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// One track's watermark, `None` for unseen tracks.
    pub fn watermark(&self, track: TrackId) -> Option<f64> {
        self.tracks.get(&track).and_then(ReorderBuffer::watermark)
    }

    /// Whether `track` would accept a point with timestamp `t` now.
    pub fn admits(&self, track: TrackId, t: f64) -> bool {
        self.tracks.get(&track).is_none_or(|b| b.admits(t))
    }

    /// Pushes one point of `track`, appending released points to `out`.
    pub fn push(
        &mut self,
        track: TrackId,
        p: TimedPoint,
        out: &mut Vec<TimedPoint>,
    ) -> Result<(), TooLate> {
        let buffer = self
            .tracks
            .entry(track)
            .or_insert_with(|| ReorderBuffer::new(self.window));
        let before = out.len();
        buffer.push(p, out)?;
        self.depth += 1;
        self.depth -= out.len() - before;
        Ok(())
    }

    /// Drains every track's parked points (each in timestamp order),
    /// ascending by track id — the shutdown flush.
    pub fn drain_all(&mut self) -> Vec<(TrackId, Vec<TimedPoint>)> {
        let mut out: Vec<(TrackId, Vec<TimedPoint>)> = self
            .tracks
            .iter_mut()
            .filter(|(_, b)| !b.is_empty())
            .map(|(&track, b)| (track, b.drain()))
            .collect();
        out.sort_by_key(|(track, _)| *track);
        self.depth = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(t: f64) -> TimedPoint {
        TimedPoint::new(t, -t, t)
    }

    fn times(points: &[TimedPoint]) -> Vec<f64> {
        points.iter().map(|q| q.t).collect()
    }

    #[test]
    fn in_order_stream_passes_through_once_the_watermark_clears_it() {
        let mut buf = ReorderBuffer::new(10.0);
        let mut out = Vec::new();
        for t in 0..6 {
            buf.push(p(t as f64 * 5.0), &mut out).unwrap();
        }
        // Watermark 25, window 10: everything below 15 released.
        assert_eq!(times(&out), vec![0.0, 5.0, 10.0]);
        let rest = buf.drain();
        assert_eq!(times(&rest), vec![15.0, 20.0, 25.0]);
        assert!(buf.is_empty());
    }

    #[test]
    fn disorder_within_the_window_is_released_sorted() {
        let mut buf = ReorderBuffer::new(10.0);
        let mut out = Vec::new();
        for t in [0.0, 8.0, 3.0, 12.0, 7.0, 30.0] {
            buf.push(p(t), &mut out).unwrap();
        }
        out.extend(buf.drain());
        assert_eq!(times(&out), vec![0.0, 3.0, 7.0, 8.0, 12.0, 30.0]);
    }

    #[test]
    fn beyond_window_points_get_the_exact_typed_error() {
        let mut buf = ReorderBuffer::new(5.0);
        let mut out = Vec::new();
        buf.push(p(100.0), &mut out).unwrap();
        assert!(buf.admits(95.0));
        buf.push(p(95.0), &mut out).unwrap();
        let err = buf.push(p(94.9), &mut out).unwrap_err();
        assert_eq!(
            err,
            TooLate {
                t: 94.9,
                watermark: 100.0,
                window: 5.0
            }
        );
        // A refusal leaves the buffer untouched.
        assert_eq!(buf.len(), 2);
        assert_eq!(times(&buf.drain()), vec![95.0, 100.0]);
    }

    #[test]
    fn the_first_point_is_never_too_late() {
        let mut buf = ReorderBuffer::new(0.0);
        let mut out = Vec::new();
        buf.push(p(-1.0e12), &mut out).unwrap();
        assert_eq!(buf.watermark(), Some(-1.0e12));
    }

    #[test]
    fn equal_timestamps_release_in_arrival_order() {
        let mut buf = ReorderBuffer::new(2.0);
        let mut out = Vec::new();
        let a = TimedPoint::new(1.0, 0.0, 5.0);
        let b = TimedPoint::new(2.0, 0.0, 5.0);
        buf.push(a, &mut out).unwrap();
        buf.push(b, &mut out).unwrap();
        buf.push(p(100.0), &mut out).unwrap();
        assert_eq!(out[0], a);
        assert_eq!(out[1], b);
    }

    #[test]
    fn fleet_reorder_tracks_depth_and_isolates_tracks() {
        let mut fleet = FleetReorder::new(10.0);
        let mut out = Vec::new();
        fleet.push(1, p(0.0), &mut out).unwrap();
        fleet.push(2, p(1000.0), &mut out).unwrap();
        // Track 1's watermark is 0: t=-5 is fine there even though
        // track 2 is far ahead.
        fleet.push(1, p(-5.0), &mut out).unwrap();
        assert!(out.is_empty());
        assert_eq!(fleet.depth(), 3);
        assert_eq!(fleet.watermark(1), Some(0.0));
        assert_eq!(fleet.watermark(2), Some(1000.0));
        assert!(fleet.admits(3, f64::MIN));
        assert!(!fleet.admits(2, 989.0));

        fleet.push(1, p(50.0), &mut out).unwrap();
        assert_eq!(times(&out), vec![-5.0, 0.0]);
        assert_eq!(fleet.depth(), 2);

        let drained = fleet.drain_all();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].0, 1);
        assert_eq!(times(&drained[0].1), vec![50.0]);
        assert_eq!(times(&drained[1].1), vec![1000.0]);
        assert_eq!(fleet.depth(), 0);
    }
}
