//! The multi-threaded sharded fleet runtime.
//!
//! A single [`FleetEngine`] drives every session on the caller's thread;
//! [`ParallelFleet`] scales the same engine across cores. The design is a
//! *shared-nothing shard-per-thread* pipeline:
//!
//! ```text
//!                     ┌──────────── worker shard 0 ────────────┐
//!  push(track, p) ──► │ bounded channel ─► FleetEngine ─► sink │
//!        │            └────────────────────────────────────────┘
//!   track_hash(track) ┌──────────── worker shard 1 ────────────┐
//!        └──────────► │ bounded channel ─► FleetEngine ─► sink │
//!                     └────────────────────────────────────────┘
//!                                      …                join()
//! ```
//!
//! * **Hash routing** — a track is assigned to [`worker_of`]`(track,
//!   workers)`, so every point of a stream is processed by exactly one
//!   worker, in submission order. Per-track output is therefore
//!   *identical* to the single-threaded engine (and to solo compression),
//!   regardless of the worker count — the equivalence property enforced
//!   by `tests/parallel_fleet.rs`.
//! * **Batched submission** — points are buffered per worker and shipped
//!   in batches ([`ParallelConfig::batch_points`]) to amortise channel
//!   synchronisation over many points.
//! * **Backpressure** — channels are bounded
//!   ([`ParallelConfig::channel_batches`]); when a worker falls behind,
//!   [`ParallelFleet::push`] blocks instead of buffering unboundedly.
//! * **Shared-nothing state** — each worker owns a private [`FleetEngine`]
//!   *and* a private [`FleetSink`] (built per shard by the sink factory),
//!   so the hot path takes no locks. A durable pipeline gives each shard
//!   its own spill log (`bqs-tlog`'s `SpillSink` over a `shard-<k>/`
//!   directory).
//! * **Merged join** — [`ParallelFleet::join`] closes the channels, drains
//!   every engine ([`FleetEngine::finish_all`]) and hands back each
//!   shard's [`SessionReport`]s, sink and [`DecisionStats`] plus the
//!   fleet-wide merge — the same per-session semantics as the serial
//!   engine.
//! * **Panic isolation** — a panicking worker poisons only its own shard.
//!   The routing side keeps the set of tracks per shard, so [`FleetJoin`]
//!   reports exactly which sessions died ([`ShardFailure`]) instead of
//!   silently dropping them; healthy shards join normally.
//!
//! ```
//! use bqs_core::fleet::{ParallelConfig, ParallelFleet, TrackId};
//! use bqs_core::{BqsConfig, FastBqsCompressor};
//! use bqs_geo::TimedPoint;
//! use std::collections::HashMap;
//!
//! let config = BqsConfig::new(10.0).unwrap();
//! let mut fleet = ParallelFleet::new(
//!     ParallelConfig { workers: 4, ..ParallelConfig::default() },
//!     move || FastBqsCompressor::new(config),
//!     |_shard| HashMap::<TrackId, Vec<TimedPoint>>::new(),
//! );
//! for i in 0..400u64 {
//!     // Eight interleaved trackers, routed to four workers.
//!     fleet.push(i % 8, TimedPoint::new(i as f64 * 4.0, 0.0, i as f64));
//! }
//! let join = fleet.join();
//! assert!(join.failures.is_empty());
//! assert_eq!(join.session_reports().len(), 8);
//! ```

use super::{
    track_hash, FleetConfig, FleetEngine, FleetSink, FleetSnapshot, FlushReason, SessionReport,
    TrackId,
};
use crate::stream::{DecisionStats, HasDecisionStats, StreamCompressor};
use bqs_geo::TimedPoint;
use bqs_obs::{elapsed_us, Counter, FlightRecorder, Gauge, MetricsRegistry, TraceEventKind};
use std::collections::HashSet;
use std::sync::mpsc::{sync_channel, Receiver, SendError, SyncSender};
use std::thread::JoinHandle;

/// The worker shard `track` is routed to in a fleet of `workers`.
///
/// Routes on the *high* 32 bits of [`track_hash`], while the engine
/// inside each worker picks its session shard from the low bits
/// (`track_hash & mask`). Using disjoint bit ranges keeps the two
/// levels uncorrelated: with `% workers` over the same low bits, a
/// power-of-two worker count would pin every track of worker `k` to
/// the engine shards congruent to `k`, collapsing each engine onto a
/// fraction of its shard map.
pub fn worker_of(track: TrackId, workers: usize) -> usize {
    ((track_hash(track) >> 32) % workers.max(1) as u64) as usize
}

/// Tuning knobs for the parallel runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelConfig {
    /// Worker shards (threads), minimum 1. Unlike the engine's internal
    /// session shards this need not be a power of two.
    pub workers: usize,
    /// Points per channel message. Larger batches amortise channel
    /// synchronisation; smaller batches reduce end-to-end latency.
    pub batch_points: usize,
    /// Bounded channel depth in batches per worker — the backpressure
    /// window. `push` blocks once a worker is this far behind.
    pub channel_batches: usize,
    /// Configuration for each worker's private [`FleetEngine`].
    pub fleet: FleetConfig,
}

impl Default for ParallelConfig {
    fn default() -> ParallelConfig {
        ParallelConfig {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            batch_points: 256,
            channel_batches: 4,
            fleet: FleetConfig::default(),
        }
    }
}

/// What one worker shard produced, returned by [`ParallelFleet::join`].
#[derive(Debug)]
pub struct ShardOutput<S> {
    /// The shard index (`0..workers`).
    pub shard: usize,
    /// One report per session the shard finalised (evictions included),
    /// in the engine's close order. [`FleetJoin::session_reports`] gives
    /// the deterministic (shard, track) ordering.
    pub reports: Vec<SessionReport>,
    /// Decision statistics merged across the shard's sessions.
    pub stats: DecisionStats,
    /// The shard's private sink, with everything it accepted.
    pub sink: S,
}

/// A worker shard that died mid-run, and exactly what died with it.
#[derive(Debug)]
pub struct ShardFailure {
    /// The shard index.
    pub shard: usize,
    /// The panic payload, stringified.
    pub panic: String,
    /// Every track that was routed to this shard (sorted): the sessions
    /// whose in-flight state is lost. Output spilled or emitted before
    /// the panic may survive in the shard's sink/log.
    pub tracks: Vec<TrackId>,
    /// Every point submitted for this shard over the whole run — the
    /// exact upper bound on the loss. How many had already been
    /// processed when the worker died is unknowable from outside (some
    /// may sit in the channel, and even processed points lose their
    /// in-flight session state to the panic), so the runtime reports
    /// the number it can count exactly rather than an undercount.
    pub submitted_points: u64,
}

/// One worker shard's submission-side counters, observable while the
/// fleet is still running (unlike [`ShardOutput`], which only exists
/// after [`ParallelFleet::join`]). Counted on the routing side, so the
/// numbers are exact even for a shard whose worker has died.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardCounters {
    /// The shard index (`0..workers`).
    pub shard: usize,
    /// Distinct tracks routed to this shard so far.
    pub tracks: usize,
    /// Points submitted for this shard so far.
    pub submitted_points: u64,
    /// `true` once the shard's worker has panicked (the loss is
    /// reported in full at [`ParallelFleet::join`]).
    pub dead: bool,
}

/// The merged result of a parallel run.
#[derive(Debug)]
pub struct FleetJoin<S> {
    /// Healthy shards, ordered by shard index.
    pub shards: Vec<ShardOutput<S>>,
    /// Shards that panicked, ordered by shard index.
    pub failures: Vec<ShardFailure>,
    /// Decision statistics merged across all healthy shards.
    pub stats: DecisionStats,
}

impl<S> FleetJoin<S> {
    /// `true` when every shard joined cleanly.
    pub fn is_ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Every session report across all healthy shards, sorted by
    /// (shard, track) — a deterministic order independent of both thread
    /// scheduling and the engines' internal hash-map iteration.
    pub fn session_reports(&self) -> Vec<(usize, &SessionReport)> {
        let mut out: Vec<(usize, &SessionReport)> = self
            .shards
            .iter()
            .flat_map(|s| s.reports.iter().map(move |r| (s.shard, r)))
            .collect();
        out.sort_by_key(|(shard, r)| (*shard, r.track));
        out
    }
}

/// Pre-registered metric handles for one fleet: per-shard submission
/// counters, channel-depth gauges and worker busy/idle time, plus
/// fleet-wide totals. Built once from a
/// [`MetricsRegistry`] and passed to
/// [`ParallelFleet::with_metrics`]; every recording is a relaxed atomic,
/// so instrumentation never perturbs the data path (output stays
/// byte-identical to an unmetered fleet). Fleets built without metrics
/// pay only a branch on `None` per submission.
///
/// Metric names are catalogued in `docs/observability.md`
/// (`fleet_submitted_points_total`, `fleet_shard<k>_channel_depth`, …).
#[derive(Clone, Debug)]
pub struct FleetMetrics {
    shards: Vec<ShardMetrics>,
}

/// One shard's handles; clones of the fleet-wide totals ride along so a
/// single recording updates both levels.
#[derive(Clone, Debug)]
struct ShardMetrics {
    submitted: Counter,
    kept: Counter,
    dropped: Counter,
    /// Data-plane messages in the shard's channel right now (+ peak).
    depth: Gauge,
    busy_us: Counter,
    idle_us: Counter,
    total_submitted: Counter,
    total_kept: Counter,
    total_dropped: Counter,
    /// Sessions reclaimed by idle eviction, fleet-wide.
    evicted: Counter,
    /// Flight recorder the sinks emit `Evict` events into, when wired.
    trace: Option<FlightRecorder>,
}

impl FleetMetrics {
    /// Registers the fleet's metrics for `workers` shards in `registry`
    /// and keeps the handles.
    pub fn new(registry: &MetricsRegistry, workers: usize) -> FleetMetrics {
        let total_submitted = registry.counter("fleet_submitted_points_total");
        let total_kept = registry.counter("fleet_kept_points_total");
        let total_dropped = registry.counter("fleet_dropped_points_total");
        let evicted = registry.counter("fleet_evicted_sessions_total");
        let shards = (0..workers.max(1))
            .map(|k| ShardMetrics {
                submitted: registry.counter(&format!("fleet_shard{k}_submitted_points_total")),
                kept: registry.counter(&format!("fleet_shard{k}_kept_points_total")),
                dropped: registry.counter(&format!("fleet_shard{k}_dropped_points_total")),
                depth: registry.gauge(&format!("fleet_shard{k}_channel_depth")),
                busy_us: registry.counter(&format!("fleet_shard{k}_busy_us_total")),
                idle_us: registry.counter(&format!("fleet_shard{k}_idle_us_total")),
                total_submitted: total_submitted.clone(),
                total_kept: total_kept.clone(),
                total_dropped: total_dropped.clone(),
                evicted: evicted.clone(),
                trace: None,
            })
            .collect();
        FleetMetrics { shards }
    }

    /// Wires a flight recorder into every shard: each idle eviction then
    /// emits one `Evict` trace event alongside the counter bump.
    pub fn with_trace(mut self, trace: FlightRecorder) -> FleetMetrics {
        for shard in &mut self.shards {
            shard.trace = Some(trace.clone());
        }
        self
    }
}

impl ShardMetrics {
    fn on_submitted(&self, n: u64) {
        self.submitted.add(n);
        self.total_submitted.add(n);
    }

    fn on_dropped(&self, n: u64) {
        self.dropped.add(n);
        self.total_dropped.add(n);
    }
}

/// Counts points the engine keeps (emits into the sink) without
/// touching them — the data path through the inner sink is unchanged.
struct MeteredSink<S> {
    inner: S,
    kept: Counter,
    total_kept: Counter,
    evicted: Counter,
    trace: Option<FlightRecorder>,
}

impl<S: FleetSink> FleetSink for MeteredSink<S> {
    fn accept(&mut self, track: TrackId, point: TimedPoint) {
        self.kept.inc();
        self.total_kept.inc();
        self.inner.accept(track, point);
    }

    fn session_closed(&mut self, report: &SessionReport) {
        if report.reason == FlushReason::Evicted {
            self.evicted.inc();
            if let Some(tr) = &self.trace {
                tr.record(TraceEventKind::Evict, 0, report.points);
            }
        }
        self.inner.session_closed(report);
    }

    fn live_buffered(&self) -> Vec<(TrackId, Vec<TimedPoint>)> {
        self.inner.live_buffered()
    }
}

enum Msg {
    Batch(Vec<(TrackId, TimedPoint)>),
    /// Whole per-track runs, shipped in one send — the frame-grained
    /// submission path ([`ParallelFleet::submit_batch`]). The worker
    /// replays each run point by point through the same engine call as
    /// [`Msg::Batch`], so per-track output is byte-identical.
    Runs(Vec<(TrackId, Vec<TimedPoint>)>),
    Evict(f64),
    /// Snapshot request: the worker answers with a consistent view of
    /// its engine + sink state after all previously queued work.
    Snapshot(SyncSender<FleetSnapshot>),
    /// Stats request: the worker answers with its engine's merged
    /// [`DecisionStats`] after all previously queued work.
    Stats(SyncSender<DecisionStats>),
}

struct WorkerOutput<S> {
    reports: Vec<SessionReport>,
    stats: DecisionStats,
    sink: S,
}

struct Worker<S> {
    sender: Option<SyncSender<Msg>>,
    handle: Option<JoinHandle<WorkerOutput<S>>>,
    buffer: Vec<(TrackId, TimedPoint)>,
    /// Tracks routed to this shard. A `HashSet` keeps the per-point
    /// cost O(1) on the submission hot path; the rare failure report
    /// sorts once in `join`.
    tracks: HashSet<TrackId>,
    /// Points routed to this shard over the run (exact, counted on the
    /// submission side — the basis of [`ShardFailure::submitted_points`]).
    submitted_points: u64,
    /// Set once a send fails: the worker panicked and its receiver is
    /// gone. Routing keeps working; delivery stops.
    dead: bool,
    /// Submission-side metric handles; `None` costs one branch.
    metrics: Option<ShardMetrics>,
}

impl<S> Worker<S> {
    fn flush(&mut self, batch_capacity: usize) {
        if self.buffer.is_empty() || self.dead {
            self.buffer.clear();
            return;
        }
        let batch = std::mem::replace(&mut self.buffer, Vec::with_capacity(batch_capacity));
        // bqs-analyze: allow(no-unwrap-in-lib) — sender is only taken in join(), which consumes self
        let sender = self.sender.as_ref().expect("sender lives until join");
        // The depth gauge rises *before* the send: the worker decrements
        // on receipt, and decrementing a not-yet-incremented gauge would
        // wrap it below zero.
        if let Some(m) = &self.metrics {
            m.depth.add(1);
        }
        match sender.send(Msg::Batch(batch)) {
            Ok(()) => {}
            Err(SendError(msg)) => {
                self.dead = true;
                if let Some(m) = &self.metrics {
                    m.depth.sub(1);
                    if let Msg::Batch(lost) = msg {
                        m.on_dropped(lost.len() as u64);
                    }
                }
            }
        }
    }
}

fn worker_loop<C, CF, S>(
    rx: Receiver<Msg>,
    config: FleetConfig,
    factory: CF,
    sink: S,
    metrics: Option<ShardMetrics>,
) -> WorkerOutput<S>
where
    C: StreamCompressor + HasDecisionStats + Clone,
    CF: Fn() -> C,
    S: FleetSink,
{
    // The metered wrapper exists only inside the metered arm, so the
    // unmetered data path is exactly the code it always was.
    match metrics {
        None => run_worker(rx, config, factory, sink, None),
        Some(m) => {
            let metered = MeteredSink {
                inner: sink,
                kept: m.kept.clone(),
                total_kept: m.total_kept.clone(),
                evicted: m.evicted.clone(),
                trace: m.trace.clone(),
            };
            let out = run_worker(rx, config, factory, metered, Some(m));
            WorkerOutput {
                reports: out.reports,
                stats: out.stats,
                sink: out.sink.inner,
            }
        }
    }
}

fn run_worker<C, CF, S>(
    rx: Receiver<Msg>,
    config: FleetConfig,
    factory: CF,
    mut sink: S,
    metrics: Option<ShardMetrics>,
) -> WorkerOutput<S>
where
    C: StreamCompressor + HasDecisionStats + Clone,
    CF: Fn() -> C,
    S: FleetSink,
{
    let mut engine = FleetEngine::new(config, factory);
    let mut reports = Vec::new();
    loop {
        let idle_from = metrics.as_ref().map(|_| bqs_obs::now());
        let Ok(msg) = rx.recv() else { break };
        let busy_from = metrics.as_ref().map(|m| {
            if let Some(t) = idle_from {
                m.idle_us.add(elapsed_us(t));
            }
            if matches!(msg, Msg::Batch(_) | Msg::Runs(_)) {
                m.depth.sub(1);
            }
            bqs_obs::now()
        });
        match msg {
            Msg::Batch(batch) => {
                for (track, p) in batch {
                    engine.push_tagged(track, p, &mut sink);
                }
            }
            Msg::Runs(runs) => {
                for (track, points) in runs {
                    for p in points {
                        engine.push_tagged(track, p, &mut sink);
                    }
                }
            }
            Msg::Evict(now) => reports.extend(engine.evict_idle(now, &mut sink)),
            // The reply channel may be gone if the requester timed out;
            // a failed send just drops this shard from the snapshot.
            Msg::Snapshot(reply) => drop(reply.send(engine.snapshot(&sink))),
            Msg::Stats(reply) => drop(reply.send(engine.stats())),
        }
        if let (Some(m), Some(t)) = (&metrics, busy_from) {
            m.busy_us.add(elapsed_us(t));
        }
    }
    // Channel closed: the submission side called join (or was dropped).
    reports.extend(engine.finish_all(&mut sink));
    let stats = engine.stats();
    WorkerOutput {
        reports,
        stats,
        sink,
    }
}

/// A fleet of worker threads, each multiplexing the sessions routed to it
/// through a private [`FleetEngine`]. See the module docs for the design.
pub struct ParallelFleet<S> {
    workers: Vec<Worker<S>>,
    batch_points: usize,
}

impl<S: FleetSink + Send + 'static> ParallelFleet<S> {
    /// Spawns `config.workers` worker threads. `factory` builds one
    /// compressor per session (cloned into every worker); `sink_factory`
    /// builds each shard's private sink (called with the shard index,
    /// in order).
    pub fn new<C, CF, SF>(config: ParallelConfig, factory: CF, sink_factory: SF) -> ParallelFleet<S>
    where
        C: StreamCompressor + HasDecisionStats + Clone + Send + 'static,
        CF: Fn() -> C + Clone + Send + 'static,
        SF: FnMut(usize) -> S,
    {
        ParallelFleet::with_metrics(config, factory, sink_factory, None)
    }

    /// [`ParallelFleet::new`] with optional pre-registered metric
    /// handles ([`FleetMetrics`]). Instrumentation is submission-side
    /// counters plus a counting sink wrapper — the data path and its
    /// output are byte-identical to an unmetered fleet.
    pub fn with_metrics<C, CF, SF>(
        config: ParallelConfig,
        factory: CF,
        mut sink_factory: SF,
        metrics: Option<FleetMetrics>,
    ) -> ParallelFleet<S>
    where
        C: StreamCompressor + HasDecisionStats + Clone + Send + 'static,
        CF: Fn() -> C + Clone + Send + 'static,
        SF: FnMut(usize) -> S,
    {
        let count = config.workers.max(1);
        let batch_points = config.batch_points.max(1);
        let workers = (0..count)
            .map(|shard| {
                let (sender, rx) = sync_channel(config.channel_batches.max(1));
                let fleet_config = config.fleet;
                let factory = factory.clone();
                let sink = sink_factory(shard);
                let shard_metrics = metrics.as_ref().and_then(|m| m.shards.get(shard)).cloned();
                let worker_metrics = shard_metrics.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("bqs-fleet-{shard}"))
                    .spawn(move || worker_loop(rx, fleet_config, factory, sink, worker_metrics))
                    // bqs-analyze: allow(no-unwrap-in-lib) — invariant: spawn fleet worker thread
                    .expect("spawn fleet worker thread");
                Worker {
                    sender: Some(sender),
                    handle: Some(handle),
                    buffer: Vec::with_capacity(batch_points),
                    tracks: HashSet::new(),
                    submitted_points: 0,
                    dead: false,
                    metrics: shard_metrics,
                }
            })
            .collect();
        ParallelFleet {
            workers,
            batch_points,
        }
    }

    /// Number of worker shards.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The shard `track` is routed to (see [`worker_of`]).
    pub fn shard_of(&self, track: TrackId) -> usize {
        worker_of(track, self.workers.len())
    }

    /// Submits the next point of `track`'s stream. Points of one track
    /// are processed in submission order by a single worker; blocks when
    /// that worker's channel is full (backpressure). If the worker has
    /// panicked, the point is still counted against the shard and the
    /// loss is reported at [`ParallelFleet::join`] instead of being
    /// silent.
    pub fn push(&mut self, track: TrackId, p: TimedPoint) {
        let shard = self.shard_of(track);
        let batch_points = self.batch_points;
        let worker = &mut self.workers[shard];
        worker.tracks.insert(track);
        worker.submitted_points += 1;
        if let Some(m) = &worker.metrics {
            m.on_submitted(1);
        }
        if worker.dead {
            if let Some(m) = &worker.metrics {
                m.on_dropped(1);
            }
            return;
        }
        worker.buffer.push((track, p));
        if worker.buffer.len() >= batch_points {
            worker.flush(batch_points);
        }
    }

    /// Submits a batch of `(track, point)` records (any interleaving).
    pub fn ingest(&mut self, records: impl IntoIterator<Item = (TrackId, TimedPoint)>) {
        for (track, p) in records {
            self.push(track, p);
        }
    }

    /// Submits one track's time-ordered run as a single channel send —
    /// the frame-grained fast path: no per-point hashing, no per-point
    /// buffer copies. Equivalent to `points.into_iter().for_each(|p|
    /// self.push(track, p))` byte for byte (the worker replays the run
    /// through the same engine call), including its ordering with
    /// interleaved [`ParallelFleet::push`] calls and its backpressure
    /// (the send blocks while the shard's channel is full).
    pub fn submit_run(&mut self, track: TrackId, points: Vec<TimedPoint>) {
        self.submit_batch(std::iter::once((track, points)));
    }

    /// Submits whole per-track runs, grouped so each worker shard gets
    /// **one** channel send no matter how many runs route to it. Runs
    /// for one track are processed in submission order relative to both
    /// other `submit_batch` calls and per-point pushes: any points the
    /// shard has buffered from [`ParallelFleet::push`] are flushed ahead
    /// of the runs, preserving the fleet's per-track order guarantee.
    pub fn submit_batch(&mut self, runs: impl IntoIterator<Item = (TrackId, Vec<TimedPoint>)>) {
        let batch_points = self.batch_points;
        let mut grouped: Vec<Vec<(TrackId, Vec<TimedPoint>)>> = Vec::new();
        for (track, points) in runs {
            let shard = self.shard_of(track);
            let worker = &mut self.workers[shard];
            worker.tracks.insert(track);
            worker.submitted_points += points.len() as u64;
            if let Some(m) = &worker.metrics {
                m.on_submitted(points.len() as u64);
            }
            if worker.dead || points.is_empty() {
                if worker.dead {
                    if let Some(m) = &worker.metrics {
                        m.on_dropped(points.len() as u64);
                    }
                }
                continue;
            }
            // Order with previously buffered per-point submissions.
            worker.flush(batch_points);
            if grouped.len() <= shard {
                grouped.resize_with(shard + 1, Vec::new);
            }
            grouped[shard].push((track, points));
        }
        for (shard, runs) in grouped.into_iter().enumerate() {
            if runs.is_empty() {
                continue;
            }
            let worker = &mut self.workers[shard];
            // bqs-analyze: allow(no-unwrap-in-lib) — sender is only taken in join(), which consumes self
            let sender = worker.sender.as_ref().expect("sender lives until join");
            // Raised before the send so the worker's decrement-on-receipt
            // can never observe (and wrap) a zero gauge.
            if let Some(m) = &worker.metrics {
                m.depth.add(1);
            }
            match sender.send(Msg::Runs(runs)) {
                Ok(()) => {}
                Err(SendError(msg)) => {
                    worker.dead = true;
                    if let Some(m) = &worker.metrics {
                        m.depth.sub(1);
                        if let Msg::Runs(lost) = msg {
                            let points: u64 = lost.iter().map(|(_, pts)| pts.len() as u64).sum();
                            m.on_dropped(points);
                        }
                    }
                }
            }
        }
    }

    /// Ships every partially filled batch now. Useful before a pause;
    /// `join` and `evict_idle` flush implicitly.
    pub fn flush(&mut self) {
        let batch_points = self.batch_points;
        for worker in &mut self.workers {
            worker.flush(batch_points);
        }
    }

    /// Asks every worker to finalise sessions idle past its engine's
    /// `idle_timeout` relative to `now` (stream time). Runs after all
    /// previously submitted points (per-worker order is preserved);
    /// eviction reports surface in [`ParallelFleet::join`].
    pub fn evict_idle(&mut self, now: f64) {
        let batch_points = self.batch_points;
        for worker in &mut self.workers {
            worker.flush(batch_points);
            if worker.dead {
                continue;
            }
            // bqs-analyze: allow(no-unwrap-in-lib) — sender is only taken in join(), which consumes self
            let sender = worker.sender.as_ref().expect("sender lives until join");
            if sender.send(Msg::Evict(now)).is_err() {
                worker.dead = true;
            }
        }
    }

    /// A consistent, non-destructive snapshot of every worker shard's
    /// live state: per track, the shard sink's buffered kept points
    /// plus the live compressor's pending tail (see
    /// [`FleetEngine::snapshot`]). All partially filled batches are
    /// flushed first and the snapshot request is ordered behind them in
    /// each worker's channel, so the view reflects *every point
    /// submitted before this call*; requests fan out to all workers
    /// before any reply is awaited. Tracks on a panicked shard are
    /// absent (their loss is reported at [`ParallelFleet::join`]).
    pub fn snapshot(&mut self) -> FleetSnapshot {
        self.flush();
        let mut replies = Vec::with_capacity(self.workers.len());
        for worker in &mut self.workers {
            if worker.dead {
                continue;
            }
            let (tx, rx) = sync_channel(1);
            // bqs-analyze: allow(no-unwrap-in-lib) — sender is only taken in join(), which consumes self
            let sender = worker.sender.as_ref().expect("sender lives until join");
            if sender.send(Msg::Snapshot(tx)).is_err() {
                worker.dead = true;
                continue;
            }
            replies.push(rx);
        }
        FleetSnapshot::merge(replies.into_iter().filter_map(|rx| rx.recv().ok()))
    }

    /// Submission-side counters per worker shard: tracks routed, points
    /// submitted, liveness. Cheap (no worker round-trip) and exact —
    /// the same counters [`ShardFailure`] reports for a dead shard.
    pub fn shard_counters(&self) -> Vec<ShardCounters> {
        self.workers
            .iter()
            .enumerate()
            .map(|(shard, w)| ShardCounters {
                shard,
                tracks: w.tracks.len(),
                submitted_points: w.submitted_points,
                dead: w.dead,
            })
            .collect()
    }

    /// Decision statistics merged across every live worker's engine,
    /// without ending the run. Partially filled batches are flushed
    /// first and each stats request is ordered behind them, so the
    /// merge covers every point submitted before this call; requests
    /// fan out to all workers before any reply is awaited. Dead shards
    /// contribute nothing (their loss surfaces at
    /// [`ParallelFleet::join`]).
    pub fn live_stats(&mut self) -> DecisionStats {
        self.flush();
        let mut replies = Vec::with_capacity(self.workers.len());
        for worker in &mut self.workers {
            if worker.dead {
                continue;
            }
            let (tx, rx) = sync_channel(1);
            // bqs-analyze: allow(no-unwrap-in-lib) — sender is only taken in join(), which consumes self
            let sender = worker.sender.as_ref().expect("sender lives until join");
            if sender.send(Msg::Stats(tx)).is_err() {
                worker.dead = true;
                continue;
            }
            replies.push(rx);
        }
        let mut stats = DecisionStats::default();
        for rx in replies {
            if let Ok(shard) = rx.recv() {
                stats.merge(&shard);
            }
        }
        stats
    }

    /// Flushes every batch, closes the channels, drains every engine
    /// (finishing all live sessions) and joins the worker threads.
    /// Healthy shards come back as [`ShardOutput`]s; panicked shards as
    /// [`ShardFailure`]s naming every track that was routed to them.
    pub fn join(mut self) -> FleetJoin<S> {
        let batch_points = self.batch_points;
        let mut shards = Vec::new();
        let mut failures = Vec::new();
        for (shard, mut worker) in self.workers.drain(..).enumerate() {
            worker.flush(batch_points);
            drop(worker.sender.take()); // closes the channel: worker drains and exits
                                        // bqs-analyze: allow(no-unwrap-in-lib) — invariant: join consumes the handle
            let handle = worker.handle.take().expect("join consumes the handle");
            match handle.join() {
                Ok(output) => shards.push(ShardOutput {
                    shard,
                    reports: output.reports,
                    stats: output.stats,
                    sink: output.sink,
                }),
                Err(panic) => {
                    let mut tracks: Vec<TrackId> = worker.tracks.iter().copied().collect();
                    tracks.sort_unstable();
                    failures.push(ShardFailure {
                        shard,
                        panic: panic_message(panic.as_ref()),
                        tracks,
                        submitted_points: worker.submitted_points,
                    });
                }
            }
        }
        let mut stats = DecisionStats::default();
        for s in &shards {
            stats.merge(&s.stats);
        }
        FleetJoin {
            shards,
            failures,
            stats,
        }
    }
}

impl<S> Drop for ParallelFleet<S> {
    fn drop(&mut self) {
        // `join` drains `workers`, so this only runs for a fleet dropped
        // without joining: close the channels and reap the threads (their
        // panics, if any, are swallowed — use `join` to observe them).
        for worker in &mut self.workers {
            drop(worker.sender.take());
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BqsConfig;
    use crate::fbqs::FastBqsCompressor;
    use crate::stream::{compress_all, Sink};
    use std::collections::{BTreeSet, HashMap};

    fn wave(track: u64, n: usize) -> Vec<TimedPoint> {
        (0..n)
            .map(|i| {
                let a = i as f64;
                TimedPoint::new(
                    a * 8.0 + track as f64,
                    (a * 0.21 + track as f64).sin() * 25.0,
                    a * 60.0,
                )
            })
            .collect()
    }

    fn parallel(
        workers: usize,
        tolerance: f64,
    ) -> ParallelFleet<HashMap<TrackId, Vec<TimedPoint>>> {
        let config = BqsConfig::new(tolerance).unwrap();
        ParallelFleet::new(
            ParallelConfig {
                workers,
                batch_points: 7, // deliberately awkward: exercises partial batches
                channel_batches: 2,
                fleet: FleetConfig::default(),
            },
            move || FastBqsCompressor::new(config),
            |_| HashMap::new(),
        )
    }

    fn merged(
        join: FleetJoin<HashMap<TrackId, Vec<TimedPoint>>>,
    ) -> HashMap<TrackId, Vec<TimedPoint>> {
        let mut all = HashMap::new();
        for shard in join.shards {
            for (track, points) in shard.sink {
                assert!(
                    all.insert(track, points).is_none(),
                    "track split across shards"
                );
            }
        }
        all
    }

    #[test]
    fn parallel_output_equals_solo_compression_for_any_worker_count() {
        let traces: Vec<Vec<TimedPoint>> = (0..12).map(|t| wave(t, 150)).collect();
        for workers in [1, 2, 3, 8] {
            let mut fleet = parallel(workers, 10.0);
            for i in 0..150 {
                for (t, trace) in traces.iter().enumerate() {
                    fleet.push(t as u64, trace[i]);
                }
            }
            let join = fleet.join();
            assert!(join.is_ok());
            let all = merged(join);
            let config = BqsConfig::new(10.0).unwrap();
            for (t, trace) in traces.iter().enumerate() {
                let mut solo = FastBqsCompressor::new(config);
                let expected = compress_all(&mut solo, trace.iter().copied());
                assert_eq!(all[&(t as u64)], expected, "track {t} / {workers} workers");
            }
        }
    }

    #[test]
    fn join_reports_every_session_sorted_by_shard_then_track() {
        let mut fleet = parallel(4, 10.0);
        for t in (0..40u64).rev() {
            for p in wave(t, 30) {
                fleet.push(t, p);
            }
        }
        let join = fleet.join();
        let reports = join.session_reports();
        assert_eq!(reports.len(), 40);
        let keys: Vec<(usize, TrackId)> = reports.iter().map(|(s, r)| (*s, r.track)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        assert!(reports.iter().all(|(_, r)| r.points == 30));
        assert_eq!(join.stats.points, 40 * 30);
    }

    #[test]
    fn eviction_runs_after_prior_points_and_reports_at_join() {
        let config = BqsConfig::new(10.0).unwrap();
        let mut fleet = ParallelFleet::new(
            ParallelConfig {
                workers: 2,
                batch_points: 4,
                channel_batches: 2,
                fleet: FleetConfig {
                    idle_timeout: 100.0,
                    ..FleetConfig::default()
                },
            },
            move || FastBqsCompressor::new(config),
            |_| HashMap::<TrackId, Vec<TimedPoint>>::new(),
        );
        // Track 0 stops at t=300; track 1 runs to t=3000.
        for p in wave(0, 6) {
            fleet.push(0, p);
        }
        for p in wave(1, 51) {
            fleet.push(1, p);
        }
        fleet.evict_idle(3000.0);
        let join = fleet.join();
        let reports = join.session_reports();
        assert_eq!(reports.len(), 2);
        let evicted: Vec<TrackId> = reports
            .iter()
            .filter(|(_, r)| r.reason == super::super::FlushReason::Evicted)
            .map(|(_, r)| r.track)
            .collect();
        assert_eq!(evicted, vec![0]);
        // Evicted output still matches solo compression of the prefix.
        let all = merged(join);
        let mut solo = FastBqsCompressor::new(config);
        let expected = compress_all(&mut solo, wave(0, 6));
        assert_eq!(all[&0], expected);
    }

    /// A compressor that panics on a poison coordinate — the fault model
    /// for shard-isolation tests.
    #[derive(Clone)]
    struct Poisonable(FastBqsCompressor);

    impl StreamCompressor for Poisonable {
        fn push(&mut self, p: TimedPoint, out: &mut dyn Sink) {
            assert!(p.pos.x.is_finite(), "poison point");
            self.0.push(p, out);
        }
        fn finish(&mut self, out: &mut dyn Sink) {
            self.0.finish(out);
        }
        fn name(&self) -> &'static str {
            "poisonable-fbqs"
        }
    }

    impl HasDecisionStats for Poisonable {
        fn decision_stats(&self) -> DecisionStats {
            self.0.decision_stats()
        }
    }

    #[test]
    fn a_panicking_worker_poisons_only_its_own_shard() {
        let config = BqsConfig::new(10.0).unwrap();
        let mut fleet = ParallelFleet::new(
            ParallelConfig {
                workers: 4,
                batch_points: 4,
                channel_batches: 2,
                fleet: FleetConfig::default(),
            },
            move || Poisonable(FastBqsCompressor::new(config)),
            |_| HashMap::<TrackId, Vec<TimedPoint>>::new(),
        );
        let poisoned_track = 5u64;
        let poisoned_shard = fleet.shard_of(poisoned_track);
        let traces: Vec<Vec<TimedPoint>> = (0..16).map(|t| wave(t, 60)).collect();
        for i in 0..60 {
            for (t, trace) in traces.iter().enumerate() {
                fleet.push(t as u64, trace[i]);
            }
            if i == 20 {
                fleet.push(poisoned_track, TimedPoint::new(f64::NAN, 0.0, 1e9));
                fleet.flush(); // make sure the poison is delivered promptly
            }
        }
        let join = fleet.join();
        assert_eq!(join.failures.len(), 1);
        let failure = &join.failures[0];
        assert_eq!(failure.shard, poisoned_shard);
        assert!(failure.tracks.contains(&poisoned_track));
        assert!(failure.panic.contains("poison"), "{}", failure.panic);
        // The loss report is exact: every point routed to the shard over
        // the run, and the track list comes out sorted.
        let routed: u64 = failure
            .tracks
            .iter()
            .map(|t| if *t == poisoned_track { 61 } else { 60 })
            .sum();
        assert_eq!(failure.submitted_points, routed);
        assert!(failure.tracks.windows(2).all(|w| w[0] < w[1]));
        // Healthy shards: every surviving track equals solo compression.
        let lost: BTreeSet<TrackId> = failure.tracks.iter().copied().collect();
        let all = merged(join);
        for (t, trace) in traces.iter().enumerate() {
            let t = t as u64;
            if lost.contains(&t) {
                assert!(!all.contains_key(&t));
                continue;
            }
            let mut solo = FastBqsCompressor::new(config);
            let expected = compress_all(&mut solo, trace.iter().copied());
            assert_eq!(all[&t], expected, "surviving track {t}");
        }
        // Lost sessions + surviving sessions cover the whole fleet.
        assert_eq!(lost.len() + all.len(), 16);
    }

    #[test]
    fn submit_run_equals_per_point_push_byte_for_byte() {
        let traces: Vec<Vec<TimedPoint>> = (0..12).map(|t| wave(t, 150)).collect();
        for workers in [1, 3, 4] {
            // Reference: the per-point path.
            let mut pushed = parallel(workers, 10.0);
            for (t, trace) in traces.iter().enumerate() {
                for p in trace {
                    pushed.push(t as u64, *p);
                }
            }
            let expected = merged(pushed.join());

            // Runs submitted frame by frame, interleaved across tracks.
            let mut batched = parallel(workers, 10.0);
            let chunk = 13usize; // awkward on purpose: partial tail runs
            let mut offset = 0usize;
            while offset < 150 {
                batched.submit_batch(traces.iter().enumerate().map(|(t, trace)| {
                    let end = (offset + chunk).min(trace.len());
                    (t as u64, trace[offset..end].to_vec())
                }));
                offset += chunk;
            }
            assert_eq!(merged(batched.join()), expected, "{workers} workers");
        }
    }

    #[test]
    fn submit_run_interleaves_correctly_with_push() {
        let trace = wave(5, 120);
        let mut fleet = parallel(2, 10.0);
        // Alternate the two submission paths on one track: order must hold.
        fleet.push(5, trace[0]);
        fleet.push(5, trace[1]);
        fleet.submit_run(5, trace[2..60].to_vec());
        fleet.push(5, trace[60]);
        fleet.submit_run(5, trace[61..].to_vec());
        let counters = fleet.shard_counters();
        assert_eq!(
            counters.iter().map(|c| c.submitted_points).sum::<u64>(),
            120
        );
        let all = merged(fleet.join());
        let config = BqsConfig::new(10.0).unwrap();
        let mut solo = FastBqsCompressor::new(config);
        let expected = compress_all(&mut solo, trace.iter().copied());
        assert_eq!(all[&5], expected);
    }

    #[test]
    fn empty_runs_only_touch_the_counters() {
        let mut fleet = parallel(2, 10.0);
        fleet.submit_run(9, Vec::new());
        let counters = fleet.shard_counters();
        assert_eq!(counters.iter().map(|c| c.tracks).sum::<usize>(), 1);
        assert_eq!(counters.iter().map(|c| c.submitted_points).sum::<u64>(), 0);
        let join = fleet.join();
        assert!(join.is_ok());
        // The track was never delivered, so no session ever opened.
        assert!(join.session_reports().is_empty());
    }

    #[test]
    fn worker_routing_is_uncorrelated_with_engine_session_shards() {
        // 4 workers, 16 engine shards: the tracks routed to one worker
        // must still spread across (nearly) all of that worker's engine
        // shards — routing on the same bits would pin them to 4 of 16.
        let workers = 4usize;
        let engine_mask = 15u64;
        let mut shards_seen: Vec<HashSet<u64>> = vec![HashSet::new(); workers];
        for track in 0..2_000u64 {
            shards_seen[worker_of(track, workers)].insert(track_hash(track) & engine_mask);
        }
        for (k, seen) in shards_seen.iter().enumerate() {
            assert!(
                seen.len() >= 12,
                "worker {k} maps onto only {} of 16 engine shards",
                seen.len()
            );
        }
    }

    #[test]
    fn snapshot_sees_every_submitted_point_and_leaves_the_run_unchanged() {
        let traces: Vec<Vec<TimedPoint>> = (0..10).map(|t| wave(t, 100)).collect();
        let mut fleet = parallel(4, 10.0);
        for i in 0..60 {
            for (t, trace) in traces.iter().enumerate() {
                fleet.push(t as u64, trace[i]);
            }
        }
        let snap = fleet.snapshot();
        assert_eq!(snap.len(), 10);
        let config = BqsConfig::new(10.0).unwrap();
        for (t, trace) in traces.iter().enumerate() {
            let mut solo = FastBqsCompressor::new(config);
            let expected = compress_all(&mut solo, trace[..60].iter().copied());
            assert_eq!(
                snap.track(t as u64).unwrap().points(),
                expected,
                "track {t}"
            );
        }
        // The rest of the run is unaffected by having been observed.
        for i in 60..100 {
            for (t, trace) in traces.iter().enumerate() {
                fleet.push(t as u64, trace[i]);
            }
        }
        let all = merged(fleet.join());
        for (t, trace) in traces.iter().enumerate() {
            let mut solo = FastBqsCompressor::new(config);
            let expected = compress_all(&mut solo, trace.iter().copied());
            assert_eq!(all[&(t as u64)], expected, "track {t}");
        }
    }

    #[test]
    fn live_stats_and_shard_counters_observe_the_run_in_flight() {
        let traces: Vec<Vec<TimedPoint>> = (0..10).map(|t| wave(t, 80)).collect();
        let mut fleet = parallel(4, 10.0);
        for i in 0..80 {
            for (t, trace) in traces.iter().enumerate() {
                fleet.push(t as u64, trace[i]);
            }
        }
        // Every submitted point is visible to a mid-run stats merge…
        let stats = fleet.live_stats();
        assert_eq!(stats.points, 10 * 80);
        // …and the submission-side counters agree exactly.
        let counters = fleet.shard_counters();
        assert_eq!(counters.len(), 4);
        assert_eq!(
            counters.iter().map(|c| c.submitted_points).sum::<u64>(),
            10 * 80
        );
        assert_eq!(counters.iter().map(|c| c.tracks).sum::<usize>(), 10);
        assert!(counters.iter().all(|c| !c.dead));
        assert!(counters.iter().enumerate().all(|(i, c)| c.shard == i));
        // Observing the run changes nothing: the final merge matches.
        let join = fleet.join();
        assert_eq!(join.stats.points, 10 * 80);
    }

    #[test]
    fn live_stats_skips_dead_shards_instead_of_hanging() {
        let config = BqsConfig::new(10.0).unwrap();
        let mut fleet = ParallelFleet::new(
            ParallelConfig {
                workers: 2,
                batch_points: 2,
                channel_batches: 2,
                fleet: FleetConfig::default(),
            },
            move || Poisonable(FastBqsCompressor::new(config)),
            |_| HashMap::<TrackId, Vec<TimedPoint>>::new(),
        );
        for t in 0..6u64 {
            for p in wave(t, 20) {
                fleet.push(t, p);
            }
        }
        let poisoned_shard = fleet.shard_of(0);
        fleet.push(0, TimedPoint::new(f64::NAN, 0.0, 1e9));
        fleet.flush();
        // Give the worker a moment to hit the poison and die; the stats
        // call itself must not hang or panic either way.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let stats = fleet.live_stats();
        assert!(stats.points > 0, "healthy shards still report");
        let join = fleet.join();
        assert_eq!(join.failures.len(), 1);
        assert_eq!(join.failures[0].shard, poisoned_shard);
    }

    #[test]
    fn drop_without_join_reaps_the_threads() {
        let mut fleet = parallel(3, 10.0);
        for t in 0..9u64 {
            for p in wave(t, 25) {
                fleet.push(t, p);
            }
        }
        drop(fleet); // must not hang or leak
    }

    #[test]
    fn empty_fleet_joins_cleanly() {
        let join = parallel(2, 10.0).join();
        assert!(join.is_ok());
        assert_eq!(join.shards.len(), 2);
        assert!(join.session_reports().is_empty());
        assert_eq!(join.stats, DecisionStats::default());
    }

    #[test]
    fn backpressure_blocks_instead_of_buffering_unboundedly() {
        // A tiny channel with a slow consumer: correctness under
        // saturation, and sent batches are bounded by channel capacity.
        let config = BqsConfig::new(5.0).unwrap();
        let mut fleet = ParallelFleet::new(
            ParallelConfig {
                workers: 1,
                batch_points: 2,
                channel_batches: 1,
                fleet: FleetConfig::default(),
            },
            move || FastBqsCompressor::new(config),
            |_| HashMap::<TrackId, Vec<TimedPoint>>::new(),
        );
        let trace = wave(3, 500);
        for p in &trace {
            fleet.push(3, *p);
        }
        let join = fleet.join();
        let all = merged(join);
        let mut solo = FastBqsCompressor::new(config);
        let expected = compress_all(&mut solo, trace);
        assert_eq!(all[&3], expected);
    }
}
