//! Segment-local frames and data-centric rotation (paper §V-D).
//!
//! Every trajectory segment owns a local coordinate frame centred at its
//! start point. With data-centric rotation enabled, the frame's x axis is
//! rotated onto the direction from the start point to the centroid of the
//! first few "effective" points (those outside the tolerance ball), so that
//! subsequent points straddle the axis and split across two quadrants —
//! which keeps the bounding hulls narrow and the deviation bounds tight.

use bqs_geo::{Point2, Rot2, Vec2};

/// A segment-local frame: translation to the segment start plus an optional
/// rotation fixed after the warm-up.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentFrame {
    origin: Point2,
    rot: Rot2,
    fixed: bool,
}

impl SegmentFrame {
    /// A frame with the identity rotation, fixed immediately (rotation
    /// disabled).
    pub fn axis_aligned(origin: Point2) -> SegmentFrame {
        SegmentFrame {
            origin,
            rot: Rot2::IDENTITY,
            fixed: true,
        }
    }

    /// A frame awaiting data-centric rotation: not usable for quadrant
    /// operations until [`SegmentFrame::fix_rotation`] is called.
    pub fn awaiting_rotation(origin: Point2) -> SegmentFrame {
        SegmentFrame {
            origin,
            rot: Rot2::IDENTITY,
            fixed: false,
        }
    }

    /// The segment start point in world coordinates.
    #[inline]
    pub fn origin(&self) -> Point2 {
        self.origin
    }

    /// Whether the rotation has been fixed.
    #[inline]
    pub fn is_fixed(&self) -> bool {
        self.fixed
    }

    /// The rotation applied to world displacements.
    #[inline]
    pub fn rotation(&self) -> Rot2 {
        self.rot
    }

    /// Fixes the rotation so the direction from the origin to `centroid`
    /// maps onto the +x axis. A centroid coincident with the origin leaves
    /// the frame axis-aligned.
    pub fn fix_rotation(&mut self, centroid: Point2) {
        self.rot = Rot2::aligning_to_x(centroid - self.origin);
        self.fixed = true;
    }

    /// Maps a world point into the local frame.
    #[inline]
    pub fn to_local(&self, p: Point2) -> Point2 {
        Point2::from_vec(self.rot.apply_vec(p - self.origin))
    }

    /// Maps a local point back to world coordinates.
    #[inline]
    pub fn to_world(&self, p: Point2) -> Point2 {
        self.origin + self.rot.inverse().apply_vec(p.to_vec())
    }

    /// Centroid of a slice of world points (used on the warm-up buffer).
    pub fn centroid(points: &[Point2]) -> Option<Point2> {
        if points.is_empty() {
            return None;
        }
        let mut acc = Vec2::ZERO;
        for p in points {
            acc += p.to_vec();
        }
        Some(Point2::from_vec(acc / points.len() as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_aligned_round_trip() {
        let f = SegmentFrame::axis_aligned(Point2::new(100.0, -50.0));
        assert!(f.is_fixed());
        let p = Point2::new(103.0, -46.0);
        let local = f.to_local(p);
        assert_eq!(local, Point2::new(3.0, 4.0));
        assert!(f.to_world(local).distance(p) < 1e-12);
    }

    #[test]
    fn rotation_puts_centroid_direction_on_x_axis() {
        let origin = Point2::new(10.0, 10.0);
        let mut f = SegmentFrame::awaiting_rotation(origin);
        assert!(!f.is_fixed());
        let pts = [Point2::new(13.0, 14.0), Point2::new(17.0, 13.0)];
        let centroid = SegmentFrame::centroid(&pts).unwrap();
        f.fix_rotation(centroid);
        assert!(f.is_fixed());
        let local_centroid = f.to_local(centroid);
        assert!(local_centroid.y.abs() < 1e-12);
        assert!(local_centroid.x > 0.0);
    }

    #[test]
    fn rotation_preserves_distances() {
        let origin = Point2::new(-5.0, 3.0);
        let mut f = SegmentFrame::awaiting_rotation(origin);
        f.fix_rotation(Point2::new(7.0, 8.0));
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(-3.0, 9.0);
        assert!((f.to_local(a).distance(f.to_local(b)) - a.distance(b)).abs() < 1e-12);
        // Origin maps to the local origin.
        assert!(f.to_local(origin).distance(Point2::ORIGIN) < 1e-12);
    }

    #[test]
    fn degenerate_centroid_keeps_identity() {
        let origin = Point2::new(2.0, 2.0);
        let mut f = SegmentFrame::awaiting_rotation(origin);
        f.fix_rotation(origin); // centroid == origin
        assert!(f.is_fixed());
        assert_eq!(f.to_local(Point2::new(3.0, 2.0)), Point2::new(1.0, 0.0));
    }

    #[test]
    fn centroid_of_points() {
        assert_eq!(SegmentFrame::centroid(&[]), None);
        let c = SegmentFrame::centroid(&[
            Point2::new(0.0, 0.0),
            Point2::new(2.0, 4.0),
            Point2::new(4.0, 2.0),
        ])
        .unwrap();
        assert_eq!(c, Point2::new(2.0, 2.0));
    }

    #[test]
    fn world_round_trip_with_rotation() {
        let mut f = SegmentFrame::awaiting_rotation(Point2::new(1.0, 1.0));
        f.fix_rotation(Point2::new(4.0, 5.0));
        for p in [
            Point2::new(0.0, 0.0),
            Point2::new(10.0, -3.0),
            Point2::new(1.0, 1.0),
        ] {
            assert!(f.to_world(f.to_local(p)).distance(p) < 1e-12);
        }
    }
}
