//! Deviation bound pairs and small helpers shared by the bound theorems.

use serde::{Deserialize, Serialize};

/// A pair `⟨d_lb, d_ub⟩` bounding the maximum deviation of a point set from
/// the current path line (paper §V-A step 5).
///
/// Invariant maintained by constructors: `lower ≤ upper`, both non-negative
/// and finite (a quadrant with no points contributes `EMPTY`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviationBounds {
    /// Smallest the maximum deviation can be.
    pub lower: f64,
    /// Largest the maximum deviation can be.
    pub upper: f64,
}

impl DeviationBounds {
    /// Bounds of an empty point set: deviation is exactly zero.
    pub const EMPTY: DeviationBounds = DeviationBounds {
        lower: 0.0,
        upper: 0.0,
    };

    /// Creates a bound pair, clamping the lower bound to the upper.
    ///
    /// The lower-bound formulas of Theorems 5.3–5.5 are heuristically tight
    /// and can in rare geometries exceed a sound upper bound; clamping keeps
    /// the pair consistent without affecting decision soundness (the upper
    /// bound is checked first by the compressors).
    #[inline]
    pub fn new(lower: f64, upper: f64) -> DeviationBounds {
        DeviationBounds {
            lower: lower.min(upper),
            upper,
        }
    }

    /// Merges bounds from two point sets: the combined maximum deviation is
    /// at least the larger lower bound and at most the larger upper bound
    /// (Algorithm 1 line 5 aggregation).
    #[inline]
    pub fn merge(self, other: DeviationBounds) -> DeviationBounds {
        DeviationBounds {
            lower: self.lower.max(other.lower),
            upper: self.upper.max(other.upper),
        }
    }

    /// Width of the gap between the bounds — the Fig. 3 tightness measure.
    #[inline]
    pub fn gap(self) -> f64 {
        self.upper - self.lower
    }

    /// True when the pair decides an inclusion/cut outcome for tolerance `d`
    /// without a full deviation computation.
    #[inline]
    pub fn is_conclusive(self, tolerance: f64) -> bool {
        self.upper <= tolerance || self.lower > tolerance
    }
}

/// Third-largest of four values (Theorem 5.5's corner lower bound).
#[inline]
pub fn third_largest(mut v: [f64; 4]) -> f64 {
    // Full sort of 4 elements is fine here; this is not on the hot path
    // relative to the distance computations that feed it.
    v.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    v[2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_clamps_lower() {
        let b = DeviationBounds::new(5.0, 3.0);
        assert_eq!(b.lower, 3.0);
        assert_eq!(b.upper, 3.0);
        let b = DeviationBounds::new(1.0, 3.0);
        assert_eq!(b.lower, 1.0);
    }

    #[test]
    fn merge_takes_maxima() {
        let a = DeviationBounds::new(1.0, 5.0);
        let b = DeviationBounds::new(2.0, 3.0);
        let m = a.merge(b);
        assert_eq!(m.lower, 2.0);
        assert_eq!(m.upper, 5.0);
    }

    #[test]
    fn conclusiveness() {
        assert!(DeviationBounds::new(0.0, 4.0).is_conclusive(5.0)); // include
        assert!(DeviationBounds::new(6.0, 9.0).is_conclusive(5.0)); // cut
        assert!(!DeviationBounds::new(3.0, 7.0).is_conclusive(5.0)); // uncertain
                                                                     // Boundary semantics: upper == d is an include; lower == d is uncertain.
        assert!(DeviationBounds::new(1.0, 5.0).is_conclusive(5.0));
        assert!(!DeviationBounds::new(5.0, 6.0).is_conclusive(5.0));
    }

    #[test]
    fn third_largest_of_four() {
        assert_eq!(third_largest([1.0, 2.0, 3.0, 4.0]), 2.0);
        assert_eq!(third_largest([4.0, 3.0, 2.0, 1.0]), 2.0);
        assert_eq!(third_largest([5.0, 5.0, 5.0, 5.0]), 5.0);
        assert_eq!(third_largest([0.0, 10.0, 0.0, 10.0]), 0.0);
    }

    #[test]
    fn empty_bounds() {
        assert_eq!(DeviationBounds::EMPTY.gap(), 0.0);
        assert!(DeviationBounds::EMPTY.is_conclusive(0.1));
    }
}
