//! The per-quadrant bounding structure (paper §V-B).
//!
//! Each quadrant of the segment-local frame carries a minimum bounding
//! rectangle of the points that fell into it plus the two angular bounding
//! lines — the rays from the origin at the smallest and greatest angle of
//! any point. The (at most 8) *significant points* are the box corners and
//! the intersections of the bounding rays with the box; Theorems 5.2–5.5
//! derive deviation bounds from their distances to the current path line.
//!
//! Everything here operates in the **segment-local frame**: the origin is
//! the segment start point and, when data-centric rotation is active, the
//! x axis points at the centroid of the warm-up points.

use crate::bounds::{third_largest, DeviationBounds};
use crate::config::BoundsMode;
use crate::metrics::DeviationMetric;
use bqs_geo::rect::RayHits;
use bqs_geo::{Point2, Quadrant, Rect};

/// Bounding state for one quadrant of the current trajectory segment.
#[derive(Debug, Clone, PartialEq)]
pub struct QuadrantBounds {
    quadrant: Quadrant,
    bbox: Rect,
    /// Smallest `atan2` angle of any inserted point. Within one quadrant the
    /// `atan2` range is contiguous, so plain min/max ordering is safe.
    theta_min: f64,
    /// Greatest `atan2` angle of any inserted point.
    theta_max: f64,
    count: usize,
    /// Cached significant points. They depend only on the box and the
    /// angular range, both of which change only on insertion — while every
    /// incoming stream point triggers a bounds evaluation. Caching moves
    /// the trigonometry (ray construction, intersections) off the decision
    /// hot path entirely.
    cache: SignificantPoints,
    /// Cached near/far corners w.r.t. the origin (same invalidation rule).
    near_corner: Point2,
    far_corner: Point2,
}

/// The significant points of one quadrant: box corners plus the bounding
/// rays' entry/exit intersections with the box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignificantPoints {
    /// The four bounding-box corners (`c1..c4`, counter-clockwise from the
    /// min corner).
    pub corners: [Point2; 4],
    /// Intersections `l1, l2` of the lower bounding ray with the box.
    pub lower: RayHits,
    /// Intersections `u1, u2` of the upper bounding ray with the box.
    pub upper: RayHits,
}

impl QuadrantBounds {
    /// Creates the structure from the first point inserted into `quadrant`.
    ///
    /// The point must actually lie in the quadrant (callers classify with
    /// [`Quadrant::of`] on the local coordinates).
    pub fn new(quadrant: Quadrant, p: Point2) -> QuadrantBounds {
        let theta = p.to_vec().angle();
        let mut q = QuadrantBounds {
            quadrant,
            bbox: Rect::from_point(p),
            theta_min: theta,
            theta_max: theta,
            count: 1,
            cache: SignificantPoints {
                corners: [p; 4],
                lower: RayHits::default(),
                upper: RayHits::default(),
            },
            near_corner: p,
            far_corner: p,
        };
        q.refresh_cache();
        q
    }

    /// Recomputes the cached significant points after a structural change.
    fn refresh_cache(&mut self) {
        self.cache = SignificantPoints {
            corners: self.bbox.corners(),
            lower: self.bbox.ray_intersections(Point2::ORIGIN, self.theta_min),
            upper: self.bbox.ray_intersections(Point2::ORIGIN, self.theta_max),
        };
        self.near_corner = self.bbox.nearest_corner_to(Point2::ORIGIN);
        self.far_corner = self.bbox.farthest_corner_to(Point2::ORIGIN);
    }

    /// Which quadrant this structure bounds.
    #[inline]
    pub fn quadrant(&self) -> Quadrant {
        self.quadrant
    }

    /// Number of points inserted.
    #[inline]
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when no point has been inserted (never the case for a
    /// constructed value, but part of the collection-like API).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The minimum bounding rectangle.
    #[inline]
    pub fn bbox(&self) -> &Rect {
        &self.bbox
    }

    /// The angular range `[theta_min, theta_max]` of inserted points.
    #[inline]
    pub fn angle_range(&self) -> (f64, f64) {
        (self.theta_min, self.theta_max)
    }

    /// Inserts a point, growing the box and widening the angular range.
    pub fn insert(&mut self, p: Point2) {
        debug_assert_eq!(
            Quadrant::of(p.x, p.y),
            self.quadrant,
            "point {p:?} inserted into wrong quadrant"
        );
        self.bbox.expand(p);
        let theta = p.to_vec().angle();
        if theta < self.theta_min {
            self.theta_min = theta;
        }
        if theta > self.theta_max {
            self.theta_max = theta;
        }
        self.count += 1;
        self.refresh_cache();
    }

    /// Computes the significant points: the box corners and the bounding
    /// rays' intersections with the box.
    ///
    /// The rays emanate from the origin and each passes through at least one
    /// inserted point inside the box, so each has at least one intersection.
    pub fn significant_points(&self) -> SignificantPoints {
        self.cache
    }

    /// Lower/upper bounds on the maximum deviation of the points bounded by
    /// this quadrant system from the chord `origin → end` (Theorems
    /// 5.3–5.5; `end` in segment-local coordinates).
    pub fn deviation_bounds(
        &self,
        end: Point2,
        metric: DeviationMetric,
        mode: BoundsMode,
    ) -> DeviationBounds {
        let sp = self.significant_points();
        let dist = |p: Point2| metric.distance(p, Point2::ORIGIN, end);

        let corner_d = [
            dist(sp.corners[0]),
            dist(sp.corners[1]),
            dist(sp.corners[2]),
            dist(sp.corners[3]),
        ];
        let min_over = |hits: &RayHits| hits.iter().map(dist).fold(f64::INFINITY, f64::min);
        let max_over = |hits: &RayHits| hits.iter().map(dist).fold(0.0, f64::max);

        // Ray lower bounds: each bounding ray carries at least one real
        // point between its box entry and exit, whose deviation is at least
        // the smaller of the two intersection distances (for non-crossing
        // chords; see DESIGN.md for the crossing caveat — a too-high lower
        // bound can only cause an early cut, never an error-bound breach).
        let lb_lower_ray = min_over(&sp.lower);
        let lb_upper_ray = min_over(&sp.upper);

        let theta_end = (end - Point2::ORIGIN).angle();
        let line_in_quadrant = self.quadrant.contains_line_angle(theta_end);

        let lower = if line_in_quadrant {
            // Theorems 5.3/5.4 share the lower bound: ray minima plus the
            // larger of the near/far corner distances.
            let near = dist(self.near_corner);
            let far = dist(self.far_corner);
            lb_lower_ray.max(lb_upper_ray).max(near.max(far))
        } else {
            // Theorem 5.5: ray minima plus the third-largest corner distance.
            lb_lower_ray.max(lb_upper_ray).max(third_largest(corner_d))
        };

        if mode == BoundsMode::CoarseCorners {
            return self.coarse_bounds(end, metric);
        }

        let upper = match mode {
            BoundsMode::Sound | BoundsMode::CoarseCorners => self.sound_upper(&sp, corner_d, dist),
            BoundsMode::PaperExact => {
                if line_in_quadrant {
                    // Theorem 5.3/5.4: max over intersection distances; the
                    // Eq. 11 segment-metric variant adds the near/far corners.
                    let mut ub = max_over(&sp.lower).max(max_over(&sp.upper));
                    if metric == DeviationMetric::PointToSegment {
                        ub = ub.max(dist(self.near_corner)).max(dist(self.far_corner));
                    }
                    ub
                } else {
                    // Theorem 5.5: max over corner distances.
                    corner_d.iter().fold(0.0f64, |a, b| a.max(*b))
                }
            }
        };

        DeviationBounds::new(lower, upper)
    }

    /// Provably sound upper bound: every inserted point lies in the convex
    /// region `bbox ∩ wedge[theta_min, theta_max]`, whose extreme points are
    /// the ray/box intersections plus the box corners angularly inside the
    /// wedge. Distance to a line (or segment) is convex, so its maximum over
    /// the region is attained at one of those ≤ 8 vertices.
    fn sound_upper(
        &self,
        sp: &SignificantPoints,
        corner_d: [f64; 4],
        dist: impl Fn(Point2) -> f64,
    ) -> f64 {
        let mut ub = 0.0f64;
        for p in sp.lower.iter().chain(sp.upper.iter()) {
            ub = ub.max(dist(p));
        }
        for (c, d) in sp.corners.iter().zip(corner_d.iter()) {
            let theta = c.to_vec().angle();
            // Within one quadrant atan2 is contiguous, so a plain interval
            // test suffices. A small slack absorbs corner/axis round-off.
            if theta >= self.theta_min - 1e-12 && theta <= self.theta_max + 1e-12 {
                ub = ub.max(*d);
            }
        }
        ub
    }

    /// The tight vertex set of the convex region guaranteed to contain all
    /// inserted points (`bbox ∩ wedge`): the bounding rays' box
    /// intersections plus the box corners angularly inside the wedge, and
    /// the origin when the box reaches it. At most 9 points; their convex
    /// hull contains every inserted point, which is what makes the
    /// re-rotation rebuild in the engine sound.
    pub fn hull_vertices(&self) -> Vec<Point2> {
        let sp = self.significant_points();
        let mut out: Vec<Point2> = Vec::with_capacity(9);
        out.extend(sp.lower.iter());
        out.extend(sp.upper.iter());
        for c in sp.corners {
            let theta = c.to_vec().angle();
            if theta >= self.theta_min - 1e-12 && theta <= self.theta_max + 1e-12 {
                out.push(c);
            }
        }
        if self.bbox.contains(Point2::ORIGIN) {
            out.push(Point2::ORIGIN);
        }
        out
    }

    /// Coarse Theorem 5.2 bounds (corner distances only), kept for the
    /// ablation comparing bound tiers.
    pub fn coarse_bounds(&self, end: Point2, metric: DeviationMetric) -> DeviationBounds {
        let dist = |p: Point2| metric.distance(p, Point2::ORIGIN, end);
        let ds = self.bbox.corners().map(dist);
        let lower = ds.iter().fold(f64::INFINITY, |a, b| a.min(*b));
        let upper = ds.iter().fold(0.0f64, |a, b| a.max(*b));
        DeviationBounds::new(lower, upper)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqs_geo::point_to_line_distance;

    fn metric() -> DeviationMetric {
        DeviationMetric::PointToLine
    }

    /// Brute-force maximum deviation for cross-checking bounds.
    fn brute_max(points: &[Point2], end: Point2) -> f64 {
        points
            .iter()
            .map(|p| point_to_line_distance(*p, Point2::ORIGIN, end))
            .fold(0.0, f64::max)
    }

    fn build_q1(points: &[Point2]) -> QuadrantBounds {
        let mut q = QuadrantBounds::new(Quadrant::Q1, points[0]);
        for p in &points[1..] {
            q.insert(*p);
        }
        q
    }

    #[test]
    fn insert_tracks_box_and_angles() {
        let pts = [
            Point2::new(10.0, 2.0),
            Point2::new(4.0, 8.0),
            Point2::new(7.0, 5.0),
        ];
        let q = build_q1(&pts);
        assert_eq!(q.len(), 3);
        assert_eq!(q.bbox().min, Point2::new(4.0, 2.0));
        assert_eq!(q.bbox().max, Point2::new(10.0, 8.0));
        let (lo, hi) = q.angle_range();
        assert!((lo - (2.0f64 / 10.0).atan()).abs() < 1e-12);
        assert!((hi - (8.0f64 / 4.0).atan()).abs() < 1e-12);
    }

    #[test]
    fn significant_points_on_box_boundary() {
        let pts = [
            Point2::new(10.0, 2.0),
            Point2::new(4.0, 8.0),
            Point2::new(7.0, 5.0),
        ];
        let q = build_q1(&pts);
        let sp = q.significant_points();
        assert!(!sp.lower.is_empty());
        assert!(!sp.upper.is_empty());
        for p in sp.lower.iter().chain(sp.upper.iter()) {
            let r = q.bbox();
            let on_x = (p.x - r.min.x).abs() < 1e-9 || (p.x - r.max.x).abs() < 1e-9;
            let on_y = (p.y - r.min.y).abs() < 1e-9 || (p.y - r.max.y).abs() < 1e-9;
            assert!(on_x || on_y);
        }
    }

    #[test]
    fn sound_upper_dominates_brute_force_line_in_quadrant() {
        let pts = [
            Point2::new(10.0, 2.0),
            Point2::new(4.0, 8.0),
            Point2::new(7.0, 5.0),
            Point2::new(9.0, 9.0),
        ];
        let q = build_q1(&pts);
        for end in [
            Point2::new(20.0, 6.0),   // in quadrant, between bounding lines
            Point2::new(20.0, 0.5),   // in quadrant, below lower bounding line
            Point2::new(1.0, 20.0),   // in quadrant, above upper bounding line
            Point2::new(-20.0, 6.0),  // not in quadrant (Q2 direction)
            Point2::new(-5.0, -20.0), // not in quadrant (Q3 direction)
        ] {
            let b = q.deviation_bounds(end, metric(), BoundsMode::Sound);
            let actual = brute_max(&pts, end);
            assert!(
                b.upper >= actual - 1e-9,
                "upper {} < actual {} for end {:?}",
                b.upper,
                actual,
                end
            );
            assert!(b.lower <= b.upper);
        }
    }

    #[test]
    fn bounds_tight_for_single_point() {
        let p = Point2::new(5.0, 3.0);
        let q = build_q1(&[p]);
        let end = Point2::new(10.0, 0.0);
        let b = q.deviation_bounds(end, metric(), BoundsMode::Sound);
        let actual = point_to_line_distance(p, Point2::ORIGIN, end);
        // Degenerate box = the point itself: bounds collapse onto the truth.
        assert!((b.upper - actual).abs() < 1e-9);
        assert!(b.lower <= actual + 1e-9);
    }

    #[test]
    fn coarse_bounds_contain_sound_bounds() {
        let pts = [
            Point2::new(10.0, 2.0),
            Point2::new(4.0, 8.0),
            Point2::new(9.0, 9.0),
        ];
        let q = build_q1(&pts);
        let end = Point2::new(20.0, 6.0);
        let sound = q.deviation_bounds(end, metric(), BoundsMode::Sound);
        let coarse = q.coarse_bounds(end, metric());
        let actual = brute_max(&pts, end);
        assert!(coarse.upper >= actual - 1e-9);
        // The wedge-clipped upper bound is never looser than the full box.
        assert!(sound.upper <= coarse.upper + 1e-9);
    }

    #[test]
    fn segment_metric_bounds_dominate() {
        let pts = [Point2::new(10.0, 2.0), Point2::new(4.0, 8.0)];
        let q = build_q1(&pts);
        // A short chord: the segment metric punishes points beyond its end.
        let end = Point2::new(1.0, 1.0);
        let b = q.deviation_bounds(end, DeviationMetric::PointToSegment, BoundsMode::Sound);
        let actual = pts
            .iter()
            .map(|p| DeviationMetric::PointToSegment.distance(*p, Point2::ORIGIN, end))
            .fold(0.0, f64::max);
        assert!(b.upper >= actual - 1e-9);
    }

    #[test]
    fn works_in_all_quadrants() {
        for quadrant in Quadrant::ALL {
            let (sx, sy) = quadrant.signs();
            let pts = [
                Point2::new(sx * 10.0, sy * 2.0),
                Point2::new(sx * 4.0, sy * 8.0),
                Point2::new(sx * 7.0, sy * 5.0),
            ];
            let mut q = QuadrantBounds::new(quadrant, pts[0]);
            for p in &pts[1..] {
                q.insert(*p);
            }
            for end in [
                Point2::new(sx * 20.0, sy * 6.0),
                Point2::new(-sx * 20.0, sy * 6.0),
                Point2::new(sx * 3.0, -sy * 15.0),
            ] {
                let b = q.deviation_bounds(end, metric(), BoundsMode::Sound);
                let actual = brute_max(&pts, end);
                assert!(
                    b.upper >= actual - 1e-9,
                    "quadrant {quadrant:?} end {end:?}: upper {} < actual {}",
                    b.upper,
                    actual
                );
            }
        }
    }

    #[test]
    fn paper_exact_mode_produces_bounds() {
        let pts = [
            Point2::new(10.0, 2.0),
            Point2::new(4.0, 8.0),
            Point2::new(9.0, 9.0),
        ];
        let q = build_q1(&pts);
        for end in [Point2::new(20.0, 6.0), Point2::new(-20.0, 6.0)] {
            let b = q.deviation_bounds(end, metric(), BoundsMode::PaperExact);
            assert!(b.lower <= b.upper);
            assert!(b.upper.is_finite());
        }
    }
}
