//! The streaming-compressor interface, the [`Sink`] emission layer, and
//! decision statistics.
//!
//! All compressors in this workspace — BQS, Fast BQS, and every baseline in
//! `bqs-baselines` — implement [`StreamCompressor`]: points are pushed one
//! at a time and kept (key) points are emitted into a caller-supplied
//! [`Sink`] as soon as they become final. This is the contract a
//! resource-constrained tracker needs: output can be written to flash
//! incrementally and the compressor never revisits it.
//!
//! ## Why a sink and not a `Vec`
//!
//! Early versions hard-coded `&mut Vec<TimedPoint>` as the output channel,
//! which forced every consumer to materialize the kept points even when it
//! only wanted a count (compression-rate sweeps), a running callback
//! (flash writers, network offload), or per-segment chords (the store).
//! [`Sink`] generalizes the channel while keeping the hot path
//! monomorphizable: `&mut Vec<TimedPoint>` coerces to `&mut dyn Sink`
//! unchanged at every existing call site, and the adapters below cover the
//! zero-allocation paths.
//!
//! * [`CountingSink`] — counts emissions; compresses a trace with **zero**
//!   output allocation.
//! * [`FnSink`] — invokes a callback per kept point (flash/radio writers).
//! * [`ChordSink`] — pairs consecutive kept points into segment chords
//!   (the shape store-style consumers ingest).
//! * [`PageSink`] — batches kept points into fixed-size pages, modelling a
//!   tracker's flash-page writes.
//! * [`LastSink`] — retains only the most recent kept point.
//! * [`TeeSink`] — duplicates emissions into two sinks.

use bqs_geo::TimedPoint;

/// A destination for finalised key points (or any other streamed item).
///
/// Implemented by `Vec<T>` (append) and by the adapters in this module.
/// Compressors write through `&mut dyn Sink`, so sinks must be
/// object-safe.
pub trait Sink<T = TimedPoint> {
    /// Accepts the next finalised item.
    fn push(&mut self, item: T);

    /// Optional capacity hint: the caller expects about `n` more items.
    /// Sinks that buffer may pre-reserve; the default does nothing.
    fn reserve_hint(&mut self, _n: usize) {}
}

impl<T> Sink<T> for Vec<T> {
    fn push(&mut self, item: T) {
        Vec::push(self, item);
    }

    fn reserve_hint(&mut self, n: usize) {
        self.reserve(n);
    }
}

/// Counts emitted items without storing them — the zero-allocation path
/// for compression-rate sweeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Number of items emitted so far.
    pub count: usize,
}

impl CountingSink {
    /// A fresh counter.
    pub fn new() -> CountingSink {
        CountingSink::default()
    }
}

impl<T> Sink<T> for CountingSink {
    fn push(&mut self, _item: T) {
        self.count += 1;
    }
}

/// Invokes a callback for every emitted item (flash writers, radio
/// offload, live dashboards).
#[derive(Debug)]
pub struct FnSink<F> {
    f: F,
}

impl<F> FnSink<F> {
    /// Wraps a callback.
    pub fn new(f: F) -> FnSink<F> {
        FnSink { f }
    }
}

impl<T, F: FnMut(T)> Sink<T> for FnSink<F> {
    fn push(&mut self, item: T) {
        (self.f)(item);
    }
}

/// Retains only the most recent emitted item.
#[derive(Debug, Clone, Copy, Default)]
pub struct LastSink<T> {
    /// The most recent item, if any was emitted.
    pub last: Option<T>,
    /// Total number of items seen.
    pub count: usize,
}

impl<T> LastSink<T> {
    /// An empty sink.
    pub fn new() -> LastSink<T> {
        LastSink {
            last: None,
            count: 0,
        }
    }
}

impl<T> Sink<T> for LastSink<T> {
    fn push(&mut self, item: T) {
        self.last = Some(item);
        self.count += 1;
    }
}

/// Pairs consecutive kept points into segment chords — the per-segment
/// view a chord consumer (e.g. a trajectory store) can ingest directly.
#[derive(Debug)]
pub struct ChordSink<T, F> {
    prev: Option<T>,
    f: F,
}

impl<T, F> ChordSink<T, F> {
    /// Wraps a chord callback `f(start, end)`.
    pub fn new(f: F) -> ChordSink<T, F> {
        ChordSink { prev: None, f }
    }
}

impl<T: Copy, F: FnMut(T, T)> Sink<T> for ChordSink<T, F> {
    fn push(&mut self, item: T) {
        if let Some(prev) = self.prev {
            (self.f)(prev, item);
        }
        self.prev = Some(item);
    }
}

/// Batches emitted items into fixed-size pages, flushing each full page to
/// a callback — the shape of a tracker's flash-page writer. Call
/// [`PageSink::flush`] after `finish` to hand over the final partial page.
#[derive(Debug)]
pub struct PageSink<T, F> {
    page: Vec<T>,
    page_len: usize,
    f: F,
}

impl<T, F: FnMut(&[T])> PageSink<T, F> {
    /// A sink flushing every `page_len` items. `page_len` must be > 0.
    pub fn new(page_len: usize, f: F) -> PageSink<T, F> {
        assert!(page_len > 0, "page length must be positive");
        PageSink {
            page: Vec::with_capacity(page_len),
            page_len,
            f,
        }
    }

    /// Flushes the current partial page (no-op when empty).
    pub fn flush(&mut self) {
        if !self.page.is_empty() {
            (self.f)(&self.page);
            self.page.clear();
        }
    }
}

impl<T, F: FnMut(&[T])> Sink<T> for PageSink<T, F> {
    fn push(&mut self, item: T) {
        self.page.push(item);
        if self.page.len() >= self.page_len {
            self.flush();
        }
    }
}

/// Duplicates every emission into two sinks.
pub struct TeeSink<'a, T> {
    a: &'a mut dyn Sink<T>,
    b: &'a mut dyn Sink<T>,
}

impl<'a, T> TeeSink<'a, T> {
    /// Fans emissions out to `a` and `b` (in that order).
    pub fn new(a: &'a mut dyn Sink<T>, b: &'a mut dyn Sink<T>) -> TeeSink<'a, T> {
        TeeSink { a, b }
    }
}

impl<T: Copy> Sink<T> for TeeSink<'_, T> {
    fn push(&mut self, item: T) {
        self.a.push(item);
        self.b.push(item);
    }

    fn reserve_hint(&mut self, n: usize) {
        self.a.reserve_hint(n);
        self.b.reserve_hint(n);
    }
}

/// A push-based trajectory compressor with error-bounded output.
pub trait StreamCompressor {
    /// Feeds the next point of the stream. Any points that become final
    /// output are emitted into `out` (possibly none, possibly several for
    /// batch-flushing algorithms).
    fn push(&mut self, p: TimedPoint, out: &mut dyn Sink);

    /// Signals end-of-stream: flushes whatever must still be emitted (at
    /// least the final point of the last segment). The compressor is reset
    /// and may be reused for a new stream afterwards.
    fn finish(&mut self, out: &mut dyn Sink);

    /// Short algorithm label for reports ("BQS", "FBQS", "BDP", ...).
    fn name(&self) -> &'static str;
}

/// Counters describing how the BQS compressors reached their decisions.
/// Pruning power (Fig. 6) is derived from these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecisionStats {
    /// Points pushed in total.
    pub points: u64,
    /// Decisions taken trivially: first point of a segment, points inside
    /// the tolerance ball with no far structure, or empty quadrants.
    pub trivial: u64,
    /// Decisions concluded from the deviation bounds alone.
    pub by_bounds: u64,
    /// Decisions that required a full deviation scan of the segment buffer
    /// (BQS only; the paper's `N_computed`).
    pub full_scans: u64,
    /// Decisions taken during the constant-size rotation warm-up, where the
    /// deviation is computed over at most the warm-up buffer (≤ the
    /// configured warm-up length, so O(1) work).
    pub warmup_scans: u64,
    /// Inconclusive-bounds events resolved by aggressively cutting the
    /// segment (Fast BQS only).
    pub aggressive_cuts: u64,
    /// Segments produced so far.
    pub segments: u64,
}

impl DecisionStats {
    /// Pruning power as the paper defines it: `1 − N_computed / N_total`,
    /// where `N_computed` counts full deviation scans over an unbounded
    /// buffer. Constant-size warm-up scans are not full scans (they touch at
    /// most the warm-up length) and are reported separately.
    pub fn pruning_power(&self) -> f64 {
        if self.points == 0 {
            return 1.0;
        }
        1.0 - (self.full_scans as f64) / (self.points as f64)
    }

    /// Fraction of decisions that needed neither a scan nor an aggressive
    /// cut — how often the structure alone decided.
    pub fn conclusive_rate(&self) -> f64 {
        if self.points == 0 {
            return 1.0;
        }
        let undecided = self.full_scans + self.aggressive_cuts;
        1.0 - (undecided as f64) / (self.points as f64)
    }

    /// Counter-wise difference `self − baseline`, saturating at zero.
    /// Used by the fleet layer to attribute a recycled compressor's
    /// monotonic counters to the session that actually produced them.
    pub fn since(&self, baseline: &DecisionStats) -> DecisionStats {
        DecisionStats {
            points: self.points.saturating_sub(baseline.points),
            trivial: self.trivial.saturating_sub(baseline.trivial),
            by_bounds: self.by_bounds.saturating_sub(baseline.by_bounds),
            full_scans: self.full_scans.saturating_sub(baseline.full_scans),
            warmup_scans: self.warmup_scans.saturating_sub(baseline.warmup_scans),
            aggressive_cuts: self
                .aggressive_cuts
                .saturating_sub(baseline.aggressive_cuts),
            segments: self.segments.saturating_sub(baseline.segments),
        }
    }

    /// Merges counters from another stream (for multi-trace aggregates).
    pub fn merge(&mut self, other: &DecisionStats) {
        self.points += other.points;
        self.trivial += other.trivial;
        self.by_bounds += other.by_bounds;
        self.full_scans += other.full_scans;
        self.warmup_scans += other.warmup_scans;
        self.aggressive_cuts += other.aggressive_cuts;
        self.segments += other.segments;
    }
}

/// Expected kept-point fraction used to pre-size output buffers. Paper
/// datasets compress to 5–40% of the input; a quarter keeps reallocation
/// rare without over-reserving for incompressible streams.
const PRESIZE_FRACTION: usize = 4;

/// Runs a compressor over an entire point stream and returns the kept
/// points. The output buffer is pre-sized from the stream's size hint; use
/// [`compress_into`] to reuse a caller-owned buffer across traces.
pub fn compress_all<C: StreamCompressor>(
    compressor: &mut C,
    points: impl IntoIterator<Item = TimedPoint>,
) -> Vec<TimedPoint> {
    let iter = points.into_iter();
    let mut out = Vec::with_capacity(iter.size_hint().0 / PRESIZE_FRACTION);
    for p in iter {
        compressor.push(p, &mut out);
    }
    compressor.finish(&mut out);
    out
}

/// Runs a compressor over an entire point stream, emitting into a
/// caller-supplied sink. With a [`CountingSink`] this compresses a trace
/// without allocating any output storage.
pub fn compress_into<C: StreamCompressor + ?Sized>(
    compressor: &mut C,
    points: impl IntoIterator<Item = TimedPoint>,
    out: &mut dyn Sink,
) {
    let iter = points.into_iter();
    out.reserve_hint(iter.size_hint().0 / PRESIZE_FRACTION);
    for p in iter {
        compressor.push(p, out);
    }
    compressor.finish(out);
}

/// Like [`compress_all`] but also returns a snapshot of decision statistics
/// taken after the stream ends.
pub fn compress_all_with_stats<C>(
    compressor: &mut C,
    points: impl IntoIterator<Item = TimedPoint>,
) -> (Vec<TimedPoint>, DecisionStats)
where
    C: StreamCompressor + HasDecisionStats,
{
    let out = compress_all(compressor, points);
    let stats = compressor.decision_stats();
    (out, stats)
}

/// Compressors that expose BQS-style decision statistics.
pub trait HasDecisionStats {
    /// A snapshot of the counters accumulated since construction/reset.
    fn decision_stats(&self) -> DecisionStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruning_power_extremes() {
        let mut s = DecisionStats::default();
        assert_eq!(s.pruning_power(), 1.0);
        s.points = 100;
        s.full_scans = 0;
        assert_eq!(s.pruning_power(), 1.0);
        s.full_scans = 10;
        assert!((s.pruning_power() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn conclusive_rate_counts_aggressive_cuts() {
        let s = DecisionStats {
            points: 100,
            aggressive_cuts: 5,
            full_scans: 5,
            ..DecisionStats::default()
        };
        assert!((s.conclusive_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = DecisionStats {
            points: 10,
            full_scans: 1,
            ..Default::default()
        };
        let b = DecisionStats {
            points: 20,
            full_scans: 3,
            segments: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.points, 30);
        assert_eq!(a.full_scans, 4);
        assert_eq!(a.segments, 2);
    }

    /// A compressor that keeps every point, exercising the trait plumbing.
    struct Identity;
    impl StreamCompressor for Identity {
        fn push(&mut self, p: TimedPoint, out: &mut dyn Sink) {
            out.push(p);
        }
        fn finish(&mut self, _out: &mut dyn Sink) {}
        fn name(&self) -> &'static str {
            "identity"
        }
    }

    fn pts(n: usize) -> Vec<TimedPoint> {
        (0..n)
            .map(|i| TimedPoint::new(i as f64, 0.0, i as f64))
            .collect()
    }

    #[test]
    fn compress_all_drives_the_trait() {
        let input = pts(5);
        let mut c = Identity;
        let out = compress_all(&mut c, input.iter().copied());
        assert_eq!(out, input);
        assert_eq!(c.name(), "identity");
    }

    #[test]
    fn compress_into_reuses_the_buffer() {
        let input = pts(64);
        let mut c = Identity;
        let mut out: Vec<TimedPoint> = Vec::new();
        compress_into(&mut c, input.iter().copied(), &mut out);
        assert_eq!(out.len(), 64);
        let cap = out.capacity();
        out.clear();
        compress_into(&mut c, input.iter().copied(), &mut out);
        assert_eq!(out.len(), 64);
        assert_eq!(out.capacity(), cap, "no reallocation on reuse");
    }

    #[test]
    fn counting_sink_counts_without_storing() {
        let mut c = Identity;
        let mut sink = CountingSink::new();
        compress_into(&mut c, pts(100).iter().copied(), &mut sink);
        assert_eq!(sink.count, 100);
    }

    #[test]
    fn fn_sink_sees_every_point() {
        let mut seen = Vec::new();
        {
            let mut sink = FnSink::new(|p: TimedPoint| seen.push(p.t));
            let mut c = Identity;
            compress_into(&mut c, pts(5).iter().copied(), &mut sink);
        }
        assert_eq!(seen, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn chord_sink_pairs_consecutive_points() {
        let mut chords = Vec::new();
        {
            let mut sink = ChordSink::new(|a: TimedPoint, b: TimedPoint| chords.push((a.t, b.t)));
            let mut c = Identity;
            compress_into(&mut c, pts(4).iter().copied(), &mut sink);
        }
        assert_eq!(chords, vec![(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]);
    }

    #[test]
    fn page_sink_batches_and_flushes() {
        let mut pages: Vec<usize> = Vec::new();
        {
            let mut sink = PageSink::new(3, |page: &[TimedPoint]| pages.push(page.len()));
            let mut c = Identity;
            compress_into(&mut c, pts(7).iter().copied(), &mut sink);
            sink.flush();
        }
        assert_eq!(pages, vec![3, 3, 1]);
    }

    #[test]
    fn last_sink_retains_only_the_tail() {
        let mut sink = LastSink::new();
        let mut c = Identity;
        compress_into(&mut c, pts(9).iter().copied(), &mut sink);
        assert_eq!(sink.count, 9);
        assert_eq!(sink.last.map(|p| p.t), Some(8.0));
    }

    #[test]
    fn tee_sink_duplicates() {
        let mut all: Vec<TimedPoint> = Vec::new();
        let mut counter = CountingSink::new();
        {
            let mut tee = TeeSink::new(&mut all, &mut counter);
            let mut c = Identity;
            compress_into(&mut c, pts(6).iter().copied(), &mut tee);
        }
        assert_eq!(all.len(), 6);
        assert_eq!(counter.count, 6);
    }

    #[test]
    fn vec_coerces_to_dyn_sink_at_call_sites() {
        // The pre-refactor calling convention must keep compiling verbatim.
        let mut out = Vec::new();
        let mut c = Identity;
        for p in pts(3) {
            c.push(p, &mut out);
        }
        c.finish(&mut out);
        assert_eq!(out.len(), 3);
    }
}
