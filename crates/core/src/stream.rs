//! The streaming-compressor interface and decision statistics.
//!
//! All compressors in this workspace — BQS, Fast BQS, and every baseline in
//! `bqs-baselines` — implement [`StreamCompressor`]: points are pushed one
//! at a time and kept (key) points are appended to a caller-supplied output
//! vector as soon as they become final. This is the contract a
//! resource-constrained tracker needs: output can be written to flash
//! incrementally and the compressor never revisits it.

use bqs_geo::TimedPoint;

/// A push-based trajectory compressor with error-bounded output.
pub trait StreamCompressor {
    /// Feeds the next point of the stream. Any points that become final
    /// output are appended to `out` (possibly none, possibly several for
    /// batch-flushing algorithms).
    fn push(&mut self, p: TimedPoint, out: &mut Vec<TimedPoint>);

    /// Signals end-of-stream: flushes whatever must still be emitted (at
    /// least the final point of the last segment). The compressor is reset
    /// and may be reused for a new stream afterwards.
    fn finish(&mut self, out: &mut Vec<TimedPoint>);

    /// Short algorithm label for reports ("BQS", "FBQS", "BDP", ...).
    fn name(&self) -> &'static str;
}

/// Counters describing how the BQS compressors reached their decisions.
/// Pruning power (Fig. 6) is derived from these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecisionStats {
    /// Points pushed in total.
    pub points: u64,
    /// Decisions taken trivially: first point of a segment, points inside
    /// the tolerance ball with no far structure, or empty quadrants.
    pub trivial: u64,
    /// Decisions concluded from the deviation bounds alone.
    pub by_bounds: u64,
    /// Decisions that required a full deviation scan of the segment buffer
    /// (BQS only; the paper's `N_computed`).
    pub full_scans: u64,
    /// Decisions taken during the constant-size rotation warm-up, where the
    /// deviation is computed over at most the warm-up buffer (≤ the
    /// configured warm-up length, so O(1) work).
    pub warmup_scans: u64,
    /// Inconclusive-bounds events resolved by aggressively cutting the
    /// segment (Fast BQS only).
    pub aggressive_cuts: u64,
    /// Segments produced so far.
    pub segments: u64,
}

impl DecisionStats {
    /// Pruning power as the paper defines it: `1 − N_computed / N_total`,
    /// where `N_computed` counts full deviation scans over an unbounded
    /// buffer. Constant-size warm-up scans are not full scans (they touch at
    /// most the warm-up length) and are reported separately.
    pub fn pruning_power(&self) -> f64 {
        if self.points == 0 {
            return 1.0;
        }
        1.0 - (self.full_scans as f64) / (self.points as f64)
    }

    /// Fraction of decisions that needed neither a scan nor an aggressive
    /// cut — how often the structure alone decided.
    pub fn conclusive_rate(&self) -> f64 {
        if self.points == 0 {
            return 1.0;
        }
        let undecided = self.full_scans + self.aggressive_cuts;
        1.0 - (undecided as f64) / (self.points as f64)
    }

    /// Merges counters from another stream (for multi-trace aggregates).
    pub fn merge(&mut self, other: &DecisionStats) {
        self.points += other.points;
        self.trivial += other.trivial;
        self.by_bounds += other.by_bounds;
        self.full_scans += other.full_scans;
        self.warmup_scans += other.warmup_scans;
        self.aggressive_cuts += other.aggressive_cuts;
        self.segments += other.segments;
    }
}

/// Runs a compressor over an entire point stream and returns the kept
/// points.
pub fn compress_all<C: StreamCompressor>(
    compressor: &mut C,
    points: impl IntoIterator<Item = TimedPoint>,
) -> Vec<TimedPoint> {
    let mut out = Vec::new();
    for p in points {
        compressor.push(p, &mut out);
    }
    compressor.finish(&mut out);
    out
}

/// Like [`compress_all`] but also returns a snapshot of decision statistics
/// taken after the stream ends.
pub fn compress_all_with_stats<C>(
    compressor: &mut C,
    points: impl IntoIterator<Item = TimedPoint>,
) -> (Vec<TimedPoint>, DecisionStats)
where
    C: StreamCompressor + HasDecisionStats,
{
    let out = compress_all(compressor, points);
    let stats = compressor.decision_stats();
    (out, stats)
}

/// Compressors that expose BQS-style decision statistics.
pub trait HasDecisionStats {
    /// A snapshot of the counters accumulated since construction/reset.
    fn decision_stats(&self) -> DecisionStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruning_power_extremes() {
        let mut s = DecisionStats::default();
        assert_eq!(s.pruning_power(), 1.0);
        s.points = 100;
        s.full_scans = 0;
        assert_eq!(s.pruning_power(), 1.0);
        s.full_scans = 10;
        assert!((s.pruning_power() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn conclusive_rate_counts_aggressive_cuts() {
        let s = DecisionStats {
            points: 100,
            aggressive_cuts: 5,
            full_scans: 5,
            ..DecisionStats::default()
        };
        assert!((s.conclusive_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = DecisionStats { points: 10, full_scans: 1, ..Default::default() };
        let b = DecisionStats { points: 20, full_scans: 3, segments: 2, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.points, 30);
        assert_eq!(a.full_scans, 4);
        assert_eq!(a.segments, 2);
    }

    /// A compressor that keeps every point, exercising the trait plumbing.
    struct Identity;
    impl StreamCompressor for Identity {
        fn push(&mut self, p: TimedPoint, out: &mut Vec<TimedPoint>) {
            out.push(p);
        }
        fn finish(&mut self, _out: &mut Vec<TimedPoint>) {}
        fn name(&self) -> &'static str {
            "identity"
        }
    }

    #[test]
    fn compress_all_drives_the_trait() {
        let pts: Vec<TimedPoint> =
            (0..5).map(|i| TimedPoint::new(i as f64, 0.0, i as f64)).collect();
        let mut c = Identity;
        let out = compress_all(&mut c, pts.iter().copied());
        assert_eq!(out, pts);
        assert_eq!(c.name(), "identity");
    }
}
