//! The buffered BQS compressor (paper Algorithm 1).

use crate::config::BqsConfig;
use crate::engine::{BqsEngine, Fallback, StepTrace};
use crate::stream::{DecisionStats, HasDecisionStats, Sink, StreamCompressor};
use bqs_geo::TimedPoint;

/// The Bounded Quadrant System compressor, buffered variant.
///
/// Keeps the far points of the current segment in a buffer so that, when the
/// deviation bounds are inconclusive (`d_lb ≤ d < d_ub`), the exact maximum
/// deviation can be computed (Algorithm 1, lines 10–13). This yields the
/// best compression rate of the family at the cost of O(n) worst-case space
/// and O(n²) worst-case time; in practice the bounds decide more than 90 %
/// of points (Fig. 6), so the expected behaviour is near-linear.
///
/// ```
/// use bqs_core::prelude::*;
///
/// let mut bqs = BqsCompressor::new(BqsConfig::new(10.0).unwrap());
/// let mut kept = Vec::new();
/// for i in 0..50 {
///     bqs.push(TimedPoint::new(i as f64 * 25.0, 0.0, i as f64), &mut kept);
/// }
/// bqs.finish(&mut kept);
/// assert_eq!(kept.len(), 2); // a straight line needs only its endpoints
/// ```
#[derive(Debug, Clone)]
pub struct BqsCompressor {
    engine: BqsEngine,
}

impl BqsCompressor {
    /// Creates a buffered BQS compressor.
    ///
    /// # Panics
    /// Panics if `config` fails validation — construct configs through
    /// [`BqsConfig::new`] to get a `Result` instead.
    pub fn new(config: BqsConfig) -> BqsCompressor {
        BqsCompressor {
            engine: BqsEngine::new(config, Fallback::Scan),
        }
    }

    /// Pushes a point and returns the full decision trace (bounds, exact
    /// deviation when computed, decision kind) — the instrumentation behind
    /// the paper's Fig. 3.
    pub fn push_traced(&mut self, p: TimedPoint, out: &mut dyn Sink) -> StepTrace {
        self.engine.push(p, out)
    }

    /// The configuration in use.
    pub fn config(&self) -> &BqsConfig {
        self.engine.config()
    }

    /// Number of points currently buffered for exact scans.
    pub fn buffered_point_count(&self) -> usize {
        self.engine.buffered_point_count()
    }

    /// Number of significant points currently maintained (≤ 32).
    pub fn significant_point_count(&self) -> usize {
        self.engine.significant_point_count()
    }
}

impl StreamCompressor for BqsCompressor {
    fn push(&mut self, p: TimedPoint, out: &mut dyn Sink) {
        self.engine.push(p, out);
    }

    fn finish(&mut self, out: &mut dyn Sink) {
        self.engine.finish(out);
    }

    fn name(&self) -> &'static str {
        "BQS"
    }
}

impl HasDecisionStats for BqsCompressor {
    fn decision_stats(&self) -> DecisionStats {
        self.engine.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DecisionKind, Outcome};
    use crate::stream::compress_all;
    use bqs_geo::{max_deviation_to_chord, Point2};

    fn wave(n: usize, amplitude: f64) -> Vec<TimedPoint> {
        (0..n)
            .map(|i| {
                let a = i as f64;
                TimedPoint::new(a * 8.0, (a * 0.4).sin() * amplitude, a)
            })
            .collect()
    }

    #[test]
    fn output_respects_error_bound() {
        let tolerance = 5.0;
        let pts = wave(400, 20.0);
        let mut bqs = BqsCompressor::new(BqsConfig::new(tolerance).unwrap());
        let kept = compress_all(&mut bqs, pts.iter().copied());

        // Re-derive kept indices and verify every inter-anchor deviation.
        let positions: Vec<Point2> = pts.iter().map(|p| p.pos).collect();
        let mut k = 0usize;
        for w in kept.windows(2) {
            let i = pts.iter().position(|p| p == &w[0]).unwrap();
            let j = pts.iter().position(|p| p == &w[1]).unwrap();
            assert!(i < j);
            let dev = max_deviation_to_chord(&positions[i + 1..j], positions[i], positions[j]);
            assert!(
                dev <= tolerance + 1e-9,
                "segment {i}..{j} deviates {dev} > {tolerance}"
            );
            k += 1;
        }
        assert!(k >= 1);
    }

    #[test]
    fn traced_push_reports_decisions() {
        let mut bqs = BqsCompressor::new(BqsConfig::new(5.0).unwrap());
        let mut out = Vec::new();
        let first = bqs.push_traced(TimedPoint::new(0.0, 0.0, 0.0), &mut out);
        assert_eq!(first.decided_by, DecisionKind::StreamStart);
        assert_eq!(first.outcome, Outcome::Included);
        let near = bqs.push_traced(TimedPoint::new(1.0, 1.0, 1.0), &mut out);
        assert_eq!(near.decided_by, DecisionKind::Trivial);
    }

    #[test]
    fn compresses_better_at_larger_tolerance() {
        let pts = wave(500, 25.0);
        let mut sizes = Vec::new();
        for tol in [2.0, 8.0, 20.0] {
            let mut bqs = BqsCompressor::new(BqsConfig::new(tol).unwrap());
            sizes.push(compress_all(&mut bqs, pts.iter().copied()).len());
        }
        assert!(sizes[0] >= sizes[1]);
        assert!(sizes[1] >= sizes[2]);
        assert!(sizes[2] >= 2);
    }

    #[test]
    fn name_and_config_accessors() {
        let bqs = BqsCompressor::new(BqsConfig::new(7.5).unwrap());
        assert_eq!(StreamCompressor::name(&bqs), "BQS");
        assert_eq!(bqs.config().tolerance, 7.5);
        assert_eq!(bqs.buffered_point_count(), 0);
        assert_eq!(bqs.significant_point_count(), 0);
    }
}
