//! The multi-session fleet engine.
//!
//! The paper's deployment story is a *fleet*: hundreds of Camazotz bats or
//! thousands of vehicles, each producing an independent GPS stream that
//! must be compressed on the go. A single [`StreamCompressor`] holds the
//! state of one stream; [`FleetEngine`] multiplexes any number of
//! concurrent streams ("sessions", keyed by [`TrackId`]) over per-session
//! compressor state while sharing everything that can be shared:
//!
//! * **Hash sharding** — sessions live in power-of-two shards, routed by
//!   [`track_hash`]; the [`parallel`] submodule scales the same design
//!   across cores by giving each worker thread a private engine.
//! * **Compressor recycling** — finished sessions return their compressor
//!   (with its warm-up and scan buffers) to a bounded pool, so a fleet
//!   with churn allocates per *track lifetime*, not per track-restart.
//! * **Idle eviction** — trackers disappear (dead battery, out of range);
//!   [`FleetEngine::evict_idle`] finalises sessions that have not pushed
//!   for a configurable stream-time window and reclaims their state.
//! * **Merged statistics** — [`FleetEngine::stats`] aggregates
//!   [`DecisionStats`] across live and retired sessions, attributing a
//!   recycled compressor's monotonic counters to the right session.
//!
//! Emission goes through the same [`Sink`] layer as single-stream
//! compression: `push` routes a track's kept points to the caller's sink
//! with zero buffering, and the interleaving-equivalence property (output
//! of an interleaved fleet == output of each track compressed alone) is
//! enforced by `tests/fleet_equivalence.rs`.
//!
//! ```
//! use bqs_core::fleet::{FleetConfig, FleetEngine};
//! use bqs_core::{BqsConfig, FastBqsCompressor};
//! use bqs_geo::TimedPoint;
//!
//! let config = BqsConfig::new(10.0).unwrap();
//! let mut fleet = FleetEngine::new(FleetConfig::default(), move || {
//!     FastBqsCompressor::new(config)
//! });
//! let mut out: Vec<(u64, TimedPoint)> = Vec::new();
//! for i in 0..100u64 {
//!     // Two interleaved trackers.
//!     fleet.push_tagged(i % 2, TimedPoint::new(i as f64 * 5.0, 0.0, i as f64), &mut out);
//! }
//! fleet.finish_all(&mut out);
//! assert!(fleet.active_sessions() == 0);
//! assert!(out.iter().any(|(track, _)| *track == 1));
//! ```

use crate::stream::{DecisionStats, HasDecisionStats, Sink, StreamCompressor};
use bqs_geo::TimedPoint;
use std::collections::HashMap;

pub mod parallel;
pub mod reorder;

pub use parallel::{
    worker_of, FleetJoin, FleetMetrics, ParallelConfig, ParallelFleet, ShardCounters, ShardFailure,
    ShardOutput,
};
pub use reorder::{FleetReorder, ReorderBuffer, TooLate};

/// Identifies one tracker's stream within a fleet.
pub type TrackId = u64;

/// The fleet routing hash: a SplitMix64 finaliser over the track id.
///
/// Cheap, and it decorrelates sequential ids so load stays even for the
/// common `0..n` track-id layout. Both [`FleetEngine`]'s internal session
/// shards and [`ParallelFleet`]'s worker routing derive from this one
/// function, so a track always lands in a stable, predictable place for
/// a given shard/worker count.
pub fn track_hash(track: TrackId) -> u64 {
    let mut z = track.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A destination for kept points tagged with the session that produced
/// them — the fleet-level analogue of [`Sink`].
pub trait FleetSink {
    /// Accepts one finalised key point of `track`.
    fn accept(&mut self, track: TrackId, point: TimedPoint);

    /// Notifies the sink that a session has been finalised (finish or
    /// eviction). Called *after* the session's tail points have been
    /// emitted through [`FleetSink::accept`], so a sink buffering per
    /// track holds the session's complete output when this fires —
    /// the hook a durable spill layer (e.g. `bqs-tlog`'s `SpillSink`)
    /// flushes on. The default does nothing.
    fn session_closed(&mut self, _report: &SessionReport) {}

    /// A copy of the kept points the sink is still holding per track —
    /// accepted, but not yet handed off to durable storage (or to
    /// whatever the sink drains into on session close). This is the
    /// *hot* half of a [`FleetSnapshot`]: what a live query must see
    /// because no log holds it yet. Sinks that forward or merely count
    /// points keep the default (nothing buffered).
    fn live_buffered(&self) -> Vec<(TrackId, Vec<TimedPoint>)> {
        Vec::new()
    }
}

impl FleetSink for Vec<(TrackId, TimedPoint)> {
    fn accept(&mut self, track: TrackId, point: TimedPoint) {
        self.push((track, point));
    }
}

impl FleetSink for HashMap<TrackId, Vec<TimedPoint>> {
    fn accept(&mut self, track: TrackId, point: TimedPoint) {
        self.entry(track).or_default().push(point);
    }

    fn live_buffered(&self) -> Vec<(TrackId, Vec<TimedPoint>)> {
        self.iter().map(|(t, v)| (*t, v.clone())).collect()
    }
}

/// Counts kept points per fleet without storing them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingFleetSink {
    /// Total kept points across all tracks.
    pub count: usize,
}

impl FleetSink for CountingFleetSink {
    fn accept(&mut self, _track: TrackId, _point: TimedPoint) {
        self.count += 1;
    }
}

/// Invokes a callback per tagged kept point.
#[derive(Debug)]
pub struct FnFleetSink<F> {
    f: F,
}

impl<F> FnFleetSink<F> {
    /// Wraps a callback `f(track, point)`.
    pub fn new(f: F) -> FnFleetSink<F> {
        FnFleetSink { f }
    }
}

impl<F: FnMut(TrackId, TimedPoint)> FleetSink for FnFleetSink<F> {
    fn accept(&mut self, track: TrackId, point: TimedPoint) {
        (self.f)(track, point);
    }
}

/// Duplicates tagged emissions (and session-close notifications) into two
/// fleet sinks — e.g. an in-memory collector plus a durable spill layer.
pub struct TeeFleetSink<'a> {
    a: &'a mut dyn FleetSink,
    b: &'a mut dyn FleetSink,
}

impl<'a> TeeFleetSink<'a> {
    /// Fans emissions out to `a` and `b` (in that order).
    pub fn new(a: &'a mut dyn FleetSink, b: &'a mut dyn FleetSink) -> TeeFleetSink<'a> {
        TeeFleetSink { a, b }
    }
}

impl FleetSink for TeeFleetSink<'_> {
    fn accept(&mut self, track: TrackId, point: TimedPoint) {
        self.a.accept(track, point);
        self.b.accept(track, point);
    }

    fn session_closed(&mut self, report: &SessionReport) {
        self.a.session_closed(report);
        self.b.session_closed(report);
    }

    fn live_buffered(&self) -> Vec<(TrackId, Vec<TimedPoint>)> {
        // A tee duplicates everything, so either side alone already
        // holds a track's complete buffer; prefer `a`, fall back to `b`
        // for tracks `a` does not buffer (e.g. a counting side).
        let mut out = self.a.live_buffered();
        let seen: std::collections::HashSet<TrackId> =
            out.iter().map(|(track, _)| *track).collect();
        out.extend(
            self.b
                .live_buffered()
                .into_iter()
                .filter(|(track, _)| !seen.contains(track)),
        );
        out
    }
}

/// Adapts a [`FleetSink`] to the point-level [`Sink`] interface for one
/// fixed track.
pub struct TrackSink<'a> {
    inner: &'a mut dyn FleetSink,
    track: TrackId,
}

impl<'a> TrackSink<'a> {
    /// A sink forwarding every point to `inner` tagged with `track`.
    pub fn new(inner: &'a mut dyn FleetSink, track: TrackId) -> TrackSink<'a> {
        TrackSink { inner, track }
    }
}

impl Sink for TrackSink<'_> {
    fn push(&mut self, item: TimedPoint) {
        self.inner.accept(self.track, item);
    }
}

/// Fleet-engine tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Number of session shards; rounded up to a power of two, minimum 1.
    /// Shards bound the reach of any single rehash and are the future
    /// parallelism seam.
    pub shards: usize,
    /// Stream-time seconds without a push after which a session is
    /// eligible for [`FleetEngine::evict_idle`].
    pub idle_timeout: f64,
    /// Maximum retired compressors kept for reuse across all shards.
    pub max_pooled: usize,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            shards: 16,
            // One hour of GPS silence: generous for 1 fix/min trackers.
            idle_timeout: 3600.0,
            max_pooled: 1024,
        }
    }
}

/// Why a session was finalised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The caller ended the stream ([`FleetEngine::finish_track`] or
    /// [`FleetEngine::finish_all`]).
    Finished,
    /// The session idled past the timeout and was reclaimed by
    /// [`FleetEngine::evict_idle`].
    Evicted,
}

/// Summary returned when a session is finalised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionReport {
    /// The finished track.
    pub track: TrackId,
    /// Points the session ingested.
    pub points: u64,
    /// Decision statistics attributed to this session alone.
    pub stats: DecisionStats,
    /// Whether the session finished or was evicted.
    pub reason: FlushReason,
}

/// One track's live (not yet durable) output at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackSnapshot {
    /// The track.
    pub track: TrackId,
    /// Kept points already emitted by the compressor but still buffered
    /// in the sink (reported by [`FleetSink::live_buffered`]); empty for
    /// sinks that do not buffer.
    pub emitted: Vec<TimedPoint>,
    /// The tail the compressor *would* emit if the session closed right
    /// now — obtained by finishing a clone, so the live session is
    /// untouched. Empty for tracks that only appear in the sink buffer.
    pub pending: Vec<TimedPoint>,
    /// Whether the track has a live session in the engine (a buffered
    /// track without one is awaiting a retried spill).
    pub live: bool,
}

impl TrackSnapshot {
    /// The track's complete would-be output: emitted-but-buffered points
    /// followed by the pending tail — exactly what closing the session
    /// now would make durable.
    pub fn points(&self) -> Vec<TimedPoint> {
        let mut out = Vec::with_capacity(self.emitted.len() + self.pending.len());
        out.extend_from_slice(&self.emitted);
        out.extend_from_slice(&self.pending);
        out
    }
}

/// A consistent, non-destructive view of everything a fleet knows that
/// is not yet durable: per track, the sink-buffered kept points plus the
/// live compressor's pending tail. Produced by
/// [`FleetEngine::snapshot`] and [`ParallelFleet::snapshot`]; consumed
/// by read paths (e.g. `bqs-tlog`'s `QueryEngine`) that merge it with
/// on-disk data.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetSnapshot {
    /// One entry per track with live output, ascending by track id.
    pub tracks: Vec<TrackSnapshot>,
}

impl FleetSnapshot {
    /// Tracks in the snapshot.
    pub fn len(&self) -> usize {
        self.tracks.len()
    }

    /// `true` when nothing is live.
    pub fn is_empty(&self) -> bool {
        self.tracks.is_empty()
    }

    /// The snapshot of one track, if it has live output.
    pub fn track(&self, track: TrackId) -> Option<&TrackSnapshot> {
        self.tracks
            .binary_search_by_key(&track, |t| t.track)
            .ok()
            .map(|i| &self.tracks[i])
    }

    /// Folds several shard snapshots (disjoint track sets) into one.
    pub fn merge(shards: impl IntoIterator<Item = FleetSnapshot>) -> FleetSnapshot {
        let mut tracks: Vec<TrackSnapshot> = shards.into_iter().flat_map(|s| s.tracks).collect();
        tracks.sort_by_key(|t| t.track);
        FleetSnapshot { tracks }
    }
}

#[derive(Debug)]
struct Session<C> {
    compressor: C,
    /// `decision_stats()` snapshot at session start; the compressor may be
    /// recycled, so its counters are offsets, not absolutes.
    baseline: DecisionStats,
    /// Stream time of the most recent push.
    last_active: f64,
    /// Points ingested by this session.
    points: u64,
}

#[derive(Debug, Default)]
struct Shard<C> {
    sessions: HashMap<TrackId, Session<C>>,
}

/// Multiplexes many concurrent track sessions over per-session compressor
/// state. See the module docs for the design.
pub struct FleetEngine<C, F> {
    factory: F,
    config: FleetConfig,
    shard_mask: u64,
    shards: Vec<Shard<C>>,
    /// Retired-but-reusable compressors (bounded by `config.max_pooled`).
    pool: Vec<C>,
    /// Stats of sessions that have already been finalised.
    retired_stats: DecisionStats,
    /// Sessions finalised so far.
    retired_sessions: u64,
    /// Of those, sessions reclaimed by idle eviction.
    evicted_sessions: u64,
    /// Largest timestamp pushed so far (the fleet's stream clock).
    latest_time: f64,
}

impl<C, F> FleetEngine<C, F>
where
    C: StreamCompressor + HasDecisionStats,
    F: Fn() -> C,
{
    /// Creates an engine; `factory` builds one compressor per new session
    /// (recycled instances are reused first).
    pub fn new(config: FleetConfig, factory: F) -> FleetEngine<C, F> {
        let shards = config.shards.max(1).next_power_of_two();
        FleetEngine {
            factory,
            config,
            shard_mask: (shards - 1) as u64,
            shards: (0..shards)
                .map(|_| Shard {
                    sessions: HashMap::new(),
                })
                .collect(),
            pool: Vec::new(),
            retired_stats: DecisionStats::default(),
            retired_sessions: 0,
            evicted_sessions: 0,
            latest_time: f64::NEG_INFINITY,
        }
    }

    /// An engine with [`FleetConfig::default`].
    pub fn with_default_config(factory: F) -> FleetEngine<C, F> {
        FleetEngine::new(FleetConfig::default(), factory)
    }

    /// The configuration in use.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Number of shards (power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Live sessions across all shards.
    pub fn active_sessions(&self) -> usize {
        self.shards.iter().map(|s| s.sessions.len()).sum()
    }

    /// Live sessions per shard, for load-skew observability.
    pub fn shard_loads(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.sessions.len()).collect()
    }

    /// Retired compressors currently available for reuse.
    pub fn pooled_compressors(&self) -> usize {
        self.pool.len()
    }

    /// Sessions finalised so far (finish or eviction).
    pub fn retired_sessions(&self) -> u64 {
        self.retired_sessions
    }

    /// Sessions reclaimed by idle eviction so far (a subset of
    /// [`FleetEngine::retired_sessions`]).
    pub fn evicted_sessions(&self) -> u64 {
        self.evicted_sessions
    }

    /// Largest timestamp pushed so far; `None` before the first push.
    pub fn latest_time(&self) -> Option<f64> {
        (self.latest_time != f64::NEG_INFINITY).then_some(self.latest_time)
    }

    /// Decision statistics merged across retired and live sessions.
    pub fn stats(&self) -> DecisionStats {
        let mut total = self.retired_stats;
        for shard in &self.shards {
            for session in shard.sessions.values() {
                total.merge(&session.compressor.decision_stats().since(&session.baseline));
            }
        }
        total
    }

    fn shard_of(&self, track: TrackId) -> usize {
        (track_hash(track) & self.shard_mask) as usize
    }

    /// Feeds the next point of `track`'s stream, emitting that track's
    /// finalised key points into `out`. A session is created on the first
    /// push of an unknown track (reusing a pooled compressor when one is
    /// available).
    pub fn push(&mut self, track: TrackId, p: TimedPoint, out: &mut dyn Sink) {
        self.latest_time = self.latest_time.max(p.t);
        let shard = self.shard_of(track);
        // Split borrows: the pool and factory are needed while the shard
        // map entry is held.
        let pool = &mut self.pool;
        let factory = &self.factory;
        let session = self.shards[shard].sessions.entry(track).or_insert_with(|| {
            let compressor = pool.pop().unwrap_or_else(factory);
            let baseline = compressor.decision_stats();
            Session {
                compressor,
                baseline,
                last_active: p.t,
                points: 0,
            }
        });
        session.compressor.push(p, out);
        session.last_active = session.last_active.max(p.t);
        session.points += 1;
    }

    /// Like [`FleetEngine::push`] but emitting tagged points into a
    /// [`FleetSink`].
    ///
    /// # Examples
    ///
    /// Two interleaved trackers, collected per track:
    ///
    /// ```
    /// use bqs_core::fleet::{FleetEngine, TrackId};
    /// use bqs_core::{BqsConfig, FastBqsCompressor};
    /// use bqs_geo::TimedPoint;
    /// use std::collections::HashMap;
    ///
    /// let config = BqsConfig::new(10.0).unwrap();
    /// let mut fleet =
    ///     FleetEngine::with_default_config(move || FastBqsCompressor::new(config));
    /// let mut out: HashMap<TrackId, Vec<TimedPoint>> = HashMap::new();
    /// for i in 0..50u64 {
    ///     let p = TimedPoint::new(i as f64 * 7.0, 0.0, i as f64 * 60.0);
    ///     fleet.push_tagged(i % 2, p, &mut out);
    /// }
    /// fleet.finish_all(&mut out);
    /// assert_eq!(out.len(), 2);
    /// assert!(out[&0].len() >= 2);
    /// ```
    pub fn push_tagged(&mut self, track: TrackId, p: TimedPoint, out: &mut dyn FleetSink) {
        self.push(track, p, &mut TrackSink::new(out, track));
    }

    /// Feeds a batch of `(track, point)` records (any interleaving),
    /// emitting tagged kept points.
    pub fn ingest(
        &mut self,
        records: impl IntoIterator<Item = (TrackId, TimedPoint)>,
        out: &mut dyn FleetSink,
    ) {
        for (track, p) in records {
            self.push_tagged(track, p, out);
        }
    }

    fn retire(
        &mut self,
        mut session: Session<C>,
        track: TrackId,
        reason: FlushReason,
        out: &mut dyn Sink,
    ) -> SessionReport {
        session.compressor.finish(out);
        let stats = session.compressor.decision_stats().since(&session.baseline);
        self.retired_stats.merge(&stats);
        self.retired_sessions += 1;
        if reason == FlushReason::Evicted {
            self.evicted_sessions += 1;
        }
        if self.pool.len() < self.config.max_pooled {
            self.pool.push(session.compressor);
        }
        SessionReport {
            track,
            points: session.points,
            stats,
            reason,
        }
    }

    /// Ends `track`'s stream: flushes its final key point into `out`,
    /// merges its statistics, recycles its compressor, and removes the
    /// session. `None` when the track has no live session.
    ///
    /// The point-level sink cannot receive a
    /// [`FleetSink::session_closed`] notification; sinks that act on
    /// session close (e.g. durable spill layers) should be driven through
    /// [`FleetEngine::finish_track_tagged`] instead.
    pub fn finish_track(&mut self, track: TrackId, out: &mut dyn Sink) -> Option<SessionReport> {
        let shard = self.shard_of(track);
        let session = self.shards[shard].sessions.remove(&track)?;
        Some(self.retire(session, track, FlushReason::Finished, out))
    }

    /// Like [`FleetEngine::finish_track`] but emitting tagged points into
    /// a [`FleetSink`] and firing its [`FleetSink::session_closed`] hook
    /// — the per-track counterpart of [`FleetEngine::finish_all`].
    pub fn finish_track_tagged(
        &mut self,
        track: TrackId,
        out: &mut dyn FleetSink,
    ) -> Option<SessionReport> {
        let report = self.finish_track(track, &mut TrackSink::new(out, track))?;
        out.session_closed(&report);
        Some(report)
    }

    /// Finalises every session whose last push is older than
    /// `config.idle_timeout` relative to `now` (stream time). Emits each
    /// evicted track's tail into `out`, notifies the sink via
    /// [`FleetSink::session_closed`], and returns one [`SessionReport`]
    /// per evicted session so per-session flush statistics are never
    /// merged away silently.
    pub fn evict_idle(&mut self, now: f64, out: &mut dyn FleetSink) -> Vec<SessionReport> {
        let cutoff = now - self.config.idle_timeout;
        let mut reports = Vec::new();
        for shard in 0..self.shards.len() {
            // Collect first: retiring mutates the pool and stats, so the
            // shard map cannot stay borrowed.
            let idle: Vec<TrackId> = self.shards[shard]
                .sessions
                .iter()
                .filter(|(_, s)| s.last_active < cutoff)
                .map(|(t, _)| *t)
                .collect();
            for track in idle {
                if let Some(session) = self.shards[shard].sessions.remove(&track) {
                    let report = self.retire(
                        session,
                        track,
                        FlushReason::Evicted,
                        &mut TrackSink::new(out, track),
                    );
                    out.session_closed(&report);
                    reports.push(report);
                }
            }
        }
        reports
    }

    /// Convenience: [`FleetEngine::evict_idle`] at the fleet's own stream
    /// clock. No-op before the first push.
    pub fn evict_idle_now(&mut self, out: &mut dyn FleetSink) -> Vec<SessionReport> {
        match self.latest_time() {
            Some(now) => self.evict_idle(now, out),
            None => Vec::new(),
        }
    }

    /// A consistent, non-destructive snapshot of every live session:
    /// the kept points `sink` still buffers per track
    /// ([`FleetSink::live_buffered`]) plus each live compressor's
    /// pending tail, obtained by finishing a *clone* so the session
    /// itself is untouched. The result is exactly what
    /// [`FleetEngine::finish_all`] into `sink` would make durable if it
    /// ran right now — the hot half a unified query layer merges with
    /// on-disk data.
    pub fn snapshot(&self, sink: &dyn FleetSink) -> FleetSnapshot
    where
        C: Clone,
    {
        let mut emitted: HashMap<TrackId, Vec<TimedPoint>> =
            sink.live_buffered().into_iter().collect();
        let mut tracks: Vec<TrackSnapshot> = Vec::new();
        for shard in &self.shards {
            for (&track, session) in &shard.sessions {
                let mut pending: Vec<TimedPoint> = Vec::new();
                session.compressor.clone().finish(&mut pending);
                tracks.push(TrackSnapshot {
                    track,
                    emitted: emitted.remove(&track).unwrap_or_default(),
                    pending,
                    live: true,
                });
            }
        }
        // Buffers without a live session: output awaiting a retried
        // hand-off (e.g. a spill whose append failed). Still hot data.
        for (track, points) in emitted {
            tracks.push(TrackSnapshot {
                track,
                emitted: points,
                pending: Vec::new(),
                live: false,
            });
        }
        tracks.sort_by_key(|t| t.track);
        FleetSnapshot { tracks }
    }

    /// Ends every live session (tagged emission), notifying the sink per
    /// session; returns one [`SessionReport`] per finalised session.
    pub fn finish_all(&mut self, out: &mut dyn FleetSink) -> Vec<SessionReport> {
        let mut reports = Vec::new();
        for shard in 0..self.shards.len() {
            let tracks: Vec<TrackId> = self.shards[shard].sessions.keys().copied().collect();
            for track in tracks {
                if let Some(session) = self.shards[shard].sessions.remove(&track) {
                    let report = self.retire(
                        session,
                        track,
                        FlushReason::Finished,
                        &mut TrackSink::new(out, track),
                    );
                    out.session_closed(&report);
                    reports.push(report);
                }
            }
        }
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BqsConfig;
    use crate::fbqs::FastBqsCompressor;
    use crate::stream::compress_all;

    fn engine(tolerance: f64) -> FleetEngine<FastBqsCompressor, impl Fn() -> FastBqsCompressor> {
        let config = BqsConfig::new(tolerance).unwrap();
        FleetEngine::with_default_config(move || FastBqsCompressor::new(config))
    }

    fn wave(track: u64, n: usize) -> Vec<TimedPoint> {
        (0..n)
            .map(|i| {
                let a = i as f64;
                TimedPoint::new(
                    a * 8.0 + track as f64,
                    (a * 0.21 + track as f64).sin() * 25.0,
                    a * 60.0,
                )
            })
            .collect()
    }

    #[test]
    fn single_track_matches_solo_compression() {
        let trace = wave(7, 300);
        let mut fleet = engine(10.0);
        let mut fleet_out: Vec<TimedPoint> = Vec::new();
        for p in &trace {
            fleet.push(7, *p, &mut fleet_out);
        }
        fleet.finish_track(7, &mut fleet_out);

        let config = BqsConfig::new(10.0).unwrap();
        let mut solo = FastBqsCompressor::new(config);
        let solo_out = compress_all(&mut solo, trace.iter().copied());
        assert_eq!(fleet_out, solo_out);
    }

    #[test]
    fn interleaved_tracks_stay_isolated() {
        let traces: Vec<Vec<TimedPoint>> = (0..8).map(|t| wave(t, 200)).collect();
        let mut fleet = engine(12.0);
        let mut tagged: HashMap<TrackId, Vec<TimedPoint>> = HashMap::new();
        // Round-robin interleave all eight tracks.
        for i in 0..200 {
            for (t, trace) in traces.iter().enumerate() {
                fleet.push_tagged(t as u64, trace[i], &mut tagged);
            }
        }
        fleet.finish_all(&mut tagged);

        let config = BqsConfig::new(12.0).unwrap();
        for (t, trace) in traces.iter().enumerate() {
            let mut solo = FastBqsCompressor::new(config);
            let solo_out = compress_all(&mut solo, trace.iter().copied());
            assert_eq!(tagged[&(t as u64)], solo_out, "track {t}");
        }
    }

    #[test]
    fn finish_all_drains_every_session() {
        let mut fleet = engine(10.0);
        let mut out: Vec<(TrackId, TimedPoint)> = Vec::new();
        for t in 0..50u64 {
            for p in wave(t, 20) {
                fleet.push_tagged(t, p, &mut out);
            }
        }
        assert_eq!(fleet.active_sessions(), 50);
        let reports = fleet.finish_all(&mut out);
        assert_eq!(reports.len(), 50);
        assert!(reports.iter().all(|r| r.reason == FlushReason::Finished));
        assert_eq!(fleet.active_sessions(), 0);
        assert_eq!(fleet.retired_sessions(), 50);
        // Every track emitted at least its two anchors.
        for t in 0..50u64 {
            assert!(out.iter().filter(|(track, _)| *track == t).count() >= 2);
        }
    }

    #[test]
    fn idle_sessions_are_evicted_and_compressors_recycled() {
        let mut fleet = engine(10.0);
        let mut out: Vec<(TrackId, TimedPoint)> = Vec::new();
        // Track 1 stops at t=600; track 2 keeps going to t=6000.
        for p in wave(1, 11) {
            fleet.push_tagged(1, p, &mut out);
        }
        for p in wave(2, 101) {
            fleet.push_tagged(2, p, &mut out);
        }
        assert_eq!(fleet.active_sessions(), 2);
        // Default idle timeout is 3600 s; track 1 last pushed at t=600.
        let evicted = fleet.evict_idle_now(&mut out);
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].track, 1);
        assert_eq!(evicted[0].reason, FlushReason::Evicted);
        assert_eq!(evicted[0].points, 11);
        assert_eq!(fleet.evicted_sessions(), 1);
        assert_eq!(fleet.active_sessions(), 1);
        assert_eq!(fleet.pooled_compressors(), 1);
        // Track 1's tail point must have been flushed on eviction.
        let track1_last = out.iter().rev().find(|(t, _)| *t == 1).unwrap().1;
        assert_eq!(track1_last.t, 600.0);

        // A new session reuses the pooled compressor.
        fleet.push_tagged(3, TimedPoint::new(0.0, 0.0, 7000.0), &mut out);
        assert_eq!(fleet.pooled_compressors(), 0);
    }

    #[test]
    fn recycled_compressors_attribute_stats_to_the_right_session() {
        let mut fleet = engine(10.0);
        let mut out: Vec<(TrackId, TimedPoint)> = Vec::new();
        let trace = wave(0, 100);
        for p in &trace {
            fleet.push_tagged(10, *p, &mut out);
        }
        let r1 = fleet
            .finish_track(10, &mut TrackSink::new(&mut out, 10))
            .unwrap();
        assert_eq!(r1.points, 100);
        assert_eq!(r1.stats.points, 100);

        // Second session on a recycled compressor: counters must restart.
        for p in &trace {
            fleet.push_tagged(11, *p, &mut out);
        }
        let r2 = fleet
            .finish_track(11, &mut TrackSink::new(&mut out, 11))
            .unwrap();
        assert_eq!(
            r2.stats.points, 100,
            "baseline offset must isolate sessions"
        );
        assert_eq!(fleet.stats().points, 200);
    }

    #[test]
    fn sharding_spreads_sequential_ids() {
        let mut fleet = engine(10.0);
        let mut out = CountingFleetSink::default();
        for t in 0..256u64 {
            fleet.push_tagged(t, TimedPoint::new(0.0, 0.0, 0.0), &mut out);
        }
        let loads = fleet.shard_loads();
        assert_eq!(loads.iter().sum::<usize>(), 256);
        let max = *loads.iter().max().unwrap();
        // 256 ids over 16 shards: a uniform hash keeps the worst shard far
        // below a pathological pile-up.
        assert!(max <= 40, "shard skew too high: {loads:?}");
    }

    #[test]
    fn counting_sink_path_is_allocation_free_per_push() {
        let mut fleet = engine(10.0);
        let mut counter = CountingFleetSink::default();
        for p in wave(0, 500) {
            fleet.push_tagged(0, p, &mut counter);
        }
        fleet.finish_all(&mut counter);
        assert!(counter.count >= 2);
        assert!(counter.count < 500);
    }

    #[test]
    fn tee_fleet_sink_duplicates_points_and_close_notifications() {
        struct CloseCounter {
            points: usize,
            closes: Vec<(TrackId, FlushReason)>,
        }
        impl FleetSink for CloseCounter {
            fn accept(&mut self, _track: TrackId, _point: TimedPoint) {
                self.points += 1;
            }
            fn session_closed(&mut self, report: &SessionReport) {
                self.closes.push((report.track, report.reason));
            }
        }
        let mut fleet = engine(10.0);
        let mut collected: Vec<(TrackId, TimedPoint)> = Vec::new();
        let mut counter = CloseCounter {
            points: 0,
            closes: Vec::new(),
        };
        {
            let mut tee = TeeFleetSink::new(&mut collected, &mut counter);
            for p in wave(3, 50) {
                fleet.push_tagged(3, p, &mut tee);
            }
            fleet.finish_all(&mut tee);
        }
        assert!(!collected.is_empty());
        assert_eq!(collected.len(), counter.points);
        assert_eq!(counter.closes, vec![(3, FlushReason::Finished)]);
    }

    #[test]
    fn snapshot_equals_what_finishing_now_would_emit_and_is_non_destructive() {
        let traces: Vec<Vec<TimedPoint>> = (0..4).map(|t| wave(t, 120)).collect();
        let mut fleet = engine(10.0);
        let mut sink: HashMap<TrackId, Vec<TimedPoint>> = HashMap::new();
        // Push a prefix, snapshot, then keep going: the snapshot must
        // match solo compression of the prefix and must not perturb the
        // final output.
        for i in 0..70 {
            for (t, trace) in traces.iter().enumerate() {
                fleet.push_tagged(t as u64, trace[i], &mut sink);
            }
        }
        let snap = fleet.snapshot(&sink);
        assert_eq!(snap.len(), 4);
        let config = BqsConfig::new(10.0).unwrap();
        for (t, trace) in traces.iter().enumerate() {
            let mut solo = FastBqsCompressor::new(config);
            let expected = compress_all(&mut solo, trace[..70].iter().copied());
            let track = snap.track(t as u64).unwrap();
            assert!(track.live);
            assert_eq!(track.points(), expected, "track {t}");
            assert_eq!(track.emitted, sink[&(t as u64)], "track {t}");
        }
        assert!(snap.track(99).is_none());

        for i in 70..120 {
            for (t, trace) in traces.iter().enumerate() {
                fleet.push_tagged(t as u64, trace[i], &mut sink);
            }
        }
        fleet.finish_all(&mut sink);
        for (t, trace) in traces.iter().enumerate() {
            let mut solo = FastBqsCompressor::new(config);
            let expected = compress_all(&mut solo, trace.iter().copied());
            assert_eq!(sink[&(t as u64)], expected, "track {t} after snapshot");
        }
    }

    #[test]
    fn snapshot_through_a_non_buffering_sink_still_reports_pending_tails() {
        let mut fleet = engine(10.0);
        let mut counter = CountingFleetSink::default();
        for p in wave(5, 40) {
            fleet.push_tagged(5, p, &mut counter);
        }
        let snap = fleet.snapshot(&counter);
        let track = snap.track(5).unwrap();
        assert!(track.emitted.is_empty(), "counting sink buffers nothing");
        assert!(!track.pending.is_empty(), "the close tail is always live");
    }

    #[test]
    fn finish_unknown_track_is_none() {
        let mut fleet = engine(10.0);
        let mut out: Vec<TimedPoint> = Vec::new();
        assert!(fleet.finish_track(99, &mut out).is_none());
    }

    #[test]
    fn pool_is_bounded() {
        let config = BqsConfig::new(10.0).unwrap();
        let mut fleet = FleetEngine::new(
            FleetConfig {
                max_pooled: 4,
                ..FleetConfig::default()
            },
            move || FastBqsCompressor::new(config),
        );
        let mut out: Vec<(TrackId, TimedPoint)> = Vec::new();
        for t in 0..32u64 {
            fleet.push_tagged(t, TimedPoint::new(0.0, 0.0, t as f64), &mut out);
        }
        fleet.finish_all(&mut out);
        assert_eq!(fleet.pooled_compressors(), 4);
    }
}
