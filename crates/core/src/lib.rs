//! # bqs-core — the Bounded Quadrant System
//!
//! A from-scratch implementation of the trajectory-compression algorithms of
//! *"Bounded Quadrant System: Error-bounded Trajectory Compression on the
//! Go"* (Liu, Zhao, Sommer, Shang, Kusy, Jurdak — ICDE 2015).
//!
//! ## What lives here
//!
//! * [`quadrant`] — the per-quadrant bounding structure: minimum bounding
//!   rectangle, two angular bounding lines, and the ≤8 significant points
//!   from which deviation bounds are derived (paper §V-B).
//! * [`bounds`] — the deviation lower/upper bound computation implementing
//!   Theorems 5.1–5.5.
//! * [`bqs`] — the buffered BQS compressor (Algorithm 1): falls back to a
//!   full deviation scan when the bounds are inconclusive.
//! * [`fbqs`] — the Fast BQS compressor (§V-E): never scans, never buffers;
//!   O(1) time and space per point.
//! * [`rotation`] — data-centric rotation (§V-D), shared by both variants.
//! * [`metrics`] — point-to-line vs point-to-segment deviation metrics
//!   (§IV and Eq. 11).
//! * [`stream`] — the streaming-compressor trait all algorithms (including
//!   the baselines crate) implement, the [`Sink`] emission layer
//!   (`Vec`, counting, callback, chord and page adapters — zero-allocation
//!   output paths), plus decision statistics from which pruning power is
//!   computed.
//! * [`fleet`] — the multi-session [`FleetEngine`]: hash-sharded sessions
//!   keyed by track id, per-session compressor state with recycling,
//!   idle-session eviction and merged decision statistics — plus
//!   [`fleet::parallel`], the multi-threaded sharded runtime
//!   ([`ParallelFleet`]) that scales the engine across cores.
//! * [`reconstruct`] — timestamp interpolation and trajectory reconstruction
//!   (Eqs. 1–3), with uniform and online-fitted Gaussian progress models.
//! * [`bqs3d`] — the 3-D BQS (§V-G): bounding prisms, Θ/Φ bounding planes
//!   and a 3-D streaming compressor for altitude or time-sensitive errors.
//! * [`bqs4d`] — a 4-D BQS over ⟨x, y, altitude, scaled time⟩, the §VII
//!   future-work sketch made concrete.
//!
//! ## Quick example
//!
//! ```
//! use bqs_core::prelude::*;
//!
//! let config = BqsConfig::new(10.0).expect("positive tolerance");
//! let mut compressor = FastBqsCompressor::new(config);
//! let mut kept = Vec::new();
//! for i in 0..100 {
//!     // A gentle arc: mostly compressible at a 10 m tolerance.
//!     let x = i as f64 * 10.0;
//!     let y = (i as f64 / 30.0).sin() * 4.0;
//!     compressor.push(TimedPoint::new(x, y, i as f64 * 60.0), &mut kept);
//! }
//! compressor.finish(&mut kept);
//! assert!(kept.len() >= 2);
//! assert!(kept.len() < 100);
//! ```

#![deny(missing_docs)]

pub mod bounds;
pub mod bqs;
pub mod bqs3d;
pub mod bqs4d;
pub mod config;
pub mod engine;
pub mod fbqs;
pub mod fleet;
pub mod metrics;
pub mod quadrant;
pub mod reconstruct;
pub mod rotation;
pub mod segments;
pub mod stream;

pub use bounds::DeviationBounds;
pub use bqs::BqsCompressor;
pub use bqs3d::{Bqs3dCompressor, Bqs3dConfig, OctantBounds};
pub use bqs4d::{Bqs4dCompressor, Bqs4dConfig};
pub use config::{BoundsMode, BqsConfig, ConfigError, RotationMode};
pub use fbqs::FastBqsCompressor;
pub use fleet::{
    FleetConfig, FleetEngine, FleetJoin, FleetMetrics, FleetSink, FlushReason, ParallelConfig,
    ParallelFleet, SessionReport, ShardFailure, ShardOutput, TeeFleetSink, TrackId,
};
pub use metrics::DeviationMetric;
pub use quadrant::QuadrantBounds;
pub use segments::{segments, summarize, SegmentView, TrajectorySummary};
pub use stream::{
    compress_all, compress_all_with_stats, compress_into, CountingSink, DecisionStats, Sink,
    StreamCompressor,
};

/// Convenience re-exports for downstream users.
pub mod prelude {
    pub use crate::bqs::BqsCompressor;
    pub use crate::config::{BoundsMode, BqsConfig, RotationMode};
    pub use crate::fbqs::FastBqsCompressor;
    pub use crate::fleet::{FleetConfig, FleetEngine, ParallelConfig, ParallelFleet};
    pub use crate::metrics::DeviationMetric;
    pub use crate::stream::{compress_all, compress_into, CountingSink, Sink, StreamCompressor};
    pub use bqs_geo::{Point2, TimedPoint};
}
