//! Compressor configuration.

use crate::metrics::DeviationMetric;
use serde::{Deserialize, Serialize};

/// How many points the data-centric rotation warm-up buffers by default —
/// the paper suggests "the first few points (e.g. 5)" (§V-D).
pub const DEFAULT_ROTATION_WARMUP: usize = 5;

/// Data-centric rotation behaviour (paper §V-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RotationMode {
    /// No rotation: quadrants are axis-aligned at every segment start.
    Disabled,
    /// Buffer the first `warmup` effective points of each segment, rotate
    /// the frame so the start→centroid direction lies on the +x axis, and
    /// only then start populating the quadrant systems. Tightens the hulls
    /// because points split across two quadrants around the axis.
    DataCentric {
        /// Number of points buffered before fixing the rotation (≥ 1).
        warmup: usize,
    },
}

impl Default for RotationMode {
    fn default() -> Self {
        RotationMode::DataCentric {
            warmup: DEFAULT_ROTATION_WARMUP,
        }
    }
}

/// Which upper/lower bound formulas the quadrant systems use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BoundsMode {
    /// Provably sound bounds over the clipped-wedge significant points (ray
    /// /box intersections plus the box corners inside the angular wedge —
    /// still ≤ 8 points per quadrant). The upper bound is guaranteed to
    /// dominate the true deviation, which is what preserves the error
    /// guarantee when a point is admitted without a full scan.
    #[default]
    Sound,
    /// The formulas exactly as printed in Theorems 5.3–5.5, for ablation
    /// and fidelity comparison. The printed upper bound of Theorems 5.3/5.4
    /// (`max{d_intersection}`) can under-estimate the true deviation when a
    /// box corner inside the wedge protrudes past both bounding rays'
    /// intersection points; [`BoundsMode::Sound`] closes that gap.
    PaperExact,
    /// Theorem 5.2 only: bounds from the four box corners, ignoring the
    /// angular bounding lines. Sound but loose — the paper introduces the
    /// advanced theorems precisely because these "can hardly avoid any
    /// deviation computation". Kept for the bound-tier ablation.
    CoarseCorners,
}

/// Configuration shared by the BQS and Fast BQS compressors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BqsConfig {
    /// Error tolerance `d` in metres (must be finite and > 0).
    pub tolerance: f64,
    /// Deviation metric.
    pub metric: DeviationMetric,
    /// Data-centric rotation behaviour.
    pub rotation: RotationMode,
    /// Bound formula selection.
    pub bounds_mode: BoundsMode,
}

impl BqsConfig {
    /// Creates a configuration with the paper's defaults: point-to-line
    /// metric, data-centric rotation with a 5-point warm-up, sound bounds.
    pub fn new(tolerance: f64) -> Result<BqsConfig, ConfigError> {
        let config = BqsConfig {
            tolerance,
            metric: DeviationMetric::default(),
            rotation: RotationMode::default(),
            bounds_mode: BoundsMode::default(),
        };
        config.validate()?;
        Ok(config)
    }

    /// Replaces the deviation metric.
    pub fn with_metric(mut self, metric: DeviationMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Replaces the rotation mode.
    pub fn with_rotation(mut self, rotation: RotationMode) -> Self {
        self.rotation = rotation;
        self
    }

    /// Replaces the bounds mode.
    pub fn with_bounds_mode(mut self, bounds_mode: BoundsMode) -> Self {
        self.bounds_mode = bounds_mode;
        self
    }

    /// Checks the configuration invariants.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.tolerance.is_finite() || self.tolerance <= 0.0 {
            return Err(ConfigError::InvalidTolerance {
                tolerance: self.tolerance,
            });
        }
        if let RotationMode::DataCentric { warmup } = self.rotation {
            if warmup == 0 {
                return Err(ConfigError::ZeroWarmup);
            }
        }
        Ok(())
    }
}

/// Configuration errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// Tolerance must be finite and strictly positive.
    InvalidTolerance {
        /// The rejected value.
        tolerance: f64,
    },
    /// A data-centric rotation warm-up of zero points cannot fix a frame.
    ZeroWarmup,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::InvalidTolerance { tolerance } => {
                write!(f, "tolerance must be finite and > 0, got {tolerance}")
            }
            ConfigError::ZeroWarmup => write!(f, "rotation warm-up must be ≥ 1 point"),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = BqsConfig::new(10.0).unwrap();
        assert_eq!(c.tolerance, 10.0);
        assert_eq!(c.metric, DeviationMetric::PointToLine);
        assert_eq!(
            c.rotation,
            RotationMode::DataCentric {
                warmup: DEFAULT_ROTATION_WARMUP
            }
        );
        assert_eq!(c.bounds_mode, BoundsMode::Sound);
    }

    #[test]
    fn rejects_bad_tolerances() {
        assert!(BqsConfig::new(0.0).is_err());
        assert!(BqsConfig::new(-1.0).is_err());
        assert!(BqsConfig::new(f64::NAN).is_err());
        assert!(BqsConfig::new(f64::INFINITY).is_err());
    }

    #[test]
    fn rejects_zero_warmup() {
        let c = BqsConfig::new(1.0)
            .unwrap()
            .with_rotation(RotationMode::DataCentric { warmup: 0 });
        assert_eq!(c.validate(), Err(ConfigError::ZeroWarmup));
    }

    #[test]
    fn builder_methods() {
        let c = BqsConfig::new(5.0)
            .unwrap()
            .with_metric(DeviationMetric::PointToSegment)
            .with_rotation(RotationMode::Disabled)
            .with_bounds_mode(BoundsMode::PaperExact);
        assert_eq!(c.metric, DeviationMetric::PointToSegment);
        assert_eq!(c.rotation, RotationMode::Disabled);
        assert_eq!(c.bounds_mode, BoundsMode::PaperExact);
        assert!(c.validate().is_ok());
    }
}
