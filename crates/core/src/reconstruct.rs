//! Trajectory reconstruction from compressed key points (paper §IV,
//! Eqs. 1–3).
//!
//! A compressed trajectory keeps only key points; positions in between are
//! re-created by interpolating between the bracketing key points with a
//! *progress model* `P` that maps normalised time to normalised progress
//! along the chord. The paper's default is the uniform model
//! `P(t) = (t − t_s)/(t_e − t_s)`; it also suggests fitting a distribution
//! online "with semi-numeric algorithms" — implemented here as a Gaussian
//! progress model whose parameters come from a Welford online fit.

use bqs_geo::TimedPoint;

/// Maps normalised elapsed time `u ∈ [0, 1]` within a segment to normalised
/// progress along the chord (0 at the start key point, 1 at the end).
pub trait ProgressModel {
    /// The progress value; implementations must map 0 → 0 and 1 → 1 and be
    /// monotone non-decreasing.
    fn progress(&self, u: f64) -> f64;
}

/// The paper's default uniform model: progress equals elapsed time
/// (Eq. 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UniformProgress;

impl ProgressModel for UniformProgress {
    #[inline]
    fn progress(&self, u: f64) -> f64 {
        u.clamp(0.0, 1.0)
    }
}

/// A Gaussian-shaped progress model: motion concentrated around a mean
/// fraction of the segment duration, e.g. an animal that idles, travels,
/// then idles. Progress is the Gaussian CDF renormalised to pin 0 → 0 and
/// 1 → 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianProgress {
    mean: f64,
    sigma: f64,
}

impl GaussianProgress {
    /// Creates a model with the motion centred at `mean` (fraction of the
    /// segment duration) and spread `sigma`. `sigma` is clamped away from
    /// zero to keep the CDF invertible.
    pub fn new(mean: f64, sigma: f64) -> GaussianProgress {
        GaussianProgress {
            mean: mean.clamp(0.0, 1.0),
            sigma: sigma.max(1e-6),
        }
    }

    /// Standard normal CDF via the complementary error function
    /// (Abramowitz–Stegun 7.1.26 polynomial, |error| < 1.5e-7 — far below
    /// GPS noise).
    fn phi(z: f64) -> f64 {
        let t = 1.0 / (1.0 + 0.2316419 * z.abs());
        let poly = t
            * (0.319381530
                + t * (-0.356563782 + t * (1.781477937 + t * (-1.821255978 + t * 1.330274429))));
        let pdf = (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt();
        let upper = pdf * poly;
        if z >= 0.0 {
            1.0 - upper
        } else {
            upper
        }
    }

    fn cdf(&self, u: f64) -> f64 {
        Self::phi((u - self.mean) / self.sigma)
    }
}

impl ProgressModel for GaussianProgress {
    fn progress(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        let lo = self.cdf(0.0);
        let hi = self.cdf(1.0);
        if hi - lo <= f64::EPSILON {
            return u;
        }
        (self.cdf(u) - lo) / (hi - lo)
    }
}

/// Welford online mean/variance estimator (Knuth TAOCP vol. 2 §4.2.2, the
/// "semi-numeric algorithms" the paper cites for fitting `P` online).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineGaussianFit {
    count: u64,
    mean: f64,
    m2: f64,
}

impl OnlineGaussianFit {
    /// Creates an empty estimator.
    pub fn new() -> OnlineGaussianFit {
        OnlineGaussianFit::default()
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 for fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Builds a [`GaussianProgress`] model from the fitted statistics.
    pub fn to_progress_model(&self) -> GaussianProgress {
        GaussianProgress::new(self.mean, self.variance().sqrt())
    }
}

/// Reconstructs the location at time `t` between two key points (Eqs. 1–3,
/// generalised over the progress model). Clamps outside `[v_s.t, v_e.t]`.
pub fn interpolate<P: ProgressModel>(
    vs: TimedPoint,
    ve: TimedPoint,
    t: f64,
    model: &P,
) -> TimedPoint {
    let span = ve.t - vs.t;
    let u = if span <= 0.0 {
        1.0
    } else {
        ((t - vs.t) / span).clamp(0.0, 1.0)
    };
    let w = model.progress(u);
    TimedPoint::at(vs.pos.lerp(ve.pos, w), t)
}

/// Reconstructs positions at arbitrary query times from a compressed
/// trajectory (key points ordered by time).
#[derive(Debug, Clone)]
pub struct Reconstructor<P: ProgressModel = UniformProgress> {
    keys: Vec<TimedPoint>,
    model: P,
}

impl Reconstructor<UniformProgress> {
    /// Builds a reconstructor with the paper's uniform progress model.
    ///
    /// Returns `None` when `keys` is empty or timestamps are not
    /// non-decreasing.
    pub fn uniform(keys: Vec<TimedPoint>) -> Option<Reconstructor<UniformProgress>> {
        Reconstructor::with_model(keys, UniformProgress)
    }
}

impl<P: ProgressModel> Reconstructor<P> {
    /// Builds a reconstructor with a custom progress model.
    pub fn with_model(keys: Vec<TimedPoint>, model: P) -> Option<Reconstructor<P>> {
        if keys.is_empty() {
            return None;
        }
        if keys.windows(2).any(|w| w[1].t < w[0].t) {
            return None;
        }
        Some(Reconstructor { keys, model })
    }

    /// The key points.
    pub fn keys(&self) -> &[TimedPoint] {
        &self.keys
    }

    /// Position at time `t`, clamped to the trajectory's time range.
    pub fn at(&self, t: f64) -> TimedPoint {
        let keys = &self.keys;
        if t <= keys[0].t {
            return TimedPoint::at(keys[0].pos, t);
        }
        if t >= keys[keys.len() - 1].t {
            return TimedPoint::at(keys[keys.len() - 1].pos, t);
        }
        // Binary search for the bracketing pair.
        let idx = keys.partition_point(|k| k.t <= t);
        let (vs, ve) = (keys[idx - 1], keys[idx]);
        interpolate(vs, ve, t, &self.model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqs_geo::Point2;

    #[test]
    fn uniform_interpolation_matches_eq_2_and_3() {
        let vs = TimedPoint::new(0.0, 0.0, 100.0);
        let ve = TimedPoint::new(10.0, 20.0, 200.0);
        let mid = interpolate(vs, ve, 150.0, &UniformProgress);
        assert_eq!(mid.pos, Point2::new(5.0, 10.0));
        assert_eq!(interpolate(vs, ve, 100.0, &UniformProgress).pos, vs.pos);
        assert_eq!(interpolate(vs, ve, 200.0, &UniformProgress).pos, ve.pos);
    }

    #[test]
    fn interpolation_clamps_out_of_range() {
        let vs = TimedPoint::new(0.0, 0.0, 0.0);
        let ve = TimedPoint::new(10.0, 0.0, 10.0);
        assert_eq!(interpolate(vs, ve, -5.0, &UniformProgress).pos, vs.pos);
        assert_eq!(interpolate(vs, ve, 50.0, &UniformProgress).pos, ve.pos);
    }

    #[test]
    fn degenerate_time_span() {
        let vs = TimedPoint::new(0.0, 0.0, 5.0);
        let ve = TimedPoint::new(10.0, 0.0, 5.0);
        // Zero-length span snaps to the end point.
        assert_eq!(interpolate(vs, ve, 5.0, &UniformProgress).pos, ve.pos);
    }

    #[test]
    fn gaussian_progress_pins_endpoints_and_is_monotone() {
        let g = GaussianProgress::new(0.5, 0.15);
        assert!(g.progress(0.0).abs() < 1e-12);
        assert!((g.progress(1.0) - 1.0).abs() < 1e-12);
        let mut prev = -1.0;
        for i in 0..=100 {
            let u = i as f64 / 100.0;
            let w = g.progress(u);
            assert!(w >= prev - 1e-12);
            assert!((-1e-12..=1.0 + 1e-12).contains(&w));
            prev = w;
        }
        // Mid-centred Gaussian is steepest at the middle.
        let early = g.progress(0.3) - g.progress(0.2);
        let middle = g.progress(0.55) - g.progress(0.45);
        assert!(middle > early);
    }

    #[test]
    fn welford_fit_matches_batch_statistics() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut fit = OnlineGaussianFit::new();
        for x in data {
            fit.push(x);
        }
        assert_eq!(fit.count(), 8);
        assert!((fit.mean() - 5.0).abs() < 1e-12);
        assert!((fit.variance() - 4.0).abs() < 1e-12);
        let model = fit.to_progress_model();
        assert!((model.progress(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn welford_degenerate_cases() {
        let mut fit = OnlineGaussianFit::new();
        assert_eq!(fit.variance(), 0.0);
        fit.push(3.0);
        assert_eq!(fit.mean(), 3.0);
        assert_eq!(fit.variance(), 0.0);
    }

    #[test]
    fn reconstructor_brackets_and_clamps() {
        let keys = vec![
            TimedPoint::new(0.0, 0.0, 0.0),
            TimedPoint::new(100.0, 0.0, 10.0),
            TimedPoint::new(100.0, 50.0, 20.0),
        ];
        let r = Reconstructor::uniform(keys).unwrap();
        assert_eq!(r.at(5.0).pos, Point2::new(50.0, 0.0));
        assert_eq!(r.at(15.0).pos, Point2::new(100.0, 25.0));
        assert_eq!(r.at(-3.0).pos, Point2::new(0.0, 0.0));
        assert_eq!(r.at(99.0).pos, Point2::new(100.0, 50.0));
        assert_eq!(r.at(10.0).pos, Point2::new(100.0, 0.0));
    }

    #[test]
    fn reconstructor_rejects_bad_input() {
        assert!(Reconstructor::uniform(vec![]).is_none());
        let unordered = vec![
            TimedPoint::new(0.0, 0.0, 10.0),
            TimedPoint::new(1.0, 0.0, 5.0),
        ];
        assert!(Reconstructor::uniform(unordered).is_none());
    }
}
