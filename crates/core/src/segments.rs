//! Segment views over compressed trajectories.
//!
//! A compressed trajectory is just its key points; consumers usually want
//! the *segments* between consecutive keys with their derived statistics
//! (length, duration, straight-line speed). This module provides that view
//! plus stream-level summaries, so downstream code (stores, dashboards,
//! ecology pipelines) never re-derives them ad hoc.

use bqs_geo::{Segment2, TimedPoint};

/// One chord of a compressed trajectory with derived statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentView {
    /// Start key point.
    pub start: TimedPoint,
    /// End key point.
    pub end: TimedPoint,
}

impl SegmentView {
    /// Chord length in metres.
    pub fn length_m(&self) -> f64 {
        self.start.pos.distance(self.end.pos)
    }

    /// Duration in seconds (≥ 0 for valid trajectories).
    pub fn duration_s(&self) -> f64 {
        self.end.t - self.start.t
    }

    /// Straight-line speed in m/s; `None` for zero-duration segments.
    pub fn speed_mps(&self) -> Option<f64> {
        let dt = self.duration_s();
        if dt > 0.0 {
            Some(self.length_m() / dt)
        } else {
            None
        }
    }

    /// The chord as a geometric segment.
    pub fn chord(&self) -> Segment2 {
        Segment2::new(self.start.pos, self.end.pos)
    }

    /// Whether the object effectively held position over this segment
    /// (chord speed below `threshold_mps`).
    pub fn is_dwell(&self, threshold_mps: f64) -> bool {
        match self.speed_mps() {
            Some(v) => v < threshold_mps,
            None => true,
        }
    }
}

/// Iterates the segments of a compressed trajectory (consecutive key
/// pairs). Yields nothing for fewer than two keys.
pub fn segments(keys: &[TimedPoint]) -> impl Iterator<Item = SegmentView> + '_ {
    keys.windows(2).map(|w| SegmentView {
        start: w[0],
        end: w[1],
    })
}

/// Aggregate statistics of a compressed trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TrajectorySummary {
    /// Number of segments.
    pub segments: usize,
    /// Sum of chord lengths, metres.
    pub total_length_m: f64,
    /// Total time span, seconds.
    pub total_duration_s: f64,
    /// Longest single chord, metres.
    pub longest_segment_m: f64,
    /// Fastest chord speed observed, m/s.
    pub max_speed_mps: f64,
}

/// Summarises a compressed trajectory in one pass.
pub fn summarize(keys: &[TimedPoint]) -> TrajectorySummary {
    let mut s = TrajectorySummary::default();
    for seg in segments(keys) {
        s.segments += 1;
        let len = seg.length_m();
        s.total_length_m += len;
        s.longest_segment_m = s.longest_segment_m.max(len);
        if let Some(v) = seg.speed_mps() {
            s.max_speed_mps = s.max_speed_mps.max(v);
        }
    }
    if let (Some(first), Some(last)) = (keys.first(), keys.last()) {
        s.total_duration_s = last.t - first.t;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> Vec<TimedPoint> {
        vec![
            TimedPoint::new(0.0, 0.0, 0.0),
            TimedPoint::new(300.0, 400.0, 100.0), // 500 m in 100 s → 5 m/s
            TimedPoint::new(300.0, 400.0, 700.0), // dwell for 600 s
            TimedPoint::new(300.0, 1000.0, 760.0), // 600 m in 60 s → 10 m/s
        ]
    }

    #[test]
    fn segment_statistics() {
        let segs: Vec<SegmentView> = segments(&keys()).collect();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].length_m(), 500.0);
        assert_eq!(segs[0].duration_s(), 100.0);
        assert_eq!(segs[0].speed_mps(), Some(5.0));
        assert!(segs[1].is_dwell(0.5));
        assert!(!segs[2].is_dwell(0.5));
    }

    #[test]
    fn zero_duration_segment_has_no_speed() {
        let k = vec![
            TimedPoint::new(0.0, 0.0, 5.0),
            TimedPoint::new(10.0, 0.0, 5.0),
        ];
        let seg = segments(&k).next().unwrap();
        assert_eq!(seg.speed_mps(), None);
        assert!(seg.is_dwell(1.0));
    }

    #[test]
    fn summary_aggregates() {
        let s = summarize(&keys());
        assert_eq!(s.segments, 3);
        assert_eq!(s.total_length_m, 1100.0);
        assert_eq!(s.total_duration_s, 760.0);
        assert_eq!(s.longest_segment_m, 600.0);
        assert_eq!(s.max_speed_mps, 10.0);
    }

    #[test]
    fn tiny_inputs() {
        assert_eq!(segments(&[]).count(), 0);
        assert_eq!(segments(&keys()[..1]).count(), 0);
        let s = summarize(&[]);
        assert_eq!(s.segments, 0);
        assert_eq!(s.total_duration_s, 0.0);
    }

    #[test]
    fn chord_accessor() {
        let seg = segments(&keys()).next().unwrap();
        assert_eq!(seg.chord().length(), 500.0);
    }
}
