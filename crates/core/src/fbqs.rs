//! The Fast BQS compressor (paper §V-E): O(1) time and space per point.

use crate::config::BqsConfig;
use crate::engine::{BqsEngine, Fallback, StepTrace};
use crate::stream::{DecisionStats, HasDecisionStats, Sink, StreamCompressor};
use bqs_geo::TimedPoint;

/// The Fast Bounded Quadrant System compressor.
///
/// Identical to [`crate::BqsCompressor`] except in the inconclusive case
/// `d_lb ≤ d < d_ub`: instead of scanning a buffer it **aggressively takes
/// the point and starts a new segment**, so no per-segment buffer exists at
/// all. Each point is processed against at most 32 significant points
/// (≤ 8 per quadrant), giving O(1) time and space per point — O(n)/O(1) for
/// the whole stream (paper Table I). The cost is a slightly lower
/// compression rate, bounded by the pruning power of the bounds (Fig. 6:
/// typically < 10 % extra points).
///
/// ```
/// use bqs_core::prelude::*;
///
/// let mut fbqs = FastBqsCompressor::new(BqsConfig::new(10.0).unwrap());
/// let mut kept = Vec::new();
/// for i in 0..50 {
///     fbqs.push(TimedPoint::new(i as f64 * 25.0, 0.0, i as f64), &mut kept);
/// }
/// fbqs.finish(&mut kept);
/// assert_eq!(kept.len(), 2);
/// assert_eq!(fbqs.buffered_point_count(), 0); // never buffers
/// ```
#[derive(Debug, Clone)]
pub struct FastBqsCompressor {
    engine: BqsEngine,
}

impl FastBqsCompressor {
    /// Creates a Fast BQS compressor.
    ///
    /// # Panics
    /// Panics if `config` fails validation — construct configs through
    /// [`BqsConfig::new`] to get a `Result` instead.
    pub fn new(config: BqsConfig) -> FastBqsCompressor {
        FastBqsCompressor {
            engine: BqsEngine::new(config, Fallback::Cut),
        }
    }

    /// Pushes a point and returns the decision trace.
    pub fn push_traced(&mut self, p: TimedPoint, out: &mut dyn Sink) -> StepTrace {
        self.engine.push(p, out)
    }

    /// The configuration in use.
    pub fn config(&self) -> &BqsConfig {
        self.engine.config()
    }

    /// Always zero: the fast variant never keeps a scan buffer. Exposed so
    /// harnesses can assert the constant-space claim.
    pub fn buffered_point_count(&self) -> usize {
        self.engine.buffered_point_count()
    }

    /// Number of significant points currently maintained (≤ 32).
    pub fn significant_point_count(&self) -> usize {
        self.engine.significant_point_count()
    }
}

impl StreamCompressor for FastBqsCompressor {
    fn push(&mut self, p: TimedPoint, out: &mut dyn Sink) {
        self.engine.push(p, out);
    }

    fn finish(&mut self, out: &mut dyn Sink) {
        self.engine.finish(out);
    }

    fn name(&self) -> &'static str {
        "FBQS"
    }
}

impl HasDecisionStats for FastBqsCompressor {
    fn decision_stats(&self) -> DecisionStats {
        self.engine.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bqs::BqsCompressor;
    use crate::stream::compress_all;
    use bqs_geo::{max_deviation_to_chord, Point2};

    fn noisy_track(n: usize) -> Vec<TimedPoint> {
        // Deterministic pseudo-noise over a drifting path.
        let mut pts = Vec::with_capacity(n);
        let mut x = 0.0f64;
        let mut y = 0.0f64;
        for i in 0..n {
            let a = i as f64;
            x += 10.0 + (a * 0.7).sin() * 3.0;
            y += (a * 0.23).sin() * 8.0;
            pts.push(TimedPoint::new(x, y, a));
        }
        pts
    }

    #[test]
    fn never_scans_never_buffers() {
        let mut fbqs = FastBqsCompressor::new(BqsConfig::new(5.0).unwrap());
        let _ = compress_all(&mut fbqs, noisy_track(1000));
        let stats = fbqs.decision_stats();
        assert_eq!(stats.full_scans, 0);
        assert_eq!(fbqs.buffered_point_count(), 0);
        assert_eq!(stats.pruning_power(), 1.0);
    }

    #[test]
    fn keeps_at_least_as_many_points_as_bqs() {
        let pts = noisy_track(800);
        for tol in [3.0, 6.0, 12.0] {
            let config = BqsConfig::new(tol).unwrap();
            let mut bqs = BqsCompressor::new(config);
            let mut fbqs = FastBqsCompressor::new(config);
            let kept_bqs = compress_all(&mut bqs, pts.iter().copied()).len();
            let kept_fbqs = compress_all(&mut fbqs, pts.iter().copied()).len();
            assert!(
                kept_fbqs >= kept_bqs,
                "tolerance {tol}: FBQS kept {kept_fbqs} < BQS {kept_bqs}"
            );
        }
    }

    #[test]
    fn output_respects_error_bound() {
        let tolerance = 6.0;
        let pts = noisy_track(600);
        let mut fbqs = FastBqsCompressor::new(BqsConfig::new(tolerance).unwrap());
        let kept = compress_all(&mut fbqs, pts.iter().copied());
        let positions: Vec<Point2> = pts.iter().map(|p| p.pos).collect();
        for w in kept.windows(2) {
            let i = pts.iter().position(|p| p == &w[0]).unwrap();
            let j = pts.iter().position(|p| p == &w[1]).unwrap();
            let dev = max_deviation_to_chord(&positions[i + 1..j], positions[i], positions[j]);
            assert!(dev <= tolerance + 1e-9, "segment {i}..{j} deviates {dev}");
        }
    }

    #[test]
    fn aggressive_cuts_recorded() {
        let mut fbqs = FastBqsCompressor::new(BqsConfig::new(2.0).unwrap());
        let _ = compress_all(&mut fbqs, noisy_track(1000));
        let stats = fbqs.decision_stats();
        // A tight tolerance on a noisy track must hit the inconclusive case
        // at least occasionally.
        assert!(stats.aggressive_cuts > 0 || stats.by_bounds > 0);
        assert_eq!(stats.points, 1000);
    }

    #[test]
    fn name_is_fbqs() {
        let fbqs = FastBqsCompressor::new(BqsConfig::new(1.0).unwrap());
        assert_eq!(StreamCompressor::name(&fbqs), "FBQS");
    }
}
