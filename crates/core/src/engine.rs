//! The shared BQS decision engine.
//!
//! [`BqsEngine`] implements Algorithm 1's per-point state machine once; the
//! public [`crate::BqsCompressor`] (buffered, scan fallback) and
//! [`crate::FastBqsCompressor`] (no buffer, aggressive-cut fallback) are
//! thin wrappers selecting a [`Fallback`] policy.
//!
//! ## Decision pipeline for an incoming point `e`
//!
//! 1. **Segment start** — the first point of the stream opens a segment and
//!    is emitted immediately.
//! 2. **Warm-up** (data-centric rotation only) — until the configured number
//!    of *effective* points (outside the tolerance ball around the start)
//!    has arrived, decisions are made by a direct deviation scan over the
//!    constant-size warm-up buffer. When full, the frame is rotated towards
//!    the warm-up centroid and the buffered points populate the quadrants.
//! 3. **Bounds** — with the frame fixed, the ≤4 quadrant systems produce an
//!    aggregated `⟨d_lb, d_ub⟩` for the chord from the segment start to `e`
//!    (Theorems 5.3–5.5). `d_ub ≤ d` admits `e`; `d_lb > d` cuts.
//! 4. **Fallback** — when `d_lb ≤ d < d_ub`, [`Fallback::Scan`] computes the
//!    exact deviation over the segment buffer (Algorithm 1 line 11) and
//!    [`Fallback::Cut`] aggressively ends the segment (§V-E), which is what
//!    makes the fast variant O(1) per point.
//!
//! ## A note on Theorem 5.1 (and why admission is always verified)
//!
//! The paper admits points inside the tolerance ball around the segment
//! start without further checks: such a point can never *itself* deviate by
//! more than `d` from any chord through the start (Theorem 5.1, which holds
//! for both metrics since the start anchors the chord). This implementation
//! keeps the structural half of that optimisation — near points are never
//! inserted into the quadrant systems, so they never widen the hulls — but
//! still verifies the chord `start → e` against the *far* structure before
//! admitting `e`. Without that check, a near point could become a key point
//! whose chord was never validated against earlier far excursions, silently
//! breaking the error bound; with it, every admitted point is a valid
//! segment end and the bound is unconditional (see the property tests).

use crate::bounds::DeviationBounds;
use crate::config::{BqsConfig, RotationMode};
use crate::quadrant::QuadrantBounds;
use crate::rotation::SegmentFrame;
use crate::stream::{DecisionStats, Sink};
use bqs_geo::{Point2, Quadrant, TimedPoint};

/// What the engine does when the bounds are inconclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fallback {
    /// Compute the exact deviation over the segment buffer (BQS).
    Scan,
    /// End the segment aggressively without computing (Fast BQS).
    Cut,
}

/// How a push decision was reached, for tracing and statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionKind {
    /// First point of the stream.
    StreamStart,
    /// No far structure exists; the point was admitted trivially.
    Trivial,
    /// Decided during the rotation warm-up by a constant-size scan.
    WarmupScan,
    /// Decided by the deviation bounds alone.
    Bounds,
    /// Decided by a full deviation scan (Fallback::Scan).
    FullScan,
    /// Inconclusive bounds resolved by an aggressive cut (Fallback::Cut).
    AggressiveCut,
}

/// Whether the point extended the current segment or ended it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The point joined the current segment.
    Included,
    /// The segment ended at the previous point; a new segment absorbed the
    /// incoming point.
    SegmentCut,
}

/// Per-push trace record (drives the Fig. 3 experiment).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepTrace {
    /// Aggregated deviation bounds, when the bounds stage ran.
    pub bounds: Option<DeviationBounds>,
    /// Exact deviation, when a scan (warm-up or full) computed one.
    pub actual: Option<f64>,
    /// How the decision was made.
    pub decided_by: DecisionKind,
    /// The decision.
    pub outcome: Outcome,
}

/// Radius-growth factor between frame rebuilds: once the segment has grown
/// past `rebuild_at`, the frame re-aligns and the next rebuild is armed at
/// `radius × REBUILD_GROWTH`. Geometric spacing makes re-rotation O(1)
/// amortised per point.
const REBUILD_GROWTH: f64 = 2.0;

/// State for the segment currently being built.
#[derive(Debug, Clone)]
struct SegmentState {
    frame: SegmentFrame,
    quadrants: [Option<QuadrantBounds>; 4],
    /// Warm-up buffer of effective (far) points in world coordinates;
    /// bounded by the configured warm-up length.
    warmup: Vec<Point2>,
    /// Count of effective points admitted into this segment (post- and
    /// pre-rotation), used to decide whether far structure exists.
    far_points: usize,
    /// Local radius beyond which the frame re-rotates (∞ with rotation
    /// disabled). The initial data-centric rotation is fixed from points
    /// near the origin, so its angle carries noise of order
    /// `gps_noise / warmup_radius`; on a long straight run that tilt makes
    /// the axis-aligned boxes balloon diagonally and the bounds go
    /// inconclusive. Re-aligning at geometrically spaced radii and
    /// rebuilding the quadrants from their ≤9 hull vertices keeps the hull
    /// bloat logarithmic in segment length while staying O(1) per point
    /// and fully sound (the rebuilt hull contains the old one).
    rebuild_at: f64,
}

impl SegmentState {
    fn new(origin: Point2, rotation: RotationMode) -> SegmentState {
        let frame = match rotation {
            RotationMode::Disabled => SegmentFrame::axis_aligned(origin),
            RotationMode::DataCentric { .. } => SegmentFrame::awaiting_rotation(origin),
        };
        SegmentState {
            frame,
            quadrants: [None, None, None, None],
            warmup: Vec::new(),
            far_points: 0,
            rebuild_at: f64::INFINITY,
        }
    }

    fn insert_far(&mut self, world: Point2, warmup_limit: usize) {
        self.far_points += 1;
        if self.frame.is_fixed() {
            let radius = (world - self.frame.origin()).norm();
            if radius > self.rebuild_at {
                self.rebuild(world);
                self.rebuild_at = radius * REBUILD_GROWTH;
            }
            self.insert_into_quadrant(world);
        } else {
            self.warmup.push(world);
            if self.warmup.len() >= warmup_limit {
                let centroid =
                    // bqs-analyze: allow(no-unwrap-in-lib) — invariant: warm-up buffer is non-empty
                    SegmentFrame::centroid(&self.warmup).expect("warm-up buffer is non-empty");
                self.frame.fix_rotation(centroid);
                let origin = self.frame.origin();
                let r_max = self
                    .warmup
                    .iter()
                    .map(|p| (*p - origin).norm())
                    .fold(0.0f64, f64::max);
                self.rebuild_at = (r_max * REBUILD_GROWTH).max(f64::MIN_POSITIVE);
                let pending = std::mem::take(&mut self.warmup);
                for p in pending {
                    self.insert_into_quadrant(p);
                }
            }
        }
    }

    /// Re-aligns the frame's x axis towards `toward_world` and rebuilds the
    /// quadrant systems from the hull vertices of the old ones. Sound: the
    /// new structures bound every vertex of the old convex regions, so
    /// their hulls contain everything the old hulls contained.
    fn rebuild(&mut self, toward_world: Point2) {
        let old_frame = self.frame.clone();
        let mut vertices: Vec<Point2> = Vec::with_capacity(36);
        for q in self.quadrants.iter().flatten() {
            for v in q.hull_vertices() {
                vertices.push(old_frame.to_world(v));
            }
        }
        let mut frame = SegmentFrame::awaiting_rotation(old_frame.origin());
        frame.fix_rotation(toward_world);
        self.frame = frame;
        self.quadrants = [None, None, None, None];
        for v in vertices {
            self.insert_into_quadrant(v);
        }
    }

    fn insert_into_quadrant(&mut self, world: Point2) {
        let local = self.frame.to_local(world);
        let quadrant = Quadrant::of(local.x, local.y);
        match &mut self.quadrants[quadrant.index()] {
            Some(q) => q.insert(local),
            slot @ None => *slot = Some(QuadrantBounds::new(quadrant, local)),
        }
    }

    /// Aggregated bounds for the chord `origin → end_world` over all
    /// occupied quadrants (Algorithm 1 lines 4–5). `None` when the frame is
    /// not fixed yet.
    fn aggregated_bounds(&self, end_world: Point2, config: &BqsConfig) -> Option<DeviationBounds> {
        if !self.frame.is_fixed() {
            return None;
        }
        let end_local = self.frame.to_local(end_world);
        let mut agg = DeviationBounds::EMPTY;
        for q in self.quadrants.iter().flatten() {
            agg = agg.merge(q.deviation_bounds(end_local, config.metric, config.bounds_mode));
        }
        Some(agg)
    }

    /// Number of significant points currently maintained — the paper's
    /// "c ≤ 32" working-set claim (§V-E).
    fn significant_point_count(&self) -> usize {
        self.quadrants
            .iter()
            .flatten()
            .map(|q| {
                let sp = q.significant_points();
                4 + sp.lower.len() + sp.upper.len()
            })
            .sum()
    }
}

/// The shared BQS/FBQS engine. See the module docs for the pipeline.
#[derive(Debug, Clone)]
pub struct BqsEngine {
    config: BqsConfig,
    fallback: Fallback,
    state: Option<SegmentState>,
    /// Exact-scan buffer of far points (world coordinates); `Some` only for
    /// the buffered variant.
    buffer: Option<Vec<Point2>>,
    last: Option<TimedPoint>,
    last_emitted: Option<TimedPoint>,
    stats: DecisionStats,
}

impl BqsEngine {
    /// Creates an engine. `buffered` selects whether an exact-scan buffer is
    /// kept (it must be `true` for [`Fallback::Scan`] to have anything to
    /// scan).
    pub fn new(config: BqsConfig, fallback: Fallback) -> BqsEngine {
        // bqs-analyze: allow(no-unwrap-in-lib) — invariant: invalid BqsConfig
        config.validate().expect("invalid BqsConfig");
        let buffer = match fallback {
            Fallback::Scan => Some(Vec::new()),
            Fallback::Cut => None,
        };
        BqsEngine {
            config,
            fallback,
            state: None,
            buffer,
            last: None,
            last_emitted: None,
            stats: DecisionStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BqsConfig {
        &self.config
    }

    /// Decision statistics accumulated since construction (surviving
    /// `finish`, so multi-trace runs aggregate naturally).
    pub fn stats(&self) -> DecisionStats {
        self.stats
    }

    /// Significant points currently held — bounded by 32 (≤8 × 4 quadrants).
    pub fn significant_point_count(&self) -> usize {
        self.state
            .as_ref()
            .map_or(0, SegmentState::significant_point_count)
    }

    /// Points currently held in the exact-scan buffer (0 for the fast
    /// variant).
    pub fn buffered_point_count(&self) -> usize {
        self.buffer.as_ref().map_or(0, Vec::len)
    }

    /// Pushes the next stream point. Emits finalised key points into `out`
    /// and returns the decision trace.
    pub fn push(&mut self, p: TimedPoint, out: &mut dyn Sink) -> StepTrace {
        self.stats.points += 1;

        let Some(state) = self.state.as_mut() else {
            // First point of the stream: opens the first segment and is
            // always part of the output.
            self.emit(p, out);
            self.state = Some(SegmentState::new(p.pos, self.config.rotation));
            self.last = Some(p);
            self.stats.segments = 1;
            self.stats.trivial += 1;
            return StepTrace {
                bounds: None,
                actual: None,
                decided_by: DecisionKind::StreamStart,
                outcome: Outcome::Included,
            };
        };

        let tolerance = self.config.tolerance;
        let origin = state.frame.origin();

        // Decision stage.
        let (include, trace) = if state.far_points == 0 {
            // No far structure: any chord through the origin keeps every
            // admitted (near) point within `d` — Theorem 5.1 applied to the
            // whole segment so far.
            self.stats.trivial += 1;
            (
                true,
                StepTrace {
                    bounds: None,
                    actual: None,
                    decided_by: DecisionKind::Trivial,
                    outcome: Outcome::Included,
                },
            )
        } else if !state.frame.is_fixed() {
            // Warm-up: exact deviation over the constant-size warm-up buffer.
            let actual = self
                .config
                .metric
                .max_deviation(&state.warmup, origin, p.pos);
            self.stats.warmup_scans += 1;
            let include = actual <= tolerance;
            (
                include,
                StepTrace {
                    bounds: None,
                    actual: Some(actual),
                    decided_by: DecisionKind::WarmupScan,
                    outcome: if include {
                        Outcome::Included
                    } else {
                        Outcome::SegmentCut
                    },
                },
            )
        } else {
            let bounds = state
                .aggregated_bounds(p.pos, &self.config)
                // bqs-analyze: allow(no-unwrap-in-lib) — invariant: frame is fixed
                .expect("frame is fixed");
            if bounds.upper <= tolerance {
                self.stats.by_bounds += 1;
                (
                    true,
                    StepTrace {
                        bounds: Some(bounds),
                        actual: None,
                        decided_by: DecisionKind::Bounds,
                        outcome: Outcome::Included,
                    },
                )
            } else if bounds.lower > tolerance {
                self.stats.by_bounds += 1;
                (
                    false,
                    StepTrace {
                        bounds: Some(bounds),
                        actual: None,
                        decided_by: DecisionKind::Bounds,
                        outcome: Outcome::SegmentCut,
                    },
                )
            } else {
                match self.fallback {
                    Fallback::Scan => {
                        // bqs-analyze: allow(no-unwrap-in-lib) — invariant: scan fallback keeps a buffer
                        let buffer = self.buffer.as_ref().expect("scan fallback keeps a buffer");
                        let actual = self.config.metric.max_deviation(buffer, origin, p.pos);
                        self.stats.full_scans += 1;
                        let include = actual <= tolerance;
                        (
                            include,
                            StepTrace {
                                bounds: Some(bounds),
                                actual: Some(actual),
                                decided_by: DecisionKind::FullScan,
                                outcome: if include {
                                    Outcome::Included
                                } else {
                                    Outcome::SegmentCut
                                },
                            },
                        )
                    }
                    Fallback::Cut => {
                        self.stats.aggressive_cuts += 1;
                        (
                            false,
                            StepTrace {
                                bounds: Some(bounds),
                                actual: None,
                                decided_by: DecisionKind::AggressiveCut,
                                outcome: Outcome::SegmentCut,
                            },
                        )
                    }
                }
            }
        };

        if include {
            self.admit(p);
        } else {
            self.cut_and_restart(p, out);
        }
        trace
    }

    /// Admits `p` into the current segment.
    fn admit(&mut self, p: TimedPoint) {
        // bqs-analyze: allow(no-unwrap-in-lib) — invariant: segment exists
        let state = self.state.as_mut().expect("segment exists");
        let near = state.frame.origin().distance(p.pos) <= self.config.tolerance;
        if !near {
            let warmup_limit = match self.config.rotation {
                RotationMode::Disabled => 0,
                RotationMode::DataCentric { warmup } => warmup,
            };
            state.insert_far(p.pos, warmup_limit);
            if let Some(buffer) = self.buffer.as_mut() {
                buffer.push(p.pos);
            }
        }
        self.last = Some(p);
    }

    /// Ends the current segment at the previous point and restarts with `p`
    /// as the first point of the fresh segment.
    fn cut_and_restart(&mut self, p: TimedPoint, out: &mut dyn Sink) {
        let key = self
            .last
            // bqs-analyze: allow(no-unwrap-in-lib) — invariant: a cut is only reachable after an admission
            .expect("a cut is only reachable after an admission");
        self.emit(key, out);
        self.stats.segments += 1;
        self.state = Some(SegmentState::new(key.pos, self.config.rotation));
        if let Some(buffer) = self.buffer.as_mut() {
            buffer.clear();
        }
        // The incoming point joins the fresh segment. Its chord is the
        // degenerate-but-valid `key → p`; with no far structure yet the
        // admission is trivially sound.
        self.admit(p);
    }

    /// Flushes the final point of the last segment and resets the stream
    /// state (statistics are preserved).
    pub fn finish(&mut self, out: &mut dyn Sink) {
        if let Some(last) = self.last {
            if self.last_emitted != Some(last) {
                out.push(last);
            }
        }
        self.state = None;
        self.last = None;
        self.last_emitted = None;
        if let Some(buffer) = self.buffer.as_mut() {
            buffer.clear();
        }
    }

    fn emit(&mut self, p: TimedPoint, out: &mut dyn Sink) {
        out.push(p);
        self.last_emitted = Some(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BoundsMode;

    fn engine(tolerance: f64, fallback: Fallback) -> BqsEngine {
        BqsEngine::new(BqsConfig::new(tolerance).unwrap(), fallback)
    }

    fn drive(engine: &mut BqsEngine, pts: &[(f64, f64)]) -> Vec<TimedPoint> {
        let mut out = Vec::new();
        for (i, (x, y)) in pts.iter().enumerate() {
            engine.push(TimedPoint::new(*x, *y, i as f64), &mut out);
        }
        engine.finish(&mut out);
        out
    }

    #[test]
    fn straight_line_compresses_to_two_points() {
        for fallback in [Fallback::Scan, Fallback::Cut] {
            let mut e = engine(5.0, fallback);
            let pts: Vec<(f64, f64)> = (0..100).map(|i| (i as f64 * 10.0, 0.0)).collect();
            let out = drive(&mut e, &pts);
            assert_eq!(out.len(), 2, "{fallback:?}");
            assert_eq!(out[0].pos, Point2::new(0.0, 0.0));
            assert_eq!(out[1].pos, Point2::new(990.0, 0.0));
        }
    }

    #[test]
    fn stationary_cluster_compresses_to_two_points() {
        for fallback in [Fallback::Scan, Fallback::Cut] {
            let mut e = engine(5.0, fallback);
            // Jitter within 2 m of the start: all near points.
            let pts: Vec<(f64, f64)> = (0..50)
                .map(|i| {
                    let a = i as f64;
                    (2.0 * (a * 0.7).sin(), 2.0 * (a * 1.3).cos())
                })
                .collect();
            let out = drive(&mut e, &pts);
            assert_eq!(out.len(), 2, "{fallback:?}");
        }
    }

    #[test]
    fn sharp_corner_forces_a_cut() {
        for fallback in [Fallback::Scan, Fallback::Cut] {
            let mut e = engine(5.0, fallback);
            let mut pts: Vec<(f64, f64)> = (0..20).map(|i| (i as f64 * 20.0, 0.0)).collect();
            pts.extend((1..20).map(|i| (380.0, i as f64 * 20.0)));
            let out = drive(&mut e, &pts);
            assert!(
                out.len() >= 3,
                "{fallback:?}: corner must be kept, got {out:?}"
            );
            // The corner itself must be in the output.
            assert!(
                out.iter()
                    .any(|p| p.pos.distance(Point2::new(380.0, 0.0)) <= 5.0),
                "{fallback:?}: corner missing from {out:?}"
            );
        }
    }

    #[test]
    fn single_point_stream() {
        let mut e = engine(5.0, Fallback::Scan);
        let out = drive(&mut e, &[(3.0, 4.0)]);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn two_point_stream() {
        let mut e = engine(5.0, Fallback::Cut);
        let out = drive(&mut e, &[(0.0, 0.0), (100.0, 100.0)]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn empty_stream_finishes_cleanly() {
        let mut e = engine(5.0, Fallback::Scan);
        let mut out = Vec::new();
        e.finish(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn duplicate_points_are_absorbed() {
        let mut e = engine(5.0, Fallback::Cut);
        let pts = vec![(1.0, 1.0); 20];
        let out = drive(&mut e, &pts);
        assert_eq!(out.len(), 2); // first and (identical) last
    }

    #[test]
    fn fast_variant_never_scans_and_keeps_no_buffer() {
        let mut e = engine(3.0, Fallback::Cut);
        let pts: Vec<(f64, f64)> = (0..500)
            .map(|i| {
                let a = i as f64 * 0.1;
                (a.cos() * 300.0, a.sin() * 300.0)
            })
            .collect();
        let _ = drive(&mut e, &pts);
        let stats = e.stats();
        assert_eq!(stats.full_scans, 0);
        assert_eq!(e.buffered_point_count(), 0);
    }

    #[test]
    fn significant_point_budget_respected() {
        let mut e = engine(2.0, Fallback::Cut);
        let mut out = Vec::new();
        for i in 0..2000 {
            let a = i as f64 * 0.05;
            let p = TimedPoint::new(a.cos() * (100.0 + a), a.sin() * (100.0 + a), i as f64);
            e.push(p, &mut out);
            assert!(e.significant_point_count() <= 32);
        }
    }

    #[test]
    fn buffered_variant_counts_scans() {
        let mut e = engine(2.0, Fallback::Scan);
        let pts: Vec<(f64, f64)> = (0..300)
            .map(|i| {
                let a = i as f64 * 0.15;
                (i as f64 * 5.0, (a.sin()) * 6.0)
            })
            .collect();
        let _ = drive(&mut e, &pts);
        let stats = e.stats();
        assert!(stats.points == 300);
        assert!(stats.segments >= 2);
        // A wavy line at a tight tolerance needs at least some exact scans.
        assert!(stats.full_scans + stats.by_bounds + stats.trivial + stats.warmup_scans > 0);
    }

    #[test]
    fn output_is_subsequence_anchored_at_ends() {
        for fallback in [Fallback::Scan, Fallback::Cut] {
            let mut e = engine(4.0, fallback);
            let pts: Vec<(f64, f64)> = (0..200)
                .map(|i| {
                    let a = i as f64;
                    (a * 7.0, (a * 0.3).sin() * 30.0)
                })
                .collect();
            let out = drive(&mut e, &pts);
            assert_eq!(out.first().unwrap().t, 0.0);
            assert_eq!(out.last().unwrap().t, 199.0);
            // Strictly increasing timestamps (a subsequence).
            for w in out.windows(2) {
                assert!(w[0].t < w[1].t);
            }
        }
    }

    #[test]
    fn paper_exact_mode_runs() {
        let config = BqsConfig::new(5.0)
            .unwrap()
            .with_bounds_mode(BoundsMode::PaperExact);
        let mut e = BqsEngine::new(config, Fallback::Scan);
        let pts: Vec<(f64, f64)> = (0..100)
            .map(|i| (i as f64 * 10.0, ((i as f64) * 0.5).sin() * 8.0))
            .collect();
        let out = drive(&mut e, &pts);
        assert!(out.len() >= 2);
    }

    #[test]
    fn finish_resets_for_reuse() {
        let mut e = engine(5.0, Fallback::Scan);
        let out1 = drive(&mut e, &[(0.0, 0.0), (10.0, 0.0), (20.0, 0.0)]);
        let out2 = drive(&mut e, &[(0.0, 0.0), (10.0, 0.0), (20.0, 0.0)]);
        assert_eq!(out1.len(), out2.len());
        // Stats accumulate across streams.
        assert_eq!(e.stats().points, 6);
    }
}
