//! Deviation metrics.
//!
//! The paper defines deviation with the **point-to-line** distance (§IV,
//! "for simplicity of the proof and presentation") and shows the
//! **point-to-line-segment** metric also works, with the Eq. 11 adjustment
//! to the upper bound. Every compressor in this workspace is parameterised
//! over this choice.

use bqs_geo::{point_to_line_distance, point_to_segment_distance, Point2};
use serde::{Deserialize, Serialize};

/// Which distance kernel defines the deviation `â(τ)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DeviationMetric {
    /// Distance to the infinite line through the segment anchors (the
    /// paper's default).
    #[default]
    PointToLine,
    /// Distance to the closed segment between the anchors (never smaller
    /// than the line distance).
    PointToSegment,
}

impl DeviationMetric {
    /// Distance from `p` to the chord from `a` to `b` under this metric.
    #[inline]
    pub fn distance(self, p: Point2, a: Point2, b: Point2) -> f64 {
        match self {
            DeviationMetric::PointToLine => point_to_line_distance(p, a, b),
            DeviationMetric::PointToSegment => point_to_segment_distance(p, a, b),
        }
    }

    /// Maximum deviation of a buffer of interior points against the chord
    /// `a → b` (the "full computation" of Algorithm 1, line 11).
    pub fn max_deviation(self, buffer: &[Point2], a: Point2, b: Point2) -> f64 {
        buffer
            .iter()
            .map(|p| self.distance(*p, a, b))
            .fold(0.0, f64::max)
    }

    /// Short human-readable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            DeviationMetric::PointToLine => "point-to-line",
            DeviationMetric::PointToSegment => "point-to-segment",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_metric_matches_geo_kernel() {
        let (a, b) = (Point2::new(0.0, 0.0), Point2::new(10.0, 0.0));
        let p = Point2::new(20.0, 3.0);
        assert_eq!(DeviationMetric::PointToLine.distance(p, a, b), 3.0);
    }

    #[test]
    fn segment_metric_dominates_line_metric() {
        let (a, b) = (Point2::new(0.0, 0.0), Point2::new(10.0, 0.0));
        for p in [
            Point2::new(20.0, 3.0),
            Point2::new(-5.0, 1.0),
            Point2::new(5.0, -4.0),
        ] {
            let line = DeviationMetric::PointToLine.distance(p, a, b);
            let seg = DeviationMetric::PointToSegment.distance(p, a, b);
            assert!(seg >= line);
        }
    }

    #[test]
    fn max_deviation_over_buffer() {
        let (a, b) = (Point2::new(0.0, 0.0), Point2::new(10.0, 0.0));
        let buf = [
            Point2::new(2.0, 1.0),
            Point2::new(5.0, -4.0),
            Point2::new(8.0, 2.0),
        ];
        assert_eq!(DeviationMetric::PointToLine.max_deviation(&buf, a, b), 4.0);
        assert_eq!(DeviationMetric::PointToLine.max_deviation(&[], a, b), 0.0);
    }

    #[test]
    fn labels_are_distinct() {
        assert_ne!(
            DeviationMetric::PointToLine.label(),
            DeviationMetric::PointToSegment.label()
        );
    }
}
