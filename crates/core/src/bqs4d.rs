//! A 4-D Bounded Quadrant System — the paper's final future-work item
//! (§VII: "Exploring the potential of a 4-D BQS could be another
//! interesting extension to this work").
//!
//! Samples are `⟨x, y, altitude, scaled time⟩`, so a single deviation
//! bound covers planar error, altitude error *and* temporal error at once.
//! Space splits into 16 orthants around the segment start; each orthant
//! bounds its points with a 4-D hyperbox whose 16 corners give sound
//! deviation bounds (the Theorem 5.2 analogue — distance to a 4-D line is
//! convex, so its maximum over a box is attained at a corner). Angular
//! bounding *hyperplanes* are left as genuinely future work; the corner
//! tier alone already yields a working constant-memory compressor: the
//! working set is ≤ 16 orthants × 1 box = 16 boxes (256 corner
//! evaluations per decision, still O(1) per point).
//!
//! Known limitation of the corner tier: a hyperbox around diagonal motion
//! is fat, so the **fast** variant's bounds stay inconclusive on long
//! diagonal runs and it cuts early (the 2-D BQS solves exactly this with
//! angular bounds and data-centric rotation — their 4-D analogues are the
//! open part of the future work). The buffered variant is unaffected: its
//! exact-scan fallback recovers full compression.

use crate::bounds::DeviationBounds;
use crate::stream::Sink;
use bqs_geo::point4::{Box4, Line4, Point4};
use serde::{Deserialize, Serialize};

/// A timestamped 4-D sample.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TimedPoint4 {
    /// Position in the 4-D embedding.
    pub pos: Point4,
    /// Seconds since the trace epoch (also encoded, scaled, in `pos.w`).
    pub t: f64,
}

impl TimedPoint4 {
    /// Builds a sample from planar position, altitude and time, embedding
    /// time on the fourth axis at `seconds_to_metres`.
    pub fn new(x: f64, y: f64, altitude: f64, t: f64, seconds_to_metres: f64) -> TimedPoint4 {
        TimedPoint4 {
            pos: Point4::new(x, y, altitude, t * seconds_to_metres),
            t,
        }
    }
}

/// One of the sixteen orthants, by sign bits of (x, y, z, w).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Orthant(u8);

impl Orthant {
    /// Classifies a displacement (non-negative counts as positive).
    #[inline]
    pub fn of(p: Point4) -> Orthant {
        Orthant(
            ((p.x < 0.0) as u8)
                | (((p.y < 0.0) as u8) << 1)
                | (((p.z < 0.0) as u8) << 2)
                | (((p.w < 0.0) as u8) << 3),
        )
    }

    /// Contiguous index 0–15.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Configuration for the 4-D compressor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bqs4dConfig {
    /// Error tolerance in the embedded 4-D metric.
    pub tolerance: f64,
    /// Fast mode: cut on inconclusive bounds instead of scanning.
    pub fast: bool,
}

impl Bqs4dConfig {
    /// Creates a validated configuration (buffered).
    pub fn new(tolerance: f64) -> Result<Bqs4dConfig, crate::config::ConfigError> {
        if !tolerance.is_finite() || tolerance <= 0.0 {
            return Err(crate::config::ConfigError::InvalidTolerance { tolerance });
        }
        Ok(Bqs4dConfig {
            tolerance,
            fast: false,
        })
    }

    /// Switches to the fast variant.
    pub fn fast(mut self) -> Self {
        self.fast = true;
        self
    }
}

/// Streaming 4-D BQS compressor.
#[derive(Debug, Clone)]
pub struct Bqs4dCompressor {
    config: Bqs4dConfig,
    origin: Option<Point4>,
    boxes: [Option<Box4>; 16],
    far_points: usize,
    buffer: Option<Vec<Point4>>,
    last: Option<TimedPoint4>,
    last_emitted: Option<TimedPoint4>,
    segments: u64,
}

impl Bqs4dCompressor {
    /// Creates a 4-D compressor.
    pub fn new(config: Bqs4dConfig) -> Bqs4dCompressor {
        Bqs4dCompressor {
            config,
            origin: None,
            boxes: [None; 16],
            far_points: 0,
            buffer: if config.fast { None } else { Some(Vec::new()) },
            last: None,
            last_emitted: None,
            segments: 0,
        }
    }

    /// Segments produced so far.
    pub fn segments(&self) -> u64 {
        self.segments
    }

    fn aggregated_bounds(&self, origin: Point4, end: Point4) -> DeviationBounds {
        let line = Line4::new(Point4::ORIGIN, end.sub(origin));
        let mut agg = DeviationBounds::EMPTY;
        for b in self.boxes.iter().flatten() {
            let (lo, hi) = b.corner_distance_bounds(line);
            agg = agg.merge(DeviationBounds::new(lo, hi));
        }
        agg
    }

    /// Pushes a sample; emits finalised key points into `out`.
    pub fn push(&mut self, p: TimedPoint4, out: &mut dyn Sink<TimedPoint4>) {
        let Some(origin) = self.origin else {
            self.emit(p, out);
            self.origin = Some(p.pos);
            self.last = Some(p);
            self.segments = 1;
            return;
        };

        let include = if self.far_points == 0 {
            true
        } else {
            let bounds = self.aggregated_bounds(origin, p.pos);
            if bounds.upper <= self.config.tolerance {
                true
            } else if bounds.lower > self.config.tolerance {
                false
            } else if let Some(buffer) = self.buffer.as_ref() {
                let line = Line4::new(origin, p.pos);
                buffer
                    .iter()
                    .map(|q| line.distance_to(*q))
                    .fold(0.0, f64::max)
                    <= self.config.tolerance
            } else {
                false
            }
        };

        if include {
            self.admit(p);
        } else {
            // bqs-analyze: allow(no-unwrap-in-lib) — invariant: cut only after an admission
            let key = self.last.expect("cut only after an admission");
            self.emit(key, out);
            self.segments += 1;
            self.origin = Some(key.pos);
            self.boxes = [None; 16];
            self.far_points = 0;
            if let Some(buffer) = self.buffer.as_mut() {
                buffer.clear();
            }
            self.admit(p);
        }
    }

    fn admit(&mut self, p: TimedPoint4) {
        // bqs-analyze: allow(no-unwrap-in-lib) — invariant: segment exists
        let origin = self.origin.expect("segment exists");
        let local = p.pos.sub(origin);
        if local.norm() > self.config.tolerance {
            self.far_points += 1;
            let orthant = Orthant::of(local);
            match &mut self.boxes[orthant.index()] {
                Some(b) => b.expand(local),
                slot @ None => *slot = Some(Box4::from_point(local)),
            }
            if let Some(buffer) = self.buffer.as_mut() {
                buffer.push(p.pos);
            }
        }
        self.last = Some(p);
    }

    /// Flushes the final key point and resets.
    pub fn finish(&mut self, out: &mut dyn Sink<TimedPoint4>) {
        if let Some(last) = self.last {
            if self.last_emitted != Some(last) {
                out.push(last);
            }
        }
        self.origin = None;
        self.boxes = [None; 16];
        self.far_points = 0;
        self.last = None;
        self.last_emitted = None;
        if let Some(buffer) = self.buffer.as_mut() {
            buffer.clear();
        }
    }

    fn emit(&mut self, p: TimedPoint4, out: &mut dyn Sink<TimedPoint4>) {
        out.push(p);
        self.last_emitted = Some(p);
    }
}

/// Compresses a whole 4-D stream.
pub fn compress_all_4d(
    compressor: &mut Bqs4dCompressor,
    points: impl IntoIterator<Item = TimedPoint4>,
) -> Vec<TimedPoint4> {
    let mut out = Vec::new();
    for p in points {
        compressor.push(p, &mut out);
    }
    compressor.finish(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Steady climb on a steady heading at steady speed: one 4-D line.
    fn linear_flight(n: usize) -> Vec<TimedPoint4> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                TimedPoint4::new(t * 8.0, t * 3.0, t * 0.5, t, 1.0)
            })
            .collect()
    }

    #[test]
    fn orthant_classification() {
        assert_eq!(Orthant::of(Point4::new(1.0, 1.0, 1.0, 1.0)).index(), 0);
        assert_eq!(Orthant::of(Point4::new(-1.0, 1.0, 1.0, 1.0)).index(), 1);
        assert_eq!(Orthant::of(Point4::new(1.0, 1.0, 1.0, -1.0)).index(), 8);
        assert_eq!(Orthant::of(Point4::new(-1.0, -1.0, -1.0, -1.0)).index(), 15);
    }

    #[test]
    fn linear_4d_motion_compresses_to_two_points_buffered() {
        // Diagonal 4-D line: corner bounds are inconclusive, but the
        // buffered fallback scans and keeps compressing.
        let mut c = Bqs4dCompressor::new(Bqs4dConfig::new(5.0).unwrap());
        let out = compress_all_4d(&mut c, linear_flight(200));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn axis_aligned_motion_compresses_in_fast_mode() {
        // Along one axis the hyperbox is thin and the corner bounds are
        // conclusive, so even the fast variant collapses the run.
        let pts: Vec<TimedPoint4> = (0..200)
            .map(|i| TimedPoint4 {
                pos: Point4::new(i as f64 * 10.0, 0.0, 0.0, 0.0),
                t: i as f64,
            })
            .collect();
        let mut c = Bqs4dCompressor::new(Bqs4dConfig::new(5.0).unwrap().fast());
        let out = compress_all_4d(&mut c, pts);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn speed_change_is_kept_in_time_sensitive_mode() {
        // Constant path, but the object pauses halfway: spatially a line,
        // temporally a knee — the 4-D embedding must keep the knee.
        let mut pts = Vec::new();
        for i in 0..50 {
            pts.push(TimedPoint4::new(i as f64 * 10.0, 0.0, 0.0, i as f64, 2.0));
        }
        for i in 50..100 {
            pts.push(TimedPoint4::new(490.0, 0.0, 0.0, i as f64, 2.0));
        }
        let mut c = Bqs4dCompressor::new(Bqs4dConfig::new(8.0).unwrap());
        let out = compress_all_4d(&mut c, pts);
        assert!(out.len() >= 3, "the pause must break the 4-D line: {out:?}");
    }

    #[test]
    fn error_bound_holds_in_4d() {
        let tolerance = 6.0;
        let pts: Vec<TimedPoint4> = (0..400)
            .map(|i| {
                let t = i as f64;
                TimedPoint4::new(
                    t * 6.0 + (t * 0.21).sin() * 10.0,
                    (t * 0.13).cos() * 40.0,
                    (t * 0.05).sin() * 20.0,
                    t,
                    0.5,
                )
            })
            .collect();
        for fast in [false, true] {
            let mut config = Bqs4dConfig::new(tolerance).unwrap();
            if fast {
                config = config.fast();
            }
            let mut c = Bqs4dCompressor::new(config);
            let out = compress_all_4d(&mut c, pts.clone());
            for w in out.windows(2) {
                let i = pts.iter().position(|p| p == &w[0]).unwrap();
                let j = pts.iter().position(|p| p == &w[1]).unwrap();
                let line = Line4::new(w[0].pos, w[1].pos);
                for q in &pts[i + 1..j] {
                    assert!(
                        line.distance_to(q.pos) <= tolerance + 1e-9,
                        "fast={fast}, segment {i}..{j}"
                    );
                }
            }
        }
    }

    #[test]
    fn fast_never_buffers() {
        let mut c = Bqs4dCompressor::new(Bqs4dConfig::new(4.0).unwrap().fast());
        let _ = compress_all_4d(&mut c, linear_flight(500));
        assert!(c.buffer.is_none());
    }

    #[test]
    fn config_validation() {
        assert!(Bqs4dConfig::new(0.0).is_err());
        assert!(Bqs4dConfig::new(f64::NAN).is_err());
        assert!(Bqs4dConfig::new(1.0).unwrap().fast().fast);
    }
}
