//! The 3-D Bounded Quadrant System (paper §V-G).
//!
//! For 3-D tracking (altitude as `z`) or time-sensitive errors (scaled
//! timestamp as `z`), the BQS generalises per octant to a **bounding right
//! rectangular prism** plus two pairs of bounding planes:
//!
//! * the "vertical" planes `Θ_min`, `Θ_max` — both contain the z axis and
//!   track the smallest/greatest azimuth of any point;
//! * the "inclined" planes `Φ_min`, `Φ_max` — each passes through the two
//!   fixed anchor points `(sign(x), −sign(y), 0)` and `(−sign(x), sign(y),
//!   0)` of the octant and tracks the smallest/greatest inclination.
//!
//! Significant points are the planes' intersections with the prism edges
//! plus the prism vertex farthest from the origin — at most 17 per octant,
//! as the paper counts. The upper bound used for admission decisions is the
//! provably sound prism-corner bound (the 3-D analogue of Theorem 5.2);
//! the ≤17-point refined bound is exposed for the paper-exact mode. The 3-D
//! case is a generality demonstration in the paper (not part of its
//! evaluation), and this implementation follows that scope.

use crate::bounds::DeviationBounds;
use crate::config::BoundsMode;
use crate::stream::Sink;
use bqs_geo::{Line3, Plane, Point3, Prism};
use serde::{Deserialize, Serialize};

/// A timestamped 3-D point.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TimedPoint3 {
    /// Position; `z` is altitude in metres or a scaled timestamp.
    pub pos: Point3,
    /// Seconds since the trace epoch.
    pub t: f64,
}

impl TimedPoint3 {
    /// Creates a timestamped 3-D point.
    pub const fn new(x: f64, y: f64, z: f64, t: f64) -> TimedPoint3 {
        TimedPoint3 {
            pos: Point3::new(x, y, z),
            t,
        }
    }

    /// Builds the **time-sensitive** embedding (§V-G): the z axis carries
    /// the timestamp scaled by `seconds_to_metres`, so one deviation metric
    /// bounds both spatial and temporal error.
    pub fn time_sensitive(x: f64, y: f64, t: f64, seconds_to_metres: f64) -> TimedPoint3 {
        TimedPoint3 {
            pos: Point3::new(x, y, t * seconds_to_metres),
            t,
        }
    }
}

/// One of the eight octants, indexed by the sign bits of (x, y, z):
/// bit 0 set ⇔ x < 0, bit 1 set ⇔ y < 0, bit 2 set ⇔ z < 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Octant(u8);

impl Octant {
    /// Classifies a displacement from the origin (non-negative coordinates
    /// count as positive, mirroring the 2-D convention).
    #[inline]
    pub fn of(p: Point3) -> Octant {
        Octant(((p.x < 0.0) as u8) | (((p.y < 0.0) as u8) << 1) | (((p.z < 0.0) as u8) << 2))
    }

    /// Contiguous index 0–7.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Signs `(sx, sy, sz)` of the octant, `+1` on the non-negative side.
    #[inline]
    pub fn signs(self) -> (f64, f64, f64) {
        (
            if self.0 & 1 == 0 { 1.0 } else { -1.0 },
            if self.0 & 2 == 0 { 1.0 } else { -1.0 },
            if self.0 & 4 == 0 { 1.0 } else { -1.0 },
        )
    }

    /// The two fixed Φ-plane anchor points of this octant (§V-G):
    /// `(sign(x), −sign(y), 0)` and `(−sign(x), sign(y), 0)`.
    #[inline]
    pub fn phi_anchors(self) -> (Point3, Point3) {
        let (sx, sy, _) = self.signs();
        (Point3::new(sx, -sy, 0.0), Point3::new(-sx, sy, 0.0))
    }
}

/// Bounding state for one octant: prism, Θ azimuth range and Φ inclination
/// range.
#[derive(Debug, Clone, PartialEq)]
pub struct OctantBounds {
    octant: Octant,
    prism: Prism,
    /// Azimuth (atan2(y, x)) range of inserted points. Contiguous within an
    /// octant for the same reason as the 2-D quadrants.
    azimuth_min: f64,
    azimuth_max: f64,
    /// Inclination range: the angle of the Φ plane through each point,
    /// parameterised by the signed ratio `z / s(x, y)` where `s` is the
    /// distance from the point's XY projection to the anchor line.
    incline_min: f64,
    incline_max: f64,
    count: usize,
}

impl OctantBounds {
    /// Creates the structure from the first point of an octant.
    pub fn new(octant: Octant, p: Point3) -> OctantBounds {
        let (az, inc) = Self::angles(octant, p);
        OctantBounds {
            octant,
            prism: Prism::from_point(p),
            azimuth_min: az,
            azimuth_max: az,
            incline_min: inc,
            incline_max: inc,
            count: 1,
        }
    }

    /// Azimuth and inclination parameters of a point.
    fn angles(octant: Octant, p: Point3) -> (f64, f64) {
        let az = p.y.atan2(p.x);
        // Distance from the XY projection to the anchor line (the line
        // through the two Φ anchors, which passes through the origin with
        // direction (-sx, sy)): the inclination angle of the Φ plane through
        // p is atan2(z, that distance).
        let (sx, sy, _) = octant.signs();
        // Anchor-line direction in the XY plane.
        let (dx, dy) = (-sx, sy);
        let cross = (p.x * dy - p.y * dx).abs() / (dx * dx + dy * dy).sqrt();
        let inc = p.z.atan2(cross);
        (az, inc)
    }

    /// Which octant this structure bounds.
    pub fn octant(&self) -> Octant {
        self.octant
    }

    /// Number of inserted points.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when empty (never the case once constructed).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The bounding prism.
    pub fn prism(&self) -> &Prism {
        &self.prism
    }

    /// Inserts a point.
    pub fn insert(&mut self, p: Point3) {
        debug_assert_eq!(Octant::of(p), self.octant);
        self.prism.expand(p);
        let (az, inc) = Self::angles(self.octant, p);
        self.azimuth_min = self.azimuth_min.min(az);
        self.azimuth_max = self.azimuth_max.max(az);
        self.incline_min = self.incline_min.min(inc);
        self.incline_max = self.incline_max.max(inc);
        self.count += 1;
    }

    /// The four bounding planes: Θ_min, Θ_max (vertical), Φ_min, Φ_max
    /// (inclined). Degenerate Φ planes (all points on the anchor line) are
    /// omitted.
    pub fn bounding_planes(&self) -> Vec<Plane> {
        let mut planes = Vec::with_capacity(4);
        planes.push(Plane::vertical_through_z(self.azimuth_min));
        planes.push(Plane::vertical_through_z(self.azimuth_max));
        let (a1, a2) = self.octant.phi_anchors();
        for inc in [self.incline_min, self.incline_max] {
            // A third point on the Φ plane: lift the point of the anchor
            // line's perpendicular (through the origin) by the inclination.
            let (sx, sy, _) = self.octant.signs();
            // Perpendicular direction to the anchor line within XY.
            let (px, py) = (sx, sy);
            let norm = (px * px + py * py).sqrt();
            let third = Point3::new(px / norm * inc.cos(), py / norm * inc.cos(), inc.sin());
            if let Some(plane) = Plane::from_points(a1, a2, third) {
                planes.push(plane);
            }
        }
        planes
    }

    /// The paper's ≤17 significant points: each bounding plane's
    /// intersections with the prism edges, plus the prism vertex farthest
    /// from the origin.
    pub fn significant_points(&self) -> Vec<Point3> {
        let mut pts = Vec::with_capacity(17);
        for plane in self.bounding_planes() {
            pts.extend(plane.intersect_prism_edges(&self.prism));
        }
        pts.push(self.prism.farthest_corner_to(Point3::ORIGIN));
        pts
    }

    /// Whether a point satisfies the octant's angular constraints (azimuth
    /// between the Θ bounds, inclination between the Φ bounds) within a
    /// numeric slack. Points on/near the z axis have undefined azimuth and
    /// count as inside.
    fn in_wedges(&self, p: Point3, slack: f64) -> bool {
        let (az, inc) = Self::angles(self.octant, p);
        let az_ok = if p.x.abs() < 1e-9 && p.y.abs() < 1e-9 {
            true
        } else {
            az >= self.azimuth_min - slack && az <= self.azimuth_max + slack
        };
        az_ok && inc >= self.incline_min - slack && inc <= self.incline_max + slack
    }

    /// Deviation bounds for the chord `origin → end` under the 3-D
    /// point-to-line metric.
    ///
    /// Every inserted point lies in the convex region
    /// `prism ∩ Θ-wedge ∩ Φ-wedge`. In `Sound` mode the upper bound is the
    /// maximum distance over a vertex superset of that region: prism corners
    /// inside the wedges, bounding-plane/prism-edge hits inside the opposite
    /// wedge, the six plane-pair intersection lines clipped to the prism,
    /// and the origin (where any three bounding planes meet). Convexity of
    /// point-to-line distance makes the maximum over those vertices dominate
    /// every contained point. `PaperExact` mode instead uses the paper's
    /// ≤17 significant points (heuristic; not guaranteed to contain the
    /// region's protruding corners).
    ///
    /// The lower bound is the larger of the minimum corner distance and the
    /// per-plane minima over each bounding plane's prism intersections —
    /// each bounding plane carries at least one real point inside the prism.
    pub fn deviation_bounds(&self, end: Point3, mode: BoundsMode) -> DeviationBounds {
        let line = Line3::new(Point3::ORIGIN, end);
        let corners = self.prism.corners();
        let corner_d: Vec<f64> = corners.iter().map(|c| line.distance_to(*c)).collect();
        let lb_corners = corner_d.iter().fold(f64::INFINITY, |a, b| a.min(*b));

        const SLACK: f64 = 1e-9;
        let planes = self.bounding_planes();

        let mut lb = lb_corners;
        let mut ub = 0.0f64;

        // Vertex type (a): prism corners inside both wedges.
        for (c, d) in corners.iter().zip(corner_d.iter()) {
            if self.in_wedges(*c, SLACK) {
                ub = ub.max(*d);
            }
        }
        // Vertex type (b): plane/edge hits (also feed the lower bound).
        for plane in &planes {
            let hits = plane.intersect_prism_edges(&self.prism);
            if hits.is_empty() {
                continue;
            }
            let mut lo = f64::INFINITY;
            for h in &hits {
                let d = line.distance_to(*h);
                lo = lo.min(d);
                if self.in_wedges(*h, SLACK) {
                    ub = ub.max(d);
                }
            }
            lb = lb.max(lo);
        }
        // Vertex type (c): pairwise plane-intersection lines clipped to the
        // prism (unfiltered — a superset only enlarges the hull, which keeps
        // the bound sound).
        for i in 0..planes.len() {
            for j in (i + 1)..planes.len() {
                if let Some((p0, dir)) = planes[i].intersect_plane(&planes[j]) {
                    if let Some((a, b)) = self.prism.clip_line(p0, dir) {
                        ub = ub.max(line.distance_to(a)).max(line.distance_to(b));
                    }
                }
            }
        }
        // All three-plane meets collapse onto the origin, whose distance to
        // a chord anchored there is zero — included implicitly.

        let upper = match mode {
            BoundsMode::Sound => ub,
            BoundsMode::CoarseCorners => corner_d.iter().fold(0.0f64, |a, b| a.max(*b)),
            BoundsMode::PaperExact => {
                // The paper's significant points: plane/edge hits plus the
                // farthest prism vertex.
                let mut refined = line.distance_to(self.prism.farthest_corner_to(Point3::ORIGIN));
                for plane in &planes {
                    for h in plane.intersect_prism_edges(&self.prism) {
                        refined = refined.max(line.distance_to(h));
                    }
                }
                refined
            }
        };
        DeviationBounds::new(lb, upper)
    }
}

/// Configuration for the 3-D compressor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bqs3dConfig {
    /// Error tolerance in metres (of the embedded 3-D space).
    pub tolerance: f64,
    /// Fast mode: cut aggressively instead of scanning a buffer.
    pub fast: bool,
    /// Bound formulas (see [`OctantBounds::deviation_bounds`]).
    pub bounds_mode: BoundsMode,
}

impl Bqs3dConfig {
    /// Creates a validated configuration (buffered, sound bounds).
    pub fn new(tolerance: f64) -> Result<Bqs3dConfig, crate::config::ConfigError> {
        if !tolerance.is_finite() || tolerance <= 0.0 {
            return Err(crate::config::ConfigError::InvalidTolerance { tolerance });
        }
        Ok(Bqs3dConfig {
            tolerance,
            fast: false,
            bounds_mode: BoundsMode::Sound,
        })
    }

    /// Switches to the fast (O(1)-per-point) variant.
    pub fn fast(mut self) -> Self {
        self.fast = true;
        self
    }
}

/// Streaming 3-D BQS compressor over [`TimedPoint3`] streams.
#[derive(Debug, Clone)]
pub struct Bqs3dCompressor {
    config: Bqs3dConfig,
    origin: Option<Point3>,
    octants: [Option<OctantBounds>; 8],
    far_points: usize,
    buffer: Option<Vec<Point3>>,
    last: Option<TimedPoint3>,
    last_emitted: Option<TimedPoint3>,
    segments: u64,
}

impl Bqs3dCompressor {
    /// Creates a 3-D compressor.
    pub fn new(config: Bqs3dConfig) -> Bqs3dCompressor {
        Bqs3dCompressor {
            config,
            origin: None,
            octants: Default::default(),
            far_points: 0,
            buffer: if config.fast { None } else { Some(Vec::new()) },
            last: None,
            last_emitted: None,
            segments: 0,
        }
    }

    /// Segments produced so far.
    pub fn segments(&self) -> u64 {
        self.segments
    }

    /// Pushes a point; emits finalised key points into `out`.
    pub fn push(&mut self, p: TimedPoint3, out: &mut dyn Sink<TimedPoint3>) {
        let Some(origin) = self.origin else {
            self.emit(p, out);
            self.origin = Some(p.pos);
            self.last = Some(p);
            self.segments = 1;
            return;
        };

        let local_end = p.pos.sub(origin);
        let include = if self.far_points == 0 {
            true
        } else {
            let mut agg = DeviationBounds::EMPTY;
            for o in self.octants.iter().flatten() {
                agg = agg.merge(o.deviation_bounds(local_end, self.config.bounds_mode));
            }
            if agg.upper <= self.config.tolerance {
                true
            } else if agg.lower > self.config.tolerance {
                false
            } else if let Some(buffer) = self.buffer.as_ref() {
                let line = Line3::new(origin, p.pos);
                let actual = buffer
                    .iter()
                    .map(|q| line.distance_to(*q))
                    .fold(0.0, f64::max);
                actual <= self.config.tolerance
            } else {
                false
            }
        };

        if include {
            self.admit(p);
        } else {
            // bqs-analyze: allow(no-unwrap-in-lib) — invariant: cut only after an admission
            let key = self.last.expect("cut only after an admission");
            self.emit(key, out);
            self.segments += 1;
            self.origin = Some(key.pos);
            self.octants = Default::default();
            self.far_points = 0;
            if let Some(buffer) = self.buffer.as_mut() {
                buffer.clear();
            }
            self.admit(p);
        }
    }

    fn admit(&mut self, p: TimedPoint3) {
        // bqs-analyze: allow(no-unwrap-in-lib) — invariant: segment exists
        let origin = self.origin.expect("segment exists");
        let local = p.pos.sub(origin);
        if local.norm() > self.config.tolerance {
            self.far_points += 1;
            let octant = Octant::of(local);
            match &mut self.octants[octant.index()] {
                Some(o) => o.insert(local),
                slot @ None => *slot = Some(OctantBounds::new(octant, local)),
            }
            if let Some(buffer) = self.buffer.as_mut() {
                buffer.push(p.pos);
            }
        }
        self.last = Some(p);
    }

    /// Flushes the final key point and resets for reuse.
    pub fn finish(&mut self, out: &mut dyn Sink<TimedPoint3>) {
        if let Some(last) = self.last {
            if self.last_emitted != Some(last) {
                out.push(last);
            }
        }
        self.origin = None;
        self.octants = Default::default();
        self.far_points = 0;
        self.last = None;
        self.last_emitted = None;
        if let Some(buffer) = self.buffer.as_mut() {
            buffer.clear();
        }
    }

    fn emit(&mut self, p: TimedPoint3, out: &mut dyn Sink<TimedPoint3>) {
        out.push(p);
        self.last_emitted = Some(p);
    }
}

/// Compresses a whole 3-D stream.
pub fn compress_all_3d(
    compressor: &mut Bqs3dCompressor,
    points: impl IntoIterator<Item = TimedPoint3>,
) -> Vec<TimedPoint3> {
    let mut out = Vec::new();
    for p in points {
        compressor.push(p, &mut out);
    }
    compressor.finish(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn helix(n: usize) -> Vec<TimedPoint3> {
        (0..n)
            .map(|i| {
                let a = i as f64 * 0.08;
                TimedPoint3::new(a.cos() * 200.0, a.sin() * 200.0, i as f64 * 2.0, i as f64)
            })
            .collect()
    }

    #[test]
    fn octant_classification() {
        assert_eq!(Octant::of(Point3::new(1.0, 1.0, 1.0)).index(), 0);
        assert_eq!(Octant::of(Point3::new(-1.0, 1.0, 1.0)).index(), 1);
        assert_eq!(Octant::of(Point3::new(1.0, -1.0, 1.0)).index(), 2);
        assert_eq!(Octant::of(Point3::new(1.0, 1.0, -1.0)).index(), 4);
        assert_eq!(Octant::of(Point3::new(-1.0, -1.0, -1.0)).index(), 7);
    }

    #[test]
    fn phi_anchors_match_paper_example() {
        // First octant example from §V-G: anchors (1, −1, 0) and (−1, 1, 0).
        let (a1, a2) = Octant::of(Point3::new(1.0, 1.0, 1.0)).phi_anchors();
        assert_eq!(a1, Point3::new(1.0, -1.0, 0.0));
        assert_eq!(a2, Point3::new(-1.0, 1.0, 0.0));
    }

    #[test]
    fn significant_points_capped_at_17() {
        let pts = [
            Point3::new(10.0, 2.0, 3.0),
            Point3::new(4.0, 8.0, 1.0),
            Point3::new(7.0, 5.0, 9.0),
            Point3::new(6.0, 6.0, 2.0),
        ];
        let mut o = OctantBounds::new(Octant::of(pts[0]), pts[0]);
        for p in &pts[1..] {
            o.insert(*p);
        }
        let sig = o.significant_points();
        assert!(!sig.is_empty());
        assert!(sig.len() <= 17, "got {} significant points", sig.len());
    }

    #[test]
    fn sound_upper_bound_dominates_brute_force() {
        let pts = [
            Point3::new(10.0, 2.0, 3.0),
            Point3::new(4.0, 8.0, 1.0),
            Point3::new(7.0, 5.0, 9.0),
        ];
        let mut o = OctantBounds::new(Octant::of(pts[0]), pts[0]);
        for p in &pts[1..] {
            o.insert(*p);
        }
        for end in [
            Point3::new(20.0, 6.0, 5.0),
            Point3::new(-5.0, 10.0, 2.0),
            Point3::new(0.0, 0.0, 30.0),
        ] {
            let b = o.deviation_bounds(end, BoundsMode::Sound);
            let line = Line3::new(Point3::ORIGIN, end);
            let actual = pts.iter().map(|p| line.distance_to(*p)).fold(0.0, f64::max);
            assert!(
                b.upper >= actual - 1e-9,
                "end {end:?}: ub {} < {actual}",
                b.upper
            );
            assert!(b.lower <= b.upper);
        }
    }

    #[test]
    fn straight_3d_line_compresses_to_two_points() {
        for fast in [false, true] {
            let mut config = Bqs3dConfig::new(5.0).unwrap();
            if fast {
                config = config.fast();
            }
            let mut c = Bqs3dCompressor::new(config);
            let pts: Vec<TimedPoint3> = (0..100)
                .map(|i| TimedPoint3::new(i as f64 * 5.0, i as f64 * 3.0, i as f64 * 2.0, i as f64))
                .collect();
            let out = compress_all_3d(&mut c, pts);
            assert_eq!(out.len(), 2, "fast={fast}");
        }
    }

    #[test]
    fn helix_respects_error_bound() {
        let tolerance = 10.0;
        let pts = helix(500);
        for fast in [false, true] {
            let mut config = Bqs3dConfig::new(tolerance).unwrap();
            if fast {
                config = config.fast();
            }
            let mut c = Bqs3dCompressor::new(config);
            let out = compress_all_3d(&mut c, pts.clone());
            assert!(out.len() >= 2);
            for w in out.windows(2) {
                let i = pts.iter().position(|p| p == &w[0]).unwrap();
                let j = pts.iter().position(|p| p == &w[1]).unwrap();
                let line = Line3::new(w[0].pos, w[1].pos);
                for q in &pts[i + 1..j] {
                    assert!(
                        line.distance_to(q.pos) <= tolerance + 1e-9,
                        "fast={fast} segment {i}..{j}"
                    );
                }
            }
        }
    }

    #[test]
    fn fast_keeps_at_least_buffered_count() {
        let pts = helix(500);
        let buffered = {
            let mut c = Bqs3dCompressor::new(Bqs3dConfig::new(10.0).unwrap());
            compress_all_3d(&mut c, pts.clone()).len()
        };
        let fast = {
            let mut c = Bqs3dCompressor::new(Bqs3dConfig::new(10.0).unwrap().fast());
            compress_all_3d(&mut c, pts).len()
        };
        assert!(fast >= buffered);
    }

    #[test]
    fn time_sensitive_embedding() {
        let p = TimedPoint3::time_sensitive(3.0, 4.0, 60.0, 0.5);
        assert_eq!(p.pos.z, 30.0);
        assert_eq!(p.t, 60.0);
    }

    #[test]
    fn config_validation() {
        assert!(Bqs3dConfig::new(-1.0).is_err());
        assert!(Bqs3dConfig::new(f64::NAN).is_err());
        assert!(Bqs3dConfig::new(2.0).unwrap().fast().fast);
    }
}
