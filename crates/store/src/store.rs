//! The thread-safe historical trajectory store with merging and ageing.

use crate::grid::UniformGrid;
use crate::similarity::segments_similar;
use bqs_core::stream::compress_all;
use bqs_core::{BqsCompressor, BqsConfig};
use bqs_geo::{Point2, Rect, TimedPoint};
use std::sync::RwLock;

/// Store configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreConfig {
    /// Chord-distance tolerance under which a new segment merges into an
    /// existing one (metres).
    pub merge_tolerance: f64,
    /// Spatial-index cell size (metres).
    pub cell_size: f64,
    /// Bytes charged per stored key point (the device codec's 12 B).
    pub bytes_per_key: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            merge_tolerance: 25.0,
            cell_size: 500.0,
            bytes_per_key: 12,
        }
    }
}

/// A stored compressed segment (chord between consecutive key points).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoredSegment {
    /// Segment id (stable across merges, not across ageing).
    pub id: u64,
    /// Start key point.
    pub start: TimedPoint,
    /// End key point.
    pub end: TimedPoint,
    /// How many observed segments this one represents (≥ 1; grows on
    /// merge).
    pub weight: u32,
    /// Error tolerance the segment was compressed at.
    pub tolerance: f64,
}

impl StoredSegment {
    fn bbox(&self) -> Rect {
        Rect::from_corners(self.start.pos, self.end.pos)
    }

    fn chord(&self) -> (Point2, Point2) {
        (self.start.pos, self.end.pos)
    }
}

/// Result of inserting a compressed trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InsertReport {
    /// Segments stored as new entries.
    pub stored: usize,
    /// Segments folded into an existing similar segment.
    pub merged: usize,
}

/// Result of an ageing pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AgeReport {
    /// Key points before ageing.
    pub keys_before: usize,
    /// Key points after ageing.
    pub keys_after: usize,
    /// Estimated bytes reclaimed.
    pub bytes_reclaimed: usize,
}

#[derive(Debug)]
struct Inner {
    /// Whole trajectories (key-point sequences), kept for ageing.
    trajectories: Vec<(Vec<TimedPoint>, f64)>,
    /// Flattened segment table.
    segments: Vec<StoredSegment>,
    grid: UniformGrid,
    next_id: u64,
}

impl Inner {
    fn new(cell_size: f64) -> Inner {
        Inner {
            trajectories: Vec::new(),
            segments: Vec::new(),
            grid: UniformGrid::new(cell_size),
            next_id: 0,
        }
    }
}

/// The historical trajectory store.
#[derive(Debug)]
pub struct TrajectoryStore {
    config: StoreConfig,
    inner: RwLock<Inner>,
}

impl TrajectoryStore {
    /// Creates an empty store.
    pub fn new(config: StoreConfig) -> TrajectoryStore {
        assert!(config.merge_tolerance >= 0.0);
        TrajectoryStore {
            config,
            inner: RwLock::new(Inner::new(config.cell_size)),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Inserts a compressed trajectory (its key points, with the tolerance
    /// it was compressed at). Each chord is first offered to merging; only
    /// unmatched chords are stored as new segments.
    pub fn insert_compressed(&self, keys: &[TimedPoint], tolerance: f64) -> InsertReport {
        let mut report = InsertReport::default();
        if keys.len() < 2 {
            return report;
        }
        // bqs-analyze: allow(no-unwrap-in-lib) — a poisoned lock means a writer panicked; propagate it loudly
        let mut inner = self.inner.write().expect("store lock poisoned");
        inner.trajectories.push((keys.to_vec(), tolerance));
        for w in keys.windows(2) {
            let chord = (w[0].pos, w[1].pos);
            let probe = Rect::from_corners(chord.0, chord.1);
            let candidates = inner.grid.query(&probe);
            let similar = candidates.into_iter().find(|id| {
                inner.segments.get(*id as usize).is_some_and(|s| {
                    segments_similar(s.chord(), chord, self.config.merge_tolerance)
                })
            });
            match similar {
                Some(id) => {
                    inner.segments[id as usize].weight += 1;
                    report.merged += 1;
                }
                None => {
                    let id = inner.next_id;
                    inner.next_id += 1;
                    let seg = StoredSegment {
                        id,
                        start: w[0],
                        end: w[1],
                        weight: 1,
                        tolerance,
                    };
                    inner.grid.insert(id, &seg.bbox());
                    inner.segments.push(seg);
                    report.stored += 1;
                }
            }
        }
        report
    }

    /// Number of distinct stored segments.
    pub fn segment_count(&self) -> usize {
        self.inner
            .read()
            // bqs-analyze: allow(no-unwrap-in-lib) — a poisoned lock means a writer panicked; propagate it loudly
            .expect("store lock poisoned")
            .segments
            .len()
    }

    /// Total observed segments including merged duplicates.
    pub fn total_weight(&self) -> u64 {
        self.inner
            .read()
            // bqs-analyze: allow(no-unwrap-in-lib) — a poisoned lock means a writer panicked; propagate it loudly
            .expect("store lock poisoned")
            .segments
            .iter()
            .map(|s| u64::from(s.weight))
            .sum()
    }

    /// Estimated storage footprint of the key points in bytes.
    pub fn estimated_bytes(&self) -> usize {
        // bqs-analyze: allow(no-unwrap-in-lib) — a poisoned lock means a writer panicked; propagate it loudly
        let inner = self.inner.read().expect("store lock poisoned");
        let keys: usize = inner.trajectories.iter().map(|(k, _)| k.len()).sum();
        keys * self.config.bytes_per_key
    }

    /// Segments whose bounding boxes intersect `rect` (exact-geometry
    /// filtered).
    pub fn query_rect(&self, rect: &Rect) -> Vec<StoredSegment> {
        // bqs-analyze: allow(no-unwrap-in-lib) — a poisoned lock means a writer panicked; propagate it loudly
        let inner = self.inner.read().expect("store lock poisoned");
        inner
            .grid
            .query(rect)
            .into_iter()
            .filter_map(|id| inner.segments.get(id as usize).copied())
            .filter(|s| s.bbox().intersects(rect))
            .collect()
    }

    /// Finds a stored trajectory whose path matches `keys` within
    /// `epsilon` under the discrete Fréchet distance (either traversal
    /// direction), returning its index. Linear scan over stored
    /// trajectories — path-level matching is a base-station operation, not
    /// a device one.
    pub fn find_similar_trajectory(&self, keys: &[TimedPoint], epsilon: f64) -> Option<usize> {
        if keys.is_empty() {
            return None;
        }
        let probe: Vec<Point2> = keys.iter().map(|k| k.pos).collect();
        // bqs-analyze: allow(no-unwrap-in-lib) — a poisoned lock means a writer panicked; propagate it loudly
        let inner = self.inner.read().expect("store lock poisoned");
        inner.trajectories.iter().position(|(stored, _)| {
            let path: Vec<Point2> = stored.iter().map(|k| k.pos).collect();
            bqs_geo::frechet_similar(&path, &probe, epsilon)
        })
    }

    /// Ageing pass (§V-F): re-compresses every stored trajectory with the
    /// buffered BQS at `new_tolerance` (which should exceed the original),
    /// rebuilding the segment table. The deviation of the aged trajectory
    /// against the original raw trace is bounded by
    /// `original_tolerance + new_tolerance`.
    pub fn age(&self, new_tolerance: f64) -> AgeReport {
        // bqs-analyze: allow(no-unwrap-in-lib) — a poisoned lock means a writer panicked; propagate it loudly
        let mut inner = self.inner.write().expect("store lock poisoned");
        let keys_before: usize = inner.trajectories.iter().map(|(k, _)| k.len()).sum();

        let mut aged: Vec<(Vec<TimedPoint>, f64)> = Vec::with_capacity(inner.trajectories.len());
        for (keys, old_tol) in inner.trajectories.drain(..) {
            let tol = new_tolerance.max(old_tol);
            // bqs-analyze: allow(no-unwrap-in-lib) — tolerance is a positive constant validated at the call site
            let mut bqs = BqsCompressor::new(BqsConfig::new(tol).expect("valid tolerance"));
            let rekeyed = compress_all(&mut bqs, keys.iter().copied());
            aged.push((rekeyed, old_tol + tol));
        }

        // Rebuild the segment table and index from the aged trajectories.
        let mut fresh = Inner::new(self.config.cell_size);
        fresh.trajectories = aged;
        for (keys, tol) in fresh.trajectories.clone() {
            for w in keys.windows(2) {
                let id = fresh.next_id;
                fresh.next_id += 1;
                let seg = StoredSegment {
                    id,
                    start: w[0],
                    end: w[1],
                    weight: 1,
                    tolerance: tol,
                };
                fresh.grid.insert(id, &seg.bbox());
                fresh.segments.push(seg);
            }
        }
        let keys_after: usize = fresh.trajectories.iter().map(|(k, _)| k.len()).sum();
        *inner = fresh;

        AgeReport {
            keys_before,
            keys_after,
            bytes_reclaimed: keys_before.saturating_sub(keys_after) * self.config.bytes_per_key,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(points: &[(f64, f64)]) -> Vec<TimedPoint> {
        points
            .iter()
            .enumerate()
            .map(|(i, (x, y))| TimedPoint::new(*x, *y, i as f64 * 60.0))
            .collect()
    }

    #[test]
    fn stores_segments_and_indexes_them() {
        let store = TrajectoryStore::new(StoreConfig::default());
        let report =
            store.insert_compressed(&keys(&[(0.0, 0.0), (1000.0, 0.0), (1000.0, 800.0)]), 10.0);
        assert_eq!(report.stored, 2);
        assert_eq!(report.merged, 0);
        assert_eq!(store.segment_count(), 2);
        let hits = store.query_rect(&Rect::from_corners(
            Point2::new(900.0, -10.0),
            Point2::new(1100.0, 100.0),
        ));
        assert!(!hits.is_empty());
    }

    #[test]
    fn repeated_trip_merges() {
        let store = TrajectoryStore::new(StoreConfig::default());
        let trip = keys(&[(0.0, 0.0), (2000.0, 0.0)]);
        assert_eq!(store.insert_compressed(&trip, 10.0).stored, 1);
        // The same commute next day, 5 m offset (within merge tolerance).
        let again = keys(&[(0.0, 5.0), (2000.0, 5.0)]);
        let report = store.insert_compressed(&again, 10.0);
        assert_eq!(report.stored, 0);
        assert_eq!(report.merged, 1);
        assert_eq!(store.segment_count(), 1);
        assert_eq!(store.total_weight(), 2);
    }

    #[test]
    fn reverse_direction_merges_too() {
        let store = TrajectoryStore::new(StoreConfig::default());
        store.insert_compressed(&keys(&[(0.0, 0.0), (2000.0, 0.0)]), 10.0);
        let back = keys(&[(2000.0, 0.0), (0.0, 0.0)]);
        assert_eq!(store.insert_compressed(&back, 10.0).merged, 1);
    }

    #[test]
    fn distinct_paths_do_not_merge() {
        let store = TrajectoryStore::new(StoreConfig::default());
        store.insert_compressed(&keys(&[(0.0, 0.0), (2000.0, 0.0)]), 10.0);
        let other = keys(&[(0.0, 500.0), (2000.0, 500.0)]);
        assert_eq!(store.insert_compressed(&other, 10.0).stored, 1);
        assert_eq!(store.segment_count(), 2);
    }

    #[test]
    fn ageing_reduces_keys_and_reports_bytes() {
        let store = TrajectoryStore::new(StoreConfig::default());
        // A gently wavy path that a 10 m tolerance keeps but 50 m flattens.
        let wavy: Vec<(f64, f64)> = (0..40)
            .map(|i| (i as f64 * 100.0, ((i % 2) as f64) * 30.0))
            .collect();
        store.insert_compressed(&keys(&wavy), 10.0);
        let before = store.estimated_bytes();
        let report = store.age(60.0);
        assert!(report.keys_after < report.keys_before, "{report:?}");
        assert_eq!(report.bytes_reclaimed, before - store.estimated_bytes());
        assert!(store.segment_count() < 39);
    }

    #[test]
    fn ageing_tracks_composite_tolerance() {
        let store = TrajectoryStore::new(StoreConfig::default());
        store.insert_compressed(&keys(&[(0.0, 0.0), (500.0, 40.0), (1000.0, 0.0)]), 10.0);
        store.age(30.0);
        let all = store.query_rect(&Rect::from_corners(
            Point2::new(-1.0, -50.0),
            Point2::new(1100.0, 100.0),
        ));
        assert!(!all.is_empty());
        for seg in all {
            assert_eq!(seg.tolerance, 40.0); // 10 + 30 composite bound
        }
    }

    #[test]
    fn tiny_inputs_ignored() {
        let store = TrajectoryStore::new(StoreConfig::default());
        assert_eq!(store.insert_compressed(&[], 10.0), InsertReport::default());
        assert_eq!(
            store.insert_compressed(&keys(&[(1.0, 1.0)]), 10.0),
            InsertReport::default()
        );
    }

    #[test]
    fn frechet_path_matching() {
        let store = TrajectoryStore::new(StoreConfig::default());
        let commute = keys(&[(0.0, 0.0), (1000.0, 50.0), (2000.0, 0.0)]);
        store.insert_compressed(&commute, 10.0);
        // Same road next day, slightly offset, traversed backwards.
        let back = keys(&[(2000.0, 5.0), (1000.0, 55.0), (0.0, 5.0)]);
        assert_eq!(store.find_similar_trajectory(&back, 20.0), Some(0));
        // A different road does not match.
        let other = keys(&[(0.0, 500.0), (2000.0, 500.0)]);
        assert_eq!(store.find_similar_trajectory(&other, 20.0), None);
        assert_eq!(store.find_similar_trajectory(&[], 20.0), None);
    }

    #[test]
    fn concurrent_ingest_and_query() {
        use std::sync::Arc;
        let store = Arc::new(TrajectoryStore::new(StoreConfig::default()));
        let mut handles = Vec::new();
        for k in 0..4u64 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let y = (k * 1_000 + i * 10) as f64;
                    store.insert_compressed(&keys(&[(0.0, y), (3_000.0, y)]), 10.0);
                    let _ = store.query_rect(&Rect::from_corners(
                        Point2::new(0.0, 0.0),
                        Point2::new(3_000.0, 5_000.0),
                    ));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.total_weight(), 200);
    }
}
