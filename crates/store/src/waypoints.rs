//! Waypoint discovery and trip statistics — the paper's §VII future work
//! ("individualized trajectory and waypoint discovery can also be used to
//! facilitate advanced applications like real-time trip prediction or
//! trip-duration estimation").
//!
//! Key points where the object dwells (consecutive compressed keys close in
//! space but far apart in time) are density-clustered on a grid into
//! **waypoints**; the transitions between waypoints form a first-order
//! Markov model that answers "where next?" and "how long will it take?".

use bqs_geo::{Point2, TimedPoint};
use std::collections::HashMap;

/// A discovered waypoint: a dwell cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct Waypoint {
    /// Stable id (index into the discovery output).
    pub id: usize,
    /// Cluster centroid.
    pub center: Point2,
    /// Number of dwell observations merged into this waypoint.
    pub visits: usize,
    /// Total dwell seconds observed here.
    pub total_dwell_s: f64,
}

/// A directed trip between two waypoints with duration statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct TripStats {
    /// Origin waypoint id.
    pub from: usize,
    /// Destination waypoint id.
    pub to: usize,
    /// Observed trips.
    pub count: usize,
    /// Mean trip duration in seconds.
    pub mean_duration_s: f64,
    /// Minimum and maximum observed durations.
    pub duration_range_s: (f64, f64),
}

/// Configuration for discovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaypointConfig {
    /// A key point is a dwell when the object stays within `dwell_radius`
    /// of it for at least `min_dwell_s`.
    pub dwell_radius: f64,
    /// Minimum dwell duration, seconds.
    pub min_dwell_s: f64,
    /// Grid cell size for clustering dwells into waypoints, metres.
    pub cluster_cell: f64,
}

impl Default for WaypointConfig {
    fn default() -> Self {
        WaypointConfig {
            dwell_radius: 100.0,
            min_dwell_s: 600.0,
            cluster_cell: 250.0,
        }
    }
}

/// The discovered mobility model.
#[derive(Debug, Clone, Default)]
pub struct MobilityModel {
    /// Discovered waypoints.
    pub waypoints: Vec<Waypoint>,
    /// Directed trip statistics keyed by `(from, to)`.
    pub trips: Vec<TripStats>,
}

impl MobilityModel {
    /// The waypoint nearest to `p`, if any exist.
    pub fn nearest_waypoint(&self, p: Point2) -> Option<&Waypoint> {
        self.waypoints.iter().min_by(|a, b| {
            a.center
                .distance_sq(p)
                .partial_cmp(&b.center.distance_sq(p))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// Most likely next waypoint from `from`, by observed transition count.
    pub fn predict_next(&self, from: usize) -> Option<&TripStats> {
        self.trips
            .iter()
            .filter(|t| t.from == from)
            .max_by_key(|t| t.count)
    }

    /// Estimated duration of the trip `from → to`, seconds.
    pub fn estimate_duration(&self, from: usize, to: usize) -> Option<f64> {
        self.trips
            .iter()
            .find(|t| t.from == from && t.to == to)
            .map(|t| t.mean_duration_s)
    }
}

/// Discovers waypoints and trip statistics from a compressed trajectory
/// (key points in time order; day gaps allowed).
pub fn discover(keys: &[TimedPoint], config: &WaypointConfig) -> MobilityModel {
    // 1. Dwell extraction: a maximal run of consecutive keys within
    //    `dwell_radius` of the run's first key, spanning ≥ min_dwell_s.
    #[derive(Debug)]
    struct Dwell {
        center: Point2,
        arrive: f64,
        depart: f64,
    }
    let mut dwells: Vec<Dwell> = Vec::new();
    let mut i = 0usize;
    while i < keys.len() {
        let anchor = keys[i];
        let mut j = i;
        while j + 1 < keys.len() && keys[j + 1].pos.distance(anchor.pos) <= config.dwell_radius {
            j += 1;
        }
        let duration = keys[j].t - keys[i].t;
        if duration >= config.min_dwell_s {
            // Centroid of the run.
            let mut acc = bqs_geo::Vec2::ZERO;
            for k in &keys[i..=j] {
                acc += k.pos.to_vec();
            }
            dwells.push(Dwell {
                center: Point2::from_vec(acc / (j - i + 1) as f64),
                arrive: keys[i].t,
                depart: keys[j].t,
            });
        }
        i = j + 1;
    }

    // 2. Grid-cluster dwell centres into waypoints.
    let cell_of = |p: Point2| -> (i64, i64) {
        (
            (p.x / config.cluster_cell).floor() as i64,
            (p.y / config.cluster_cell).floor() as i64,
        )
    };
    let mut cluster_ids: HashMap<(i64, i64), usize> = HashMap::new();
    let mut waypoints: Vec<Waypoint> = Vec::new();
    let mut dwell_waypoint: Vec<usize> = Vec::with_capacity(dwells.len());
    for d in &dwells {
        let cell = cell_of(d.center);
        // Merge into an existing waypoint in this or a neighbouring cell
        // whose centre is within the cluster cell size.
        let mut found = None;
        'search: for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(&id) = cluster_ids.get(&(cell.0 + dx, cell.1 + dy)) {
                    if waypoints[id].center.distance(d.center) <= config.cluster_cell {
                        found = Some(id);
                        break 'search;
                    }
                }
            }
        }
        let id = match found {
            Some(id) => {
                let w = &mut waypoints[id];
                // Running centroid update.
                let n = w.visits as f64;
                w.center = Point2::new(
                    (w.center.x * n + d.center.x) / (n + 1.0),
                    (w.center.y * n + d.center.y) / (n + 1.0),
                );
                w.visits += 1;
                w.total_dwell_s += d.depart - d.arrive;
                id
            }
            None => {
                let id = waypoints.len();
                waypoints.push(Waypoint {
                    id,
                    center: d.center,
                    visits: 1,
                    total_dwell_s: d.depart - d.arrive,
                });
                cluster_ids.insert(cell, id);
                id
            }
        };
        dwell_waypoint.push(id);
    }

    // 3. Transitions between consecutive dwells → trip statistics.
    let mut acc: HashMap<(usize, usize), (usize, f64, f64, f64)> = HashMap::new();
    for i in 1..dwells.len() {
        let (a, b) = (&dwells[i - 1], &dwells[i]);
        let (ia, ib) = (dwell_waypoint[i - 1], dwell_waypoint[i]);
        if ia == ib {
            continue; // not a trip
        }
        let duration = (b.arrive - a.depart).max(0.0);
        let entry = acc.entry((ia, ib)).or_insert((0, 0.0, f64::INFINITY, 0.0));
        entry.0 += 1;
        entry.1 += duration;
        entry.2 = entry.2.min(duration);
        entry.3 = entry.3.max(duration);
    }
    let mut trips: Vec<TripStats> = acc
        .into_iter()
        .map(|((from, to), (count, sum, lo, hi))| TripStats {
            from,
            to,
            count,
            mean_duration_s: sum / count as f64,
            duration_range_s: (lo, hi),
        })
        .collect();
    trips.sort_by_key(|t| (t.from, t.to));

    MobilityModel { waypoints, trips }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two nights of roost → site → roost commuting (as compressed keys).
    fn commuting_keys() -> Vec<TimedPoint> {
        let roost = Point2::new(0.0, 0.0);
        let site = Point2::new(4_000.0, 1_000.0);
        let mut keys = Vec::new();
        let mut t = 0.0;
        for _night in 0..3 {
            // Dwell at roost (three keys over 30 min).
            for k in 0..3 {
                keys.push(TimedPoint::new(roost.x + k as f64, roost.y, t));
                t += 900.0;
            }
            // Travel (single mid key), ~20 min.
            keys.push(TimedPoint::new(2_000.0, 500.0, t + 600.0));
            t += 1_200.0;
            // Dwell at the site.
            for k in 0..3 {
                keys.push(TimedPoint::new(site.x + k as f64, site.y, t));
                t += 900.0;
            }
            // Return, ~20 min.
            keys.push(TimedPoint::new(2_000.0, 500.0, t + 600.0));
            t += 1_200.0;
        }
        // Final roost dwell.
        for k in 0..3 {
            keys.push(TimedPoint::new(roost.x + k as f64, roost.y, t));
            t += 900.0;
        }
        keys
    }

    #[test]
    fn discovers_roost_and_site() {
        let model = discover(&commuting_keys(), &WaypointConfig::default());
        assert_eq!(model.waypoints.len(), 2, "{:?}", model.waypoints);
        let roost = model.nearest_waypoint(Point2::new(0.0, 0.0)).unwrap();
        let site = model
            .nearest_waypoint(Point2::new(4_000.0, 1_000.0))
            .unwrap();
        assert!(roost.center.distance(Point2::new(1.0, 0.0)) < 50.0);
        assert!(site.center.distance(Point2::new(4_001.0, 1_000.0)) < 50.0);
        assert!(roost.visits >= 3);
        assert!(site.visits >= 3);
    }

    #[test]
    fn trip_statistics_and_prediction() {
        let model = discover(&commuting_keys(), &WaypointConfig::default());
        let roost = model.nearest_waypoint(Point2::new(0.0, 0.0)).unwrap().id;
        let site = model
            .nearest_waypoint(Point2::new(4_000.0, 1_000.0))
            .unwrap()
            .id;

        let next = model.predict_next(roost).expect("trips observed");
        assert_eq!(next.to, site);
        assert!(next.count >= 2);

        let dur = model.estimate_duration(roost, site).unwrap();
        assert!((600.0..3_600.0).contains(&dur), "duration {dur}");
        let back = model.estimate_duration(site, roost).unwrap();
        assert!(back > 0.0);
    }

    #[test]
    fn no_dwells_no_waypoints() {
        // Continuous motion: no key stays put long enough.
        let keys: Vec<TimedPoint> = (0..50)
            .map(|i| TimedPoint::new(i as f64 * 500.0, 0.0, i as f64 * 60.0))
            .collect();
        let model = discover(&keys, &WaypointConfig::default());
        assert!(model.waypoints.is_empty());
        assert!(model.trips.is_empty());
        assert!(model.nearest_waypoint(Point2::ORIGIN).is_none());
    }

    #[test]
    fn empty_input() {
        let model = discover(&[], &WaypointConfig::default());
        assert!(model.waypoints.is_empty());
    }

    #[test]
    fn nearby_dwells_cluster_into_one_waypoint() {
        // Dwells 50 m apart (same tree cluster) on separate days.
        let mut keys = Vec::new();
        let mut t = 0.0;
        for day in 0..4 {
            let base = Point2::new(day as f64 * 50.0, 0.0);
            for k in 0..3 {
                keys.push(TimedPoint::new(base.x, base.y + k as f64, t));
                t += 600.0;
            }
            // A far excursion breaks the dwell run between days.
            keys.push(TimedPoint::new(5_000.0, 0.0, t + 600.0));
            t += 20_000.0;
        }
        let model = discover(&keys, &WaypointConfig::default());
        assert_eq!(model.waypoints.len(), 1, "{:?}", model.waypoints);
        assert_eq!(model.waypoints[0].visits, 4);
    }
}
