//! Segment similarity for the merging procedure.
//!
//! Two compressed segments represent "the same path with a minor error"
//! (paper §V-F) when each chord stays within a tolerance of the other. For
//! straight chords the symmetric Hausdorff distance is attained at the
//! endpoints, so the check reduces to four point-to-segment distances.

use bqs_geo::{point_to_segment_distance, Point2};

/// Symmetric chord distance: the largest distance from either segment's
/// endpoint to the other segment.
pub fn chord_distance(a: (Point2, Point2), b: (Point2, Point2)) -> f64 {
    let d1 = point_to_segment_distance(a.0, b.0, b.1);
    let d2 = point_to_segment_distance(a.1, b.0, b.1);
    let d3 = point_to_segment_distance(b.0, a.0, a.1);
    let d4 = point_to_segment_distance(b.1, a.0, a.1);
    d1.max(d2).max(d3).max(d4)
}

/// Whether two chords are interchangeable within `tolerance`, treating
/// direction as irrelevant (a commute is the same path both ways).
pub fn segments_similar(a: (Point2, Point2), b: (Point2, Point2), tolerance: f64) -> bool {
    chord_distance(a, b) <= tolerance
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    #[test]
    fn identical_segments_have_zero_distance() {
        let s = (p(0.0, 0.0), p(100.0, 0.0));
        assert_eq!(chord_distance(s, s), 0.0);
        assert!(segments_similar(s, s, 0.1));
    }

    #[test]
    fn reversed_segment_is_similar() {
        let a = (p(0.0, 0.0), p(100.0, 0.0));
        let b = (p(100.0, 0.0), p(0.0, 0.0));
        assert_eq!(chord_distance(a, b), 0.0);
    }

    #[test]
    fn parallel_offset_measures_the_gap() {
        let a = (p(0.0, 0.0), p(100.0, 0.0));
        let b = (p(0.0, 7.0), p(100.0, 7.0));
        assert!((chord_distance(a, b) - 7.0).abs() < 1e-12);
        assert!(segments_similar(a, b, 7.5));
        assert!(!segments_similar(a, b, 6.5));
    }

    #[test]
    fn sub_segment_is_similar_but_super_segment_is_not() {
        let long = (p(0.0, 0.0), p(100.0, 0.0));
        let short = (p(40.0, 0.0), p(60.0, 0.0));
        // The short chord lies on the long one...
        let d_short_to_long = point_to_segment_distance(short.0, long.0, long.1)
            .max(point_to_segment_distance(short.1, long.0, long.1));
        assert_eq!(d_short_to_long, 0.0);
        // ...but the symmetric distance sees the unmatched ends.
        assert!((chord_distance(long, short) - 40.0).abs() < 1e-12);
        assert!(!segments_similar(long, short, 10.0));
    }

    #[test]
    fn symmetric() {
        let a = (p(0.0, 0.0), p(50.0, 20.0));
        let b = (p(5.0, 2.0), p(55.0, 18.0));
        assert_eq!(chord_distance(a, b), chord_distance(b, a));
    }

    #[test]
    fn perpendicular_segments_are_far() {
        let a = (p(0.0, 0.0), p(100.0, 0.0));
        let b = (p(50.0, -50.0), p(50.0, 50.0));
        assert!(chord_distance(a, b) >= 50.0);
    }
}
