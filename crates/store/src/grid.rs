//! A uniform-grid spatial index over segment bounding boxes.
//!
//! Cheap, predictable, and a good fit for trajectory data whose extent is
//! known (a home range, a city): each item is registered in every cell its
//! bounding box overlaps; queries enumerate the cells of the query box and
//! dedup.

use bqs_geo::{Point2, Rect};
use std::collections::HashMap;

/// A uniform grid mapping cells to item ids.
#[derive(Debug, Clone)]
pub struct UniformGrid {
    cell_size: f64,
    cells: HashMap<(i64, i64), Vec<u64>>,
    items: usize,
}

impl UniformGrid {
    /// Creates a grid with the given cell edge length (metres).
    ///
    /// # Panics
    /// Panics when `cell_size` is not positive and finite.
    pub fn new(cell_size: f64) -> UniformGrid {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell size must be > 0"
        );
        UniformGrid {
            cell_size,
            cells: HashMap::new(),
            items: 0,
        }
    }

    fn cell_of(&self, p: Point2) -> (i64, i64) {
        (
            (p.x / self.cell_size).floor() as i64,
            (p.y / self.cell_size).floor() as i64,
        )
    }

    fn cell_range(&self, rect: &Rect) -> ((i64, i64), (i64, i64)) {
        (self.cell_of(rect.min), self.cell_of(rect.max))
    }

    /// Registers `id` under every cell overlapped by `bbox`.
    pub fn insert(&mut self, id: u64, bbox: &Rect) {
        let ((x0, y0), (x1, y1)) = self.cell_range(bbox);
        for x in x0..=x1 {
            for y in y0..=y1 {
                self.cells.entry((x, y)).or_default().push(id);
            }
        }
        self.items += 1;
    }

    /// Ids whose registered boxes may overlap `rect` (superset; callers
    /// re-check exact geometry). Deduplicated, unordered.
    pub fn query(&self, rect: &Rect) -> Vec<u64> {
        let ((x0, y0), (x1, y1)) = self.cell_range(rect);
        let mut out = Vec::new();
        for x in x0..=x1 {
            for y in y0..=y1 {
                if let Some(ids) = self.cells.get(&(x, y)) {
                    out.extend_from_slice(ids);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of items inserted.
    pub fn len(&self) -> usize {
        self.items
    }

    /// True when nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Number of occupied cells (diagnostics).
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::from_corners(Point2::new(x0, y0), Point2::new(x1, y1))
    }

    #[test]
    fn finds_overlapping_items() {
        let mut g = UniformGrid::new(100.0);
        g.insert(1, &rect(0.0, 0.0, 50.0, 50.0));
        g.insert(2, &rect(500.0, 500.0, 600.0, 600.0));
        g.insert(3, &rect(40.0, 40.0, 140.0, 60.0));
        let hits = g.query(&rect(30.0, 30.0, 60.0, 60.0));
        assert!(hits.contains(&1));
        assert!(hits.contains(&3));
        assert!(!hits.contains(&2));
    }

    #[test]
    fn query_is_a_superset_never_misses() {
        let mut g = UniformGrid::new(73.0);
        let boxes: Vec<Rect> = (0..50)
            .map(|i| {
                let x = (i * 37 % 1000) as f64;
                let y = (i * 53 % 1000) as f64;
                rect(x, y, x + 30.0, y + 45.0)
            })
            .collect();
        for (i, b) in boxes.iter().enumerate() {
            g.insert(i as u64, b);
        }
        let q = rect(200.0, 200.0, 400.0, 400.0);
        let hits = g.query(&q);
        for (i, b) in boxes.iter().enumerate() {
            if b.intersects(&q) {
                assert!(hits.contains(&(i as u64)), "missed item {i}");
            }
        }
    }

    #[test]
    fn negative_coordinates_work() {
        let mut g = UniformGrid::new(50.0);
        g.insert(7, &rect(-120.0, -80.0, -90.0, -40.0));
        assert_eq!(g.query(&rect(-100.0, -60.0, -95.0, -50.0)), vec![7]);
        assert!(g.query(&rect(100.0, 100.0, 110.0, 110.0)).is_empty());
    }

    #[test]
    fn dedups_multi_cell_items() {
        let mut g = UniformGrid::new(10.0);
        g.insert(9, &rect(0.0, 0.0, 100.0, 100.0)); // spans many cells
        let hits = g.query(&rect(0.0, 0.0, 100.0, 100.0));
        assert_eq!(hits, vec![9]);
    }

    #[test]
    fn accounting() {
        let mut g = UniformGrid::new(10.0);
        assert!(g.is_empty());
        g.insert(1, &rect(0.0, 0.0, 5.0, 5.0));
        g.insert(2, &rect(0.0, 0.0, 25.0, 5.0));
        assert_eq!(g.len(), 2);
        assert!(g.occupied_cells() >= 3);
    }

    #[test]
    #[should_panic(expected = "cell size")]
    fn rejects_zero_cell() {
        let _ = UniformGrid::new(0.0);
    }
}
