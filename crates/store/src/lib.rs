//! # bqs-store — the historical trajectory store (paper §V-F)
//!
//! Compression alone is not the whole storage story: the paper sketches two
//! maintenance procedures over the compressed history, both implemented
//! here on top of a uniform-grid spatial index:
//!
//! * **Merging** — a newly compressed segment is used as a query against
//!   the stored segments; when an existing segment already represents the
//!   same path within a merge tolerance, the new one is folded into it
//!   (weight bump) instead of stored — deduplicating commuting-style
//!   repeated trips.
//! * **Ageing** — older trajectories are re-compressed at a greater error
//!   tolerance, trading accuracy of old data for space. Re-compression runs
//!   the BQS itself over the stored key points; the composite deviation of
//!   the aged trajectory against the *original* raw trace is bounded by
//!   `d_original + d_aged` (triangle inequality on point-to-chord
//!   distances), which the integration tests verify.
//!
//! The store is thread-safe (`parking_lot::RwLock`) so a base station can
//! ingest collar offloads concurrently with queries.
//!
//! [`waypoints`] implements the paper's §VII future-work sketch on top:
//! dwell clustering into waypoints, trip-duration estimation and a Markov
//! next-destination predictor.

#![deny(missing_docs)]

pub mod grid;
pub mod similarity;
pub mod store;
pub mod waypoints;

pub use grid::UniformGrid;
pub use similarity::{chord_distance, segments_similar};
pub use store::{AgeReport, InsertReport, StoreConfig, StoredSegment, TrajectoryStore};
pub use waypoints::{discover, MobilityModel, TripStats, Waypoint, WaypointConfig};
