//! Operational-time estimation (paper Table II).
//!
//! "This operational time indicates how long the device can keep records of
//! the locations before offloading to a server, without data loss." With a
//! GPS flash budget `B`, record size `r`, sampling interval `Δ` and a
//! compression rate `c` (kept ÷ original), the device stores
//! `c × 86400/Δ` records per day, so it lasts `B / (r × c × 86400/Δ)` days.
//!
//! With the paper's numbers (50 KB, 12 B, 1 fix/min) an *uncompressed*
//! logger lasts just under 3 days; at the ≈ 5 % compression rates the BQS
//! family reaches at a 10 m tolerance, that becomes the paper's ≈ 60 days.

use crate::camazotz::CamazotzSpec;
use crate::storage::GPS_RECORD_BYTES;

/// The Table II estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperationalModel {
    /// Platform description.
    pub spec: CamazotzSpec,
    /// Bytes per stored record.
    pub record_bytes: usize,
}

impl OperationalModel {
    /// The paper's model: Camazotz spec, 12-byte records.
    pub fn paper() -> OperationalModel {
        OperationalModel {
            spec: CamazotzSpec::paper(),
            record_bytes: GPS_RECORD_BYTES,
        }
    }

    /// Whole days of operation before the GPS budget fills, given a
    /// compression rate in `(0, 1]` (1 = store everything).
    ///
    /// Returns `None` for rates outside `(0, 1]` or other degenerate
    /// configurations.
    pub fn operational_days(&self, compression_rate: f64) -> Option<u64> {
        if !(compression_rate > 0.0 && compression_rate <= 1.0) {
            return None;
        }
        let records_per_day = self.spec.samples_per_day() * compression_rate;
        if records_per_day <= 0.0 {
            return None;
        }
        let capacity = (self.spec.gps_budget_bytes as f64) / (self.record_bytes as f64);
        Some((capacity / records_per_day).floor() as u64)
    }
}

/// Convenience wrapper using the paper's model.
pub fn estimate_operational_days(compression_rate: f64) -> Option<u64> {
    OperationalModel::paper().operational_days(compression_rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncompressed_logger_lasts_under_three_days() {
        let days = estimate_operational_days(1.0).unwrap();
        assert_eq!(days, 2); // 4266 records / 1440 per day = 2.96 → 2 whole days
    }

    #[test]
    fn paper_table_ii_rates_land_near_paper_days() {
        // Table II: BQS 4.8 % → 62 d; FBQS 5.0 % → 60 d; BDP 6.65 % → 45 d;
        // BGD 6.75 % → 44 d; DR 6.65 % → 45 d. The ±1 day slack absorbs the
        // floor convention.
        let cases = [
            (0.048, 62u64),
            (0.050, 60),
            (0.0665, 45),
            (0.0675, 44),
            (0.0665, 45),
        ];
        for (rate, expected) in cases {
            let days = estimate_operational_days(rate).unwrap();
            assert!(
                days.abs_diff(expected) <= 1,
                "rate {rate}: {days} days vs paper {expected}"
            );
        }
    }

    #[test]
    fn rejects_degenerate_rates() {
        assert_eq!(estimate_operational_days(0.0), None);
        assert_eq!(estimate_operational_days(-0.5), None);
        assert_eq!(estimate_operational_days(1.5), None);
        assert_eq!(estimate_operational_days(f64::NAN), None);
    }

    #[test]
    fn better_compression_lasts_longer() {
        let a = estimate_operational_days(0.02).unwrap();
        let b = estimate_operational_days(0.10).unwrap();
        assert!(a > b);
    }

    #[test]
    fn improvement_ratios_match_paper_claims() {
        // "a maximum 36% improvement from FBQS over the existing methods
        // (60 v.s. 44), and a maximum 41% improvement from BQS (62 v.s. 44)".
        let bqs = estimate_operational_days(0.048).unwrap() as f64;
        let fbqs = estimate_operational_days(0.050).unwrap() as f64;
        let bgd = estimate_operational_days(0.0675).unwrap() as f64;
        assert!((fbqs / bgd - 1.36).abs() < 0.05, "{}", fbqs / bgd);
        assert!((bqs / bgd - 1.41).abs() < 0.05, "{}", bqs / bgd);
    }
}
