//! Camazotz platform constants (paper §III-A; Jurdak et al., IPSN 2013).

/// Static description of the tracking platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CamazotzSpec {
    /// On-chip ROM in bytes (CC430F5137: 32 KB).
    pub rom_bytes: u64,
    /// On-chip RAM in bytes (4 KB).
    pub ram_bytes: u64,
    /// External flash in bytes (1 MB).
    pub flash_bytes: u64,
    /// Share of flash reserved for GPS trajectories, bytes — the paper's
    /// Table II assumes 50 KB (the rest holds the higher-rate
    /// inertial/acoustic sensor logs).
    pub gps_budget_bytes: u64,
    /// GPS sampling interval in seconds (Table II assumes 1 fix/minute).
    pub gps_interval_s: f64,
    /// Animal-ethics payload limit in grams (≤ 5 % of body weight —
    /// 20–30 g for flying foxes). Informational.
    pub payload_limit_g: f64,
}

impl CamazotzSpec {
    /// The paper's configuration.
    pub const fn paper() -> CamazotzSpec {
        CamazotzSpec {
            rom_bytes: 32 * 1024,
            ram_bytes: 4 * 1024,
            flash_bytes: 1024 * 1024,
            gps_budget_bytes: 50 * 1024,
            gps_interval_s: 60.0,
            payload_limit_g: 30.0,
        }
    }

    /// Raw (uncompressed) GPS samples per day at the configured rate.
    pub fn samples_per_day(&self) -> f64 {
        86_400.0 / self.gps_interval_s
    }
}

impl Default for CamazotzSpec {
    fn default() -> Self {
        CamazotzSpec::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let s = CamazotzSpec::paper();
        assert_eq!(s.ram_bytes, 4096);
        assert_eq!(s.rom_bytes, 32_768);
        assert_eq!(s.flash_bytes, 1_048_576);
        assert_eq!(s.gps_budget_bytes, 51_200);
        assert_eq!(s.samples_per_day(), 1_440.0);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(CamazotzSpec::default(), CamazotzSpec::paper());
    }
}
