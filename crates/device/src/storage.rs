//! GPS record encoding and the flash-budget accountant.
//!
//! The paper's Table II assumes "each GPS sample requires at least 12 bytes
//! storage (latitude, longitude, timestamp)". The codec here packs exactly
//! that: two 4-byte fixed-point coordinates (1e-7°, ≈ 1.1 cm at the
//! equator) and a 4-byte second counter — lossless for every tolerance the
//! paper considers.

use bqs_geo::LocationPoint;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Bytes per encoded GPS record (Table II's 12-byte figure).
pub const GPS_RECORD_BYTES: usize = 12;

/// Fixed-point scale for coordinates: 1e7 steps per degree.
const COORD_SCALE: f64 = 1e7;

/// Errors from the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The flash budget is exhausted.
    Full,
    /// A record failed to decode (truncated or corrupt).
    Corrupt,
    /// A coordinate or timestamp is outside the encodable range.
    OutOfRange,
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Full => write!(f, "flash budget exhausted"),
            StorageError::Corrupt => write!(f, "corrupt or truncated record"),
            StorageError::OutOfRange => write!(f, "value outside encodable range"),
        }
    }
}

impl std::error::Error for StorageError {}

/// The 12-byte GPS record codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct SampleCodec;

impl SampleCodec {
    /// Encodes a fix into 12 bytes. Timestamps must fit an unsigned 32-bit
    /// second counter (136 years — ample for a deployment epoch).
    pub fn encode(fix: LocationPoint, out: &mut BytesMut) -> Result<(), StorageError> {
        if !(-90.0..=90.0).contains(&fix.latitude) || !(-180.0..=180.0).contains(&fix.longitude) {
            return Err(StorageError::OutOfRange);
        }
        if !fix.timestamp.is_finite() || fix.timestamp < 0.0 || fix.timestamp > u32::MAX as f64 {
            return Err(StorageError::OutOfRange);
        }
        out.put_i32((fix.latitude * COORD_SCALE).round() as i32);
        out.put_i32((fix.longitude * COORD_SCALE).round() as i32);
        out.put_u32(fix.timestamp.round() as u32);
        Ok(())
    }

    /// Decodes one record.
    pub fn decode(buf: &mut Bytes) -> Result<LocationPoint, StorageError> {
        if buf.remaining() < GPS_RECORD_BYTES {
            return Err(StorageError::Corrupt);
        }
        let lat = buf.get_i32() as f64 / COORD_SCALE;
        let lon = buf.get_i32() as f64 / COORD_SCALE;
        let ts = buf.get_u32() as f64;
        Ok(LocationPoint::new(lat, lon, ts))
    }
}

/// A budgeted append-only flash region holding encoded GPS records.
#[derive(Debug, Clone)]
pub struct FlashStorage {
    budget_bytes: usize,
    data: BytesMut,
}

impl FlashStorage {
    /// Creates a store with a byte budget.
    pub fn new(budget_bytes: usize) -> FlashStorage {
        FlashStorage {
            budget_bytes,
            data: BytesMut::with_capacity(budget_bytes.min(1 << 20)),
        }
    }

    /// Appends one record; [`StorageError::Full`] when the budget would be
    /// exceeded (the paper's "operational time without data loss" boundary).
    pub fn append(&mut self, fix: LocationPoint) -> Result<(), StorageError> {
        if self.data.len() + GPS_RECORD_BYTES > self.budget_bytes {
            return Err(StorageError::Full);
        }
        SampleCodec::encode(fix, &mut self.data)
    }

    /// Bytes used so far.
    pub fn used_bytes(&self) -> usize {
        self.data.len()
    }

    /// Records stored so far.
    pub fn record_count(&self) -> usize {
        self.data.len() / GPS_RECORD_BYTES
    }

    /// Remaining capacity in whole records.
    pub fn remaining_records(&self) -> usize {
        (self.budget_bytes - self.data.len()) / GPS_RECORD_BYTES
    }

    /// Decodes the full contents back into fixes (the base-station side of
    /// the offload).
    pub fn read_all(&self) -> Result<Vec<LocationPoint>, StorageError> {
        let mut buf = Bytes::copy_from_slice(&self.data);
        let mut out = Vec::with_capacity(self.record_count());
        while buf.remaining() >= GPS_RECORD_BYTES {
            out.push(SampleCodec::decode(&mut buf)?);
        }
        if buf.has_remaining() {
            return Err(StorageError::Corrupt);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_is_exactly_12_bytes() {
        let mut buf = BytesMut::new();
        SampleCodec::encode(LocationPoint::new(-27.4698, 153.0251, 12345.0), &mut buf).unwrap();
        assert_eq!(buf.len(), GPS_RECORD_BYTES);
    }

    #[test]
    fn round_trip_preserves_centimetre_precision() {
        let fixes = [
            LocationPoint::new(-27.4698123, 153.0251456, 0.0),
            LocationPoint::new(89.9999999, -179.9999999, 4_000_000_000.0),
            LocationPoint::new(0.0, 0.0, 1.0),
        ];
        for fix in fixes {
            let mut buf = BytesMut::new();
            SampleCodec::encode(fix, &mut buf).unwrap();
            let mut bytes = buf.freeze();
            let back = SampleCodec::decode(&mut bytes).unwrap();
            assert!((back.latitude - fix.latitude).abs() < 1e-7);
            assert!((back.longitude - fix.longitude).abs() < 1e-7);
            assert_eq!(back.timestamp, fix.timestamp.round());
        }
    }

    #[test]
    fn rejects_out_of_range() {
        let mut buf = BytesMut::new();
        assert_eq!(
            SampleCodec::encode(LocationPoint::new(91.0, 0.0, 0.0), &mut buf),
            Err(StorageError::OutOfRange)
        );
        assert_eq!(
            SampleCodec::encode(LocationPoint::new(0.0, 0.0, -5.0), &mut buf),
            Err(StorageError::OutOfRange)
        );
        assert_eq!(
            SampleCodec::encode(LocationPoint::new(0.0, 200.0, 0.0), &mut buf),
            Err(StorageError::OutOfRange)
        );
    }

    #[test]
    fn truncated_decode_fails() {
        let mut short = Bytes::from_static(&[0u8; 5]);
        assert_eq!(SampleCodec::decode(&mut short), Err(StorageError::Corrupt));
    }

    #[test]
    fn flash_budget_enforced() {
        // Budget for exactly 3 records.
        let mut flash = FlashStorage::new(3 * GPS_RECORD_BYTES + 5);
        for i in 0..3 {
            flash
                .append(LocationPoint::new(1.0, 2.0, i as f64))
                .unwrap();
        }
        assert_eq!(flash.record_count(), 3);
        assert_eq!(flash.remaining_records(), 0);
        assert_eq!(
            flash.append(LocationPoint::new(1.0, 2.0, 3.0)),
            Err(StorageError::Full)
        );
    }

    #[test]
    fn read_all_round_trips() {
        let mut flash = FlashStorage::new(1024);
        for i in 0..20 {
            flash
                .append(LocationPoint::new(
                    -27.0 + i as f64 * 0.001,
                    153.0,
                    i as f64 * 60.0,
                ))
                .unwrap();
        }
        let all = flash.read_all().unwrap();
        assert_eq!(all.len(), 20);
        assert!((all[7].latitude - (-27.0 + 0.007)).abs() < 1e-7);
    }

    #[test]
    fn paper_budget_capacity() {
        // 50 KB at 12 B/record = 4,266 records ≈ 2.96 days uncompressed at
        // 1 fix/min — the baseline the Table II estimates improve on.
        let flash = FlashStorage::new(50 * 1024);
        assert_eq!(flash.remaining_records(), 4_266);
    }
}
