//! # bqs-device — the Camazotz tracking-platform model
//!
//! The paper's motivating hardware (§III-A) is the Camazotz collar: a TI
//! CC430F5137 SoC with **32 KB ROM and 4 KB RAM**, **1 MB external flash**,
//! a ublox MAX6 GPS, solar-charged Li-ion power, and a 900 MHz short-range
//! radio for offloading at congregation areas. Those constraints are the
//! whole reason BQS exists, so this crate models them explicitly:
//!
//! * [`camazotz`] — the platform constants and sampling schedule;
//! * [`storage`] — the 12-byte GPS record codec and a flash-budget
//!   accountant;
//! * [`operational`] — the Table II estimator: how many days the tracker
//!   runs before the GPS budget fills, as a function of compression rate;
//! * [`memory`] — a working-set probe that verifies the FBQS constant-space
//!   claim (≤ 32 significant points + no buffer) against the 4 KB RAM
//!   budget;
//! * [`energy`] — a duty-cycle energy model for GPS/CPU/radio, extending
//!   the paper's operational-time argument to the power domain;
//! * [`offload`] — an event-driven base-station contact simulation that
//!   turns the steady-state Table II estimate into a loss/no-loss check
//!   against realistic congregation-area contact schedules.

#![deny(missing_docs)]

pub mod camazotz;
pub mod energy;
pub mod memory;
pub mod offload;
pub mod operational;
pub mod storage;

pub use camazotz::CamazotzSpec;
pub use energy::EnergyModel;
pub use memory::{probe_working_set, WorkingSetReport};
pub use offload::{simulate_offload, OffloadReport};
pub use operational::{estimate_operational_days, OperationalModel};
pub use storage::{FlashStorage, SampleCodec, StorageError, GPS_RECORD_BYTES};
