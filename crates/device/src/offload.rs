//! Base-station offload simulation.
//!
//! Camazotz stores trajectories "until the data can be uploaded to a base
//! station deployed at animal congregation areas using the short range
//! radio" (§III-A) — contact happens only when the animal happens to roost
//! near a gateway. This module plays a compression policy against a contact
//! schedule and reports whether the flash budget ever overflows between
//! contacts, turning Table II's steady-state estimate into an event-driven
//! check.

use crate::camazotz::CamazotzSpec;
use crate::storage::GPS_RECORD_BYTES;

/// The outcome of one simulated deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct OffloadReport {
    /// Days simulated.
    pub days: u32,
    /// Successful contacts (flash drained).
    pub contacts: u32,
    /// Records dropped because the flash filled between contacts.
    pub records_lost: u64,
    /// Peak flash occupancy in bytes.
    pub peak_bytes: u64,
}

impl OffloadReport {
    /// True when the deployment never lost a record.
    pub fn lossless(&self) -> bool {
        self.records_lost == 0
    }
}

/// Simulates `days` of operation: every day the device stores
/// `samples_per_day × compression_rate` records; on days where
/// `contact(day)` returns true, the flash is drained to the base station.
///
/// Records that do not fit between contacts are counted as lost — exactly
/// the "without data loss" boundary of the paper's operational-time metric.
pub fn simulate_offload(
    spec: &CamazotzSpec,
    compression_rate: f64,
    days: u32,
    mut contact: impl FnMut(u32) -> bool,
) -> OffloadReport {
    assert!(
        compression_rate > 0.0 && compression_rate <= 1.0,
        "compression rate must be in (0, 1]"
    );
    let records_per_day = spec.samples_per_day() * compression_rate;
    let capacity_records = spec.gps_budget_bytes / GPS_RECORD_BYTES as u64;

    let mut stored = 0.0f64;
    let mut lost = 0.0f64;
    let mut peak = 0.0f64;
    let mut contacts = 0u32;

    for day in 0..days {
        stored += records_per_day;
        if stored > capacity_records as f64 {
            lost += stored - capacity_records as f64;
            stored = capacity_records as f64;
        }
        peak = peak.max(stored);
        if contact(day) {
            contacts += 1;
            stored = 0.0;
        }
    }

    OffloadReport {
        days,
        contacts,
        records_lost: lost.round() as u64,
        peak_bytes: (peak * GPS_RECORD_BYTES as f64).round() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weekly_contacts_are_lossless_with_bqs_class_rates() {
        // 5 % compression, contact once a week: 7 × 1440 × 0.05 = 504
        // records between contacts ≪ 4266 capacity.
        let report = simulate_offload(&CamazotzSpec::paper(), 0.05, 90, |d| d % 7 == 6);
        assert!(report.lossless(), "{report:?}");
        assert_eq!(report.contacts, 12);
        assert!(report.peak_bytes <= CamazotzSpec::paper().gps_budget_bytes);
    }

    #[test]
    fn uncompressed_logger_loses_data_between_weekly_contacts() {
        // Raw logging fills 50 KB in under 3 days; a weekly contact cannot
        // save it.
        let report = simulate_offload(&CamazotzSpec::paper(), 1.0, 28, |d| d % 7 == 6);
        assert!(!report.lossless(), "{report:?}");
        assert!(report.records_lost > 1_000);
    }

    #[test]
    fn irregular_contacts() {
        // A migratory animal away from gateways for 40 days straight: even
        // at 5 % the budget (4266 records ≈ 59 days' worth) holds; at 10 %
        // (≈ 29 days' worth) it does not.
        let away_40 = |d: u32| d == 40;
        assert!(simulate_offload(&CamazotzSpec::paper(), 0.05, 41, away_40).lossless());
        assert!(!simulate_offload(&CamazotzSpec::paper(), 0.10, 41, away_40).lossless());
    }

    #[test]
    fn peak_occupancy_tracks_the_longest_gap() {
        let report = simulate_offload(&CamazotzSpec::paper(), 0.05, 30, |d| d == 9 || d == 29);
        // Longest gap is 20 days: 20 × 72 records × 12 B.
        let expected = (20.0 * 1_440.0 * 0.05 * 12.0) as u64;
        assert!(
            report.peak_bytes.abs_diff(expected) <= 24,
            "peak {} vs expected {expected}",
            report.peak_bytes
        );
    }

    #[test]
    #[should_panic(expected = "compression rate")]
    fn rejects_bad_rate() {
        let _ = simulate_offload(&CamazotzSpec::paper(), 0.0, 10, |_| false);
    }
}
