//! Working-set probing — software verification of the paper's
//! constant-space claim.
//!
//! §V-E: "we only need tiny memory space to store at most 32 points besides
//! the program image itself (4 corner points and 4 intersection points for
//! each quadrant)". The probe runs a compressor over a stream while
//! recording the peak working set (significant points + scan buffer) and
//! translates it into bytes against the 4 KB RAM budget.

use crate::camazotz::CamazotzSpec;
use bqs_core::stream::StreamCompressor;
use bqs_core::{BqsConfig, FastBqsCompressor};
use bqs_geo::TimedPoint;

/// Bytes per in-RAM point (two f64 coordinates; timestamps live with the
/// emitted keys, not the working set).
pub const POINT_BYTES: usize = 16;

/// Peak working-set measurements from a probe run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkingSetReport {
    /// Points pushed.
    pub points: usize,
    /// Peak significant-point count observed (≤ 32 for a correct BQS).
    pub peak_significant_points: usize,
    /// Peak scan-buffer length observed (0 for FBQS).
    pub peak_buffered_points: usize,
}

impl WorkingSetReport {
    /// Peak working set in bytes.
    pub fn peak_bytes(&self) -> usize {
        (self.peak_significant_points + self.peak_buffered_points) * POINT_BYTES
    }

    /// Whether the working set fits the platform RAM with headroom for the
    /// stack and globals (we require ≤ 25 % of RAM).
    pub fn fits(&self, spec: &CamazotzSpec) -> bool {
        (self.peak_bytes() as u64) * 4 <= spec.ram_bytes
    }
}

/// Runs the Fast BQS over a stream, recording its peak working set after
/// every push.
pub fn probe_working_set(
    config: BqsConfig,
    points: impl IntoIterator<Item = TimedPoint>,
) -> WorkingSetReport {
    let mut fbqs = FastBqsCompressor::new(config);
    let mut out = Vec::new();
    let mut report = WorkingSetReport {
        points: 0,
        peak_significant_points: 0,
        peak_buffered_points: 0,
    };
    for p in points {
        fbqs.push(p, &mut out);
        report.points += 1;
        report.peak_significant_points = report
            .peak_significant_points
            .max(fbqs.significant_point_count());
        report.peak_buffered_points = report.peak_buffered_points.max(fbqs.buffered_point_count());
    }
    fbqs.finish(&mut out);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(n: usize) -> Vec<TimedPoint> {
        (0..n)
            .map(|i| {
                let a = i as f64;
                TimedPoint::new(
                    a * 7.0 + (a * 0.3).sin() * 10.0,
                    (a * 0.11).sin() * 200.0,
                    a,
                )
            })
            .collect()
    }

    #[test]
    fn fbqs_working_set_is_bounded_by_32_points() {
        let report = probe_working_set(BqsConfig::new(5.0).unwrap(), stream(20_000));
        assert_eq!(report.points, 20_000);
        assert!(
            report.peak_significant_points <= 32,
            "peak {}",
            report.peak_significant_points
        );
        assert_eq!(report.peak_buffered_points, 0);
    }

    #[test]
    fn fits_the_camazotz_ram_budget() {
        let report = probe_working_set(BqsConfig::new(10.0).unwrap(), stream(5_000));
        assert!(report.peak_bytes() <= 32 * POINT_BYTES);
        assert!(report.fits(&CamazotzSpec::paper()));
    }

    #[test]
    fn peak_bytes_arithmetic() {
        let r = WorkingSetReport {
            points: 10,
            peak_significant_points: 20,
            peak_buffered_points: 5,
        };
        assert_eq!(r.peak_bytes(), 25 * POINT_BYTES);
    }

    #[test]
    fn oversized_working_set_fails_the_budget() {
        let r = WorkingSetReport {
            points: 1,
            peak_significant_points: 0,
            // A BDP/BGD-style buffer of 100 points at 16 B = 1.6 KB > 1 KB
            // headroom.
            peak_buffered_points: 100,
        };
        assert!(!r.fits(&CamazotzSpec::paper()));
    }
}
