//! A duty-cycle energy model for the tracking platform.
//!
//! The paper argues BQS "prolongs operational time" through storage; energy
//! is the companion constraint on a solar-charged collar (its own prior
//! work, Jurdak et al. 2013, duty-cycles the GPS for exactly this reason).
//! This model extends the reproduction with a first-order energy budget:
//! per-fix GPS cost, per-point CPU cost scaled by the algorithm's decision
//! work, and per-byte radio cost for offloading whatever the compressor
//! kept.

/// First-order energy model. All costs in millijoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy per GPS fix (acquisition amortised), mJ.
    pub gps_fix_mj: f64,
    /// CPU energy per simple per-point operation (bounds check, distance),
    /// mJ. Scan-based algorithms multiply this by their buffer length.
    pub cpu_op_mj: f64,
    /// Radio energy per transmitted byte, mJ.
    pub radio_byte_mj: f64,
    /// Usable battery capacity per day from the solar harvester, mJ/day.
    pub daily_budget_mj: f64,
}

impl EnergyModel {
    /// Plausible defaults for a CC430-class node with a ublox MAX6:
    /// ~300 mJ per duty-cycled warm fix (≈ 75 mW receiver for a few
    /// seconds), ~0.002 mJ per short CPU burst, ~0.006 mJ/byte at 900 MHz,
    /// and a ~600 J/day usable solar budget (small collar panel).
    pub fn cc430_defaults() -> EnergyModel {
        EnergyModel {
            gps_fix_mj: 300.0,
            cpu_op_mj: 0.002,
            radio_byte_mj: 0.006,
            daily_budget_mj: 600_000.0,
        }
    }

    /// Daily energy use, given fixes/day, average per-point CPU operations
    /// (1 for FBQS/DR; ≈ buffer length for scan-based algorithms) and
    /// bytes offloaded per day.
    pub fn daily_use_mj(
        &self,
        fixes_per_day: f64,
        avg_ops_per_point: f64,
        bytes_per_day: f64,
    ) -> f64 {
        self.gps_fix_mj * fixes_per_day
            + self.cpu_op_mj * avg_ops_per_point * fixes_per_day
            + self.radio_byte_mj * bytes_per_day
    }

    /// Fraction of the daily budget consumed (1.0 = budget exactly spent).
    pub fn budget_fraction(
        &self,
        fixes_per_day: f64,
        avg_ops_per_point: f64,
        bytes_per_day: f64,
    ) -> f64 {
        self.daily_use_mj(fixes_per_day, avg_ops_per_point, bytes_per_day) / self.daily_budget_mj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gps_dominates_the_budget() {
        let m = EnergyModel::cc430_defaults();
        // 1440 fixes/day, FBQS-like constant work, 5 % of 1440 × 12 B sent.
        let gps_only = m.daily_use_mj(1_440.0, 0.0, 0.0);
        let total = m.daily_use_mj(1_440.0, 32.0, 0.05 * 1_440.0 * 12.0);
        assert!(gps_only / total > 0.9, "GPS share {}", gps_only / total);
    }

    #[test]
    fn scan_heavy_algorithms_cost_more_cpu() {
        let m = EnergyModel::cc430_defaults();
        let fbqs = m.daily_use_mj(1_440.0, 32.0, 1_000.0);
        let bgd = m.daily_use_mj(1_440.0, 256.0, 1_000.0);
        assert!(bgd > fbqs);
    }

    #[test]
    fn budget_fraction_scales_linearly() {
        let m = EnergyModel::cc430_defaults();
        let one = m.budget_fraction(1_440.0, 1.0, 0.0);
        let two = m.budget_fraction(2_880.0, 1.0, 0.0);
        assert!((two / one - 2.0).abs() < 1e-9);
    }

    #[test]
    fn default_duty_cycle_is_sustainable() {
        let m = EnergyModel::cc430_defaults();
        // The paper's 1 fix/min schedule must fit the solar budget.
        let frac = m.budget_fraction(1_440.0, 32.0, 0.05 * 1_440.0 * 12.0);
        assert!(frac < 1.0, "1 fix/min busts the budget: {frac}");
    }
}
