//! Property tests for the Prometheus exposition: the rendered text
//! round-trips through a hand-rolled parser of the 0.0.4 text format,
//! bucket series are cumulative and monotone in `le`, `_sum`/`_count`
//! equal the snapshot's exact cells, and merging snapshots commutes
//! with rendering (parse(render(a ⊕ b)) = parse(render(a)) ⊕
//! parse(render(b))).

use std::collections::BTreeMap;

use bqs_obs::{render_prometheus_histogram, Histogram, HistogramSnapshot, MetricsRegistry};
use proptest::prelude::*;

/// A histogram family parsed back out of exposition text. `le` keys
/// are the finite bucket bounds; `inf` is the mandatory `+Inf` series.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ParsedHistogram {
    /// Cumulative count per finite `le`, ascending.
    cumulative: BTreeMap<u64, u64>,
    inf: u64,
    sum: u64,
    count: u64,
}

/// Hand-rolled parser for one `render_prometheus_histogram` family.
/// Strict: every non-comment line must be one of the four shapes, and
/// `# TYPE <name> histogram` must be present.
fn parse_histogram(name: &str, text: &str) -> ParsedHistogram {
    let mut cumulative = BTreeMap::new();
    let mut inf = None;
    let mut sum = None;
    let mut count = None;
    let mut typed = false;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            assert_eq!(rest, format!("{name} histogram"), "bad TYPE line: {line}");
            typed = true;
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample line");
        let value: u64 = value.parse().expect("u64 sample value");
        if let Some(le) = series
            .strip_prefix(&format!("{name}_bucket{{le=\""))
            .and_then(|s| s.strip_suffix("\"}"))
        {
            if le == "+Inf" {
                assert!(inf.replace(value).is_none(), "duplicate +Inf");
            } else {
                let le: u64 = le.parse().expect("finite le is a u64");
                assert!(cumulative.insert(le, value).is_none(), "duplicate le");
            }
        } else if series == format!("{name}_sum") {
            assert!(sum.replace(value).is_none(), "duplicate _sum");
        } else if series == format!("{name}_count") {
            assert!(count.replace(value).is_none(), "duplicate _count");
        } else {
            panic!("unrecognised series {series:?}");
        }
    }
    assert!(typed, "missing # TYPE line");
    ParsedHistogram {
        cumulative,
        inf: inf.expect("+Inf bucket is mandatory"),
        sum: sum.expect("_sum is mandatory"),
        count: count.expect("_count is mandatory"),
    }
}

impl ParsedHistogram {
    /// Per-bucket (non-cumulative) counts keyed by finite `le`.
    fn decumulated(&self) -> BTreeMap<u64, u64> {
        let mut out = BTreeMap::new();
        let mut prev = 0u64;
        for (&le, &cum) in &self.cumulative {
            out.insert(le, cum - prev);
            prev = cum;
        }
        out
    }

    /// The ⊕ on parsed families matching snapshot merge: per-bucket
    /// counts add pointwise, sums wrap like the snapshot's.
    fn merge(&self, other: &ParsedHistogram) -> ParsedHistogram {
        let mut counts = self.decumulated();
        for (&le, &n) in &other.decumulated() {
            *counts.entry(le).or_insert(0) += n;
        }
        let mut cumulative = BTreeMap::new();
        let mut running = 0u64;
        for (&le, &n) in &counts {
            running += n;
            cumulative.insert(le, running);
        }
        ParsedHistogram {
            cumulative,
            inf: self.inf + other.inf,
            sum: self.sum.wrapping_add(other.sum),
            count: self.count + other.count,
        }
    }
}

fn snap(samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h.snapshot()
}

/// Widens small draws into the full `u64` range (same trick as
/// `histogram_prop.rs`), hitting every bucket including the top one.
fn widen(raw: Vec<(u64, u32)>) -> Vec<u64> {
    raw.into_iter()
        .map(|(m, s)| m.wrapping_shl(s % 64))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn rendered_buckets_are_cumulative_monotone_and_exact(
        raw in proptest::collection::vec((0u64..=u64::MAX, 0u32..64), 0..200),
    ) {
        let samples = widen(raw);
        let s = snap(&samples);
        let parsed = parse_histogram("lat_us", &render_prometheus_histogram("lat_us", &s));

        // _count/_sum equal the snapshot's exact cells; +Inf = count.
        prop_assert_eq!(parsed.count, s.count());
        prop_assert_eq!(parsed.sum, s.sum());
        prop_assert_eq!(parsed.inf, s.count());

        // Cumulative and monotone in ascending `le`, bounded by +Inf.
        let mut prev = 0u64;
        for (&le, &cum) in &parsed.cumulative {
            prop_assert!(cum >= prev, "le={le}: {cum} < {prev}");
            prev = cum;
        }
        prop_assert!(prev <= parsed.inf);

        // Each cumulative value equals the true ≤-le sample count.
        for (&le, &cum) in &parsed.cumulative {
            let truth = samples.iter().filter(|&&v| v <= le).count() as u64;
            prop_assert_eq!(cum, truth, "le={}", le);
        }
    }

    #[test]
    fn merged_snapshots_render_as_merged_renders(
        ra in proptest::collection::vec((0u64..=u64::MAX, 0u32..64), 0..150),
        rb in proptest::collection::vec((0u64..=u64::MAX, 0u32..64), 0..150),
    ) {
        let (va, vb) = (widen(ra), widen(rb));
        let (a, b) = (snap(&va), snap(&vb));
        let mut ab = a.clone();
        ab.merge(&b);

        let pa = parse_histogram("h", &render_prometheus_histogram("h", &a));
        let pb = parse_histogram("h", &render_prometheus_histogram("h", &b));
        let pab = parse_histogram("h", &render_prometheus_histogram("h", &ab));

        // The merged snapshot's render parses to exactly the merge of
        // the individual parses (bucket-by-bucket, sum and count).
        prop_assert_eq!(pab.decumulated(), pa.merge(&pb).decumulated());
        prop_assert_eq!(pab.sum, pa.merge(&pb).sum);
        prop_assert_eq!(pab.count, pa.merge(&pb).count);
        prop_assert_eq!(pab.inf, pa.merge(&pb).inf);
    }

    #[test]
    fn full_registry_exposition_stays_well_formed(
        counter in 0u64..=u64::MAX,
        gauge in 0u64..1_000_000,
        raw in proptest::collection::vec((0u64..=u64::MAX, 0u32..64), 0..100),
    ) {
        let reg = MetricsRegistry::new();
        reg.counter("c_total").add(counter);
        reg.gauge("g_depth").set(gauge);
        let h = reg.histogram("h_us");
        for v in widen(raw) {
            h.record(v);
        }
        let text = reg.render_prometheus();
        // Every sample line is `series value` with a u64 value; every
        // series belongs to a family announced by a # TYPE line.
        let mut types = BTreeMap::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (fam, kind) = rest.rsplit_once(' ').expect("TYPE family kind");
                types.insert(fam.to_string(), kind.to_string());
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            prop_assert!(value.parse::<u64>().is_ok(), "bad value in {line:?}");
            let family = series.split('{').next().expect("series name");
            let known = types.contains_key(family)
                || ["_bucket", "_sum", "_count"].iter().any(|suf| {
                    family
                        .strip_suffix(suf)
                        .is_some_and(|base| types.get(base).map(String::as_str) == Some("histogram"))
                });
            prop_assert!(known, "series {series:?} has no TYPE family");
        }
        prop_assert_eq!(types.get("c_total").map(String::as_str), Some("counter"));
        prop_assert_eq!(types.get("g_depth").map(String::as_str), Some("gauge"));
        prop_assert_eq!(types.get("h_us").map(String::as_str), Some("histogram"));
    }
}
