//! Property tests for the log₂-bucket histogram: merging snapshots is
//! associative and commutative (so per-thread views combine in any
//! order), quantile extraction brackets the true order statistic from a
//! sorted reference, and the saturated top bucket accepts any `u64`
//! without panicking.

use bqs_obs::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

/// Records `samples` into a fresh histogram and snapshots it.
fn snap(samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h.snapshot()
}

fn merged(a: &HistogramSnapshot, b: &HistogramSnapshot) -> HistogramSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

/// Widens small draws into the full `u64` range: `(mantissa, shift)`
/// becomes `mantissa << shift`, hitting every bucket including the
/// saturated top one.
fn widen(raw: Vec<(u64, u32)>) -> Vec<u64> {
    raw.into_iter()
        .map(|(m, s)| m.wrapping_shl(s % 64))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_is_commutative_and_associative(
        ra in proptest::collection::vec((0u64..=u64::MAX, 0u32..64), 0..120),
        rb in proptest::collection::vec((0u64..=u64::MAX, 0u32..64), 0..120),
        rc in proptest::collection::vec((0u64..=u64::MAX, 0u32..64), 0..120),
    ) {
        let (a, b, c) = (snap(&widen(ra)), snap(&widen(rb)), snap(&widen(rc)));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
        prop_assert_eq!(
            merged(&merged(&a, &b), &c),
            merged(&a, &merged(&b, &c))
        );
        // The empty snapshot is the merge identity.
        prop_assert_eq!(merged(&a, &HistogramSnapshot::new()), a);
    }

    #[test]
    fn merging_equals_recording_the_concatenation(
        ra in proptest::collection::vec((0u64..=u64::MAX, 0u32..64), 0..120),
        rb in proptest::collection::vec((0u64..=u64::MAX, 0u32..64), 0..120),
    ) {
        let (va, vb) = (widen(ra), widen(rb));
        let mut both = va.clone();
        both.extend_from_slice(&vb);
        prop_assert_eq!(merged(&snap(&va), &snap(&vb)), snap(&both));
    }

    #[test]
    fn quantiles_bracket_the_sorted_reference(
        raw in proptest::collection::vec((0u64..=u64::MAX, 0u32..64), 1..200),
        q in 0.0f64..1.0,
    ) {
        let samples = widen(raw);
        let s = snap(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let truth = sorted[(rank - 1) as usize];
        let got = s.quantile(q);
        // The reported bound never understates the true order statistic…
        prop_assert!(got >= truth, "q={q}: got {got} < truth {truth}");
        // …and overstates it by at most 2× below the saturated top
        // bucket (within the top bucket only the exact max clamps it).
        if truth == 0 {
            prop_assert_eq!(got, 0);
        } else if truth < (1u64 << 62) {
            prop_assert!(got <= truth.saturating_mul(2), "q={q}: got {got} > 2×{truth}");
        } else {
            prop_assert!(got <= s.max());
        }
    }

    #[test]
    fn saturation_and_extremes_never_panic(
        raw in proptest::collection::vec(0u64..=u64::MAX, 0..64),
        q in 0.0f64..1.0,
    ) {
        let h = Histogram::new();
        for &v in &raw {
            h.record(v);
        }
        // The top bucket absorbs the largest representable values.
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(1u64 << 63);
        let s = h.snapshot();
        prop_assert_eq!(s.count(), raw.len() as u64 + 3);
        prop_assert_eq!(s.max(), u64::MAX);
        for probe in [0.0, q, 0.5, 0.99, 1.0] {
            prop_assert!(s.quantile(probe) <= s.max());
        }
        prop_assert!(s.mean() <= s.max());
    }
}
