//! Declarative threshold alerting over the live registry.
//!
//! A rule is one line of grammar:
//!
//! ```text
//! <metric>:<stat> <op> <threshold>     (no spaces on the wire)
//! append_latency_us:p99>5000
//! fleet_queue_depth:peak>48
//! net_frames_append_total:rate<100
//! ```
//!
//! `<stat>` selects how the metric is reduced to one number and is
//! kind-checked at startup against the registry:
//!
//! | kind | stats |
//! |---|---|
//! | counter | `rate` (per second over the reporter interval), `total` |
//! | gauge | `value`, `peak` |
//! | histogram | `p50`, `p90`, `p99`, `max`, `mean`, `count` |
//!
//! `<op>` is `>` or `<`; `<threshold>` is a finite decimal. Parsing and
//! validation are total functions returning typed errors — a malformed
//! rule or unknown metric refuses startup, it never becomes a silent
//! no-op.

use crate::{MetricSample, MetricsRegistry};

/// The reduction a rule applies to its metric each evaluation tick.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlertStat {
    /// Counter increase per second since the previous tick.
    Rate,
    /// Counter running total.
    Total,
    /// Gauge current value.
    Value,
    /// Gauge high-water mark.
    Peak,
    /// Histogram median upper bound.
    P50,
    /// Histogram 90th-percentile upper bound.
    P90,
    /// Histogram 99th-percentile upper bound.
    P99,
    /// Histogram exact observed max.
    Max,
    /// Histogram mean sample.
    Mean,
    /// Histogram sample count.
    Count,
}

impl AlertStat {
    fn parse(s: &str) -> Option<AlertStat> {
        match s {
            "rate" => Some(AlertStat::Rate),
            "total" => Some(AlertStat::Total),
            "value" => Some(AlertStat::Value),
            "peak" => Some(AlertStat::Peak),
            "p50" => Some(AlertStat::P50),
            "p90" => Some(AlertStat::P90),
            "p99" => Some(AlertStat::P99),
            "max" => Some(AlertStat::Max),
            "mean" => Some(AlertStat::Mean),
            "count" => Some(AlertStat::Count),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            AlertStat::Rate => "rate",
            AlertStat::Total => "total",
            AlertStat::Value => "value",
            AlertStat::Peak => "peak",
            AlertStat::P50 => "p50",
            AlertStat::P90 => "p90",
            AlertStat::P99 => "p99",
            AlertStat::Max => "max",
            AlertStat::Mean => "mean",
            AlertStat::Count => "count",
        }
    }
}

/// The comparator between observed value and threshold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlertOp {
    /// Trips when observed > threshold.
    Gt,
    /// Trips when observed < threshold.
    Lt,
}

/// One parsed `metric:stat>threshold` rule.
#[derive(Clone, Debug)]
pub struct AlertRule {
    metric: String,
    stat: AlertStat,
    op: AlertOp,
    threshold: f64,
    raw: String,
}

impl AlertRule {
    /// Parses the rule grammar. Errors name the defect, not just the
    /// input.
    pub fn parse(raw: &str) -> Result<AlertRule, String> {
        let (metric, rest) = raw.split_once(':').ok_or_else(|| {
            format!("alert rule {raw:?} is missing `:stat` after the metric name")
        })?;
        if metric.is_empty() {
            return Err(format!("alert rule {raw:?} has an empty metric name"));
        }
        let op_at = rest
            .find(['>', '<'])
            .ok_or_else(|| format!("alert rule {raw:?} is missing a `>` or `<` comparator"))?;
        let (stat_s, op_and_threshold) = rest.split_at(op_at);
        let stat = AlertStat::parse(stat_s).ok_or_else(|| {
            format!(
                "alert rule {raw:?} has unknown stat {stat_s:?} (want rate, total, value, peak, p50, p90, p99, max, mean or count)"
            )
        })?;
        let op = if op_and_threshold.starts_with('>') {
            AlertOp::Gt
        } else {
            AlertOp::Lt
        };
        let threshold_s = &op_and_threshold[1..];
        let threshold: f64 = threshold_s.parse().map_err(|_| {
            format!("alert rule {raw:?} has a non-numeric threshold {threshold_s:?}")
        })?;
        if !threshold.is_finite() {
            return Err(format!("alert rule {raw:?} has a non-finite threshold"));
        }
        Ok(AlertRule {
            metric: metric.to_string(),
            stat,
            op,
            threshold,
            raw: raw.to_string(),
        })
    }

    /// The metric name the rule watches.
    pub fn metric(&self) -> &str {
        &self.metric
    }

    /// The rule exactly as the user wrote it.
    pub fn raw(&self) -> &str {
        &self.raw
    }

    /// The selected reduction.
    pub fn stat(&self) -> AlertStat {
        self.stat
    }

    /// The trip threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Checks that the metric exists in `registry` and that the stat
    /// matches its kind. Run once at startup, after the server has
    /// registered its catalog.
    pub fn validate(&self, registry: &MetricsRegistry) -> Result<(), String> {
        let Some(sample) = registry.sample(&self.metric) else {
            return Err(format!(
                "alert rule {:?} names unknown metric {:?}",
                self.raw, self.metric
            ));
        };
        let (kind, ok) = match sample {
            MetricSample::Counter(_) => (
                "counter",
                matches!(self.stat, AlertStat::Rate | AlertStat::Total),
            ),
            MetricSample::Gauge { .. } => (
                "gauge",
                matches!(self.stat, AlertStat::Value | AlertStat::Peak),
            ),
            MetricSample::Histogram(_) => (
                "histogram",
                matches!(
                    self.stat,
                    AlertStat::P50
                        | AlertStat::P90
                        | AlertStat::P99
                        | AlertStat::Max
                        | AlertStat::Mean
                        | AlertStat::Count
                ),
            ),
        };
        if ok {
            Ok(())
        } else {
            Err(format!(
                "alert rule {:?}: stat `{}` does not apply to {} metric {:?}",
                self.raw,
                self.stat.name(),
                kind,
                self.metric
            ))
        }
    }

    /// Reduces one sample to the observed value. `prev_total` is the
    /// counter total at the previous tick (used only by `rate`);
    /// `interval_secs` is the elapsed time since then.
    pub fn observe(&self, sample: &MetricSample, prev_total: u64, interval_secs: f64) -> f64 {
        match (sample, self.stat) {
            (MetricSample::Counter(total), AlertStat::Rate) => {
                if interval_secs > 0.0 {
                    total.saturating_sub(prev_total) as f64 / interval_secs
                } else {
                    0.0
                }
            }
            (MetricSample::Counter(total), _) => *total as f64,
            (MetricSample::Gauge { value, .. }, AlertStat::Value) => *value as f64,
            (MetricSample::Gauge { peak, .. }, _) => *peak as f64,
            (MetricSample::Histogram(s), AlertStat::P50) => s.p50() as f64,
            (MetricSample::Histogram(s), AlertStat::P90) => s.p90() as f64,
            (MetricSample::Histogram(s), AlertStat::P99) => s.p99() as f64,
            (MetricSample::Histogram(s), AlertStat::Max) => s.max() as f64,
            (MetricSample::Histogram(s), AlertStat::Mean) => s.mean() as f64,
            (MetricSample::Histogram(s), _) => s.count() as f64,
        }
    }

    /// Whether `observed` trips the rule.
    pub fn check(&self, observed: f64) -> bool {
        match self.op {
            AlertOp::Gt => observed > self.threshold,
            AlertOp::Lt => observed < self.threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_issue_examples() {
        let r = AlertRule::parse("append_latency_us:p99>5000").unwrap();
        assert_eq!(r.metric(), "append_latency_us");
        assert_eq!(r.stat(), AlertStat::P99);
        assert_eq!(r.threshold(), 5000.0);
        assert!(r.check(5001.0));
        assert!(!r.check(5000.0));

        let r = AlertRule::parse("fleet_queue_depth:peak>48").unwrap();
        assert_eq!(r.stat(), AlertStat::Peak);

        let r = AlertRule::parse("net_frames_append_total:rate<100").unwrap();
        assert!(r.check(99.9));
        assert!(!r.check(100.0));
    }

    #[test]
    fn parse_errors_are_typed() {
        for (rule, needle) in [
            ("no_colon>5", "missing `:stat`"),
            (":p99>5", "empty metric name"),
            ("m:p99", "missing a `>` or `<`"),
            ("m:p98>5", "unknown stat"),
            ("m:p99>abc", "non-numeric threshold"),
            ("m:p99>inf", "non-finite threshold"),
        ] {
            let err = AlertRule::parse(rule).unwrap_err();
            assert!(err.contains(needle), "{rule}: {err}");
        }
    }

    #[test]
    fn validate_checks_existence_and_kind() {
        let reg = MetricsRegistry::new();
        reg.counter("reqs_total");
        reg.gauge("depth");
        reg.histogram("lat_us");

        assert!(AlertRule::parse("reqs_total:rate>1")
            .unwrap()
            .validate(&reg)
            .is_ok());
        assert!(AlertRule::parse("reqs_total:total>1")
            .unwrap()
            .validate(&reg)
            .is_ok());
        assert!(AlertRule::parse("depth:peak>1")
            .unwrap()
            .validate(&reg)
            .is_ok());
        assert!(AlertRule::parse("lat_us:p99>1")
            .unwrap()
            .validate(&reg)
            .is_ok());

        let err = AlertRule::parse("nope:total>1")
            .unwrap()
            .validate(&reg)
            .unwrap_err();
        assert!(err.contains("unknown metric"), "{err}");
        let err = AlertRule::parse("reqs_total:p99>1")
            .unwrap()
            .validate(&reg)
            .unwrap_err();
        assert!(err.contains("does not apply to counter"), "{err}");
        let err = AlertRule::parse("depth:rate>1")
            .unwrap()
            .validate(&reg)
            .unwrap_err();
        assert!(err.contains("does not apply to gauge"), "{err}");
        let err = AlertRule::parse("lat_us:value>1")
            .unwrap()
            .validate(&reg)
            .unwrap_err();
        assert!(err.contains("does not apply to histogram"), "{err}");
    }

    #[test]
    fn rate_observes_the_delta_per_second() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("reqs_total");
        c.add(100);
        let rule = AlertRule::parse("reqs_total:rate>10").unwrap();
        let sample = reg.sample("reqs_total").unwrap();
        // 100 − 40 over 2 s = 30/s.
        assert_eq!(rule.observe(&sample, 40, 2.0), 30.0);
        assert!(rule.check(rule.observe(&sample, 40, 2.0)));
        // Counter reset (prev > total) saturates to 0, never negative.
        assert_eq!(rule.observe(&sample, 200, 2.0), 0.0);
    }

    #[test]
    fn histogram_stats_observe_snapshot_values() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_us");
        for v in 1..=1000u64 {
            h.record(v);
        }
        let sample = reg.sample("lat_us").unwrap();
        let p99 = AlertRule::parse("lat_us:p99>0")
            .unwrap()
            .observe(&sample, 0, 1.0);
        assert!((990.0..=1000.0).contains(&p99));
        let count = AlertRule::parse("lat_us:count>0")
            .unwrap()
            .observe(&sample, 0, 1.0);
        assert_eq!(count, 1000.0);
        let max = AlertRule::parse("lat_us:max>0")
            .unwrap()
            .observe(&sample, 0, 1.0);
        assert_eq!(max, 1000.0);
    }
}
