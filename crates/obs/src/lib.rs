//! # bqs-obs — lock-free observability primitives
//!
//! The serving stack (net server → parallel fleet → durable log) moves
//! millions of points per second; any instrumentation on those paths
//! must be cheaper than the work it measures. This crate provides the
//! three metric kinds the system needs, all std-only and allocation-free
//! on the hot path:
//!
//! * [`Counter`] — a monotonically increasing `u64` (relaxed atomic).
//! * [`Gauge`] — a current value plus a high-water mark (`fetch_max`).
//! * [`Histogram`] — a fixed array of 64 log₂-scale buckets with exact
//!   count/sum/max, recording in a handful of relaxed atomics. Bucket
//!   `i ≥ 1` covers `[2^(i-1), 2^i)`; bucket 0 holds zeros; the top
//!   bucket saturates, so any `u64` is recordable. Snapshots merge
//!   associatively and commutatively across threads, and quantile
//!   extraction returns the bucket's inclusive upper bound clamped to
//!   the exact observed max — never below the true order statistic, and
//!   at most 2× above it outside the saturated top bucket.
//!   Worst-case-honest, in the spirit of AWS ClockBound's always-true
//!   error bound rather than a sampled average.
//! * [`MetricsRegistry`] — a named catalog of the above. Registration
//!   takes a mutex (cold path, start-up only); the handles it returns
//!   are `Arc`-backed and lock-free. [`MetricsRegistry::render`]
//!   produces a sorted `name value` text exposition.
//!
//! Instrumented code holds `Option<…handles…>`: when no registry was
//! installed the per-event cost is a branch on `None`, so the disabled
//! path is effectively free.

#![deny(missing_docs)]

mod alert;
mod prom;
mod trace;

pub use alert::{AlertOp, AlertRule, AlertStat};
pub use prom::render_prometheus_histogram;
pub use trace::{FlightRecorder, TraceEvent, TraceEventKind, TraceSnapshot};

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of histogram buckets: one for zero plus one per power of two.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Microseconds elapsed since `start`, saturated into a `u64`.
///
/// The canonical unit for latency histograms in this workspace.
pub fn elapsed_us(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// The workspace's clock read: [`Instant::now`] behind one auditable
/// symbol.
///
/// Hot modules (the `now-in-hot-path` list in `bqs analyze`) must take
/// their timestamps here — per-event clock reads are a measurable cost
/// on the ingest path, and funnelling them through `bqs-obs` keeps
/// every such read greppable and swappable (e.g. for a coarse ticker)
/// in one place.
#[inline]
pub fn now() -> Instant {
    Instant::now()
}

/// A monotonically increasing counter. Cloning shares the same cell.
///
/// All operations are relaxed atomics: increments from any thread are
/// never lost, but readers may observe slightly stale totals — fine for
/// telemetry, and the reason recording costs a single `fetch_add`.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero (unregistered; see
    /// [`MetricsRegistry::counter`] for named ones).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time value with a high-water mark. Cloning shares state.
///
/// `set`/`add` keep the peak up to date via `fetch_max`, so the
/// high-water mark is exact even under concurrent writers.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<GaugeCell>);

#[derive(Debug, Default)]
struct GaugeCell {
    value: AtomicU64,
    peak: AtomicU64,
}

impl Gauge {
    /// A fresh gauge at zero (unregistered; see
    /// [`MetricsRegistry::gauge`] for named ones).
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the current value (and raises the peak if exceeded).
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.value.store(v, Ordering::Relaxed);
        self.0.peak.fetch_max(v, Ordering::Relaxed);
    }

    /// Adds `n` to the current value (raising the peak if exceeded).
    #[inline]
    pub fn add(&self, n: u64) {
        let now = self.0.value.fetch_add(n, Ordering::Relaxed) + n;
        self.0.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Subtracts `n` from the current value (saturating at zero only
    /// under single-writer use; concurrent over-subtraction wraps like
    /// any unsigned decrement and is a caller bug).
    #[inline]
    pub fn sub(&self, n: u64) {
        self.0.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.value.load(Ordering::Relaxed)
    }

    /// The highest value ever set/reached.
    pub fn peak(&self) -> u64 {
        self.0.peak.load(Ordering::Relaxed)
    }
}

/// A log₂-bucket histogram of `u64` samples. Cloning shares the cells,
/// so one histogram can be recorded into from many threads at once.
///
/// Bucket 0 counts zeros; bucket `i ∈ [1, 63]` counts samples in
/// `[2^(i-1), 2^i)`; bucket 63 additionally absorbs everything from
/// `2^62` up to `u64::MAX` (saturation, never a panic). Count, sum and
/// max are tracked exactly. Recording is 4 relaxed atomic RMWs.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistogramCells>);

#[derive(Debug)]
struct HistogramCells {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCells {
    fn default() -> HistogramCells {
        HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket a sample lands in.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        // floor(log2(v)) + 1, clamped into the top bucket.
        (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the top bucket).
///
/// Public because the Prometheus exposition and its tests need the
/// log₂ → `le` boundary map.
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// A fresh empty histogram (unregistered; see
    /// [`MetricsRegistry::histogram`] for named ones).
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let cells = &*self.0;
        cells.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        cells.count.fetch_add(1, Ordering::Relaxed);
        cells.sum.fetch_add(v, Ordering::Relaxed);
        cells.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records the microseconds elapsed since `start`.
    #[inline]
    pub fn record_elapsed(&self, start: Instant) {
        self.record(elapsed_us(start));
    }

    /// A consistent-enough copy of the current state. Concurrent
    /// recording may make count/sum/buckets disagree by the few samples
    /// in flight; each individual cell is exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let cells = &*self.0;
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| cells.buckets[i].load(Ordering::Relaxed)),
            count: cells.count.load(Ordering::Relaxed),
            sum: cells.sum.load(Ordering::Relaxed),
            max: cells.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (the merge identity).
    pub fn new() -> HistogramSnapshot {
        HistogramSnapshot::default()
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample recorded — exact, not a bucket bound.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, zero when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The raw per-bucket counts (see the crate docs for the log₂
    /// bucket layout).
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Folds `other` into `self`. Associative and commutative, so
    /// per-thread snapshots can be combined in any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// An upper bound on the `q`-quantile (`q ∈ [0, 1]`): the inclusive
    /// upper bound of the bucket holding the rank-`⌈q·count⌉` sample,
    /// clamped to the exact observed max. Never below the true order
    /// statistic, and at most 2× above it outside the saturated top
    /// bucket; zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median upper bound ([`HistogramSnapshot::quantile`] at 0.50).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile upper bound.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[derive(Clone)]
pub(crate) enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A point-in-time read of one registered metric, as returned by
/// [`MetricsRegistry::sample`]. Alert rules reduce these to a single
/// observed value.
#[derive(Clone, Debug)]
pub enum MetricSample {
    /// A counter's running total.
    Counter(u64),
    /// A gauge's current value and high-water mark.
    Gauge {
        /// The current value.
        value: u64,
        /// The highest value ever reached.
        peak: u64,
    },
    /// A histogram's full snapshot, boxed to keep the enum small (the
    /// snapshot carries the whole bucket array).
    Histogram(Box<HistogramSnapshot>),
}

/// This process's resident set size in bytes: `/proc/self/statm` pages
/// × the ELF-auxv page size on Linux, 0 on every other platform (a
/// honest "not measured", never a guess).
///
/// Cold-path only — the metrics reporter refreshes a
/// `process_rss_bytes` gauge from it once per tick.
pub fn process_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        let Ok(statm) = std::fs::read_to_string("/proc/self/statm") else {
            return 0;
        };
        // statm: size resident shared text lib data dt (in pages).
        let mut fields = statm.split_whitespace();
        let _size = fields.next();
        match fields.next().and_then(|v| v.parse::<u64>().ok()) {
            Some(resident_pages) => resident_pages.saturating_mul(page_size_bytes()),
            None => 0,
        }
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// The system page size from `/proc/self/auxv` (`AT_PAGESZ` = 6);
/// falls back to 4096 if the auxv is unreadable. std exposes no
/// `sysconf`, and the auxv is a plain file of `u64` key/value pairs.
#[cfg(target_os = "linux")]
fn page_size_bytes() -> u64 {
    const AT_PAGESZ: u64 = 6;
    if let Ok(bytes) = std::fs::read("/proc/self/auxv") {
        for pair in bytes.chunks_exact(16) {
            let mut key = [0u8; 8];
            let mut val = [0u8; 8];
            key.copy_from_slice(&pair[..8]);
            val.copy_from_slice(&pair[8..]);
            if u64::from_ne_bytes(key) == AT_PAGESZ {
                return u64::from_ne_bytes(val);
            }
        }
    }
    4096
}

/// A named catalog of metrics with a text exposition.
///
/// Cloning is cheap and shares the catalog. Looking a metric up (or
/// registering it) takes a mutex — do that once at start-up and keep
/// the returned handle; the handles themselves are lock-free.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn register(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut map = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// The counter named `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.register(name, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            // bqs-analyze: allow(no-unwrap-in-lib) — kind mismatch is a caller bug; the registry documents this panic
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// The gauge named `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.register(name, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            // bqs-analyze: allow(no-unwrap-in-lib) — kind mismatch is a caller bug; the registry documents this panic
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// The histogram named `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.register(name, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            // bqs-analyze: allow(no-unwrap-in-lib) — kind mismatch is a caller bug; the registry documents this panic
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// A sorted copy of the catalog's (name, handle) pairs.
    pub(crate) fn snapshot_metrics(&self) -> Vec<(String, Metric)> {
        let map = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        map.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    /// A point-in-time read of one metric by name, or `None` when no
    /// such metric is registered. This is the lookup the alert
    /// evaluator uses: one mutex acquisition per tick per rule, never
    /// on a hot path.
    pub fn sample(&self, name: &str) -> Option<MetricSample> {
        let map = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        map.get(name).map(|m| match m {
            Metric::Counter(c) => MetricSample::Counter(c.get()),
            Metric::Gauge(g) => MetricSample::Gauge {
                value: g.get(),
                peak: g.peak(),
            },
            Metric::Histogram(h) => MetricSample::Histogram(Box::new(h.snapshot())),
        })
    }

    /// The text exposition: one `name value` line per scalar, sorted by
    /// name. Gauges also emit `name_peak`; histograms emit
    /// `name_count`, `name_sum`, `name_mean`, `name_p50`, `name_p90`,
    /// `name_p99` and `name_max`. Every value is a decimal `u64`, so
    /// the output greps and diffs trivially.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, metric) in self.snapshot_metrics() {
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name} {}", g.get());
                    let _ = writeln!(out, "{name}_peak {}", g.peak());
                }
                Metric::Histogram(h) => {
                    // Suffixes in lexicographic order keep the whole
                    // exposition sorted line-by-line.
                    let s = h.snapshot();
                    let _ = writeln!(out, "{name}_count {}", s.count());
                    let _ = writeln!(out, "{name}_max {}", s.max());
                    let _ = writeln!(out, "{name}_mean {}", s.mean());
                    let _ = writeln!(out, "{name}_p50 {}", s.p50());
                    let _ = writeln!(out, "{name}_p90 {}", s.p90());
                    let _ = writeln!(out, "{name}_p99 {}", s.p99());
                    let _ = writeln!(out, "{name}_sum {}", s.sum());
                }
            }
        }
        out
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let map = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("MetricsRegistry")
            .field("metrics", &map.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_across_clones_and_threads() {
        let c = Counter::new();
        let c2 = c.clone();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        c2.add(5);
        assert_eq!(c.get(), 4005);
    }

    #[test]
    fn gauge_tracks_value_and_peak() {
        let g = Gauge::new();
        g.set(7);
        g.add(5);
        g.sub(10);
        assert_eq!(g.get(), 2);
        assert_eq!(g.peak(), 12);
        g.set(3);
        assert_eq!(g.peak(), 12);
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_bound_the_sorted_reference() {
        let h = Histogram::new();
        let samples: Vec<u64> = (1..=1000).collect();
        for &v in &samples {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.sum(), 500_500);
        assert_eq!(s.max(), 1000);
        // p50's true order statistic is 500; the bucket bound is 511.
        assert_eq!(s.p50(), 511);
        assert!(s.p99() >= 990 && s.p99() <= 1000);
        assert_eq!(s.quantile(1.0), 1000);
        assert_eq!(s.quantile(0.0), 1); // rank clamps to 1
    }

    #[test]
    fn top_bucket_saturates_without_panicking() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 63);
        h.record(1u64 << 62);
        let s = h.snapshot();
        assert_eq!(s.count(), 3);
        assert_eq!(s.max(), u64::MAX);
        assert_eq!(s.quantile(1.0), u64::MAX);
    }

    #[test]
    fn snapshots_merge_exactly() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [0u64, 1, 5, 100] {
            a.record(v);
        }
        for v in [3u64, 1 << 40] {
            b.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        let all = Histogram::new();
        for v in [0u64, 1, 5, 100, 3, 1 << 40] {
            all.record(v);
        }
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn registry_reuses_handles_and_renders_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("b_total").add(2);
        reg.counter("b_total").inc(); // same underlying cell
        reg.gauge("a_live").set(4);
        reg.histogram("c_us").record(100);
        let text = reg.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "a_live 4");
        assert_eq!(lines[1], "a_live_peak 4");
        assert_eq!(lines[2], "b_total 3");
        assert!(lines[3].starts_with("c_us_count 1"));
        assert!(text.contains("c_us_max 100"));
        let mut sorted = lines.clone();
        sorted.sort();
        // Suffix lines keep the overall exposition sorted.
        assert_eq!(lines, sorted);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn sample_reads_each_kind_by_name() {
        let reg = MetricsRegistry::new();
        reg.counter("c_total").add(7);
        reg.gauge("g_depth").set(3);
        reg.histogram("h_us").record(100);
        match reg.sample("c_total") {
            Some(MetricSample::Counter(7)) => {}
            other => panic!("bad counter sample: {other:?}"),
        }
        match reg.sample("g_depth") {
            Some(MetricSample::Gauge { value: 3, peak: 3 }) => {}
            other => panic!("bad gauge sample: {other:?}"),
        }
        match reg.sample("h_us") {
            Some(MetricSample::Histogram(s)) => assert_eq!(s.count(), 1),
            other => panic!("bad histogram sample: {other:?}"),
        }
        assert!(reg.sample("missing").is_none());
    }

    #[test]
    fn process_rss_is_nonzero_on_linux() {
        let rss = process_rss_bytes();
        if cfg!(target_os = "linux") {
            // Any live process resides in at least one page.
            assert!(rss > 0, "rss {rss}");
        } else {
            assert_eq!(rss, 0);
        }
    }
}
