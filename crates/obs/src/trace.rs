//! Flight recorder: a lock-free, fixed-capacity ring of structured
//! trace events.
//!
//! The metrics in this crate answer *how much* and *how slow*; the
//! flight recorder answers *what happened, in what order* for the last
//! N load-bearing moments of the server's life — accept, frame decode,
//! fleet submit, spill, reply flush, reject, eviction. It is built for
//! the same hot paths as [`crate::Histogram`]: recording is a handful
//! of relaxed atomic stores into a pre-allocated slot, no allocation,
//! no locks, and instrumented code holds an `Option<FlightRecorder>`
//! so the disabled path is a branch on `None`.
//!
//! ## Slot protocol
//!
//! The ring is a single monotone `head` sequence plus `capacity`
//! pre-allocated slots. Writers claim a sequence number with one
//! relaxed `fetch_add`, then publish the event seqlock-style: stamp the
//! slot as in-progress, write the payload fields, then store the final
//! stamp (`seq + 1`) with release ordering. Readers snapshot by
//! walking the last `capacity` sequence numbers and keeping only slots
//! whose stamp survives an acquire-fenced double read — a slot being
//! overwritten mid-snapshot is skipped, never torn.
//!
//! Consecutive sequence numbers land in different shards
//! (`shard = seq & 7`), so two threads recording back-to-back events
//! touch different cache lines instead of bouncing one.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::{elapsed_us, Counter};

/// Number of slot shards; consecutive sequence numbers rotate through
/// them so concurrent writers rarely share a cache line.
const TRACE_SHARDS: u64 = 8;

/// Stamp value marking a slot whose payload is mid-write.
const WRITING: u64 = u64::MAX;

/// Where in a request's life an event was recorded.
///
/// The discriminants are the wire encoding (`TraceDump` replies carry
/// them as one byte) and are stable: new kinds append, never renumber.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum TraceEventKind {
    /// A connection was admitted; `value` is the live-connection count.
    Accept = 1,
    /// A request frame was decoded; `value` is the payload length.
    FrameDecode = 2,
    /// An append batch entered the fleet; `value` is the point count.
    FleetSubmit = 3,
    /// A session spilled durably; `value` is the spilled point count.
    Spill = 4,
    /// A reply frame finished flushing; `value` is the request's
    /// latency in microseconds.
    ReplyFlush = 5,
    /// A connection was refused; `value` is the error code.
    Reject = 6,
    /// An idle session was evicted; `value` is its point count.
    Evict = 7,
}

impl TraceEventKind {
    /// Decodes a wire byte back into a kind; `None` for unknown bytes.
    pub fn from_u8(b: u8) -> Option<TraceEventKind> {
        match b {
            1 => Some(TraceEventKind::Accept),
            2 => Some(TraceEventKind::FrameDecode),
            3 => Some(TraceEventKind::FleetSubmit),
            4 => Some(TraceEventKind::Spill),
            5 => Some(TraceEventKind::ReplyFlush),
            6 => Some(TraceEventKind::Reject),
            7 => Some(TraceEventKind::Evict),
            _ => None,
        }
    }

    /// The catalog name, as printed by `bqs trace` and dump files.
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::Accept => "accept",
            TraceEventKind::FrameDecode => "frame-decode",
            TraceEventKind::FleetSubmit => "fleet-submit",
            TraceEventKind::Spill => "spill",
            TraceEventKind::ReplyFlush => "reply-flush",
            TraceEventKind::Reject => "reject",
            TraceEventKind::Evict => "evict",
        }
    }
}

/// One recorded event, as read back out of the ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Position in the global record order (0-based, monotone).
    pub seq: u64,
    /// Microseconds since the recorder was created.
    pub at_us: u64,
    /// What happened.
    pub kind: TraceEventKind,
    /// The connection the event belongs to; 0 when no connection
    /// applies (rejects before admission, fleet-internal events).
    pub conn: u64,
    /// Kind-specific payload (see [`TraceEventKind`]).
    pub value: u64,
}

/// An owned copy of the ring's current contents.
#[derive(Clone, Debug, Default)]
pub struct TraceSnapshot {
    /// Surviving events, ascending by `seq` (oldest first).
    pub events: Vec<TraceEvent>,
    /// Events overwritten before this snapshot (oldest-first drops).
    pub dropped: u64,
}

impl TraceSnapshot {
    /// Renders the snapshot as one text line per event (the dump-file
    /// and `bqs trace` format):
    /// `seq=<n> at_us=<n> kind=<name> conn=<n> value=<n>`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# trace dump: {} event(s), {} dropped",
            self.events.len(),
            self.dropped
        );
        for e in &self.events {
            let _ = writeln!(
                out,
                "seq={} at_us={} kind={} conn={} value={}",
                e.seq,
                e.at_us,
                e.kind.name(),
                e.conn,
                e.value
            );
        }
        out
    }
}

/// One ring slot. Every field is its own atomic, so a torn write is a
/// stale *field*, never undefined behaviour; the stamp protocol makes
/// readers discard such slots.
#[derive(Default)]
struct Slot {
    /// 0 = never written · `WRITING` = mid-write · else `seq + 1`.
    stamp: AtomicU64,
    at_us: AtomicU64,
    kind: AtomicU64,
    conn: AtomicU64,
    value: AtomicU64,
}

struct RecorderInner {
    head: AtomicU64,
    /// Power of two, ≥ `TRACE_SHARDS`.
    capacity: u64,
    epoch: Instant,
    /// `TRACE_SHARDS` shards × `capacity / TRACE_SHARDS` slots.
    shards: Vec<Vec<Slot>>,
    recorded: Counter,
    dropped: Counter,
}

impl RecorderInner {
    fn slot(&self, seq: u64) -> &Slot {
        let shard = (seq & (TRACE_SHARDS - 1)) as usize;
        let idx = ((seq / TRACE_SHARDS) % (self.capacity / TRACE_SHARDS)) as usize;
        &self.shards[shard][idx]
    }
}

/// A shareable handle to one flight-recorder ring. Cloning shares the
/// ring; recording from any number of threads is lock-free.
#[derive(Clone)]
pub struct FlightRecorder(Arc<RecorderInner>);

impl FlightRecorder {
    /// A recorder holding the most recent `capacity` events (rounded up
    /// to a power of two, minimum 8), with private recorded/dropped
    /// counters.
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder::with_counters(capacity, Counter::new(), Counter::new())
    }

    /// Like [`FlightRecorder::with_capacity`], but counting recorded
    /// and dropped events into the given (typically registry-owned)
    /// counters, so the ring's churn is itself observable.
    pub fn with_counters(capacity: usize, recorded: Counter, dropped: Counter) -> FlightRecorder {
        let capacity = (capacity.max(TRACE_SHARDS as usize) as u64).next_power_of_two();
        let per_shard = (capacity / TRACE_SHARDS) as usize;
        let shards = (0..TRACE_SHARDS)
            .map(|_| (0..per_shard).map(|_| Slot::default()).collect())
            .collect();
        FlightRecorder(Arc::new(RecorderInner {
            head: AtomicU64::new(0),
            capacity,
            epoch: Instant::now(),
            shards,
            recorded,
            dropped,
        }))
    }

    /// The ring capacity after rounding (always a power of two).
    pub fn capacity(&self) -> usize {
        self.0.capacity as usize
    }

    /// Total events ever recorded.
    pub fn recorded(&self) -> u64 {
        self.0.recorded.get()
    }

    /// Total events overwritten (always the oldest first).
    pub fn dropped(&self) -> u64 {
        self.0.dropped.get()
    }

    /// Records one event. Lock-free, allocation-free: one relaxed
    /// `fetch_add` to claim a slot, five atomic stores to fill it.
    #[inline]
    pub fn record(&self, kind: TraceEventKind, conn: u64, value: u64) {
        let inner = &*self.0;
        let seq = inner.head.fetch_add(1, Ordering::Relaxed);
        let slot = inner.slot(seq);
        slot.stamp.store(WRITING, Ordering::Relaxed);
        slot.at_us.store(elapsed_us(inner.epoch), Ordering::Relaxed);
        slot.kind.store(kind as u64, Ordering::Relaxed);
        slot.conn.store(conn, Ordering::Relaxed);
        slot.value.store(value, Ordering::Relaxed);
        // ordering: release publishes the payload stores above to any reader that observes this stamp with acquire
        slot.stamp.store(seq + 1, Ordering::Release);
        inner.recorded.inc();
        if seq >= inner.capacity {
            // This write overwrote the event at `seq - capacity`: the
            // ring drops strictly oldest-first.
            inner.dropped.inc();
        }
    }

    /// Copies the ring's current contents, oldest surviving event
    /// first. Slots mid-overwrite are skipped, never returned torn.
    pub fn snapshot(&self) -> TraceSnapshot {
        let inner = &*self.0;
        // ordering: acquire pairs with the release stamp store so every slot published before this head read is fully visible
        let head = inner.head.load(Ordering::Acquire);
        let start = head.saturating_sub(inner.capacity);
        let mut events = Vec::with_capacity((head - start) as usize);
        for seq in start..head {
            let slot = inner.slot(seq);
            // ordering: acquire pairs with the writer's release stamp, making the payload stores below it visible
            let stamp = slot.stamp.load(Ordering::Acquire);
            if stamp != seq + 1 {
                continue; // overwritten, mid-write, or not yet written
            }
            let at_us = slot.at_us.load(Ordering::Relaxed);
            let kind = slot.kind.load(Ordering::Relaxed);
            let conn = slot.conn.load(Ordering::Relaxed);
            let value = slot.value.load(Ordering::Relaxed);
            // ordering: the fence keeps the payload loads above from sinking past the validating re-read of the stamp
            fence(Ordering::Acquire);
            if slot.stamp.load(Ordering::Relaxed) != seq + 1 {
                continue; // overwritten while we were reading
            }
            let Some(kind) = TraceEventKind::from_u8(kind as u8) else {
                continue;
            };
            events.push(TraceEvent {
                seq,
                at_us,
                kind,
                conn,
                value,
            });
        }
        TraceSnapshot {
            events,
            dropped: inner.dropped.get(),
        }
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.0.capacity)
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(FlightRecorder::with_capacity(0).capacity(), 8);
        assert_eq!(FlightRecorder::with_capacity(8).capacity(), 8);
        assert_eq!(FlightRecorder::with_capacity(100).capacity(), 128);
        assert_eq!(FlightRecorder::with_capacity(65_536).capacity(), 65_536);
    }

    #[test]
    fn events_come_back_in_order_with_payloads() {
        let rec = FlightRecorder::with_capacity(64);
        rec.record(TraceEventKind::Accept, 7, 1);
        rec.record(TraceEventKind::FrameDecode, 7, 42);
        rec.record(TraceEventKind::ReplyFlush, 7, 99);
        let snap = rec.snapshot();
        assert_eq!(snap.dropped, 0);
        let kinds: Vec<TraceEventKind> = snap.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TraceEventKind::Accept,
                TraceEventKind::FrameDecode,
                TraceEventKind::ReplyFlush
            ]
        );
        assert_eq!(snap.events[0].seq, 0);
        assert_eq!(snap.events[1].value, 42);
        assert_eq!(snap.events[2].conn, 7);
        // Timestamps are monotone in seq under a single writer.
        assert!(snap.events[0].at_us <= snap.events[2].at_us);
    }

    #[test]
    fn overflow_drops_oldest_first_with_exact_count() {
        let rec = FlightRecorder::with_capacity(8);
        for i in 0..20u64 {
            rec.record(TraceEventKind::FleetSubmit, i, i * 10);
        }
        let snap = rec.snapshot();
        assert_eq!(rec.recorded(), 20);
        assert_eq!(snap.dropped, 12); // 20 recorded − 8 capacity
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<u64>>());
        assert_eq!(snap.events[0].value, 120);
    }

    #[test]
    fn counters_can_be_shared() {
        let recorded = Counter::new();
        let dropped = Counter::new();
        let rec = FlightRecorder::with_counters(8, recorded.clone(), dropped.clone());
        for _ in 0..10 {
            rec.record(TraceEventKind::Spill, 0, 0);
        }
        assert_eq!(recorded.get(), 10);
        assert_eq!(dropped.get(), 2);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let rec = FlightRecorder::with_capacity(4096);
        const THREADS: u64 = 4;
        const PER: u64 = 500;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let rec = rec.clone();
                s.spawn(move || {
                    for i in 0..PER {
                        rec.record(TraceEventKind::FrameDecode, t, i);
                    }
                });
            }
        });
        let snap = rec.snapshot();
        assert_eq!(rec.recorded(), THREADS * PER);
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.events.len(), (THREADS * PER) as usize);
        // Every (conn, value) pair survives exactly once.
        let mut pairs: Vec<(u64, u64)> = snap.events.iter().map(|e| (e.conn, e.value)).collect();
        pairs.sort_unstable();
        let mut want = Vec::new();
        for t in 0..THREADS {
            for i in 0..PER {
                want.push((t, i));
            }
        }
        assert_eq!(pairs, want);
    }

    #[test]
    fn snapshot_renders_dump_lines() {
        let rec = FlightRecorder::with_capacity(8);
        rec.record(TraceEventKind::Reject, 0, 6);
        let text = rec.snapshot().render();
        assert!(text.starts_with("# trace dump: 1 event(s), 0 dropped"));
        assert!(text.contains("kind=reject conn=0 value=6"));
    }

    #[test]
    fn kind_round_trips_through_wire_byte() {
        for kind in [
            TraceEventKind::Accept,
            TraceEventKind::FrameDecode,
            TraceEventKind::FleetSubmit,
            TraceEventKind::Spill,
            TraceEventKind::ReplyFlush,
            TraceEventKind::Reject,
            TraceEventKind::Evict,
        ] {
            assert_eq!(TraceEventKind::from_u8(kind as u8), Some(kind));
        }
        assert_eq!(TraceEventKind::from_u8(0), None);
        assert_eq!(TraceEventKind::from_u8(8), None);
    }
}
