//! Prometheus text exposition (format version 0.0.4) for the registry.
//!
//! The native [`crate::MetricsRegistry::render`] format is
//! grep-friendly `name value` lines; this module maps the same catalog
//! onto the shape stock Prometheus scrapes:
//!
//! * counters → one `# HELP`/`# TYPE name counter` family;
//! * gauges → two gauge families, `name` and `name_peak`;
//! * histograms → one histogram family: the log₂ buckets become
//!   cumulative `name_bucket{le="…"}` series whose `le` is each
//!   bucket's inclusive upper bound (`2^i − 1`), followed by the
//!   mandatory `le="+Inf"` (= `name_count`), then `name_sum` and
//!   `name_count`. The saturated top bucket folds into `+Inf`, so
//!   every emitted `le` is a finite decimal.
//!
//! Every value is an exact decimal `u64`, which is a valid Prometheus
//! float; bucket series are cumulative and monotone in `le` by
//! construction.

use std::fmt::Write as _;

use crate::{bucket_upper, HistogramSnapshot, Metric, MetricsRegistry, HISTOGRAM_BUCKETS};

/// Renders one histogram snapshot as a full Prometheus family
/// (`# HELP` + `# TYPE` + buckets + `_sum` + `_count`).
///
/// Rendering is a pure function of the snapshot, so merged snapshots
/// render exactly the sum of their parts — property-tested in
/// `tests/prometheus_prop.rs`.
pub fn render_prometheus_histogram(name: &str, snap: &HistogramSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# HELP {name} log2-bucket histogram of {name} samples");
    let _ = writeln!(out, "# TYPE {name} histogram");
    let buckets = snap.buckets();
    // Highest non-empty finite bucket; the top (saturated) bucket is
    // folded into +Inf rather than given a fake finite bound.
    let last = buckets[..HISTOGRAM_BUCKETS - 1]
        .iter()
        .rposition(|&n| n > 0)
        .map_or(0, |i| i + 1);
    let mut cumulative = 0u64;
    for (i, &n) in buckets.iter().enumerate().take(last) {
        cumulative += n;
        let _ = writeln!(
            out,
            "{name}_bucket{{le=\"{}\"}} {cumulative}",
            bucket_upper(i)
        );
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count());
    let _ = writeln!(out, "{name}_sum {}", snap.sum());
    let _ = writeln!(out, "{name}_count {}", snap.count());
    out
}

fn render_counter(out: &mut String, name: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} monotone counter {name}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {value}");
}

fn render_gauge(out: &mut String, name: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} gauge {name}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {value}");
}

impl MetricsRegistry {
    /// The Prometheus text exposition of every registered metric,
    /// families sorted by metric name (see the module docs for the
    /// per-kind mapping). Served by `bqs serve --prom-addr` and
    /// `bqs metrics --prom`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, metric) in self.snapshot_metrics() {
            match metric {
                Metric::Counter(c) => render_counter(&mut out, &name, c.get()),
                Metric::Gauge(g) => {
                    render_gauge(&mut out, &name, g.get());
                    render_gauge(&mut out, &format!("{name}_peak"), g.peak());
                }
                Metric::Histogram(h) => {
                    out.push_str(&render_prometheus_histogram(&name, &h.snapshot()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_families_have_type_lines() {
        let reg = MetricsRegistry::new();
        reg.counter("reqs_total").add(17);
        reg.gauge("conns_live").set(3);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE reqs_total counter\nreqs_total 17\n"));
        assert!(text.contains("# TYPE conns_live gauge\nconns_live 3\n"));
        assert!(text.contains("# TYPE conns_live_peak gauge\nconns_live_peak 3\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_inf() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_us");
        for v in [0u64, 1, 2, 3, 100] {
            h.record(v);
        }
        let text = reg.render_prometheus();
        // v=0 → bucket 0 (le="0"); v=1 → bucket 1 (le="1");
        // v∈{2,3} → bucket 2 (le="3"); v=100 → bucket 7 (le="127").
        assert!(text.contains("lat_us_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("lat_us_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("lat_us_bucket{le=\"3\"} 4\n"));
        assert!(text.contains("lat_us_bucket{le=\"127\"} 5\n"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 5\n"));
        assert!(text.contains("lat_us_sum 106\n"));
        assert!(text.contains("lat_us_count 5\n"));
        assert!(text.contains("# TYPE lat_us histogram\n"));
    }

    #[test]
    fn empty_histogram_renders_inf_only() {
        let reg = MetricsRegistry::new();
        reg.histogram("idle_us");
        let text = reg.render_prometheus();
        assert!(text.contains("idle_us_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("idle_us_sum 0\n"));
        assert!(text.contains("idle_us_count 0\n"));
        assert!(!text.contains("idle_us_bucket{le=\"0\"}"));
    }

    #[test]
    fn saturated_top_bucket_folds_into_inf() {
        let reg = MetricsRegistry::new();
        reg.histogram("big_us").record(u64::MAX);
        let text = reg.render_prometheus();
        assert!(text.contains("big_us_bucket{le=\"+Inf\"} 1\n"));
        // No finite le carries the saturated bucket.
        assert!(!text.contains("le=\"18446744073709551615\""));
    }
}
