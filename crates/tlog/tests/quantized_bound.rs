//! Property test pinning down the quantized codec's error contract: for
//! *arbitrary* in-range inputs, the round-trip error is at most half a
//! grid cell — `0.5 / xy_scale` per coordinate and `0.5 / t_scale` per
//! timestamp (up to one part in 10⁸ of floating-point slack from the
//! `v * scale` product). This is the 1 mm-grid guarantee
//! (`CodecProfile::millimetre`, `scale = 1000`) that
//! `experiments::storage` budgets against; here it is proved, not
//! claimed, across scales from decimetre to 0.1 mm grids.

use bqs_geo::TimedPoint;
use bqs_tlog::codec::{decode_to_vec, encode_to_vec_with, CodecProfile};
use proptest::prelude::*;

/// The contract: half a cell, plus floating-point slack proportional to
/// the cell size (the `v * scale` product and the `k / scale` dequant
/// each round once; coordinates are bounded by 1e7 m, so the slack is
/// orders of magnitude below the half-cell term).
fn bound(scale: f64) -> f64 {
    0.5 / scale + 1e-8 / scale.max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn quantized_round_trip_error_is_at_most_half_a_cell(
        raw in proptest::collection::vec(
            // x, y anywhere in a ±10 000 km frame; dt keeps time
            // monotone (equal timestamps included).
            (-1e7f64..1e7, -1e7f64..1e7, 0.0f64..1e4),
            1..120,
        ),
        t0 in -1e6f64..1e6,
        scale_pick in 0usize..4,
        t_scale_pick in 0usize..4,
    ) {
        let scales = [10.0, 100.0, 1_000.0, 10_000.0];
        let (xy_scale, t_scale) = (scales[scale_pick], scales[t_scale_pick]);
        let profile = CodecProfile::Quantized { xy_scale, t_scale };

        let mut t = t0;
        let points: Vec<TimedPoint> = raw
            .iter()
            .map(|&(x, y, dt)| {
                t += dt;
                TimedPoint::new(x, y, t)
            })
            .collect();

        let bytes = encode_to_vec_with(profile, &points).expect("in-range input encodes");
        let decoded = decode_to_vec(&bytes).expect("decode");
        prop_assert_eq!(decoded.len(), points.len());

        let (xy_bound, t_bound) = (bound(xy_scale), bound(t_scale));
        for (i, (a, b)) in points.iter().zip(&decoded).enumerate() {
            prop_assert!(
                (a.pos.x - b.pos.x).abs() <= xy_bound,
                "x[{}]: {} vs {} exceeds {} (scale {})",
                i, a.pos.x, b.pos.x, xy_bound, xy_scale
            );
            prop_assert!(
                (a.pos.y - b.pos.y).abs() <= xy_bound,
                "y[{}]: {} vs {} exceeds {} (scale {})",
                i, a.pos.y, b.pos.y, xy_bound, xy_scale
            );
            prop_assert!(
                (a.t - b.t).abs() <= t_bound,
                "t[{}]: {} vs {} exceeds {} (scale {})",
                i, a.t, b.t, t_bound, t_scale
            );
        }

        // Decoded timestamps stay monotone — querying and reconstruction
        // rely on it surviving quantisation.
        prop_assert!(decoded.windows(2).all(|w| w[1].t >= w[0].t));

        // And the decoded stream is a fixed point: re-encoding loses
        // nothing further.
        let again = decode_to_vec(
            &encode_to_vec_with(profile, &decoded).expect("re-encode"),
        )
        .expect("re-decode");
        prop_assert_eq!(again, decoded);
    }

    /// The default millimetre profile specifically: the documented 1 mm
    /// grid keeps every coordinate within 0.5 mm.
    #[test]
    fn millimetre_profile_is_within_half_a_millimetre(
        raw in proptest::collection::vec(
            (-50_000.0f64..50_000.0, -50_000.0f64..50_000.0, 0.0f64..600.0),
            1..100,
        ),
    ) {
        let mut t = 0.0;
        let points: Vec<TimedPoint> = raw
            .iter()
            .map(|&(x, y, dt)| {
                t += dt;
                TimedPoint::new(x, y, t)
            })
            .collect();
        let bytes =
            encode_to_vec_with(CodecProfile::millimetre(), &points).expect("encode");
        let decoded = decode_to_vec(&bytes).expect("decode");
        for (a, b) in points.iter().zip(&decoded) {
            prop_assert!((a.pos.x - b.pos.x).abs() <= 0.5e-3 + 1e-11);
            prop_assert!((a.pos.y - b.pos.y).abs() <= 0.5e-3 + 1e-11);
            prop_assert!((a.t - b.t).abs() <= 0.5e-3 + 1e-11);
        }
    }
}
