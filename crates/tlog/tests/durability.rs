//! Durability properties of the trajectory log, end to end:
//!
//! 1. codec round-trips are bit-lossless for arbitrary point streams
//!    (positions may be *any* bit pattern, timestamps any finite
//!    non-decreasing sequence), and backwards timestamps are rejected
//!    with a typed error;
//! 2. a torn tail — the file cut at any byte — loses at most the
//!    partially-written record: every fully-written record survives
//!    recovery, and the repaired log verifies clean;
//! 3. the acceptance scenario: a fleet run with spill-on-evict can be
//!    queried back from a reopened log byte-identical to the in-memory
//!    sink output, including after a simulated crash (torn final
//!    record) and a compaction pass.

use bqs_core::fleet::{FleetConfig, FleetEngine, TeeFleetSink, TrackId};
use bqs_core::stream::compress_all;
use bqs_core::{BqsConfig, FastBqsCompressor};
use bqs_geo::TimedPoint;
use bqs_tlog::codec::{self, CodecError};
use bqs_tlog::{verify_dir, LogConfig, SpillSink, TimeRange, TrajectoryLog};
use proptest::prelude::*;
use std::collections::HashMap;
use std::fs::OpenOptions;
use std::path::PathBuf;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("bqs-tlog-tests")
        .join(format!("durability-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Builds a stream with arbitrary position bit patterns and finite
/// non-decreasing timestamps from raw generator output.
fn stream_from(raw: Vec<(u64, u64, f64)>) -> Vec<TimedPoint> {
    let mut t = -500.0f64;
    raw.into_iter()
        .map(|(xb, yb, dt)| {
            t += dt; // dt ≥ 0 keeps the stream monotone
            TimedPoint::at(
                bqs_geo::Point2::new(f64::from_bits(xb), f64::from_bits(yb)),
                t,
            )
        })
        .collect()
}

fn bits_eq(a: &TimedPoint, b: &TimedPoint) -> bool {
    a.pos.x.to_bits() == b.pos.x.to_bits()
        && a.pos.y.to_bits() == b.pos.y.to_bits()
        && a.t.to_bits() == b.t.to_bits()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn codec_round_trip_is_lossless_for_arbitrary_streams(
        raw in proptest::collection::vec(
            (0u64..=u64::MAX, 0u64..=u64::MAX, 0.0f64..3_600.0),
            0..200,
        )
    ) {
        let points = stream_from(raw);
        let bytes = codec::encode_to_vec(&points).expect("finite monotone timestamps encode");
        let back = codec::decode_to_vec(&bytes).expect("decode");
        prop_assert_eq!(back.len(), points.len());
        for (a, b) in points.iter().zip(&back) {
            prop_assert!(bits_eq(a, b), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn codec_rejects_backwards_timestamps_anywhere(
        raw in proptest::collection::vec(
            (0u64..=u64::MAX, 0u64..=u64::MAX, 0.0f64..100.0),
            2..100,
        ),
        flip in 1usize..99,
        step in 0.001f64..1_000.0,
    ) {
        let mut points = stream_from(raw);
        prop_assume!(flip < points.len());
        // Push one timestamp strictly below its predecessor.
        points[flip].t = points[flip - 1].t - step;
        let index = flip;
        match codec::encode_to_vec(&points) {
            Err(CodecError::NonMonotonicTimestamps { index: got, .. }) => {
                prop_assert_eq!(got, index);
            }
            other => prop_assert!(false, "expected typed rejection, got {:?}", other),
        }
    }

    #[test]
    fn quantized_round_trip_error_is_bounded(
        raw in proptest::collection::vec(
            (-1.0e9f64..1.0e9, -1.0e9f64..1.0e9, 0.0f64..3_600.0),
            1..100,
        )
    ) {
        let mut t = 0.0;
        let points: Vec<TimedPoint> = raw
            .into_iter()
            .map(|(x, y, dt)| {
                t += dt;
                TimedPoint::new(x, y, t)
            })
            .collect();
        let profile = codec::CodecProfile::millimetre();
        let bytes = codec::encode_to_vec_with(profile, &points).expect("values fit a mm grid");
        let back = codec::decode_to_vec(&bytes).expect("decode");
        prop_assert_eq!(back.len(), points.len());
        for (a, b) in points.iter().zip(&back) {
            prop_assert!((a.pos.x - b.pos.x).abs() <= 0.5e-3 * (1.0 + a.pos.x.abs() * 1e-9));
            prop_assert!((a.pos.y - b.pos.y).abs() <= 0.5e-3 * (1.0 + a.pos.y.abs() * 1e-9));
            prop_assert!((a.t - b.t).abs() <= 0.5e-3 * (1.0 + a.t.abs() * 1e-9));
        }
    }
}

fn lcg_pos(s: &mut u64) -> f64 {
    *s = s
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*s >> 33) % 100_000) as f64 / 50.0 - 1_000.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Interleaved live appends + late backfill batches, shut down and
    /// reopened, answer `query_time_range`/`query_bbox` exactly like the
    /// same data ingested fully in order — including durable-wins dedup
    /// when a backfill batch re-sends live timestamps with different
    /// positions (the in-order copy must survive).
    #[test]
    fn backfill_reopen_equals_in_order_ingest(
        seed in 0u64..1_000_000,
        n_live in 10usize..120,
        n_old in 1usize..60,
        dup_every in 2usize..10,
    ) {
        let mut s = seed | 1;
        // The "offline" portion: old fixes the tracker buffered…
        let old: Vec<TimedPoint> = (0..n_old)
            .map(|i| TimedPoint::new(lcg_pos(&mut s), lcg_pos(&mut s), i as f64 * 5.0))
            .collect();
        // …and the live portion it sends after reconnecting.
        let live: Vec<TimedPoint> = (0..n_live)
            .map(|i| TimedPoint::new(lcg_pos(&mut s), lcg_pos(&mut s), 10_000.0 + i as f64 * 5.0))
            .collect();
        // Backfill duplicates of some live timestamps, with *different*
        // positions: dedup must keep the live copy.
        let dups: Vec<TimedPoint> = live
            .iter()
            .step_by(dup_every)
            .map(|p| TimedPoint::new(p.pos.x + 5_000.0, p.pos.y, p.t))
            .collect();

        let track = 3u64;
        let dir_a = temp_dir(&format!("bf-mixed-{seed}-{n_live}-{n_old}-{dup_every}"));
        {
            let (mut log, _) = TrajectoryLog::open(&dir_a, LogConfig::default()).unwrap();
            // Live batches interleaved with backfill batches.
            let third = (n_live / 3).max(1).min(n_live);
            let two_thirds = (2 * n_live / 3).max(third);
            log.append(track, &live[..third]).unwrap();
            let split = n_old / 2;
            if split > 0 {
                log.append_backfill(track, &old[..split]).unwrap();
            }
            if two_thirds > third {
                log.append(track, &live[third..two_thirds]).unwrap();
            }
            log.append_backfill(track, &old[split..]).unwrap();
            log.append_backfill(track, &dups).unwrap();
            if n_live > two_thirds {
                log.append(track, &live[two_thirds..]).unwrap();
            }
        } // shutdown

        // Reference: the union ingested fully in order (dups lose, so
        // the union is just old ++ live).
        let mut expected = old.clone();
        expected.extend_from_slice(&live);
        let dir_b = temp_dir(&format!("bf-ref-{seed}-{n_live}-{n_old}-{dup_every}"));
        {
            let (mut log, _) = TrajectoryLog::open(&dir_b, LogConfig::default()).unwrap();
            log.append(track, &expected).unwrap();
        }

        let (log_a, _) = TrajectoryLog::open(&dir_a, LogConfig::default()).unwrap();
        let (log_b, _) = TrajectoryLog::open(&dir_b, LogConfig::default()).unwrap();
        let range = TimeRange::new(2.0, 10_000.0 + n_live as f64 * 4.0);
        let got = log_a.query_time_range(Some(track), range).unwrap();
        let want = log_b.query_time_range(Some(track), range).unwrap();
        prop_assert_eq!(&got.slices, &want.slices);

        let area = bqs_geo::Rect::from_corners(
            bqs_geo::Point2::new(-600.0, -1_000.0),
            bqs_geo::Point2::new(700.0, 350.0),
        );
        let got = log_a.query_bbox(Some(track), area, None).unwrap();
        let want = log_b.query_bbox(Some(track), area, None).unwrap();
        prop_assert_eq!(&got.slices, &want.slices);

        // Full reads agree bit for bit, and both logs verify clean.
        let a = log_a.read_track(track).unwrap();
        prop_assert_eq!(a.len(), expected.len());
        for (x, y) in expected.iter().zip(&a) {
            prop_assert!(bits_eq(x, y), "{x:?} vs {y:?}");
        }
        verify_dir(&dir_a).unwrap();
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }
}

/// Crash-truncation sweep over a mixed live/backfill segment: cutting
/// the file at *every* byte offset of (and after) a backfill record
/// still recovers — each record is intact or gone, the merged read
/// reflects exactly the surviving records, and the repaired log
/// verifies clean.
#[test]
fn backfill_record_truncation_recovers_at_every_cut() {
    let dir = temp_dir("bf-cut-sweep");
    let live1 = wave(1, 30);
    let old: Vec<TimedPoint> = (0..20)
        .map(|i| TimedPoint::new(i as f64 * 2.0, -5.0, -1_000.0 + i as f64))
        .collect();
    let live2 = wave(2, 25);

    let (mut log, _) = TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
    log.append(1, &live1).unwrap();
    let bf_receipt = log.append_backfill(1, &old).unwrap();
    let live2_receipt = log.append(2, &live2).unwrap();
    let seg_path = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "tlg"))
        .unwrap();
    let pristine = std::fs::read(&seg_path).unwrap();
    drop(log);

    let bf_end = bf_receipt.offset + bf_receipt.bytes;
    let live2_end = live2_receipt.offset + live2_receipt.bytes;
    let mut merged = old.clone();
    merged.extend_from_slice(&live1);

    for cut in bf_receipt.offset..pristine.len() as u64 {
        std::fs::write(&seg_path, &pristine).unwrap();
        let f = OpenOptions::new().write(true).open(&seg_path).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let (log, report) = TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
        let track1 = log.read_track(1).unwrap();
        if cut >= bf_end {
            assert_eq!(track1, merged, "cut at {cut}: backfill record survives");
        } else {
            assert_eq!(track1, live1, "cut at {cut}: torn backfill dropped");
        }
        let track2 = log.read_track(2).unwrap();
        if cut >= live2_end {
            assert_eq!(track2, live2, "cut at {cut}");
        } else {
            assert!(track2.is_empty(), "cut at {cut}");
        }
        let on_boundary = cut == bf_receipt.offset || cut == bf_end || cut == live2_end;
        assert_eq!(
            report.truncated_segments,
            usize::from(!on_boundary),
            "cut at {cut}: {report:?}"
        );
        drop(log);
        verify_dir(&dir).unwrap();
    }
}

/// Deterministic sweep: cut the segment file at *every* byte offset past
/// the header and check that recovery keeps exactly the fully-written
/// records (a proptest over cut positions would sample; the full sweep
/// is cheap enough to be exhaustive).
#[test]
fn recovery_after_any_truncation_preserves_full_records() {
    let dir = temp_dir("cut-sweep");
    let batches: Vec<Vec<TimedPoint>> = (0..4)
        .map(|b| {
            (0..30)
                .map(|i| {
                    let a = (b * 30 + i) as f64;
                    TimedPoint::new(a * 3.0, (a * 0.4).sin() * 20.0, a * 5.0)
                })
                .collect()
        })
        .collect();

    // Write once to learn the record boundaries.
    let (mut log, _) = TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
    let mut boundaries = Vec::new(); // file offset at which record k ends
    for (b, batch) in batches.iter().enumerate() {
        let receipt = log.append(b as TrackId, batch).unwrap();
        boundaries.push(receipt.offset + receipt.bytes);
    }
    let seg_path = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "tlg"))
        .unwrap();
    let pristine = std::fs::read(&seg_path).unwrap();
    drop(log);

    let header_len = 8u64;
    for cut in header_len..pristine.len() as u64 {
        std::fs::write(&seg_path, &pristine).unwrap();
        let f = OpenOptions::new().write(true).open(&seg_path).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let (log, report) = TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
        let expect_full = boundaries.iter().filter(|&&end| end <= cut).count();
        let mut recovered = 0;
        for (b, batch) in batches.iter().enumerate() {
            let got = log.read_track(b as TrackId).unwrap();
            if !got.is_empty() {
                assert_eq!(
                    got, *batch,
                    "cut at {cut}: record {b} must be intact or gone"
                );
                recovered += 1;
            }
        }
        assert_eq!(
            recovered, expect_full,
            "cut at {cut}: expected {expect_full} surviving records"
        );
        // A cut landing exactly on a record boundary leaves a valid
        // (shorter) file; anywhere else recovery must truncate.
        let on_boundary = cut == header_len || boundaries.contains(&cut);
        assert_eq!(
            report.truncated_segments,
            usize::from(!on_boundary),
            "cut at {cut}: {report:?}"
        );
        drop(log);
        // The repaired file must verify clean.
        verify_dir(&dir).unwrap();
    }
}

fn wave(track: u64, n: usize) -> Vec<TimedPoint> {
    (0..n)
        .map(|i| {
            let a = i as f64;
            TimedPoint::new(
                a * 8.0 + track as f64 * 13.0,
                (a * 0.21 + track as f64).sin() * 25.0,
                a * 60.0,
            )
        })
        .collect()
}

/// The ISSUE's acceptance scenario in one test: spill-on-evict fleet run
/// → reopen → per-session time-range queries byte-identical to the
/// in-memory sink output → torn final record → still identical →
/// compaction → still identical.
#[test]
fn fleet_spill_round_trip_survives_crash_and_compaction() {
    let dir = temp_dir("acceptance");
    let tolerance = 10.0;
    let sessions = 20usize;
    let config = BqsConfig::new(tolerance).unwrap();
    // Varying lengths so sessions close at different stream times.
    let traces: Vec<Vec<TimedPoint>> = (0..sessions)
        .map(|t| wave(t as u64, 120 + t * 15))
        .collect();

    // In-memory truth: the per-track output of the very same engine run.
    let mut expected: HashMap<TrackId, Vec<TimedPoint>> = HashMap::new();
    {
        let (mut log, _) = TrajectoryLog::open(
            &dir,
            LogConfig {
                segment_max_bytes: 2_000, // force rotation mid-run
                ..LogConfig::default()
            },
        )
        .unwrap();
        let mut spill = SpillSink::new(&mut log);
        let mut fleet = FleetEngine::new(
            FleetConfig {
                idle_timeout: 1_800.0,
                ..FleetConfig::default()
            },
            move || FastBqsCompressor::new(config),
        );
        {
            let mut tee = TeeFleetSink::new(&mut expected, &mut spill);
            let longest = traces.iter().map(Vec::len).max().unwrap();
            for i in 0..longest {
                for (t, trace) in traces.iter().enumerate() {
                    if let Some(p) = trace.get(i) {
                        fleet.push_tagged(t as TrackId, *p, &mut tee);
                    }
                }
                // Periodic evictions: short sessions spill mid-run.
                if i % 20 == 19 {
                    fleet.evict_idle_now(&mut tee);
                }
            }
            fleet.finish_all(&mut tee);
        }
        assert!(
            fleet.evicted_sessions() > 0,
            "scenario must exercise eviction"
        );
        let reports = spill.finish().unwrap();
        assert_eq!(reports.len(), sessions, "every session spills exactly once");
    }

    // Solo-compression cross-check: the in-memory truth itself equals
    // compressing each trace alone (interleaving equivalence).
    for (t, trace) in traces.iter().enumerate() {
        let mut solo = FastBqsCompressor::new(config);
        let solo_out = compress_all(&mut solo, trace.iter().copied());
        assert_eq!(expected[&(t as TrackId)], solo_out, "track {t}");
    }

    let check_all = |log: &TrajectoryLog, skip: &[TrackId]| {
        for t in 0..sessions as TrackId {
            if skip.contains(&t) {
                assert!(log.read_track(t).unwrap().is_empty());
                continue;
            }
            // Full-span time-range query must reproduce the sink output
            // byte for byte.
            let out = log.query_time_range(Some(t), TimeRange::all()).unwrap();
            assert_eq!(out.slices.len(), 1, "track {t}");
            let got = &out.slices[0].points;
            let want = &expected[&t];
            assert_eq!(got.len(), want.len(), "track {t}");
            for (a, b) in want.iter().zip(got) {
                assert!(bits_eq(a, b), "track {t}: {a:?} vs {b:?}");
            }
        }
    };

    // 1. Plain reopen.
    let (log, report) = TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
    assert_eq!(report.truncated_segments, 0);
    assert!(report.segments > 1, "rotation must have happened");
    check_all(&log, &[]);
    drop(log);

    // 2. Simulated crash: a torn final record.
    {
        // Append a fresh record for a new track, then tear it in half:
        // recovery must drop it without touching older records.
        let (mut log, _) = TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
        let receipt = log.append(999, &wave(999, 40)).unwrap();
        drop(log);
        let mut seg_paths2: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "tlg"))
            .collect();
        seg_paths2.sort();
        let tail = seg_paths2.last().unwrap();
        let len = std::fs::metadata(tail).unwrap().len();
        let f = OpenOptions::new().write(true).open(tail).unwrap();
        f.set_len(len - receipt.bytes / 2).unwrap();
    }
    let (log, report) = TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
    assert_eq!(report.truncated_segments, 1);
    assert!(
        log.read_track(999).unwrap().is_empty(),
        "torn record dropped"
    );
    check_all(&log, &[]);
    drop(log);

    // 3. Compaction pass (drop two tracks, rewrite the rest).
    let (mut log, _) = TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
    assert!(log.delete_track(0).unwrap());
    assert!(log.delete_track(7).unwrap());
    let compact = log.compact().unwrap();
    assert!(compact.bytes_after < compact.bytes_before);
    check_all(&log, &[0, 7]);
    drop(log);

    // 4. And the compacted log still reopens and verifies clean.
    let (log, report) = TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
    assert_eq!(report.truncated_segments, 0);
    check_all(&log, &[0, 7]);
    verify_dir(&dir).unwrap();

    // 5. Spot-check the reconstruction layer against the sink output:
    //    at a kept point's own timestamp the reconstruction is exact.
    let probe = &expected[&3];
    let mid = probe[probe.len() / 2];
    let rec = log.reconstruct_at(3, mid.t).unwrap().unwrap();
    assert!((rec.pos.x - mid.pos.x).abs() < 1e-9);
    assert!((rec.pos.y - mid.pos.y).abs() < 1e-9);
}
