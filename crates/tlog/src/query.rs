//! Time-range and bounding-box queries over a [`TrajectoryLog`], plus
//! point-in-time reconstruction through [`bqs_core::reconstruct`].
//!
//! Queries never scan payloads blindly: every record's summary (time
//! span + bounding box) lives in the in-memory index, so the planner
//! first prunes to the records that can possibly contribute, decodes
//! only the survivors, and filters points exactly. [`QueryStats`] exposes
//! the pruning so tests (and operators) can see that a narrow query
//! touches a small fraction of the log.

use crate::error::TlogError;
use crate::log::TrajectoryLog;
use bqs_core::fleet::TrackId;
use bqs_core::reconstruct::Reconstructor;
use bqs_geo::{Rect, TimedPoint};

/// An inclusive time interval `[start, end]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeRange {
    /// Inclusive lower bound.
    pub start: f64,
    /// Inclusive upper bound.
    pub end: f64,
}

impl TimeRange {
    /// A range covering `[start, end]` (swapped if reversed).
    pub fn new(start: f64, end: f64) -> TimeRange {
        if end < start {
            TimeRange {
                start: end,
                end: start,
            }
        } else {
            TimeRange { start, end }
        }
    }

    /// The range covering all representable times.
    pub fn all() -> TimeRange {
        TimeRange {
            start: f64::NEG_INFINITY,
            end: f64::INFINITY,
        }
    }

    /// Whether `t` lies inside the range.
    #[inline]
    pub fn contains(&self, t: f64) -> bool {
        t >= self.start && t <= self.end
    }

    /// Whether the range intersects `[min, max]`.
    #[inline]
    pub fn overlaps(&self, min: f64, max: f64) -> bool {
        max >= self.start && min <= self.end
    }
}

/// How much work a query did, and how much the index saved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Records of the candidate tracks considered by the planner.
    pub candidate_records: usize,
    /// Records that survived summary pruning and were decoded.
    pub decoded_records: usize,
    /// Points decoded from surviving records.
    pub decoded_points: usize,
    /// Points that matched the query exactly.
    pub kept_points: usize,
}

/// One track's matching points, in time order.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackSlice {
    /// The track.
    pub track: TrackId,
    /// Matching points in time order.
    pub points: Vec<TimedPoint>,
}

/// A query's matches plus its work counters.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutput {
    /// Matching tracks (ascending id), each with its matching points.
    pub slices: Vec<TrackSlice>,
    /// Pruning/work counters.
    pub stats: QueryStats,
}

impl QueryOutput {
    /// Total matching points across all tracks.
    pub fn total_points(&self) -> usize {
        self.slices.iter().map(|s| s.points.len()).sum()
    }
}

impl TrajectoryLog {
    /// Points of `track` (or of every track when `None`) whose timestamp
    /// lies in `range`. Records are pruned via the sparse time index.
    ///
    /// # Examples
    ///
    /// ```
    /// use bqs_geo::TimedPoint;
    /// use bqs_tlog::{LogConfig, TimeRange, TrajectoryLog};
    ///
    /// let dir = std::env::temp_dir().join(format!("query-doc-{}", std::process::id()));
    /// # let _ = std::fs::remove_dir_all(&dir);
    /// let (mut log, _) = TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
    /// let points: Vec<TimedPoint> = (0..60)
    ///     .map(|i| TimedPoint::new(i as f64 * 10.0, 0.0, i as f64 * 60.0))
    ///     .collect();
    /// log.append(3, &points).unwrap();
    ///
    /// // The second half-hour of track 3, inclusive on both ends.
    /// let out = log
    ///     .query_time_range(Some(3), TimeRange::new(1800.0, 3540.0))
    ///     .unwrap();
    /// assert_eq!(out.slices.len(), 1);
    /// assert_eq!(out.slices[0].points.len(), 30);
    /// assert!(out.stats.decoded_records <= out.stats.candidate_records);
    /// # drop(log);
    /// # std::fs::remove_dir_all(&dir).unwrap();
    /// ```
    pub fn query_time_range(
        &self,
        track: Option<TrackId>,
        range: TimeRange,
    ) -> Result<QueryOutput, TlogError> {
        self.query(track, range, None)
    }

    /// Points of `track` (or of every track when `None`) inside `area`
    /// (and inside `range`, when given). Records are pruned by both the
    /// per-record bounding box and the time span.
    pub fn query_bbox(
        &self,
        track: Option<TrackId>,
        area: Rect,
        range: Option<TimeRange>,
    ) -> Result<QueryOutput, TlogError> {
        self.query(track, range.unwrap_or_else(TimeRange::all), Some(area))
    }

    fn query(
        &self,
        track: Option<TrackId>,
        range: TimeRange,
        area: Option<Rect>,
    ) -> Result<QueryOutput, TlogError> {
        let mut stats = QueryStats::default();
        let mut slices = Vec::new();
        let tracks: Vec<TrackId> = match track {
            // Membership comes straight from the index — no need to
            // materialise every track id for a single-track query.
            Some(t) if self.track_records(t).is_empty() => Vec::new(),
            Some(t) => vec![t],
            None => self.tracks(),
        };
        let mut reader = self.reader();
        for track in tracks {
            if self.track_has_backfill(track) {
                // Record-level pruning is unsafe for backfilled tracks:
                // an exact-timestamp point in a *pruned* in-order record
                // must still shadow its backfill duplicate. Decode every
                // record, merge, then filter pointwise.
                let refs = self.track_records(track);
                stats.candidate_records += refs.len();
                stats.decoded_records += refs.len();
                stats.decoded_points += refs
                    .iter()
                    .map(|&(si, ri)| self.record_summary(si, ri).count as usize)
                    .sum::<usize>();
                let points: Vec<TimedPoint> = self
                    .read_track(track)?
                    .into_iter()
                    .filter(|p| range.contains(p.t) && area.is_none_or(|a| a.contains(p.pos)))
                    .collect();
                if !points.is_empty() {
                    stats.kept_points += points.len();
                    slices.push(TrackSlice { track, points });
                }
                continue;
            }
            let mut points = Vec::new();
            for &(si, ri) in self.track_records(track) {
                stats.candidate_records += 1;
                let rec = self.record_summary(si, ri);
                if !range.overlaps(rec.t_min, rec.t_max) {
                    continue;
                }
                if let Some(area) = area {
                    if !area.intersects(&rec.bbox) {
                        continue;
                    }
                }
                let decoded = reader.read_points(si, ri)?;
                stats.decoded_records += 1;
                stats.decoded_points += decoded.len();
                points.extend(
                    decoded
                        .into_iter()
                        .filter(|p| range.contains(p.t) && area.is_none_or(|a| a.contains(p.pos))),
                );
            }
            if !points.is_empty() {
                stats.kept_points += points.len();
                slices.push(TrackSlice { track, points });
            }
        }
        Ok(QueryOutput { slices, stats })
    }

    /// Reconstructs `track`'s position at time `t` by decoding only the
    /// records bracketing `t` and interpolating between the surrounding
    /// key points with the paper's uniform progress model
    /// ([`bqs_core::reconstruct`], Eqs. 1–3). Returns `None` for unknown
    /// or deleted tracks; times outside the track's span clamp to its
    /// end points.
    pub fn reconstruct_at(&self, track: TrackId, t: f64) -> Result<Option<TimedPoint>, TlogError> {
        let refs = self.track_records(track);
        if refs.is_empty() {
            return Ok(None);
        }
        if self.track_has_backfill(track) {
            // Backfill breaks the records' bracketing order; merge the
            // whole track instead of picking bracketing records.
            let keys = self.read_track(track)?;
            let reconstructor = Reconstructor::uniform(keys).ok_or_else(|| TlogError::Corrupt {
                path: self.dir().to_path_buf(),
                offset: 0,
                reason: format!("track {track} key points are not time-ordered"),
            })?;
            return Ok(Some(reconstructor.at(t)));
        }
        // The record just before t, every record containing t, and the
        // record just after: between them they hold the bracketing keys.
        let mut wanted: Vec<(usize, usize)> = Vec::new();
        let mut before: Option<(usize, usize)> = None;
        let mut after: Option<(usize, usize)> = None;
        for &(si, ri) in refs {
            let rec = self.record_summary(si, ri);
            if rec.t_max < t {
                before = Some((si, ri));
            } else if rec.t_min > t {
                after = after.or(Some((si, ri)));
            } else {
                wanted.push((si, ri));
            }
        }
        let mut keys = Vec::new();
        let mut reader = self.reader();
        for (si, ri) in before.into_iter().chain(wanted).chain(after) {
            keys.extend(reader.read_points(si, ri)?);
        }
        let reconstructor = Reconstructor::uniform(keys).ok_or_else(|| TlogError::Corrupt {
            path: self.dir().to_path_buf(),
            offset: 0,
            reason: format!("track {track} key points are not time-ordered"),
        })?;
        Ok(Some(reconstructor.at(t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogConfig;
    use bqs_geo::Point2;
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("bqs-tlog-tests")
            .join(format!("query-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A track moving east at 1 m/s starting from `(x0, y0)` at t = t0,
    /// one fix per 10 s.
    fn line(x0: f64, y0: f64, t0: f64, n: usize) -> Vec<TimedPoint> {
        (0..n)
            .map(|i| TimedPoint::new(x0 + i as f64 * 10.0, y0, t0 + i as f64 * 10.0))
            .collect()
    }

    fn small_segments() -> LogConfig {
        LogConfig {
            segment_max_bytes: 1_500,
            ..LogConfig::default()
        }
    }

    #[test]
    fn time_range_queries_prune_and_filter_exactly() {
        let dir = temp_dir("time-range");
        let (mut log, _) = TrajectoryLog::open(&dir, small_segments()).unwrap();
        // 10 batches of 50 points each: t spans [0, 500), [500, 1000), …
        for batch in 0..10 {
            log.append(4, &line(0.0, 0.0, batch as f64 * 500.0, 50))
                .unwrap();
        }
        let out = log
            .query_time_range(Some(4), TimeRange::new(1_200.0, 1_300.0))
            .unwrap();
        assert_eq!(out.slices.len(), 1);
        let pts = &out.slices[0].points;
        assert!(pts.iter().all(|p| (1_200.0..=1_300.0).contains(&p.t)));
        assert_eq!(out.stats.kept_points, pts.len());
        assert!(pts.len() >= 10);
        // Pruning: only a few of the 10 records overlap 100 s.
        assert_eq!(out.stats.candidate_records, 10);
        assert!(
            out.stats.decoded_records <= 3,
            "expected pruning, decoded {} of {}",
            out.stats.decoded_records,
            out.stats.candidate_records
        );
    }

    #[test]
    fn all_tracks_time_query_groups_by_track() {
        let dir = temp_dir("all-tracks");
        let (mut log, _) = TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
        log.append(1, &line(0.0, 0.0, 0.0, 20)).unwrap();
        log.append(2, &line(0.0, 100.0, 0.0, 20)).unwrap();
        log.append(3, &line(0.0, 200.0, 10_000.0, 20)).unwrap();
        let out = log
            .query_time_range(None, TimeRange::new(0.0, 300.0))
            .unwrap();
        let ids: Vec<TrackId> = out.slices.iter().map(|s| s.track).collect();
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(out.total_points(), 40);
    }

    #[test]
    fn bbox_queries_prune_by_space_and_time() {
        let dir = temp_dir("bbox");
        let (mut log, _) = TrajectoryLog::open(&dir, small_segments()).unwrap();
        // Track 1 near the origin, track 2 ten km away.
        for batch in 0..5 {
            log.append(1, &line(0.0, 0.0, batch as f64 * 500.0, 50))
                .unwrap();
            log.append(2, &line(10_000.0, 10_000.0, batch as f64 * 500.0, 50))
                .unwrap();
        }
        let area = Rect::from_corners(Point2::new(-1.0, -1.0), Point2::new(200.0, 1.0));
        let out = log.query_bbox(None, area, None).unwrap();
        assert_eq!(out.slices.len(), 1);
        assert_eq!(out.slices[0].track, 1);
        assert!(out.slices[0].points.iter().all(|p| area.contains(p.pos)));
        // Track 2's records were pruned without decoding.
        assert!(out.stats.decoded_records < out.stats.candidate_records);

        let narrow = log
            .query_bbox(None, area, Some(TimeRange::new(0.0, 90.0)))
            .unwrap();
        assert!(narrow.total_points() < out.total_points());
        assert!(narrow.total_points() >= 9);
    }

    #[test]
    fn empty_results_are_not_errors() {
        let dir = temp_dir("empty");
        let (mut log, _) = TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
        log.append(1, &line(0.0, 0.0, 0.0, 10)).unwrap();
        let out = log.query_time_range(Some(99), TimeRange::all()).unwrap();
        assert!(out.slices.is_empty());
        let out = log
            .query_time_range(Some(1), TimeRange::new(5_000.0, 6_000.0))
            .unwrap();
        assert!(out.slices.is_empty());
        assert_eq!(out.stats.decoded_records, 0, "index should prune all");
    }

    #[test]
    fn reconstruct_interpolates_between_key_points() {
        let dir = temp_dir("reconstruct");
        let (mut log, _) = TrajectoryLog::open(&dir, small_segments()).unwrap();
        // Key points every 10 s moving 10 m/s east; reconstruction at
        // t=15 must land exactly between the fixes at t=10 and t=20.
        log.append(8, &line(0.0, 0.0, 0.0, 200)).unwrap();
        let p = log.reconstruct_at(8, 15.0).unwrap().unwrap();
        assert!((p.pos.x - 15.0).abs() < 1e-9, "{p:?}");
        assert_eq!(p.pos.y, 0.0);
        assert_eq!(p.t, 15.0);

        // Clamping outside the span.
        let before = log.reconstruct_at(8, -100.0).unwrap().unwrap();
        assert_eq!(before.pos, Point2::new(0.0, 0.0));
        let after = log.reconstruct_at(8, 1e9).unwrap().unwrap();
        assert_eq!(after.pos.x, 1_990.0);

        // Unknown track.
        assert!(log.reconstruct_at(9, 0.0).unwrap().is_none());
    }

    #[test]
    fn reconstruct_bridges_record_gaps() {
        let dir = temp_dir("reconstruct-gap");
        let (mut log, _) = TrajectoryLog::open(&dir, LogConfig::default()).unwrap();
        // Two batches with a 1000 s hole between them.
        log.append(3, &line(0.0, 0.0, 0.0, 10)).unwrap(); // t ∈ [0, 90]
        log.append(3, &line(1_000.0, 0.0, 1_090.0, 10)).unwrap(); // t ∈ [1090, 1180]
                                                                  // t = 590 is halfway between the last key (t=90, x=90) and the
                                                                  // first key of the next batch (t=1090, x=1000).
        let p = log.reconstruct_at(3, 590.0).unwrap().unwrap();
        assert!(
            (p.pos.x - (90.0 + (1_000.0 - 90.0) * 0.5)).abs() < 1e-9,
            "{p:?}"
        );
    }
}
