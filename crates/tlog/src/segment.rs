//! Segment-file framing: header, record frames, CRC validation and the
//! tail-tolerant scanner that powers crash recovery.
//!
//! A segment file is an 8-byte header followed by back-to-back record
//! frames (`docs/format.md` is the normative spec):
//!
//! ```text
//! header:  "BQTL"  u16 version  u16 flags
//! frame:   u32 body_len | u32 crc32(body) | body
//! body:    u8 kind | varint track | kind-specific fields
//! points:  varint count | t_min | t_max | x_min | y_min | x_max | y_max
//!          | codec payload                         (f64s little-endian)
//! ```
//!
//! The per-record summary (count, time span, bounding box) is stored
//! redundantly in the body header so the in-memory index can be rebuilt
//! from a header scan without decoding any payload; the CRC covers the
//! whole body, so a record is either fully trusted or fully rejected.

use crate::codec::{self, CodecError};
use crate::crc::crc32;
use bqs_core::fleet::TrackId;
use bqs_geo::{Rect, TimedPoint};

/// The four magic bytes opening every segment file.
pub const MAGIC: [u8; 4] = *b"BQTL";

/// On-disk format version (header `version` field).
pub const FORMAT_VERSION: u16 = 1;

/// Bytes of the segment header (magic + version + flags).
pub const SEGMENT_HEADER_LEN: u64 = 8;

/// Bytes of a frame prologue (length + CRC).
pub const FRAME_PROLOGUE_LEN: u64 = 8;

/// Upper bound accepted for one record body; larger length prefixes are
/// treated as corruption rather than attempted allocations.
pub const MAX_BODY_LEN: u32 = 1 << 30;

/// What a record contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// An encoded point stream of one track.
    Points,
    /// A tombstone: all earlier data of the track is dead.
    Tombstone,
    /// An encoded point stream written by the backfill path: sorted
    /// *within* the record, but exempt from the cross-record time
    /// ordering that [`RecordKind::Points`] records obey. Readers merge
    /// backfill points into the live stream at query time, with the
    /// in-order record winning exact-timestamp ties.
    Backfill,
}

impl RecordKind {
    fn from_byte(b: u8) -> Option<RecordKind> {
        match b {
            1 => Some(RecordKind::Points),
            2 => Some(RecordKind::Tombstone),
            3 => Some(RecordKind::Backfill),
            _ => None,
        }
    }

    fn to_byte(self) -> u8 {
        match self {
            RecordKind::Points => 1,
            RecordKind::Tombstone => 2,
            RecordKind::Backfill => 3,
        }
    }
}

/// Index entry for one record: everything the query planner needs to
/// prune without touching the payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecordSummary {
    /// Offset of the frame (its length prefix) within the segment file.
    pub offset: u64,
    /// Total frame length (prologue + body) in bytes.
    pub frame_len: u64,
    /// Record kind.
    pub kind: RecordKind,
    /// The track the record belongs to.
    pub track: TrackId,
    /// Points in the payload (0 for tombstones).
    pub count: u64,
    /// Smallest timestamp in the payload.
    pub t_min: f64,
    /// Largest timestamp in the payload.
    pub t_max: f64,
    /// Minimum bounding rectangle of the payload's positions.
    pub bbox: Rect,
}

/// A parsed record body borrowing the payload bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecordBody<'a> {
    /// A data record — an encoded point stream with its index summary.
    /// Covers both [`RecordKind::Points`] and [`RecordKind::Backfill`]
    /// (they share a body layout; `kind` tells them apart).
    Points {
        /// [`RecordKind::Points`] or [`RecordKind::Backfill`].
        kind: RecordKind,
        /// The owning track.
        track: TrackId,
        /// Declared number of points in the payload.
        count: u64,
        /// Smallest timestamp.
        t_min: f64,
        /// Largest timestamp.
        t_max: f64,
        /// Bounding box of the positions.
        bbox: Rect,
        /// The codec payload.
        payload: &'a [u8],
    },
    /// A tombstone for `track`.
    Tombstone {
        /// The track whose earlier data is dead.
        track: TrackId,
    },
}

fn put_f64(v: f64, out: &mut Vec<u8>) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn get_f64(bytes: &[u8], pos: &mut usize) -> Result<f64, CodecError> {
    let end = pos
        .checked_add(8)
        .filter(|&e| e <= bytes.len())
        .ok_or(CodecError::Truncated { offset: *pos })?;
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[*pos..end]);
    *pos = end;
    Ok(f64::from_bits(u64::from_le_bytes(b)))
}

/// Builds a complete points-record frame (prologue + body) and its
/// summary (with `offset` left at 0 for the writer to fill in).
pub fn build_points_frame(
    track: TrackId,
    points: &[TimedPoint],
) -> Result<(Vec<u8>, RecordSummary), CodecError> {
    build_data_frame(RecordKind::Points, track, points)
}

/// Builds a backfill-record frame: the same body layout as a points
/// record, flagged so readers know it is exempt from cross-record time
/// ordering. The batch must still be sorted *within* itself (the codec
/// rejects disorder at encode time).
pub fn build_backfill_frame(
    track: TrackId,
    points: &[TimedPoint],
) -> Result<(Vec<u8>, RecordSummary), CodecError> {
    build_data_frame(RecordKind::Backfill, track, points)
}

fn build_data_frame(
    kind: RecordKind,
    track: TrackId,
    points: &[TimedPoint],
) -> Result<(Vec<u8>, RecordSummary), CodecError> {
    debug_assert!(!points.is_empty(), "caller enforces non-empty appends");
    debug_assert!(kind != RecordKind::Tombstone);
    let t_min = points.first().map_or(0.0, |p| p.t);
    let t_max = points.last().map_or(0.0, |p| p.t);
    let bbox = Rect::bounding(points.iter().map(|p| p.pos))
        .unwrap_or(Rect::from_point(bqs_geo::Point2::ORIGIN));

    let mut body = Vec::with_capacity(64 + points.len() * 4);
    body.push(kind.to_byte());
    codec::write_varint(track, &mut body);
    codec::write_varint(points.len() as u64, &mut body);
    put_f64(t_min, &mut body);
    put_f64(t_max, &mut body);
    put_f64(bbox.min.x, &mut body);
    put_f64(bbox.min.y, &mut body);
    put_f64(bbox.max.x, &mut body);
    put_f64(bbox.max.y, &mut body);
    codec::encode_points(points, &mut body)?;

    let summary = RecordSummary {
        offset: 0,
        frame_len: FRAME_PROLOGUE_LEN + body.len() as u64,
        kind,
        track,
        count: points.len() as u64,
        t_min,
        t_max,
        bbox,
    };
    Ok((frame_from_body(body), summary))
}

/// Builds a tombstone frame and its summary.
pub fn build_tombstone_frame(track: TrackId) -> (Vec<u8>, RecordSummary) {
    let mut body = Vec::with_capacity(12);
    body.push(RecordKind::Tombstone.to_byte());
    codec::write_varint(track, &mut body);
    let summary = RecordSummary {
        offset: 0,
        frame_len: FRAME_PROLOGUE_LEN + body.len() as u64,
        kind: RecordKind::Tombstone,
        track,
        count: 0,
        t_min: 0.0,
        t_max: 0.0,
        bbox: Rect::from_point(bqs_geo::Point2::ORIGIN),
    };
    (frame_from_body(body), summary)
}

fn frame_from_body(body: Vec<u8>) -> Vec<u8> {
    let mut frame = Vec::with_capacity(8 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&body).to_le_bytes());
    frame.extend_from_slice(&body);
    frame
}

/// The 8-byte segment header.
pub fn segment_header() -> [u8; 8] {
    let mut h = [0u8; 8];
    h[..4].copy_from_slice(&MAGIC);
    h[4..6].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    // h[6..8]: flags, reserved as zero.
    h
}

/// Parses a record body (the CRC-covered bytes of one frame).
pub fn parse_body(body: &[u8]) -> Result<RecordBody<'_>, CodecError> {
    let mut pos = 0usize;
    let &kind = body.first().ok_or(CodecError::Truncated { offset: 0 })?;
    pos += 1;
    let kind = RecordKind::from_byte(kind).ok_or(CodecError::Truncated { offset: 0 })?;
    let track = codec::read_varint(body, &mut pos)?;
    match kind {
        RecordKind::Tombstone => Ok(RecordBody::Tombstone { track }),
        RecordKind::Points | RecordKind::Backfill => {
            let count = codec::read_varint(body, &mut pos)?;
            let t_min = get_f64(body, &mut pos)?;
            let t_max = get_f64(body, &mut pos)?;
            let min = bqs_geo::Point2::new(get_f64(body, &mut pos)?, get_f64(body, &mut pos)?);
            let max = bqs_geo::Point2::new(get_f64(body, &mut pos)?, get_f64(body, &mut pos)?);
            Ok(RecordBody::Points {
                kind,
                track,
                count,
                t_min,
                t_max,
                bbox: Rect { min, max },
                payload: &body[pos..],
            })
        }
    }
}

/// Why a scan stopped before the end of the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailFault {
    /// Fewer bytes remain than a frame prologue.
    ShortPrologue,
    /// The length prefix points past the end of the file (torn write) or
    /// past [`MAX_BODY_LEN`].
    ShortBody,
    /// The CRC over the body did not match the prologue.
    CrcMismatch,
    /// The body header did not parse.
    MalformedBody,
    /// The segment header itself is bad (wrong magic or version).
    BadHeader,
}

impl std::fmt::Display for TailFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TailFault::ShortPrologue => "incomplete frame prologue",
            TailFault::ShortBody => "frame length overruns the file",
            TailFault::CrcMismatch => "CRC mismatch",
            TailFault::MalformedBody => "malformed record body",
            TailFault::BadHeader => "bad segment header",
        };
        f.write_str(s)
    }
}

/// Result of scanning one segment image.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanOutcome {
    /// Summaries of the valid records, in file order.
    pub records: Vec<RecordSummary>,
    /// Length of the valid prefix (header + whole records); the recovery
    /// truncation point when `fault` is set.
    pub valid_len: u64,
    /// The first invalid byte range, if the scan stopped early.
    pub fault: Option<(u64, TailFault)>,
}

/// Scans a whole segment image, collecting record summaries until the
/// first invalid frame. Never panics on arbitrary bytes; the caller
/// decides whether a fault means "truncate the tail" (recovery) or
/// "refuse the file" (strict verification).
pub fn scan_segment(bytes: &[u8]) -> ScanOutcome {
    let mut records = Vec::new();
    if bytes.len() < SEGMENT_HEADER_LEN as usize
        || bytes[..4] != MAGIC
        || u16::from_le_bytes([bytes[4], bytes[5]]) != FORMAT_VERSION
    {
        return ScanOutcome {
            records,
            valid_len: 0,
            fault: Some((0, TailFault::BadHeader)),
        };
    }
    let mut pos = SEGMENT_HEADER_LEN as usize;
    loop {
        if pos == bytes.len() {
            return ScanOutcome {
                records,
                valid_len: pos as u64,
                fault: None,
            };
        }
        let fault = |records: Vec<RecordSummary>, pos: usize, f: TailFault| ScanOutcome {
            records,
            valid_len: pos as u64,
            fault: Some((pos as u64, f)),
        };
        if bytes.len() - pos < FRAME_PROLOGUE_LEN as usize {
            return fault(records, pos, TailFault::ShortPrologue);
        }
        // bqs-analyze: allow(no-unwrap-in-lib) — the slice is exactly 4 bytes by the index arithmetic
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        // bqs-analyze: allow(no-unwrap-in-lib) — the slice is exactly 4 bytes by the index arithmetic
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len == 0 || len > MAX_BODY_LEN {
            return fault(records, pos, TailFault::ShortBody);
        }
        let body_start = pos + 8;
        let body_end = match body_start.checked_add(len as usize) {
            Some(e) if e <= bytes.len() => e,
            _ => return fault(records, pos, TailFault::ShortBody),
        };
        let body = &bytes[body_start..body_end];
        if crc32(body) != crc {
            return fault(records, pos, TailFault::CrcMismatch);
        }
        let summary = match parse_body(body) {
            Ok(RecordBody::Points {
                kind,
                track,
                count,
                t_min,
                t_max,
                bbox,
                ..
            }) => RecordSummary {
                offset: pos as u64,
                frame_len: (8 + len) as u64,
                kind,
                track,
                count,
                t_min,
                t_max,
                bbox,
            },
            Ok(RecordBody::Tombstone { track }) => RecordSummary {
                offset: pos as u64,
                frame_len: (8 + len) as u64,
                kind: RecordKind::Tombstone,
                track,
                count: 0,
                t_min: 0.0,
                t_max: 0.0,
                bbox: Rect::from_point(bqs_geo::Point2::ORIGIN),
            },
            Err(_) => return fault(records, pos, TailFault::MalformedBody),
        };
        records.push(summary);
        pos = body_end;
    }
}

/// Decodes the payload of a points body into a vector, verifying that the
/// decoded count matches the header's claim.
pub fn decode_points_body(body: &[u8]) -> Result<(TrackId, Vec<TimedPoint>), CodecError> {
    match parse_body(body)? {
        RecordBody::Points {
            track,
            count,
            payload,
            ..
        } => {
            let points = codec::decode_to_vec(payload)?;
            if points.len() as u64 != count {
                return Err(CodecError::CountMismatch {
                    declared: count,
                    decoded: points.len() as u64,
                });
            }
            Ok((track, points))
        }
        RecordBody::Tombstone { .. } => Err(CodecError::Truncated { offset: 0 }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(n: usize) -> Vec<TimedPoint> {
        (0..n)
            .map(|i| {
                TimedPoint::new(
                    i as f64 * 7.0,
                    (i as f64 * 0.3).sin() * 50.0,
                    i as f64 * 5.0,
                )
            })
            .collect()
    }

    fn segment_with(frames: &[&[u8]]) -> Vec<u8> {
        let mut seg = segment_header().to_vec();
        for f in frames {
            seg.extend_from_slice(f);
        }
        seg
    }

    #[test]
    fn frame_round_trips_through_scan_and_decode() {
        let points = pts(40);
        let (frame, summary) = build_points_frame(9, &points).unwrap();
        assert_eq!(frame.len() as u64, summary.frame_len);
        let seg = segment_with(&[&frame]);
        let scan = scan_segment(&seg);
        assert!(scan.fault.is_none());
        assert_eq!(scan.records.len(), 1);
        let r = scan.records[0];
        assert_eq!(r.track, 9);
        assert_eq!(r.count, 40);
        assert_eq!(r.t_min, 0.0);
        assert_eq!(r.t_max, 39.0 * 5.0);
        assert_eq!(r.offset, SEGMENT_HEADER_LEN);

        let body =
            &seg[(r.offset + FRAME_PROLOGUE_LEN) as usize..(r.offset + r.frame_len) as usize];
        let (track, decoded) = decode_points_body(body).unwrap();
        assert_eq!(track, 9);
        assert_eq!(decoded, points);
    }

    #[test]
    fn scan_stops_at_torn_tail_keeping_full_records() {
        let (f1, _) = build_points_frame(1, &pts(20)).unwrap();
        let (f2, _) = build_points_frame(2, &pts(30)).unwrap();
        let full = segment_with(&[&f1, &f2]);
        // Cut anywhere inside the second frame: the first must survive.
        for cut in 1..f2.len() {
            let torn = &full[..full.len() - cut];
            let scan = scan_segment(torn);
            assert_eq!(scan.records.len(), 1, "cut {cut}");
            assert_eq!(
                scan.valid_len,
                (SEGMENT_HEADER_LEN as usize + f1.len()) as u64
            );
            assert!(scan.fault.is_some());
        }
    }

    #[test]
    fn scan_rejects_bit_flips_via_crc() {
        let (frame, _) = build_points_frame(3, &pts(25)).unwrap();
        let seg = segment_with(&[&frame]);
        // Flip one payload bit (past the prologue).
        let mut bad = seg.clone();
        let idx = seg.len() - 3;
        bad[idx] ^= 0x10;
        let scan = scan_segment(&bad);
        assert_eq!(scan.records.len(), 0);
        assert_eq!(scan.fault.map(|(_, f)| f), Some(TailFault::CrcMismatch));
    }

    #[test]
    fn scan_rejects_bad_header() {
        let scan = scan_segment(b"nope");
        assert_eq!(scan.fault, Some((0, TailFault::BadHeader)));
        let mut seg = segment_header().to_vec();
        seg[5] = 0x7F; // absurd version
        assert_eq!(scan_segment(&seg).fault, Some((0, TailFault::BadHeader)));
    }

    #[test]
    fn tombstones_scan_and_parse() {
        let (frame, summary) = build_tombstone_frame(77);
        assert_eq!(summary.kind, RecordKind::Tombstone);
        let seg = segment_with(&[&frame]);
        let scan = scan_segment(&seg);
        assert!(scan.fault.is_none());
        assert_eq!(scan.records[0].kind, RecordKind::Tombstone);
        assert_eq!(scan.records[0].track, 77);
    }

    #[test]
    fn backfill_frames_scan_parse_and_decode_like_points() {
        let points = pts(25);
        let (frame, summary) = build_backfill_frame(5, &points).unwrap();
        assert_eq!(summary.kind, RecordKind::Backfill);
        let seg = segment_with(&[&frame]);
        let scan = scan_segment(&seg);
        assert!(scan.fault.is_none());
        let r = scan.records[0];
        assert_eq!(r.kind, RecordKind::Backfill);
        assert_eq!(r.track, 5);
        assert_eq!(r.count, 25);
        let body =
            &seg[(r.offset + FRAME_PROLOGUE_LEN) as usize..(r.offset + r.frame_len) as usize];
        let (track, decoded) = decode_points_body(body).unwrap();
        assert_eq!(track, 5);
        assert_eq!(decoded, points);
        match parse_body(body).unwrap() {
            RecordBody::Points { kind, .. } => assert_eq!(kind, RecordKind::Backfill),
            other => panic!("unexpected body {other:?}"),
        }
    }

    #[test]
    fn unknown_record_kinds_fault_the_scan() {
        let (frame, _) = build_points_frame(1, &pts(10)).unwrap();
        let mut body = frame[8..].to_vec();
        body[0] = 9; // unknown kind byte
        let bad = frame_from_body(body);
        let seg = segment_with(&[&bad]);
        let scan = scan_segment(&seg);
        assert_eq!(scan.records.len(), 0);
        assert_eq!(scan.fault.map(|(_, f)| f), Some(TailFault::MalformedBody));
    }

    #[test]
    fn empty_segment_is_valid() {
        let seg = segment_header().to_vec();
        let scan = scan_segment(&seg);
        assert!(scan.fault.is_none());
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_len, SEGMENT_HEADER_LEN);
    }
}
