//! The binary trajectory codec: varint zig-zag delta encoding of
//! [`TimedPoint`] streams.
//!
//! ## How it stays both lossless and small
//!
//! Quantising coordinates to a fixed grid would be compact but lossy; raw
//! IEEE-754 doubles are lossless but incompressible by integer deltas.
//! The codec threads the needle with an **order-preserving bit map**:
//! every `f64` is mapped to a `u64` such that the numeric order of finite
//! doubles matches the integer order ([`ulp_map`]). Nearby doubles map to
//! nearby integers (their distance is the number of representable doubles
//! between them), so consecutive GPS fixes — which differ by metres out of
//! a kilometres-scale magnitude — produce small integer deltas, while the
//! mapping itself is a bijection on all 2⁶⁴ bit patterns: decode returns
//! the exact input bits for *any* input, including negative zero, and the
//! arithmetic is wrapping so even adversarial streams round-trip.
//!
//! Per field (x, y, t) the codec stores the **second-order delta**
//! (delta-of-delta) of the mapped integers as a zig-zag LEB128 varint:
//! constant coordinates (a parked tracker, an axis-aligned road leg) cost
//! one byte, constant velocity costs a few, and evenly spaced timestamps
//! collapse to one byte per point. The first point is stored verbatim
//! (3 × 8 bytes little-endian) as the stream anchor.
//!
//! ## Profiles: exact vs. quantized
//!
//! The exact profile above is bit-lossless, but a GPS stream's low
//! mantissa bits are *noise* — the vehicle dataset carries metre-scale
//! jitter whose exact double representation costs ~40 bits per
//! coordinate, an information-theoretic floor no lossless coder can
//! beat. [`CodecProfile::Quantized`] trades those sub-noise bits away:
//! coordinates become integers on a configurable grid
//! ([`CodecProfile::millimetre`] stores 1 mm cells — three orders of
//! magnitude finer than GPS error, and 10× finer than the paper's own
//! 12-byte centimetre records), and the same delta-of-delta varints then
//! collapse to 1–3 bytes per field. Both profiles share one wire format
//! distinguished by a mode byte; the decoder is oblivious to which was
//! used.
//!
//! The payload begins with a one-byte codec version so blobs are
//! self-describing independent of the segment container (see
//! `docs/format.md` for the full wire format).
//!
//! Encoding *rejects* streams whose timestamps go backwards or are not
//! finite — the log's index and the reconstruction layer both rely on
//! time-ordered records — with a typed [`CodecError`].

use bqs_core::stream::Sink;
use bqs_geo::{ColumnarBatch, TimedPoint};
use std::fmt;

/// Version byte prefixed to every encoded payload.
pub const CODEC_VERSION: u8 = 1;

/// Mode byte for the exact (bit-lossless) profile.
const MODE_EXACT: u8 = 0;

/// Mode byte for the quantized profile.
const MODE_QUANTIZED: u8 = 1;

/// Bytes a point occupies in the naive fixed-width representation
/// (3 × `f64`): the baseline the storage experiment compares against.
pub const NAIVE_POINT_BYTES: usize = 24;

/// How values are mapped to the integers the delta coder works on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CodecProfile {
    /// Bit-lossless: integers are the order-preserving bit map of the
    /// raw doubles. Any stream round-trips exactly.
    Exact,
    /// Grid-lossy: values are rounded to `1/scale`-sized cells and the
    /// cell indices are delta-coded. Decoding returns the cell centres;
    /// the round-trip error is at most `0.5/scale` per field, and
    /// re-encoding decoded output is idempotent.
    Quantized {
        /// Cells per metre for x and y (e.g. `1000.0` = 1 mm grid).
        xy_scale: f64,
        /// Cells per second for timestamps.
        t_scale: f64,
    },
}

impl CodecProfile {
    /// The quantized profile used by default where grid fidelity is
    /// acceptable: 1 mm positions, 1 ms timestamps — far below GPS noise
    /// and 10× finer than the paper's centimetre flash records.
    pub fn millimetre() -> CodecProfile {
        CodecProfile::Quantized {
            xy_scale: 1_000.0,
            t_scale: 1_000.0,
        }
    }

    /// Largest absolute quantised magnitude accepted, chosen so that
    /// round-trips through `f64` stay exact with margin.
    const MAX_CELL: f64 = 9e15; // < 2^53

    fn validate(&self) -> Result<(), CodecError> {
        match *self {
            CodecProfile::Exact => Ok(()),
            CodecProfile::Quantized { xy_scale, t_scale } => {
                if xy_scale.is_finite() && xy_scale > 0.0 && t_scale.is_finite() && t_scale > 0.0 {
                    Ok(())
                } else {
                    Err(CodecError::BadProfile { xy_scale, t_scale })
                }
            }
        }
    }
}

/// Quantises one value, rejecting anything the grid cannot hold.
#[inline]
fn quantize(v: f64, scale: f64, index: usize) -> Result<i64, CodecError> {
    let q = (v * scale).round();
    if !q.is_finite() || q.abs() > CodecProfile::MAX_CELL {
        return Err(CodecError::Unquantizable { index, value: v });
    }
    Ok(q as i64)
}

/// Everything that can go wrong while encoding or decoding a point stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CodecError {
    /// A timestamp went backwards: the log stores time-ordered streams.
    NonMonotonicTimestamps {
        /// Index of the offending point in the input stream.
        index: usize,
        /// The previous point's timestamp.
        prev: f64,
        /// The offending timestamp.
        next: f64,
    },
    /// A timestamp was NaN or infinite.
    NonFiniteTimestamp {
        /// Index of the offending point in the input stream.
        index: usize,
    },
    /// The payload's version byte is not one this decoder understands.
    UnsupportedVersion {
        /// The version byte found.
        found: u8,
    },
    /// The payload's mode byte names a profile this decoder does not
    /// know.
    UnsupportedMode {
        /// The mode byte found.
        found: u8,
    },
    /// The payload ended in the middle of a point or varint.
    Truncated {
        /// Byte offset at which decoding could no longer proceed.
        offset: usize,
    },
    /// A record header's declared point count disagrees with the payload.
    CountMismatch {
        /// The count the record header declared.
        declared: u64,
        /// The count the payload actually decoded to.
        decoded: u64,
    },
    /// A quantized profile was constructed with non-positive or
    /// non-finite scales.
    BadProfile {
        /// The offending position scale.
        xy_scale: f64,
        /// The offending time scale.
        t_scale: f64,
    },
    /// A value cannot be represented on the quantized profile's grid
    /// (non-finite, or the cell index overflows).
    Unquantizable {
        /// Index of the offending point in the input stream.
        index: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::NonMonotonicTimestamps { index, prev, next } => write!(
                f,
                "timestamp at index {index} goes backwards: {next} < {prev}"
            ),
            CodecError::NonFiniteTimestamp { index } => {
                write!(f, "timestamp at index {index} is not finite")
            }
            CodecError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported codec version {found} (expected {CODEC_VERSION})"
                )
            }
            CodecError::UnsupportedMode { found } => {
                write!(f, "unsupported codec mode {found} (expected 0 or 1)")
            }
            CodecError::Truncated { offset } => {
                write!(f, "payload truncated at byte offset {offset}")
            }
            CodecError::CountMismatch { declared, decoded } => {
                write!(
                    f,
                    "record declared {declared} points but payload held {decoded}"
                )
            }
            CodecError::BadProfile { xy_scale, t_scale } => {
                write!(f, "quantized profile scales must be positive and finite, got xy={xy_scale} t={t_scale}")
            }
            CodecError::Unquantizable { index, value } => {
                write!(
                    f,
                    "value {value} at index {index} does not fit the quantized grid"
                )
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Maps an `f64`'s bit pattern to a `u64` whose integer order matches the
/// numeric order of finite doubles (negative values reversed into the
/// lower half, positives shifted into the upper). A bijection on all bit
/// patterns — NaNs and infinities survive round-trips bit-exactly.
#[inline]
pub fn ulp_map(v: f64) -> u64 {
    let bits = v.to_bits();
    if bits & (1 << 63) != 0 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Inverse of [`ulp_map`].
#[inline]
pub fn ulp_unmap(u: u64) -> f64 {
    let bits = if u & (1 << 63) != 0 {
        u & !(1 << 63)
    } else {
        !u
    };
    f64::from_bits(bits)
}

/// Zig-zag encodes a signed delta so small magnitudes of either sign get
/// short varints.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// Appends a LEB128 varint (1–10 bytes).
#[inline]
pub fn write_varint(mut v: u64, out: &mut Vec<u8>) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Reads a LEB128 varint starting at `*pos`, advancing it.
#[inline]
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = bytes
            .get(*pos)
            .ok_or(CodecError::Truncated { offset: *pos })?;
        *pos += 1;
        // 10 bytes cover 70 bits; anything longer is corrupt framing.
        if shift >= 64 {
            return Err(CodecError::Truncated { offset: *pos });
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Per-field delta-of-delta state in mapped-integer space.
#[derive(Debug, Clone, Copy, Default)]
struct FieldState {
    prev: u64,
    prev_delta: u64,
}

impl FieldState {
    #[inline]
    fn start(u: u64) -> FieldState {
        FieldState {
            prev: u,
            prev_delta: 0,
        }
    }

    /// Encoder step: the zig-zagged second-order delta for `u`.
    #[inline]
    fn encode(&mut self, u: u64) -> u64 {
        let delta = u.wrapping_sub(self.prev);
        let dd = delta.wrapping_sub(self.prev_delta);
        self.prev = u;
        self.prev_delta = delta;
        zigzag(dd as i64)
    }

    /// Decoder step: reconstructs the mapped integer from a zig-zagged
    /// second-order delta.
    #[inline]
    fn decode(&mut self, zz: u64) -> u64 {
        let dd = unzigzag(zz) as u64;
        let delta = self.prev_delta.wrapping_add(dd);
        let u = self.prev.wrapping_add(delta);
        self.prev = u;
        self.prev_delta = delta;
        u
    }
}

/// Validates the timestamp of point `index` against its predecessor.
#[inline]
fn check_time(prev_t: f64, t: f64, index: usize) -> Result<(), CodecError> {
    if !t.is_finite() {
        return Err(CodecError::NonFiniteTimestamp { index });
    }
    if t < prev_t {
        return Err(CodecError::NonMonotonicTimestamps {
            index,
            prev: prev_t,
            next: t,
        });
    }
    Ok(())
}

/// Encodes a point stream with the bit-lossless [`CodecProfile::Exact`]
/// profile — the durable log's default. Timestamps must be finite and
/// non-decreasing; positions may be any bit pattern. An empty stream
/// encodes to just the version and mode bytes.
pub fn encode_points(points: &[TimedPoint], out: &mut Vec<u8>) -> Result<(), CodecError> {
    encode_points_with(CodecProfile::Exact, points, out)
}

/// Encodes a point stream with an explicit profile.
pub fn encode_points_with(
    profile: CodecProfile,
    points: &[TimedPoint],
    out: &mut Vec<u8>,
) -> Result<(), CodecError> {
    profile.validate()?;
    out.reserve(2 + points.len() * 8);
    out.push(CODEC_VERSION);
    match profile {
        CodecProfile::Exact => {
            out.push(MODE_EXACT);
            let Some(first) = points.first() else {
                return Ok(());
            };
            if !first.t.is_finite() {
                return Err(CodecError::NonFiniteTimestamp { index: 0 });
            }
            out.extend_from_slice(&first.pos.x.to_bits().to_le_bytes());
            out.extend_from_slice(&first.pos.y.to_bits().to_le_bytes());
            out.extend_from_slice(&first.t.to_bits().to_le_bytes());

            let mut x = FieldState::start(ulp_map(first.pos.x));
            let mut y = FieldState::start(ulp_map(first.pos.y));
            let mut t = FieldState::start(ulp_map(first.t));
            let mut prev_t = first.t;
            for (i, p) in points.iter().enumerate().skip(1) {
                check_time(prev_t, p.t, i)?;
                prev_t = p.t;
                write_varint(x.encode(ulp_map(p.pos.x)), out);
                write_varint(y.encode(ulp_map(p.pos.y)), out);
                write_varint(t.encode(ulp_map(p.t)), out);
            }
        }
        CodecProfile::Quantized { xy_scale, t_scale } => {
            out.push(MODE_QUANTIZED);
            out.extend_from_slice(&xy_scale.to_bits().to_le_bytes());
            out.extend_from_slice(&t_scale.to_bits().to_le_bytes());
            let Some(first) = points.first() else {
                return Ok(());
            };
            if !first.t.is_finite() {
                return Err(CodecError::NonFiniteTimestamp { index: 0 });
            }
            let kx = quantize(first.pos.x, xy_scale, 0)?;
            let ky = quantize(first.pos.y, xy_scale, 0)?;
            let kt = quantize(first.t, t_scale, 0)?;
            write_varint(zigzag(kx), out);
            write_varint(zigzag(ky), out);
            write_varint(zigzag(kt), out);

            let mut x = FieldState::start(kx as u64);
            let mut y = FieldState::start(ky as u64);
            let mut t = FieldState::start(kt as u64);
            let mut prev_t = first.t;
            for (i, p) in points.iter().enumerate().skip(1) {
                check_time(prev_t, p.t, i)?;
                prev_t = p.t;
                write_varint(x.encode(quantize(p.pos.x, xy_scale, i)? as u64), out);
                write_varint(y.encode(quantize(p.pos.y, xy_scale, i)? as u64), out);
                write_varint(t.encode(quantize(p.t, t_scale, i)? as u64), out);
            }
        }
    }
    Ok(())
}

/// Convenience wrapper returning a fresh buffer (exact profile).
pub fn encode_to_vec(points: &[TimedPoint]) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    encode_points(points, &mut out)?;
    Ok(out)
}

/// Convenience wrapper returning a fresh buffer with an explicit profile.
pub fn encode_to_vec_with(
    profile: CodecProfile,
    points: &[TimedPoint],
) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    encode_points_with(profile, points, &mut out)?;
    Ok(out)
}

/// Decodes a payload produced by [`encode_points`], replaying every point
/// straight into `sink` (any [`Sink`] — a `Vec`, a counting sink, or a
/// live compressor's input adapter). Returns the number of points
/// decoded. The payload must be exactly one encoded stream: trailing
/// garbage surfaces as [`CodecError::Truncated`] mid-varint or a bogus
/// point, never as silent acceptance.
pub fn decode_points(bytes: &[u8], sink: &mut dyn Sink) -> Result<usize, CodecError> {
    let mut pos = 0usize;
    let &version = bytes.get(pos).ok_or(CodecError::Truncated { offset: 0 })?;
    pos += 1;
    if version != CODEC_VERSION {
        return Err(CodecError::UnsupportedVersion { found: version });
    }
    let &mode = bytes
        .get(pos)
        .ok_or(CodecError::Truncated { offset: pos })?;
    pos += 1;
    let read_f64 = |pos: &mut usize| -> Result<f64, CodecError> {
        let end = pos
            .checked_add(8)
            .filter(|&e| e <= bytes.len())
            .ok_or(CodecError::Truncated { offset: *pos })?;
        let mut b = [0u8; 8];
        b.copy_from_slice(&bytes[*pos..end]);
        *pos = end;
        Ok(f64::from_bits(u64::from_le_bytes(b)))
    };
    match mode {
        MODE_EXACT => {
            if pos == bytes.len() {
                return Ok(0);
            }
            let first = TimedPoint::new(
                read_f64(&mut pos)?,
                read_f64(&mut pos)?,
                read_f64(&mut pos)?,
            );
            let mut x = FieldState::start(ulp_map(first.pos.x));
            let mut y = FieldState::start(ulp_map(first.pos.y));
            let mut t = FieldState::start(ulp_map(first.t));
            sink.push(first);
            let mut count = 1usize;
            while pos < bytes.len() {
                let px = ulp_unmap(x.decode(read_varint(bytes, &mut pos)?));
                let py = ulp_unmap(y.decode(read_varint(bytes, &mut pos)?));
                let pt = ulp_unmap(t.decode(read_varint(bytes, &mut pos)?));
                sink.push(TimedPoint::new(px, py, pt));
                count += 1;
            }
            Ok(count)
        }
        MODE_QUANTIZED => {
            let xy_scale = read_f64(&mut pos)?;
            let t_scale = read_f64(&mut pos)?;
            (CodecProfile::Quantized { xy_scale, t_scale }).validate()?;
            if pos == bytes.len() {
                return Ok(0);
            }
            let kx = unzigzag(read_varint(bytes, &mut pos)?);
            let ky = unzigzag(read_varint(bytes, &mut pos)?);
            let kt = unzigzag(read_varint(bytes, &mut pos)?);
            let dequant = |k: i64, scale: f64| k as f64 / scale;
            let mut x = FieldState::start(kx as u64);
            let mut y = FieldState::start(ky as u64);
            let mut t = FieldState::start(kt as u64);
            sink.push(TimedPoint::new(
                dequant(kx, xy_scale),
                dequant(ky, xy_scale),
                dequant(kt, t_scale),
            ));
            let mut count = 1usize;
            while pos < bytes.len() {
                let px = dequant(x.decode(read_varint(bytes, &mut pos)?) as i64, xy_scale);
                let py = dequant(y.decode(read_varint(bytes, &mut pos)?) as i64, xy_scale);
                let pt = dequant(t.decode(read_varint(bytes, &mut pos)?) as i64, t_scale);
                sink.push(TimedPoint::new(px, py, pt));
                count += 1;
            }
            Ok(count)
        }
        other => Err(CodecError::UnsupportedMode { found: other }),
    }
}

/// Convenience wrapper decoding into a fresh `Vec`.
pub fn decode_to_vec(bytes: &[u8]) -> Result<Vec<TimedPoint>, CodecError> {
    let mut out = Vec::new();
    decode_points(bytes, &mut out)?;
    Ok(out)
}

// --- columnar fast paths ---------------------------------------------

/// Validates a whole timestamp run in one contiguous pass — the
/// columnar codec's replacement for the per-point [`check_time`] calls
/// interleaved through the row encoder's hot loop.
#[inline]
fn check_time_run(t: &[f64]) -> Result<(), CodecError> {
    let mut prev = f64::NEG_INFINITY;
    for (i, &v) in t.iter().enumerate() {
        if !v.is_finite() {
            return Err(CodecError::NonFiniteTimestamp { index: i });
        }
        if v < prev {
            return Err(CodecError::NonMonotonicTimestamps {
                index: i,
                prev,
                next: v,
            });
        }
        prev = v;
    }
    Ok(())
}

/// Encodes a columnar batch with the exact profile, producing bytes
/// **identical** to [`encode_points`] on the same points in row form.
///
/// The wire format interleaves x, y, t varints per point, but the
/// columnar encoder reads each field from its own contiguous run and
/// hoists the time validation out of the per-point loop
/// (`check_time_run`) — the shape the ingest server's `Append` fast
/// path feeds straight from the socket. Unlike the row encoder, nothing
/// is written to `out` when the batch is invalid.
///
/// # Panics
///
/// Panics when the batch's columns differ in length (a violated
/// [`ColumnarBatch`] invariant).
pub fn encode_columns(batch: &ColumnarBatch, out: &mut Vec<u8>) -> Result<(), CodecError> {
    encode_columns_with(CodecProfile::Exact, batch, out)
}

/// Encodes a columnar batch with an explicit profile; bytes are
/// identical to [`encode_points_with`] on the same points in row form.
/// See [`encode_columns`] for the differences in error behaviour.
pub fn encode_columns_with(
    profile: CodecProfile,
    batch: &ColumnarBatch,
    out: &mut Vec<u8>,
) -> Result<(), CodecError> {
    assert!(
        batch.x.len() == batch.t.len() && batch.y.len() == batch.t.len(),
        "columnar batch columns differ in length"
    );
    profile.validate()?;
    check_time_run(&batch.t)?;
    let n = batch.len();
    out.reserve(2 + n * 8);
    out.push(CODEC_VERSION);
    match profile {
        CodecProfile::Exact => {
            out.push(MODE_EXACT);
            if n == 0 {
                return Ok(());
            }
            out.extend_from_slice(&batch.x[0].to_bits().to_le_bytes());
            out.extend_from_slice(&batch.y[0].to_bits().to_le_bytes());
            out.extend_from_slice(&batch.t[0].to_bits().to_le_bytes());
            let mut x = FieldState::start(ulp_map(batch.x[0]));
            let mut y = FieldState::start(ulp_map(batch.y[0]));
            let mut t = FieldState::start(ulp_map(batch.t[0]));
            for i in 1..n {
                write_varint(x.encode(ulp_map(batch.x[i])), out);
                write_varint(y.encode(ulp_map(batch.y[i])), out);
                write_varint(t.encode(ulp_map(batch.t[i])), out);
            }
        }
        CodecProfile::Quantized { xy_scale, t_scale } => {
            out.push(MODE_QUANTIZED);
            out.extend_from_slice(&xy_scale.to_bits().to_le_bytes());
            out.extend_from_slice(&t_scale.to_bits().to_le_bytes());
            if n == 0 {
                return Ok(());
            }
            let kx = quantize(batch.x[0], xy_scale, 0)?;
            let ky = quantize(batch.y[0], xy_scale, 0)?;
            let kt = quantize(batch.t[0], t_scale, 0)?;
            write_varint(zigzag(kx), out);
            write_varint(zigzag(ky), out);
            write_varint(zigzag(kt), out);
            let mut x = FieldState::start(kx as u64);
            let mut y = FieldState::start(ky as u64);
            let mut t = FieldState::start(kt as u64);
            for i in 1..n {
                write_varint(x.encode(quantize(batch.x[i], xy_scale, i)? as u64), out);
                write_varint(y.encode(quantize(batch.y[i], xy_scale, i)? as u64), out);
                write_varint(t.encode(quantize(batch.t[i], t_scale, i)? as u64), out);
            }
        }
    }
    Ok(())
}

/// Decodes a payload produced by any encoder in this module straight
/// into a columnar batch, **appending** to whatever `batch` already
/// holds (clear it first to reuse its allocations). Returns the number
/// of points decoded. Accepts exactly the payloads [`decode_points`]
/// accepts and produces the same values — but lands them in three
/// contiguous runs with no per-point [`Sink`] dispatch. On an error the
/// batch may hold a partially appended prefix.
pub fn decode_columns_into(bytes: &[u8], batch: &mut ColumnarBatch) -> Result<usize, CodecError> {
    let mut pos = 0usize;
    let &version = bytes.get(pos).ok_or(CodecError::Truncated { offset: 0 })?;
    pos += 1;
    if version != CODEC_VERSION {
        return Err(CodecError::UnsupportedVersion { found: version });
    }
    let &mode = bytes
        .get(pos)
        .ok_or(CodecError::Truncated { offset: pos })?;
    pos += 1;
    let read_f64 = |pos: &mut usize| -> Result<f64, CodecError> {
        let end = pos
            .checked_add(8)
            .filter(|&e| e <= bytes.len())
            .ok_or(CodecError::Truncated { offset: *pos })?;
        let mut b = [0u8; 8];
        b.copy_from_slice(&bytes[*pos..end]);
        *pos = end;
        Ok(f64::from_bits(u64::from_le_bytes(b)))
    };
    // A point costs at least three varint bytes after the anchor;
    // reserving the upper bound keeps the hot loop reallocation-free.
    let reserve = (bytes.len().saturating_sub(pos)) / 3 + 1;
    batch.x.reserve(reserve);
    batch.y.reserve(reserve);
    batch.t.reserve(reserve);
    match mode {
        MODE_EXACT => {
            if pos == bytes.len() {
                return Ok(0);
            }
            let fx = read_f64(&mut pos)?;
            let fy = read_f64(&mut pos)?;
            let ft = read_f64(&mut pos)?;
            let mut x = FieldState::start(ulp_map(fx));
            let mut y = FieldState::start(ulp_map(fy));
            let mut t = FieldState::start(ulp_map(ft));
            batch.x.push(fx);
            batch.y.push(fy);
            batch.t.push(ft);
            let mut count = 1usize;
            while pos < bytes.len() {
                batch
                    .x
                    .push(ulp_unmap(x.decode(read_varint(bytes, &mut pos)?)));
                batch
                    .y
                    .push(ulp_unmap(y.decode(read_varint(bytes, &mut pos)?)));
                batch
                    .t
                    .push(ulp_unmap(t.decode(read_varint(bytes, &mut pos)?)));
                count += 1;
            }
            Ok(count)
        }
        MODE_QUANTIZED => {
            let xy_scale = read_f64(&mut pos)?;
            let t_scale = read_f64(&mut pos)?;
            (CodecProfile::Quantized { xy_scale, t_scale }).validate()?;
            if pos == bytes.len() {
                return Ok(0);
            }
            let kx = unzigzag(read_varint(bytes, &mut pos)?);
            let ky = unzigzag(read_varint(bytes, &mut pos)?);
            let kt = unzigzag(read_varint(bytes, &mut pos)?);
            let dequant = |k: i64, scale: f64| k as f64 / scale;
            let mut x = FieldState::start(kx as u64);
            let mut y = FieldState::start(ky as u64);
            let mut t = FieldState::start(kt as u64);
            batch.x.push(dequant(kx, xy_scale));
            batch.y.push(dequant(ky, xy_scale));
            batch.t.push(dequant(kt, t_scale));
            let mut count = 1usize;
            while pos < bytes.len() {
                batch.x.push(dequant(
                    x.decode(read_varint(bytes, &mut pos)?) as i64,
                    xy_scale,
                ));
                batch.y.push(dequant(
                    y.decode(read_varint(bytes, &mut pos)?) as i64,
                    xy_scale,
                ));
                batch.t.push(dequant(
                    t.decode(read_varint(bytes, &mut pos)?) as i64,
                    t_scale,
                ));
                count += 1;
            }
            Ok(count)
        }
        other => Err(CodecError::UnsupportedMode { found: other }),
    }
}

/// Convenience wrapper decoding into a fresh columnar batch.
pub fn decode_columns(bytes: &[u8]) -> Result<ColumnarBatch, CodecError> {
    let mut batch = ColumnarBatch::new();
    decode_columns_into(bytes, &mut batch)?;
    Ok(batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqs_core::stream::CountingSink;

    fn roundtrip(points: &[TimedPoint]) -> Vec<TimedPoint> {
        let bytes = encode_to_vec(points).expect("encode");
        decode_to_vec(&bytes).expect("decode")
    }

    #[test]
    fn ulp_map_is_order_preserving_and_bijective() {
        let values = [
            f64::NEG_INFINITY,
            -1e300,
            -1.0,
            -f64::MIN_POSITIVE,
            -0.0,
            0.0,
            f64::MIN_POSITIVE,
            1.0,
            1e300,
            f64::INFINITY,
        ];
        for w in values.windows(2) {
            assert!(ulp_map(w[0]) < ulp_map(w[1]), "{} vs {}", w[0], w[1]);
        }
        for v in values {
            assert_eq!(ulp_unmap(ulp_map(v)).to_bits(), v.to_bits());
        }
        let nan = f64::from_bits(0x7FF8_0000_0000_1234);
        assert_eq!(ulp_unmap(ulp_map(nan)).to_bits(), nan.to_bits());
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn varint_round_trips() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u64::MAX, 1 << 63];
        for &v in &values {
            write_varint(v, &mut buf);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn empty_and_singleton_streams() {
        assert_eq!(roundtrip(&[]), vec![]);
        let one = [TimedPoint::new(-3.25, 7.5, 42.0)];
        assert_eq!(roundtrip(&one), one);
        let bytes = encode_to_vec(&[]).unwrap();
        assert_eq!(bytes, vec![CODEC_VERSION, 0]);
    }

    #[test]
    fn quantized_profile_round_trips_on_grid_values() {
        // Values already on the mm grid survive exactly.
        let points: Vec<TimedPoint> = (0..300)
            .map(|i| {
                let a = i as f64;
                TimedPoint::new(a * 1.25, 500.0 - a * 0.008, a * 5.0)
            })
            .collect();
        let bytes = encode_to_vec_with(CodecProfile::millimetre(), &points).unwrap();
        let back = decode_to_vec(&bytes).unwrap();
        assert_eq!(back, points);
        // Far below the exact profile on the same stream.
        let exact = encode_to_vec(&points).unwrap();
        assert!(bytes.len() < exact.len());
    }

    #[test]
    fn quantized_error_is_bounded_and_reencoding_is_idempotent() {
        let profile = CodecProfile::Quantized {
            xy_scale: 1_000.0,
            t_scale: 1_000.0,
        };
        let points: Vec<TimedPoint> = (0..500)
            .map(|i| {
                let a = i as f64;
                TimedPoint::new(
                    (a * 0.177).sin() * 12_345.678 + a,
                    (a * 0.093).cos() * 9_871.123,
                    a * 4.987 + 0.000_4,
                )
            })
            .collect();
        let bytes = encode_to_vec_with(profile, &points).unwrap();
        let once = decode_to_vec(&bytes).unwrap();
        for (a, b) in points.iter().zip(&once) {
            assert!((a.pos.x - b.pos.x).abs() <= 0.5e-3 + 1e-9);
            assert!((a.pos.y - b.pos.y).abs() <= 0.5e-3 + 1e-9);
            assert!((a.t - b.t).abs() <= 0.5e-3 + 1e-9);
        }
        // Decoded output is a fixed point of the quantized codec.
        let bytes2 = encode_to_vec_with(profile, &once).unwrap();
        let twice = decode_to_vec(&bytes2).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn quantized_profile_rejects_unrepresentable_values() {
        let profile = CodecProfile::millimetre();
        let nan_pos = [TimedPoint::new(f64::NAN, 0.0, 0.0)];
        assert!(matches!(
            encode_to_vec_with(profile, &nan_pos),
            Err(CodecError::Unquantizable { index: 0, .. })
        ));
        let huge = [
            TimedPoint::new(0.0, 0.0, 0.0),
            TimedPoint::new(1e300, 0.0, 1.0),
        ];
        assert!(matches!(
            encode_to_vec_with(profile, &huge),
            Err(CodecError::Unquantizable { index: 1, .. })
        ));
        let bad = CodecProfile::Quantized {
            xy_scale: -1.0,
            t_scale: 1.0,
        };
        assert!(matches!(
            encode_to_vec_with(bad, &[]),
            Err(CodecError::BadProfile { .. })
        ));
    }

    #[test]
    fn unknown_mode_byte_is_rejected() {
        assert_eq!(
            decode_to_vec(&[CODEC_VERSION, 9]),
            Err(CodecError::UnsupportedMode { found: 9 })
        );
    }

    #[test]
    fn smooth_stream_round_trips_bit_exactly() {
        let points: Vec<TimedPoint> = (0..500)
            .map(|i| {
                let a = i as f64;
                TimedPoint::new((a * 0.13).sin() * 900.0, a * 21.7, a * 5.0)
            })
            .collect();
        let back = roundtrip(&points);
        assert_eq!(back.len(), points.len());
        for (a, b) in points.iter().zip(&back) {
            assert_eq!(a.pos.x.to_bits(), b.pos.x.to_bits());
            assert_eq!(a.pos.y.to_bits(), b.pos.y.to_bits());
            assert_eq!(a.t.to_bits(), b.t.to_bits());
        }
    }

    #[test]
    fn parked_tracker_costs_about_three_bytes_per_point() {
        let points: Vec<TimedPoint> = (0..1000)
            .map(|i| TimedPoint::new(512.375, -97.125, i as f64 * 5.0))
            .collect();
        let bytes = encode_to_vec(&points).unwrap();
        // First point 24 B + version; every later point is 3 × 1-byte
        // varints once the time delta stabilises.
        assert!(
            bytes.len() < 25 + 4 * (points.len() - 1),
            "{} bytes for {} parked points",
            bytes.len(),
            points.len()
        );
        assert_eq!(decode_to_vec(&bytes).unwrap(), points);
    }

    #[test]
    fn rejects_backwards_time_with_typed_error() {
        let points = [
            TimedPoint::new(0.0, 0.0, 10.0),
            TimedPoint::new(1.0, 0.0, 9.0),
        ];
        match encode_to_vec(&points) {
            Err(CodecError::NonMonotonicTimestamps { index, prev, next }) => {
                assert_eq!(index, 1);
                assert_eq!(prev, 10.0);
                assert_eq!(next, 9.0);
            }
            other => panic!("expected NonMonotonicTimestamps, got {other:?}"),
        }
    }

    #[test]
    fn rejects_non_finite_time() {
        let nan = [TimedPoint::new(0.0, 0.0, f64::NAN)];
        assert_eq!(
            encode_to_vec(&nan),
            Err(CodecError::NonFiniteTimestamp { index: 0 })
        );
        let inf = [
            TimedPoint::new(0.0, 0.0, 0.0),
            TimedPoint::new(0.0, 0.0, f64::INFINITY),
        ];
        assert_eq!(
            encode_to_vec(&inf),
            Err(CodecError::NonFiniteTimestamp { index: 1 })
        );
    }

    #[test]
    fn equal_timestamps_are_allowed() {
        let points = [
            TimedPoint::new(0.0, 0.0, 5.0),
            TimedPoint::new(1.0, 2.0, 5.0),
        ];
        assert_eq!(roundtrip(&points), points);
    }

    #[test]
    fn truncated_payload_is_a_typed_error() {
        let points: Vec<TimedPoint> = (0..10)
            .map(|i| TimedPoint::new(i as f64 * 3.0, 1.0, i as f64))
            .collect();
        let bytes = encode_to_vec(&points).unwrap();
        for cut in [0, 1, 5, 24, bytes.len() - 1] {
            let r = decode_to_vec(&bytes[..cut]);
            assert!(
                matches!(r, Err(CodecError::Truncated { .. })) || r.as_deref() == Ok(&[]),
                "cut {cut}: {r:?}"
            );
        }
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = encode_to_vec(&[TimedPoint::new(0.0, 0.0, 0.0)]).unwrap();
        bytes[0] = 99;
        assert_eq!(
            decode_to_vec(&bytes),
            Err(CodecError::UnsupportedVersion { found: 99 })
        );
    }

    #[test]
    fn columnar_encode_is_byte_identical_to_row_encode() {
        let points: Vec<TimedPoint> = (0..400)
            .map(|i| {
                let a = i as f64;
                TimedPoint::new((a * 0.17).sin() * 812.0, a * 3.3 - 50.0, a * 5.0)
            })
            .collect();
        let batch = ColumnarBatch::from_points(&points);
        for profile in [CodecProfile::Exact, CodecProfile::millimetre()] {
            let row = encode_to_vec_with(profile, &points).unwrap();
            let mut col = Vec::new();
            encode_columns_with(profile, &batch, &mut col).unwrap();
            assert_eq!(col, row, "{profile:?}");
        }
        // Empty and singleton anchors too.
        for prefix in [0usize, 1] {
            let row = encode_to_vec(&points[..prefix]).unwrap();
            let mut col = Vec::new();
            encode_columns(&ColumnarBatch::from_points(&points[..prefix]), &mut col).unwrap();
            assert_eq!(col, row, "{prefix} points");
        }
    }

    #[test]
    fn columnar_decode_matches_row_decode() {
        let points: Vec<TimedPoint> = (0..300)
            .map(|i| {
                let a = i as f64;
                TimedPoint::new(a * 1.25, 500.0 - a * 0.008, a * 5.0)
            })
            .collect();
        for profile in [CodecProfile::Exact, CodecProfile::millimetre()] {
            let bytes = encode_to_vec_with(profile, &points).unwrap();
            let batch = decode_columns(&bytes).unwrap();
            assert_eq!(batch.to_points(), decode_to_vec(&bytes).unwrap());
        }
        // Reuse path appends after clear without reallocating logic away.
        let bytes = encode_to_vec(&points).unwrap();
        let mut batch = ColumnarBatch::new();
        assert_eq!(decode_columns_into(&bytes, &mut batch).unwrap(), 300);
        batch.clear();
        assert_eq!(decode_columns_into(&bytes, &mut batch).unwrap(), 300);
        assert_eq!(batch.to_points(), points);
    }

    #[test]
    fn columnar_encode_rejects_what_the_row_encoder_rejects() {
        let backwards = ColumnarBatch::from_points(&[
            TimedPoint::new(0.0, 0.0, 10.0),
            TimedPoint::new(1.0, 0.0, 9.0),
        ]);
        let mut out = Vec::new();
        assert_eq!(
            encode_columns(&backwards, &mut out),
            Err(CodecError::NonMonotonicTimestamps {
                index: 1,
                prev: 10.0,
                next: 9.0
            })
        );
        assert!(out.is_empty(), "invalid batches write nothing");
        let nan = ColumnarBatch::from_points(&[TimedPoint::new(0.0, 0.0, f64::NAN)]);
        assert_eq!(
            encode_columns(&nan, &mut out),
            Err(CodecError::NonFiniteTimestamp { index: 0 })
        );
        // Truncated payloads are typed errors on the columnar side too.
        let bytes = encode_to_vec(&[
            TimedPoint::new(0.0, 0.0, 0.0),
            TimedPoint::new(5.0, 1.0, 1.0),
        ])
        .unwrap();
        let mut batch = ColumnarBatch::new();
        assert!(matches!(
            decode_columns_into(&bytes[..bytes.len() - 1], &mut batch),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn decoder_replays_into_any_sink() {
        let points: Vec<TimedPoint> = (0..64)
            .map(|i| TimedPoint::new(i as f64, -(i as f64), i as f64))
            .collect();
        let bytes = encode_to_vec(&points).unwrap();
        let mut counter = CountingSink::new();
        let n = decode_points(&bytes, &mut counter).unwrap();
        assert_eq!(n, 64);
        assert_eq!(counter.count, 64);
    }
}
