//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the record
//! checksum of the trajectory log.
//!
//! Hand-rolled because the build is offline (see `shims/`); the table is
//! computed at compile time, and the output matches the ubiquitous
//! zlib/`crc32fast` CRC-32 so externally produced log files can be
//! checked with standard tools.

/// The reflected IEEE 802.3 polynomial.
const POLY: u32 = 0xEDB8_8320;

/// One-byte-at-a-time lookup table, built in a `const` context.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `data` (full init/finalise; equivalent to `crc32(0, data)`
/// in zlib terms).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let base = crc32(data);
        let mut copy = data.to_vec();
        for i in 0..copy.len() {
            for bit in 0..8 {
                copy[i] ^= 1 << bit;
                assert_ne!(crc32(&copy), base, "flip at byte {i} bit {bit}");
                copy[i] ^= 1 << bit;
            }
        }
    }
}
